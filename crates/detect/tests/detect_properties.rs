//! Property tests for the detection subsystem: arbitrary widths,
//! operands and constructions.

use proptest::prelude::*;
use rft_detect::{exhaustive_coverage, with_parity_check, Adder, AdderKind, CheckedAdder};
use rft_revsim::prelude::*;

fn arb_kind() -> impl Strategy<Value = AdderKind> {
    (0usize..7).prop_map(|i| match i {
        0 => AdderKind::Ripple,
        1..=4 => AdderKind::CarrySkip { block: i },
        5 => AdderKind::Cla,
        _ => AdderKind::PlainRipple,
    })
}

proptest! {
    /// Every construction adds correctly at every width and operand.
    #[test]
    fn adders_add(kind in arb_kind(), width in 1usize..12, seed in any::<u64>()) {
        let adder = Adder::new(kind, width);
        let mask = (1u64 << width) - 1;
        let a = seed & mask;
        let b = (seed >> 16) & mask;
        let cin = (seed >> 63) & 1 == 1;
        let (sum, cout) = adder.compute(a, b, cin);
        prop_assert_eq!(sum | ((cout as u64) << width), a + b + cin as u64);
    }

    /// The wrap never alarms fault-free and preserves the sum, for every
    /// parity-preserving construction.
    #[test]
    fn wrap_is_transparent(
        kind in arb_kind().prop_filter("parity kinds only", |k| *k != AdderKind::PlainRipple),
        width in 1usize..8,
        seed in any::<u64>(),
    ) {
        let ca = CheckedAdder::new(kind, width);
        let mask = (1u64 << width) - 1;
        let (a, b) = (seed & mask, (seed >> 20) & mask);
        let mut state = BitState::zeros(ca.checked.circuit.n_wires());
        for i in 0..width {
            state.set(ca.adder.a[i], (a >> i) & 1 == 1);
            state.set(ca.adder.b[i], (b >> i) & 1 == 1);
        }
        ca.checked.circuit.run(&mut state);
        prop_assert!(!ca.checked.detected(&state));
        let sum: u64 = (0..width).map(|i| (state.get(ca.adder.sum[i]) as u64) << i).sum();
        prop_assert_eq!(sum | ((state.get(ca.adder.cout) as u64) << width), a + b);
    }

    /// Single bit-flip faults at body sites are always detected and a
    /// random planned single fault never produces harmful-undetected
    /// odd-weight deviations — the Islam et al. guarantee, sampled
    /// across constructions at width 2.
    #[test]
    fn body_bitflips_always_detected(
        kind in arb_kind().prop_filter("parity kinds only", |k| *k != AdderKind::PlainRipple),
    ) {
        let adder = Adder::new(kind, 2);
        let checked = with_parity_check(&adder.circuit, &adder.input_wires());
        let r = exhaustive_coverage(&checked, &adder.input_wires(), &adder.output_wires());
        prop_assert_eq!(r.body_weight1.detected, r.body_weight1.cases);
        prop_assert_eq!(r.body_odd.harmful_undetected, 0);
        prop_assert_eq!(r.body_even.detected, 0);
    }
}

/// The engine's planned-fault runs and the batch Monte-Carlo path agree
/// with the scalar reference: a checked adder estimated at the same seed
/// is bit-identical across backends and widths.
#[test]
fn estimates_are_backend_and_width_invariant() {
    use rft_revsim::engine::{BackendKind, WordWidth};
    use rft_revsim::noise::UniformNoise;

    let ca = CheckedAdder::new(AdderKind::Ripple, 4);
    let noise = UniformNoise::new(2e-3);
    let engine = Engine::compile(&ca.checked.circuit, &noise);
    let trial = ca.trial(rft_detect::TrialMode::UndetectedWrong);
    let base = McOptions::new(8_000).seed(99);
    let reference = engine.estimate(&trial, &base);
    for backend in [BackendKind::Scalar, BackendKind::Batch] {
        for width in [WordWidth::W1, WordWidth::W2, WordWidth::W4] {
            for threads in [1usize, 4] {
                let opts = McOptions::new(8_000)
                    .seed(99)
                    .backend(backend)
                    .width(width)
                    .threads(threads);
                let out = engine.estimate(&trial, &opts);
                assert_eq!(
                    (out.failures, out.trials),
                    (reference.failures, reference.trials),
                    "{backend:?}/{width:?}/t{threads}"
                );
            }
        }
    }
}
