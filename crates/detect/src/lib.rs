//! Online fault *detection* built on the parity-preserving gate library.
//!
//! The paper's multiplexing scheme masks faults by majority *correction*,
//! paying a 3× wire blowup plus a recovery network per encoded bit per
//! cycle. This crate reproduces the complementary, cheaper point in the
//! design space explored by the parity-preserving synthesis literature
//! (Parhami; Islam et al.; Alves et al.): build the datapath exclusively
//! from gates that preserve the parity of their support — [`F2G`], the
//! Fredkin gate, [`NFT`] and [`IG`] — so any odd-weight deviation
//! anywhere in the network flips the register parity, and a single rail
//! that snapshots input parity and is re-scanned at the output *detects*
//! the fault instead of correcting it. A detected fault gates a
//! retry/discard policy; only even-weight deviations (which a single
//! parity rail provably cannot see) contribute to the residual
//! undetected-and-wrong rate.
//!
//! The crate provides three layers:
//!
//! - [`adder`]: parameterized-width parity-preserving arithmetic —
//!   ripple-carry (two IG gates per bit), variable-block carry-skip and a
//!   Manchester-style carry-lookahead chain — plus a plain
//!   Toffoli/CNOT ripple adder as the unprotected baseline.
//! - [`checker`]: the Alves-style invariant-checker wrap
//!   ([`checker::with_parity_check`]): ancilla parity rail, input scan,
//!   output comparator scan, and the [`checker::is_parity_transparent`]
//!   admission test.
//! - [`coverage`] / [`trial`]: exhaustive single-fault coverage
//!   accounting over the planned-fault backend, and
//!   [`rft_revsim::engine::WordTrial`] implementations so the Monte-Carlo
//!   engine (plain or rare-event stratified) estimates detected /
//!   wrong / undetected-and-wrong rates on 64-lane plane words.
//!
//! [`F2G`]: rft_revsim::gate::Gate::F2g
//! [`NFT`]: rft_revsim::gate::Gate::Nft
//! [`IG`]: rft_revsim::gate::Gate::Ig

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder;
pub mod checker;
pub mod coverage;
pub mod trial;

pub use adder::{Adder, AdderKind};
pub use checker::{is_parity_transparent, with_parity_check, CheckedCircuit};
pub use coverage::{exhaustive_coverage, Coverage, CoverageReport};
pub use trial::{AdderTrial, CheckedAdder, TrialMode};
