//! [`WordTrial`] adapters: Monte-Carlo estimation of detected / wrong /
//! undetected-and-wrong rates for (checked) adders, 64 lanes per plane
//! word.
//!
//! Each lane draws independent uniform operands, the engine injects
//! faults per its noise model, and the judge recomputes the ideal sum
//! *arithmetically on the planes* (a branch-free ripple in `u64` words),
//! so judging costs `O(width)` word ops regardless of lane count. The
//! ideal execution is exact by construction, so all modes override
//! [`WordTrial::fault_free_can_fail`] to `false` and the rare-event
//! stratified estimator may elide the zero-fault stratum analytically —
//! exactly the machinery the hybrid retry/discard experiment leans on at
//! deep-sub-threshold fault rates.

use crate::adder::{Adder, AdderKind};
use crate::checker::{with_parity_check, CheckedCircuit};
use rand::{Rng, RngCore};
use rft_revsim::batch::BatchState;
use rft_revsim::engine::WordTrial;
use rft_revsim::wire::Wire;

/// What a lane must exhibit to count as a "failure" for the estimator.
/// Serializable so estimation services can name the mode in a job spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TrialMode {
    /// Outputs wrong **and** flag silent — the residual error a
    /// retry/discard policy cannot see. Requires a flag wire.
    UndetectedWrong,
    /// Outputs wrong, flag ignored — the raw error rate.
    Wrong,
    /// Flag raised (right or wrong outputs) — the retry rate. Requires a
    /// flag wire.
    Detected,
}

/// An adder wrapped with the parity checker, bundled with its wire roles.
#[derive(Debug, Clone)]
pub struct CheckedAdder {
    /// The underlying adder (wire roles refer to the wrapped circuit,
    /// whose body wires are unchanged).
    pub adder: Adder,
    /// The invariant-checker wrap of the adder's circuit.
    pub checked: CheckedCircuit,
}

impl CheckedAdder {
    /// Synthesizes and wraps an adder.
    ///
    /// # Panics
    ///
    /// Panics for [`AdderKind::PlainRipple`] (not parity-transparent)
    /// and on the same inputs as [`Adder::new`].
    pub fn new(kind: AdderKind, width: usize) -> CheckedAdder {
        let adder = Adder::new(kind, width);
        let checked = with_parity_check(&adder.circuit, &adder.input_wires());
        CheckedAdder { adder, checked }
    }

    /// A Monte-Carlo trial over the wrapped circuit.
    pub fn trial(&self, mode: TrialMode) -> AdderTrial<'_> {
        AdderTrial {
            adder: &self.adder,
            n_wires: self.checked.circuit.n_wires(),
            flag: Some(self.checked.flag),
            mode,
        }
    }
}

/// The [`WordTrial`] over an adder circuit — wrapped (with flag) or bare.
#[derive(Debug, Clone)]
pub struct AdderTrial<'a> {
    adder: &'a Adder,
    n_wires: usize,
    flag: Option<Wire>,
    mode: TrialMode,
}

impl<'a> AdderTrial<'a> {
    /// A trial over the *unwrapped* adder circuit (no flag; only
    /// [`TrialMode::Wrong`] is meaningful). Used for the unprotected
    /// baselines.
    ///
    /// # Panics
    ///
    /// Panics if `mode` needs a flag.
    pub fn unchecked(adder: &'a Adder, mode: TrialMode) -> AdderTrial<'a> {
        assert!(
            mode == TrialMode::Wrong,
            "an unchecked adder has no detection flag"
        );
        AdderTrial {
            adder,
            n_wires: adder.circuit.n_wires(),
            flag: None,
            mode,
        }
    }
}

impl WordTrial for AdderTrial<'_> {
    fn n_wires(&self) -> usize {
        self.n_wires
    }

    fn prepare(&self, batch: &mut BatchState, rng: &mut dyn RngCore) -> Vec<u64> {
        let mut inputs = Vec::new();
        self.prepare_into(batch, rng, &mut inputs);
        inputs
    }

    fn prepare_into(&self, batch: &mut BatchState, rng: &mut dyn RngCore, inputs: &mut Vec<u64>) {
        inputs.clear();
        let width = self.adder.width;
        // Layout: a planes, b planes, then the carry-in plane.
        for _ in 0..2 * width + 1 {
            inputs.push(rng.random::<u64>());
        }
        for i in 0..width {
            batch.set_word(self.adder.a[i], 0, inputs[i]);
            batch.set_word(self.adder.b[i], 0, inputs[width + i]);
        }
        batch.set_word(self.adder.cin, 0, inputs[2 * width]);
    }

    fn judge(&self, batch: &BatchState, inputs: &[u64]) -> u64 {
        let width = self.adder.width;
        // Branch-free per-lane ripple on the input planes gives the
        // ideal sum; any mismatching output plane marks the lane wrong.
        let mut carry = inputs[2 * width];
        let mut wrong = 0u64;
        for i in 0..width {
            let (a, b) = (inputs[i], inputs[width + i]);
            let p = a ^ b;
            wrong |= (p ^ carry) ^ batch.word(self.adder.sum[i], 0);
            carry = (a & b) | (carry & p);
        }
        wrong |= carry ^ batch.word(self.adder.cout, 0);
        match (self.mode, self.flag) {
            (TrialMode::Wrong, _) => wrong,
            (TrialMode::UndetectedWrong, Some(flag)) => wrong & !batch.word(flag, 0),
            (TrialMode::Detected, Some(flag)) => batch.word(flag, 0),
            _ => unreachable!("flag-requiring mode on an unchecked trial"),
        }
    }

    /// Encode → run → judge against exact plane arithmetic: a fault-free
    /// lane computes the sum exactly and never raises the flag, so
    /// zero-fault elision is sound in every mode.
    fn fault_free_can_fail(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rft_revsim::engine::{Engine, McOptions};
    use rft_revsim::noise::{NoNoise, UniformNoise};

    #[test]
    fn fault_free_lanes_never_fail_in_any_mode() {
        let ca = CheckedAdder::new(AdderKind::Ripple, 4);
        let engine = Engine::compile(&ca.checked.circuit, &NoNoise);
        for mode in [
            TrialMode::Wrong,
            TrialMode::UndetectedWrong,
            TrialMode::Detected,
        ] {
            let out = engine.estimate(&ca.trial(mode), &McOptions::new(2_000).seed(7));
            assert_eq!(out.failures, 0, "{mode:?}");
        }
    }

    #[test]
    fn detection_strictly_beats_no_detection_under_noise() {
        let ca = CheckedAdder::new(AdderKind::Ripple, 4);
        let noise = UniformNoise::new(5e-3);
        let engine = Engine::compile(&ca.checked.circuit, &noise);
        let opts = McOptions::new(20_000).seed(41);
        let wrong = engine.estimate(&ca.trial(TrialMode::Wrong), &opts).failures;
        let resid = engine
            .estimate(&ca.trial(TrialMode::UndetectedWrong), &opts)
            .failures;
        let detected = engine
            .estimate(&ca.trial(TrialMode::Detected), &opts)
            .failures;
        assert!(wrong > 0, "noise must bite at this rate");
        assert!(detected > 0);
        // Random-pattern faults deviate with odd weight (parity-visible)
        // about half the time, so detection roughly halves the residual.
        assert!(
            resid * 3 < wrong * 2,
            "parity must catch a solid fraction of wrong outcomes: {resid} vs {wrong}"
        );
    }

    #[test]
    fn unchecked_trial_estimates_the_plain_baseline() {
        let adder = Adder::new(AdderKind::PlainRipple, 4);
        let noise = UniformNoise::new(5e-3);
        let engine = Engine::compile(&adder.circuit, &noise);
        let trial = AdderTrial::unchecked(&adder, TrialMode::Wrong);
        let out = engine.estimate(&trial, &McOptions::new(10_000).seed(3));
        assert!(out.failures > 0);
    }

    #[test]
    #[should_panic(expected = "no detection flag")]
    fn unchecked_rejects_flag_modes() {
        let adder = Adder::new(AdderKind::PlainRipple, 2);
        AdderTrial::unchecked(&adder, TrialMode::Detected);
    }
}
