//! Exhaustive single-fault detection-coverage accounting.
//!
//! For every op of a wrapped circuit, every deviation pattern on that
//! op's support, and every input assignment, one planned-fault run
//! classifies the outcome along three axes:
//!
//! - **site**: the fault hit a *body* op (the wrapped computation,
//!   ancilla inits included) or a *checker* op (rail init, input scan,
//!   output comparator);
//! - **deviation weight**: how many support bits the injected pattern
//!   flips relative to the ideal trace — weight 1 is the classic single
//!   bit-flip fault, and odd/even weight is what a parity rail can/cannot
//!   see;
//! - **outcome**: `harmful` (declared outputs differ from the ideal
//!   run), `detected` (flag raised), and their products.
//!
//! The theorems the construction promises — and the `detectcov`
//! experiment pins — fall straight out of the parity argument: at body
//! sites **every** odd-weight deviation (so every bit-flip) is detected
//! and **no** even-weight deviation is, so the undetected-and-harmful
//! residual is exactly the harmful even-weight body cases plus the
//! comparator's own last-gate gap.

use crate::checker::CheckedCircuit;
use rft_revsim::engine::PlannedFaultBackend;
use rft_revsim::fault::FaultPlan;
use rft_revsim::state::BitState;
use rft_revsim::wire::Wire;
use serde::{Deserialize, Serialize};

/// Tallies over one class of injections.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coverage {
    /// Injections in this class (site × pattern × input).
    pub cases: u64,
    /// Runs whose declared outputs differed from the ideal run.
    pub harmful: u64,
    /// Runs that raised the detection flag.
    pub detected: u64,
    /// Harmful runs that did **not** raise the flag — the residual.
    pub harmful_undetected: u64,
    /// Detected runs whose outputs were nevertheless correct (a retry
    /// policy pays a rerun for these).
    pub false_alarms: u64,
}

impl Coverage {
    fn record(&mut self, harmful: bool, detected: bool) {
        self.cases += 1;
        self.harmful += harmful as u64;
        self.detected += detected as u64;
        self.harmful_undetected += (harmful && !detected) as u64;
        self.false_alarms += (detected && !harmful) as u64;
    }

    /// Fraction of injections that raised the flag.
    pub fn detection_rate(&self) -> f64 {
        if self.cases == 0 {
            return 1.0;
        }
        self.detected as f64 / self.cases as f64
    }

    /// Fraction of *harmful* injections that were detected (1.0 when
    /// nothing was harmful).
    pub fn harmful_coverage(&self) -> f64 {
        if self.harmful == 0 {
            return 1.0;
        }
        1.0 - self.harmful_undetected as f64 / self.harmful as f64
    }
}

/// The full exhaustive-coverage artifact of one wrapped circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Input assignments enumerated.
    pub inputs: u64,
    /// Ops in the wrapped circuit.
    pub ops: usize,
    /// Single bit-flip injection sites (Σ arity over all ops).
    pub bitflip_sites: usize,
    /// Weight-1 deviations at body ops (subset of `body_odd`).
    pub body_weight1: Coverage,
    /// Odd-weight deviations at body ops.
    pub body_odd: Coverage,
    /// Even-weight (≥ 2) deviations at body ops.
    pub body_even: Coverage,
    /// Weight-1 deviations at checker ops (subset of `checker_odd`).
    pub checker_weight1: Coverage,
    /// Odd-weight deviations at checker ops.
    pub checker_odd: Coverage,
    /// Even-weight (≥ 2) deviations at checker ops.
    pub checker_even: Coverage,
}

impl CoverageReport {
    /// Coverage over all injections (any site, any weight): fraction of
    /// harmful cases detected.
    pub fn total_harmful_coverage(&self) -> f64 {
        let mut harmful = 0u64;
        let mut undetected = 0u64;
        for c in [
            self.body_odd,
            self.body_even,
            self.checker_odd,
            self.checker_even,
        ] {
            harmful += c.harmful;
            undetected += c.harmful_undetected;
        }
        if harmful == 0 {
            return 1.0;
        }
        1.0 - undetected as f64 / harmful as f64
    }
}

/// Exhausts every `(op, deviation pattern, input)` triple of a wrapped
/// circuit and classifies each planned-fault run.
///
/// `input_wires` are enumerated over all `2^k` assignments (every other
/// wire starts 0); `outputs` are the wires whose final values define
/// harmfulness. Deviation weight 0 — a "fault" that writes exactly what
/// the ideal run produces — is skipped: it is indistinguishable from no
/// fault at all.
///
/// # Panics
///
/// Panics if the fault-free wrapped circuit miscomputes (raises its own
/// flag), or if `input_wires` has more than 20 bits (the enumeration
/// would be enormous).
pub fn exhaustive_coverage(
    checked: &CheckedCircuit,
    input_wires: &[Wire],
    outputs: &[Wire],
) -> CoverageReport {
    assert!(input_wires.len() <= 20, "input enumeration too large");
    let circuit = &checked.circuit;
    let n = circuit.n_wires();
    let len = circuit.len();
    let mut report = CoverageReport {
        inputs: 1u64 << input_wires.len(),
        ops: len,
        bitflip_sites: circuit.ops().iter().map(|op| op.arity()).sum(),
        body_weight1: Coverage::default(),
        body_odd: Coverage::default(),
        body_even: Coverage::default(),
        checker_weight1: Coverage::default(),
        checker_odd: Coverage::default(),
        checker_even: Coverage::default(),
    };
    for assignment in 0..report.inputs {
        let mut entry = BitState::zeros(n);
        for (bit, &wire) in input_wires.iter().enumerate() {
            entry.set(wire, (assignment >> bit) & 1 == 1);
        }
        // One ideal pass records, per op, the support pattern the
        // fault-free run leaves right after it — the reference every
        // deviation is measured against.
        let mut ideal = entry.clone();
        let mut trace: Vec<u8> = Vec::with_capacity(len);
        for op in circuit.ops() {
            op.apply(&mut ideal);
            trace.push(ideal.read_pattern(op.support().as_slice()));
        }
        assert!(
            !checked.detected(&ideal),
            "fault-free run raised the flag on input {assignment}"
        );
        let ideal_outputs: Vec<bool> = outputs.iter().map(|&o| ideal.get(o)).collect();
        for (t, op) in circuit.ops().iter().enumerate() {
            let patterns = 1u16 << op.arity();
            let in_body = checked.body_ops.contains(&t);
            for pattern in 0..patterns {
                let weight = (pattern as u8 ^ trace[t]).count_ones();
                if weight == 0 {
                    continue;
                }
                let plan = FaultPlan::single(t, pattern as u8);
                let mut state = entry.clone();
                PlannedFaultBackend::new(&plan).run_state(circuit, &mut state);
                let harmful = outputs
                    .iter()
                    .zip(&ideal_outputs)
                    .any(|(&o, &want)| state.get(o) != want);
                let detected = checked.detected(&state);
                let (weight1, odd, even) = if in_body {
                    (
                        &mut report.body_weight1,
                        &mut report.body_odd,
                        &mut report.body_even,
                    )
                } else {
                    (
                        &mut report.checker_weight1,
                        &mut report.checker_odd,
                        &mut report.checker_even,
                    )
                };
                if weight == 1 {
                    weight1.record(harmful, detected);
                }
                if weight % 2 == 1 {
                    odd.record(harmful, detected);
                } else {
                    even.record(harmful, detected);
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder::{Adder, AdderKind};
    use crate::checker::with_parity_check;

    fn report_for(kind: AdderKind, width: usize) -> CoverageReport {
        let adder = Adder::new(kind, width);
        let checked = with_parity_check(&adder.circuit, &adder.input_wires());
        exhaustive_coverage(&checked, &adder.input_wires(), &adder.output_wires())
    }

    #[test]
    fn parity_theorems_hold_for_the_ripple_adder() {
        let r = report_for(AdderKind::Ripple, 2);
        // Every odd-weight deviation at a body site flips the register
        // parity and is detected — bit-flips included.
        assert_eq!(r.body_weight1.detected, r.body_weight1.cases);
        assert_eq!(r.body_weight1.harmful_undetected, 0);
        assert_eq!(r.body_odd.detected, r.body_odd.cases);
        assert_eq!(r.body_odd.harmful_undetected, 0);
        // No even-weight deviation at a body site is ever visible.
        assert_eq!(r.body_even.detected, 0);
        assert!(r.body_even.cases > 0);
        // The comparator's own last gates are the classic self-checking
        // gap: some checker-site bit-flips slip through.
        assert!(r.checker_weight1.detected < r.checker_weight1.cases);
        // Under the paper's fault model a faulted op's support is
        // *replaced* by a uniform pattern, and deviations are odd-weight
        // only half the time — so coverage over all harmful random
        // patterns sits near 1/2 even though bit-flip coverage is 100%.
        assert!(r.total_harmful_coverage() >= 0.45);
    }

    #[test]
    fn theorems_hold_across_constructions() {
        for kind in [AdderKind::CarrySkip { block: 2 }, AdderKind::Cla] {
            let r = report_for(kind, 2);
            assert_eq!(r.body_odd.detected, r.body_odd.cases, "{}", kind.name());
            assert_eq!(r.body_even.detected, 0, "{}", kind.name());
        }
    }

    #[test]
    fn rates_are_well_defined_on_empty_classes() {
        let c = Coverage::default();
        assert_eq!(c.detection_rate(), 1.0);
        assert_eq!(c.harmful_coverage(), 1.0);
    }
}
