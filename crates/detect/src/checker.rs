//! The Alves-style invariant-checker wrap: a parity rail plus an output
//! comparator turn any parity-transparent circuit into an online
//! fault-*detecting* one.
//!
//! The wrapped circuit snapshots the parity of the declared input wires
//! onto a fresh ancilla rail (`rail ← ⊕ inputs`), runs the body, then
//! re-scans **every** body wire into the rail. Fault-free, the body's
//! parity-preserving gates keep the register parity equal to the input
//! parity, so the rail cancels back to 0. Any odd-weight deviation —
//! in particular every single bit-flip — flips the register parity once,
//! and nothing downstream can unflip it, so the rail reads 1: the flag.
//!
//! Even-weight deviations are invisible to a single rail by the same
//! argument; [`crate::coverage::exhaustive_coverage`] measures that
//! residual exactly.

use rft_revsim::circuit::Circuit;
use rft_revsim::gate::OpKind;
use rft_revsim::op::Op;
use rft_revsim::state::BitState;
use rft_revsim::wire::{w, Wire};
use std::ops::Range;

/// Whether `circuit` is admissible to [`with_parity_check`]: every gate
/// preserves the parity of its support. `Init` ops are allowed — they
/// are parity-neutral as long as the wires they reset are still 0 when
/// they run, which holds for circuits (like the [`crate::adder`]
/// constructions) that keep their ancilla inits in a prefix and receive
/// zeroed ancillas.
pub fn is_parity_transparent(circuit: &Circuit) -> bool {
    circuit.ops().iter().all(|op| match op.as_gate() {
        Some(gate) => gate.is_parity_preserving(),
        None => op.kind() == OpKind::Init,
    })
}

/// A circuit wrapped with the parity rail and comparator.
#[derive(Debug, Clone)]
pub struct CheckedCircuit {
    /// The wrapped circuit: body wires `0..n` plus the rail at wire `n`.
    pub circuit: Circuit,
    /// The rail/flag wire: reads 1 after the run iff a parity-visible
    /// fault occurred.
    pub flag: Wire,
    /// Index range of the body's ops inside [`CheckedCircuit::circuit`]
    /// (everything outside it is checker infrastructure: the rail init,
    /// the input scan and the output comparator scan).
    pub body_ops: Range<usize>,
}

impl CheckedCircuit {
    /// Reads the detection flag off a finished state.
    pub fn detected(&self, state: &BitState) -> bool {
        state.get(self.flag)
    }

    /// Number of checker-infrastructure ops (total minus body).
    pub fn checker_ops(&self) -> usize {
        self.circuit.len() - self.body_ops.len()
    }
}

/// Wraps `body` with the invariant checker.
///
/// `inputs` declares the externally-driven wires; every other body wire
/// must be 0 at entry (ancillas the body initializes itself). The input
/// scan covers only `inputs` — the zero ancillas contribute nothing to
/// the initial parity — while the output comparator re-scans all body
/// wires, garbage rails included.
///
/// # Panics
///
/// Panics if `body` is not [`is_parity_transparent`] or an input wire is
/// out of range.
pub fn with_parity_check(body: &Circuit, inputs: &[Wire]) -> CheckedCircuit {
    assert!(
        is_parity_transparent(body),
        "invariant-checker wrap requires a parity-transparent body"
    );
    let n = body.n_wires();
    let rail = w(n as u32);
    let mut circuit = Circuit::new(n + 1);
    circuit.push(Op::init(&[rail]));
    for &wire in inputs {
        assert!((wire.index()) < n, "input wire out of body range");
        circuit.cnot(wire, rail);
    }
    let body_start = circuit.len();
    for op in body.ops() {
        circuit.push(*op);
    }
    let body_end = circuit.len();
    for i in 0..n {
        circuit.cnot(w(i as u32), rail);
    }
    CheckedCircuit {
        circuit,
        flag: rail,
        body_ops: body_start..body_end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder::{Adder, AdderKind};

    #[test]
    fn wrapped_adder_is_silent_fault_free_and_still_adds() {
        let adder = Adder::new(AdderKind::Ripple, 3);
        let checked = with_parity_check(&adder.circuit, &adder.input_wires());
        for a in 0..8u64 {
            for b in 0..8u64 {
                let mut s = BitState::zeros(checked.circuit.n_wires());
                for i in 0..3 {
                    s.set(adder.a[i], (a >> i) & 1 == 1);
                    s.set(adder.b[i], (b >> i) & 1 == 1);
                }
                checked.circuit.run(&mut s);
                assert!(!checked.detected(&s), "false alarm on {a}+{b}");
                let sum: u64 = (0..3).map(|i| (s.get(adder.sum[i]) as u64) << i).sum();
                assert_eq!(sum | ((s.get(adder.cout) as u64) << 3), a + b);
            }
        }
    }

    #[test]
    fn plain_adder_is_rejected() {
        let adder = Adder::new(AdderKind::PlainRipple, 2);
        assert!(!is_parity_transparent(&adder.circuit));
    }

    #[test]
    #[should_panic(expected = "parity-transparent")]
    fn wrap_panics_on_inadmissible_body() {
        let adder = Adder::new(AdderKind::PlainRipple, 2);
        with_parity_check(&adder.circuit, &adder.input_wires());
    }

    #[test]
    fn checker_overhead_is_linear_in_wires() {
        let adder = Adder::new(AdderKind::Ripple, 4);
        let checked = with_parity_check(&adder.circuit, &adder.input_wires());
        // rail init + input scan + full-register comparator scan.
        let n = adder.circuit.n_wires();
        assert_eq!(checked.checker_ops(), 1 + adder.input_wires().len() + n);
        assert_eq!(checked.body_ops.len(), adder.circuit.len());
    }
}
