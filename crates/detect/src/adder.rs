//! Parameterized-width adders synthesized from the parity-preserving
//! gate library, plus the plain Toffoli/CNOT baseline they are compared
//! against.
//!
//! Every parity-preserving construction keeps its ancilla `Init` ops in a
//! prefix of the op list (the invariant-checker wrap requires it) and
//! uses only F2G, Fredkin and IG gates after that prefix, so
//! [`crate::checker::is_parity_transparent`] admits all of them.
//!
//! The per-bit cell shared by all three parity-preserving variants is the
//! two-IG full adder: with `IG(a,b,c,d) = (a, a⊕b, ab⊕c, a¬b⊕d)`,
//!
//! ```text
//! IG(a, b, 0, 0)        = (a, p, g, a¬b)        p = a⊕b, g = ab
//! IG(p, cin, g, a¬b)    = (p, sum, carry, ...)  sum = p⊕cin,
//!                                               carry = p·cin ⊕ g
//! ```
//!
//! i.e. the second IG lands the sum on the carry-in wire and the carry
//! out on the first ancilla — two gates and two ancillas per bit.

use rft_revsim::circuit::Circuit;
use rft_revsim::state::BitState;
use rft_revsim::wire::{w, Wire};
use serde::{Deserialize, Serialize};

/// Which adder construction to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdderKind {
    /// Ripple-carry from two IG gates per bit (the minimal
    /// parity-preserving construction: `2n` gates, `2n` ancillas).
    Ripple,
    /// Ripple core plus per-block propagate rails (Fredkin AND chain)
    /// and a Fredkin carry-skip mux, with a configurable block size.
    /// Functionally identical to ripple — the skip path mirrors the
    /// hardware construction and adds its fault surface.
    CarrySkip {
        /// Bits per skip block (≥ 1; blocks at the tail may be smaller).
        block: usize,
    },
    /// Manchester-style carry-lookahead chain: per bit one IG computes
    /// (propagate, generate) and a Fredkin mux selects
    /// `carry = p ? cin : g`, with F2G fan-outs feeding the sum.
    Cla,
    /// Plain (non-parity-preserving) Toffoli/CNOT ripple adder: the
    /// unprotected baseline for overhead and coverage comparisons. Not
    /// admissible to [`crate::checker::with_parity_check`].
    PlainRipple,
}

impl AdderKind {
    /// Stable lowercase name used in reports and job specs.
    pub fn name(&self) -> String {
        match self {
            AdderKind::Ripple => "ripple".into(),
            AdderKind::CarrySkip { block } => format!("carry-skip/{block}"),
            AdderKind::Cla => "cla".into(),
            AdderKind::PlainRipple => "plain".into(),
        }
    }
}

/// A synthesized `width`-bit adder: the circuit plus the wire roles
/// needed to drive and judge it (`sum = a + b + cin`, with `sum[i]` on
/// `sum[i]` wires and the final carry on `cout`).
#[derive(Debug, Clone)]
pub struct Adder {
    /// The synthesized circuit (ancilla `Init` ops form a prefix).
    pub circuit: Circuit,
    /// Which construction this is.
    pub kind: AdderKind,
    /// Operand width in bits.
    pub width: usize,
    /// Wires carrying operand `a`, LSB first.
    pub a: Vec<Wire>,
    /// Wires carrying operand `b`, LSB first.
    pub b: Vec<Wire>,
    /// The carry-in wire.
    pub cin: Wire,
    /// Output wires holding the sum bits after the run, LSB first.
    pub sum: Vec<Wire>,
    /// Output wire holding the final carry after the run.
    pub cout: Wire,
}

impl Adder {
    /// Synthesizes a `width`-bit adder of the given construction.
    ///
    /// # Panics
    ///
    /// Panics when `width == 0`, or for [`AdderKind::CarrySkip`] with a
    /// zero block size.
    pub fn new(kind: AdderKind, width: usize) -> Adder {
        assert!(width > 0, "adder width must be at least 1");
        match kind {
            AdderKind::Ripple => ripple(width),
            AdderKind::CarrySkip { block } => carry_skip(width, block),
            AdderKind::Cla => cla(width),
            AdderKind::PlainRipple => plain_ripple(width),
        }
    }

    /// All externally-driven input wires: `a`, `b`, then `cin`. Every
    /// other wire is an ancilla the circuit initializes itself.
    pub fn input_wires(&self) -> Vec<Wire> {
        let mut wires = self.a.clone();
        wires.extend_from_slice(&self.b);
        wires.push(self.cin);
        wires
    }

    /// The output wires the correctness judgement reads: `sum` then
    /// `cout`.
    pub fn output_wires(&self) -> Vec<Wire> {
        let mut wires = self.sum.clone();
        wires.push(self.cout);
        wires
    }

    /// Runs the adder fault-free on concrete operands, returning
    /// `(sum, carry_out)`.
    pub fn compute(&self, a: u64, b: u64, cin: bool) -> (u64, bool) {
        let mut state = BitState::zeros(self.circuit.n_wires());
        for i in 0..self.width {
            state.set(self.a[i], (a >> i) & 1 == 1);
            state.set(self.b[i], (b >> i) & 1 == 1);
        }
        state.set(self.cin, cin);
        self.circuit.run(&mut state);
        let mut sum = 0u64;
        for i in 0..self.width {
            if state.get(self.sum[i]) {
                sum |= 1 << i;
            }
        }
        (sum, state.get(self.cout))
    }
}

/// The shared ripple wire plan: `a_i = i`, `b_i = n + i`, `cin = 2n`,
/// ancilla pair `(k_i, l_i) = (2n+1+2i, 2n+2+2i)`. The IG2 chain leaves
/// `sum_0` on the `cin` wire, `sum_i` (`i ≥ 1`) on `k_{i-1}`, and the
/// carry out on `k_{n-1}`.
struct RipplePlan {
    n: usize,
}

impl RipplePlan {
    fn a(&self, i: usize) -> Wire {
        w(i as u32)
    }
    fn b(&self, i: usize) -> Wire {
        w((self.n + i) as u32)
    }
    fn cin(&self) -> Wire {
        w(2 * self.n as u32)
    }
    /// First ancilla of bit `i` (receives the generate, then the carry).
    fn k(&self, i: usize) -> Wire {
        w((2 * self.n + 1 + 2 * i) as u32)
    }
    /// Second ancilla of bit `i` (garbage rail).
    fn l(&self, i: usize) -> Wire {
        w((2 * self.n + 2 + 2 * i) as u32)
    }
    /// The wire feeding carry into bit `i`.
    fn carry_in(&self, i: usize) -> Wire {
        if i == 0 {
            self.cin()
        } else {
            self.k(i - 1)
        }
    }
    fn wires(&self) -> usize {
        4 * self.n + 1
    }
    fn roles(&self, kind: AdderKind, circuit: Circuit) -> Adder {
        Adder {
            circuit,
            kind,
            width: self.n,
            a: (0..self.n).map(|i| self.a(i)).collect(),
            b: (0..self.n).map(|i| self.b(i)).collect(),
            cin: self.cin(),
            // sum_i lands on bit i's carry-in wire.
            sum: (0..self.n).map(|i| self.carry_in(i)).collect(),
            cout: self.k(self.n - 1),
        }
    }
}

fn ripple(n: usize) -> Adder {
    let plan = RipplePlan { n };
    let mut c = Circuit::new(plan.wires());
    for i in 0..n {
        c.init(&[plan.k(i), plan.l(i)]);
    }
    for i in 0..n {
        c.ig(plan.a(i), plan.b(i), plan.k(i), plan.l(i));
        c.ig(plan.b(i), plan.carry_in(i), plan.k(i), plan.l(i));
    }
    plan.roles(AdderKind::Ripple, c)
}

fn carry_skip(n: usize, block: usize) -> Adder {
    assert!(block > 0, "carry-skip block size must be at least 1");
    let plan = RipplePlan { n };
    let blocks: Vec<(usize, usize)> = (0..n)
        .step_by(block)
        .map(|lo| (lo, (lo + block).min(n)))
        .collect();
    // Per block: a carry-in copy pair (cpy, dup), a propagate seed pair
    // (q, q2), and one AND-chain ancilla per bit past the first.
    let mut base = plan.wires();
    let mut extra: Vec<Vec<Wire>> = Vec::new();
    for &(lo, hi) in &blocks {
        let m = hi - lo;
        let wires: Vec<Wire> = (0..4 + (m - 1)).map(|j| w((base + j) as u32)).collect();
        base += wires.len();
        extra.push(wires);
    }
    let mut c = Circuit::new(base);
    for i in 0..n {
        c.init(&[plan.k(i), plan.l(i)]);
    }
    for wires in &extra {
        for chunk in wires.chunks(3) {
            c.init(chunk);
        }
    }
    for (j, &(lo, hi)) in blocks.iter().enumerate() {
        let [cpy, dup, q, q2] = [extra[j][0], extra[j][1], extra[j][2], extra[j][3]];
        // Snapshot the block carry-in before the ripple consumes it.
        c.f2g(plan.carry_in(lo), cpy, dup);
        for i in lo..hi {
            c.ig(plan.a(i), plan.b(i), plan.k(i), plan.l(i));
        }
        // Block propagate P = ∧ p_i via a Fredkin AND chain: each link
        // moves `acc ∧ p_i` onto a fresh zero ancilla.
        c.f2g(plan.b(lo), q, q2);
        let mut acc = q;
        for (t, i) in (lo + 1..hi).enumerate() {
            let link = extra[j][4 + t];
            c.fredkin(plan.b(i), acc, link);
            acc = link;
        }
        for i in lo..hi {
            c.ig(plan.b(i), plan.carry_in(i), plan.k(i), plan.l(i));
        }
        // Skip mux: when the whole block propagates, the ripple carry
        // out equals the snapshotted carry-in, so the swap is a
        // functional no-op — it models the hardware skip path (and its
        // fault sites) exactly.
        c.fredkin(acc, plan.k(hi - 1), cpy);
    }
    plan.roles(AdderKind::CarrySkip { block }, c)
}

fn cla(n: usize) -> Adder {
    // Wire plan: a_i = i, b_i = n+i, cin = 2n, then per bit the quintet
    // (g_i, y_i, u_i, v_i, m_i) at 2n+1+5i. The carry into bit i lives
    // on g_{i-1} after bit i-1's mux.
    let a = |i: usize| w(i as u32);
    let b = |i: usize| w((n + i) as u32);
    let cin = w(2 * n as u32);
    let quint = |i: usize, j: usize| w((2 * n + 1 + 5 * i + j) as u32);
    let (g, y, u, v, m) = (
        |i| quint(i, 0),
        |i| quint(i, 1),
        |i| quint(i, 2),
        |i| quint(i, 3),
        |i| quint(i, 4),
    );
    let carry_in = |i: usize| if i == 0 { cin } else { g(i - 1) };
    let mut c = Circuit::new(2 * n + 1 + 5 * n);
    for i in 0..n {
        c.init(&[g(i), y(i), u(i)]);
        c.init(&[v(i), m(i)]);
    }
    for i in 0..n {
        // (p, g) from one IG; two F2G fan-outs of the incoming carry;
        // the Fredkin mux computes carry_out = p ? carry_in : g on g_i.
        c.ig(a(i), b(i), g(i), y(i));
        c.f2g(carry_in(i), u(i), v(i));
        c.fredkin(b(i), g(i), v(i));
        c.f2g(u(i), b(i), m(i));
    }
    Adder {
        circuit: c,
        kind: AdderKind::Cla,
        width: n,
        a: (0..n).map(a).collect(),
        b: (0..n).map(b).collect(),
        cin,
        sum: (0..n).map(b).collect(),
        cout: g(n - 1),
    }
}

fn plain_ripple(n: usize) -> Adder {
    // a_i = i, b_i = n+i, cin = 2n, carry ancilla k_i = 2n+1+i.
    let a = |i: usize| w(i as u32);
    let b = |i: usize| w((n + i) as u32);
    let cin = w(2 * n as u32);
    let k = |i: usize| w((2 * n + 1 + i) as u32);
    let carry_in = |i: usize| if i == 0 { cin } else { k(i - 1) };
    let mut c = Circuit::new(3 * n + 1);
    for chunk in (0..n).collect::<Vec<_>>().chunks(3) {
        let wires: Vec<Wire> = chunk.iter().map(|&i| k(i)).collect();
        c.init(&wires);
    }
    for i in 0..n {
        c.toffoli(a(i), b(i), k(i)); // generate
        c.cnot(a(i), b(i)); // propagate
        c.toffoli(b(i), carry_in(i), k(i)); // carry out
        c.cnot(carry_in(i), b(i)); // sum
    }
    Adder {
        circuit: c,
        kind: AdderKind::PlainRipple,
        width: n,
        a: (0..n).map(a).collect(),
        b: (0..n).map(b).collect(),
        cin,
        sum: (0..n).map(b).collect(),
        cout: k(n - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KINDS: [AdderKind; 4] = [
        AdderKind::Ripple,
        AdderKind::CarrySkip { block: 2 },
        AdderKind::Cla,
        AdderKind::PlainRipple,
    ];

    #[test]
    fn every_kind_adds_exhaustively_at_small_widths() {
        for kind in KINDS {
            for width in 1..=3 {
                let adder = Adder::new(kind, width);
                for a in 0..(1u64 << width) {
                    for b in 0..(1u64 << width) {
                        for cin in [false, true] {
                            let (sum, cout) = adder.compute(a, b, cin);
                            let want = a + b + cin as u64;
                            assert_eq!(
                                sum | ((cout as u64) << width),
                                want,
                                "{} width {width}: {a}+{b}+{}",
                                kind.name(),
                                cin as u64
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn wider_adders_spot_check() {
        for kind in KINDS {
            let adder = Adder::new(kind, 16);
            for (a, b, cin) in [
                (0xffff, 0x0001, false),
                (0x1234, 0x0f0f, true),
                (0x8000, 0x8000, false),
                (0xffff, 0xffff, true),
            ] {
                let (sum, cout) = adder.compute(a, b, cin);
                let want = a + b + cin as u64;
                assert_eq!(sum | ((cout as u64) << 16), want, "{}", kind.name());
            }
        }
    }

    #[test]
    fn inits_form_a_prefix_and_parity_kinds_are_transparent() {
        for kind in KINDS {
            let adder = Adder::new(kind, 4);
            let first_gate = adder
                .circuit
                .ops()
                .iter()
                .position(|op| op.as_gate().is_some())
                .unwrap();
            assert!(
                adder.circuit.ops()[..first_gate]
                    .iter()
                    .all(|op| op.as_gate().is_none()),
                "{}: inits must precede all gates",
                kind.name()
            );
            let transparent = crate::checker::is_parity_transparent(&adder.circuit);
            assert_eq!(
                transparent,
                kind != AdderKind::PlainRipple,
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn gate_cost_ordering_is_stable() {
        let ops = |kind| Adder::new(kind, 8).circuit.len();
        assert!(ops(AdderKind::Ripple) < ops(AdderKind::CarrySkip { block: 4 }));
        assert!(ops(AdderKind::CarrySkip { block: 4 }) < ops(AdderKind::Cla));
    }

    #[test]
    #[should_panic(expected = "width must be at least 1")]
    fn zero_width_rejected() {
        Adder::new(AdderKind::Ripple, 0);
    }
}
