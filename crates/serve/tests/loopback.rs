//! End-to-end loopback tests: the streamed answer is byte-identical to
//! the offline replay, keep-alive connections serve many requests,
//! early disconnects cancel, concurrent jobs share the cache, and
//! shutdown drains.

mod common;

use common::{body_lines, read_framed};
use rft_analysis::experiment::CompileCache;
use rft_analysis::job::{run_job, CircuitSpec, JobRecord, JobSpec, NoiseSpec};
use rft_obs::Collector;
use rft_revsim::engine::{BackendKind, Estimator, WordWidth};
use rft_revsim::gate::Gate;
use rft_revsim::wire::w;
use rft_serve::http::decode_chunked;
use rft_serve::{Server, ServerConfig, ShutdownHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn start_server(threads: usize, threads_per_job: usize) -> (SocketAddr, ShutdownHandle) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        threads_per_job,
        cache_bytes: Some(64 * 1024 * 1024),
        drain_timeout: Duration::from_secs(3),
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let handle = server.shutdown_handle();
    std::thread::spawn(move || server.run().expect("accept loop"));
    (addr, handle)
}

fn spec(seed: u64, trials_per_round: u64, max_rounds: u32) -> JobSpec {
    JobSpec {
        circuit: CircuitSpec::Concat {
            level: 1,
            gate: Gate::Toffoli {
                controls: [w(0), w(1)],
                target: w(2),
            },
            cycles: 1,
        },
        noise: NoiseSpec::Uniform { g: 1.0 / 165.0 },
        seed,
        estimator: Estimator::Plain,
        backend: BackendKind::Auto,
        width: WordWidth::Auto,
        trials_per_round,
        max_rounds,
        target_rel_half_width: None,
        deadline_ms: None,
    }
}

fn post_job(addr: SocketAddr, record: &JobRecord) -> TcpStream {
    let body = serde_json::to_string(record).expect("record JSON");
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    write!(
        stream,
        "POST /jobs HTTP/1.1\r\ncontent-type: application/json\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .expect("request written");
    stream
}

/// Reads the full response and returns the NDJSON lines of the body.
fn read_stream_lines(mut stream: TcpStream) -> Vec<String> {
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text_head_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head terminator");
    let head = String::from_utf8_lossy(&response[..text_head_end]).to_string();
    assert!(head.starts_with("HTTP/1.1 200"), "status line: {head}");
    assert!(
        head.to_lowercase().contains("transfer-encoding: chunked"),
        "chunked response: {head}"
    );
    let body = decode_chunked(&response[text_head_end + 4..]).expect("well-formed chunks");
    let text = String::from_utf8(body).expect("UTF-8 NDJSON");
    text.lines().map(str::to_string).collect()
}

fn get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    write!(stream, "GET {path} HTTP/1.1\r\nconnection: close\r\n\r\n").expect("request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    String::from_utf8_lossy(&response).to_string()
}

fn stat_field(stats: &str, field: &str) -> u64 {
    let key = format!("\"{field}\":");
    let at = stats
        .find(&key)
        .unwrap_or_else(|| panic!("{field} in {stats}"));
    stats[at + key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric stat")
}

#[test]
fn streamed_final_is_byte_identical_to_offline_replay() {
    let (addr, handle) = start_server(4, 2);
    let record = JobRecord::new(spec(42, 4096, 3));

    let lines = read_stream_lines(post_job(addr, &record));
    assert_eq!(lines.len(), 4, "3 interval lines + 1 final: {lines:?}");
    for line in &lines[..3] {
        assert!(line.contains("\"kind\":\"interval\""), "line: {line}");
    }
    let served_final = lines.last().expect("final line");
    assert!(served_final.contains("\"kind\":\"final\""));

    // Offline replay: fresh cache, different thread count, no server.
    let offline =
        run_job(&CompileCache::new(), &Collector::disabled(), &record, 1).expect("offline replay");
    assert_eq!(
        served_final,
        &offline.to_line(),
        "served answer replays byte-identically offline"
    );
    handle.shutdown();
}

#[test]
fn bare_spec_bodies_are_accepted() {
    let (addr, handle) = start_server(2, 1);
    let s = spec(7, 1024, 1);
    let body = serde_json::to_string(&s).expect("spec JSON");
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    write!(
        stream,
        "POST /jobs HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .expect("request");
    let lines = read_stream_lines(stream);
    let offline = run_job(
        &CompileCache::new(),
        &Collector::disabled(),
        &JobRecord::new(s),
        2,
    )
    .expect("offline");
    assert_eq!(lines.last().expect("final"), &offline.to_line());
    handle.shutdown();
}

#[test]
fn detect_jobs_stream_coverage_intervals_and_replay() {
    use rft_detect::{AdderKind, TrialMode};

    let (addr, handle) = start_server(2, 1);
    // A detection-coverage job: the streamed interval is the retry/flag
    // rate of a parity-checked carry-lookahead adder.
    let mut s = spec(2025, 2048, 2);
    s.circuit = CircuitSpec::DetectAdder {
        width: 4,
        kind: AdderKind::Cla,
        mode: TrialMode::Detected,
    };
    s.noise = NoiseSpec::Uniform { g: 2e-3 };
    let record = JobRecord::new(s);

    let lines = read_stream_lines(post_job(addr, &record));
    assert_eq!(lines.len(), 3, "2 interval lines + 1 final: {lines:?}");
    for line in &lines[..2] {
        assert!(line.contains("\"kind\":\"interval\""), "line: {line}");
    }
    let served_final = lines.last().expect("final line");
    let offline =
        run_job(&CompileCache::new(), &Collector::disabled(), &record, 3).expect("offline replay");
    assert_eq!(
        served_final,
        &offline.to_line(),
        "served detect job replays byte-identically offline"
    );
    assert!(
        offline.result.estimate.failures > 0,
        "noise at this rate must trip the parity flag"
    );
    handle.shutdown();
}

#[test]
fn keep_alive_connection_serves_probes_and_jobs() {
    let (addr, handle) = start_server(2, 1);
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");

    // Probes and two full job streams, all on one connection.
    for _ in 0..2 {
        write!(stream, "GET /healthz HTTP/1.1\r\n\r\n").expect("request");
        let (head, body) = read_framed(&mut stream);
        assert!(head.starts_with("HTTP/1.1 200"), "head: {head}");
        assert!(
            head.to_lowercase().contains("connection: keep-alive"),
            "head: {head}"
        );
        assert!(String::from_utf8_lossy(&body).contains("\"status\":\"ok\""));
    }
    for seed in [555u64, 556] {
        let record = JobRecord::new(spec(seed, 2048, 2));
        let body = serde_json::to_string(&record).expect("record JSON");
        write!(
            stream,
            "POST /jobs HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .expect("request");
        let (head, resp) = read_framed(&mut stream);
        assert!(head.starts_with("HTTP/1.1 200"), "head: {head}");
        let offline = run_job(&CompileCache::new(), &Collector::disabled(), &record, 1)
            .expect("offline replay");
        assert_eq!(
            body_lines(&resp).last().expect("final"),
            &offline.to_line(),
            "keep-alive streamed job replays byte-identically"
        );
    }

    // All five requests rode one connection.
    let stats = get(addr, "/stats");
    assert!(stat_field(&stats, "requests") >= 5, "stats: {stats}");
    handle.shutdown();
}

#[test]
fn stats_report_pool_and_queue_gauges() {
    let (addr, handle) = start_server(2, 1);
    let stats = get(addr, "/stats");
    // The pool/queue gauges and overload counters are all present; the
    // stats request itself holds a worker, so at least one connection is
    // active.
    assert!(stat_field(&stats, "connections_active") >= 1, "{stats}");
    for field in [
        "queued_connections",
        "oldest_job_ms",
        "shed",
        "timeouts",
        "workers",
        "max_jobs",
    ] {
        let _ = stat_field(&stats, field);
    }
    assert_eq!(
        stat_field(&stats, "workers"),
        16,
        "default pool size: {stats}"
    );
    handle.shutdown();
}

#[test]
fn early_disconnect_cancels_the_job() {
    let (addr, handle) = start_server(2, 1);
    // A job that would run for a very long time: many small rounds.
    let record = JobRecord::new(spec(9, 65_536, 4096));
    let mut stream = post_job(addr, &record);

    // Read until the first interval line has definitely been sent.
    let mut seen = Vec::new();
    let mut buf = [0u8; 1024];
    let deadline = Instant::now() + Duration::from_secs(30);
    while !String::from_utf8_lossy(&seen).contains("\"kind\":\"interval\"") {
        assert!(Instant::now() < deadline, "no interval line within 30s");
        let n = stream.read(&mut buf).expect("stream data");
        assert!(n > 0, "stream ended before first interval");
        seen.extend_from_slice(&buf[..n]);
    }
    drop(stream); // disconnect mid-stream

    // The server notices at a round boundary: the job leaves the active
    // set and the early-disconnect counter bumps.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = get(addr, "/stats");
        if stat_field(&stats, "jobs_active") == 0 && stat_field(&stats, "early_disconnects") >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "job not cancelled after disconnect; stats: {stats}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown();
}

#[test]
fn concurrent_jobs_complete_and_share_the_cache() {
    let (addr, handle) = start_server(2, 1);
    let records: Vec<JobRecord> = (0..3)
        .map(|i| JobRecord::new(spec(100 + i, 2048, 2)))
        .collect();

    let join_handles: Vec<_> = records
        .iter()
        .cloned()
        .map(|record| std::thread::spawn(move || read_stream_lines(post_job(addr, &record))))
        .collect();
    for (record, join) in records.iter().zip(join_handles) {
        let lines = join.join().expect("client thread");
        let offline =
            run_job(&CompileCache::new(), &Collector::disabled(), record, 1).expect("offline");
        assert_eq!(lines.last().expect("final"), &offline.to_line());
    }

    // Same circuit at the same noise: one compile, the rest cache hits.
    let stats = get(addr, "/stats");
    assert_eq!(stat_field(&stats, "cache_programs"), 1, "stats: {stats}");
    assert_eq!(stat_field(&stats, "cache_engines"), 1, "stats: {stats}");
    assert!(stat_field(&stats, "cache_hits") >= 4, "stats: {stats}");
    handle.shutdown();
}

#[test]
fn shutdown_drains_and_stops_the_accept_loop() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        threads_per_job: 1,
        drain_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle();
    let run = std::thread::spawn(move || server.run());

    // Serve one request, then shut down.
    assert!(get(addr, "/healthz").contains("\"status\":\"ok\""));
    handle.shutdown();
    run.join().expect("run thread").expect("clean shutdown");

    // New jobs are refused once draining (connection fails or times out).
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    if let Ok(mut stream) = refused {
        // The listener may still be in the backlog window; the request
        // must at least never be served.
        stream
            .set_read_timeout(Some(Duration::from_millis(500)))
            .expect("timeout");
        let _ = write!(stream, "GET /healthz HTTP/1.1\r\n\r\n");
        let mut out = Vec::new();
        let _ = stream.read_to_end(&mut out);
        assert!(out.is_empty(), "draining server must not serve: {out:?}");
    }
}
