//! Deterministic fault injection against a live daemon: connection
//! floods, slow-loris headers, byte-dribble bodies, mid-stream
//! disconnects, deadline cancellations, and seeded garbage — every
//! scenario asserts the daemon answers cleanly (typed 4xx/503 or a
//! well-terminated stream), survives, and never grows threads past the
//! pool bound. Randomized cases derive from a fixed splitmix64 seed so
//! failures replay.

mod common;

use common::{body_lines, read_framed};
use rft_analysis::experiment::CompileCache;
use rft_analysis::job::{run_job, CircuitSpec, JobRecord, JobSpec, NoiseSpec};
use rft_obs::Collector;
use rft_revsim::engine::{BackendKind, Estimator, WordWidth};
use rft_revsim::gate::Gate;
use rft_revsim::wire::w;
use rft_serve::{Server, ServerConfig, ShutdownHandle};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// The harness seed; change it and every randomized scenario replays a
/// different (but still deterministic) schedule.
const CHAOS_SEED: u64 = 0x0DD5_EED5;

/// `splitmix64` — the same generator the job runner salts rounds with,
/// reused here so the chaos schedule is a pure function of the seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn start(config: ServerConfig) -> (SocketAddr, ShutdownHandle) {
    let server = Server::bind(config).expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let handle = server.shutdown_handle();
    std::thread::spawn(move || server.run().expect("accept loop"));
    (addr, handle)
}

fn spec(seed: u64, trials_per_round: u64, max_rounds: u32) -> JobSpec {
    JobSpec {
        circuit: CircuitSpec::Concat {
            level: 1,
            gate: Gate::Toffoli {
                controls: [w(0), w(1)],
                target: w(2),
            },
            cycles: 1,
        },
        noise: NoiseSpec::Uniform { g: 1.0 / 165.0 },
        seed,
        estimator: Estimator::Plain,
        backend: BackendKind::Auto,
        width: WordWidth::Auto,
        trials_per_round,
        max_rounds,
        target_rel_half_width: None,
        deadline_ms: None,
    }
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    stream
}

fn post_job(addr: SocketAddr, record: &JobRecord) -> TcpStream {
    let body = serde_json::to_string(record).expect("record JSON");
    let mut stream = connect(addr);
    write!(
        stream,
        "POST /jobs HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .expect("request written");
    stream
}

fn get(addr: SocketAddr, path: &str) -> (String, Vec<u8>) {
    let mut stream = connect(addr);
    write!(stream, "GET {path} HTTP/1.1\r\nconnection: close\r\n\r\n").expect("request");
    read_framed(&mut stream)
}

fn stat_field(stats: &str, field: &str) -> u64 {
    let key = format!("\"{field}\":");
    let at = stats
        .find(&key)
        .unwrap_or_else(|| panic!("{field} in {stats}"));
    stats[at + key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric stat")
}

/// Threads in this process right now (Linux); `None` elsewhere, which
/// downgrades the thread-bound assertions to no-ops.
fn thread_count() -> Option<usize> {
    std::fs::read_dir("/proc/self/task")
        .ok()
        .map(|entries| entries.count())
}

#[test]
fn connection_flood_sheds_cleanly_and_admitted_jobs_complete() {
    const CLIENTS: usize = 24;
    const WORKERS: usize = 2;
    let (addr, handle) = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        threads_per_job: 1,
        workers: WORKERS,
        accept_queue: 2,
        max_jobs: 2,
        drain_timeout: Duration::from_secs(3),
        ..ServerConfig::default()
    });
    // Give the pool a beat to spawn, then baseline the thread count
    // (pool + accept loop included).
    std::thread::sleep(Duration::from_millis(100));
    let before = thread_count();

    // Every client gets a distinct seed so each completed answer needs
    // its own replay check.
    let records: Vec<JobRecord> = (0..CLIENTS as u64)
        .map(|i| JobRecord::new(spec(7000 + i, 1 << 18, 2)))
        .collect();
    let clients: Vec<_> = records
        .iter()
        .cloned()
        .map(|record| {
            std::thread::spawn(move || {
                let mut stream = post_job(addr, &record);
                let (head, body) = read_framed(&mut stream);
                (head, body)
            })
        })
        .collect();

    // Mid-flood: the server must not have grown by per-connection
    // threads — only our own client threads are new.
    std::thread::sleep(Duration::from_millis(10));
    if let (Some(before), Some(during)) = (before, thread_count()) {
        assert!(
            during <= before + CLIENTS + 2,
            "server spawned per-connection threads: {before} -> {during}"
        );
    }

    let mut completed = 0usize;
    let mut shed = 0usize;
    for (record, client) in records.iter().zip(clients) {
        let (head, body) = client.join().expect("client thread");
        if head.starts_with("HTTP/1.1 200") {
            let lines = body_lines(&body);
            let offline = run_job(&CompileCache::new(), &Collector::disabled(), record, 1)
                .expect("offline replay");
            assert_eq!(
                lines.last().expect("final line"),
                &offline.to_line(),
                "admitted job replays byte-identically under flood"
            );
            completed += 1;
        } else {
            assert!(head.starts_with("HTTP/1.1 503"), "head: {head}");
            assert!(
                head.to_ascii_lowercase().contains("retry-after:"),
                "shed responses carry Retry-After: {head}"
            );
            shed += 1;
        }
    }
    assert_eq!(completed + shed, CLIENTS, "every client got an answer");
    assert!(completed >= 1, "some jobs must be admitted");
    assert!(
        shed >= 1,
        "a {CLIENTS}-client flood against {WORKERS} workers must shed"
    );
    let stats_body = String::from_utf8(get(addr, "/stats").1).expect("stats");
    assert!(
        stat_field(&stats_body, "shed") >= shed as u64,
        "stats: {stats_body}"
    );

    // After the flood the pool is back to its bound and the daemon is
    // healthy.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let settled = match (before, thread_count()) {
            (Some(before), Some(now)) => now <= before + 2,
            _ => true,
        };
        if settled {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "thread count did not settle: before {before:?}, now {:?}",
            thread_count()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let health = String::from_utf8(get(addr, "/healthz").1).expect("healthz");
    assert!(health.contains("\"status\":\"ok\""), "health: {health}");
    handle.shutdown();
}

#[test]
fn slow_loris_head_times_out_with_408() {
    let (addr, handle) = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        threads_per_job: 1,
        workers: 2,
        request_timeout: Duration::from_millis(300),
        drain_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    });
    let mut stream = connect(addr);
    // Dribble a plausible request head a few bytes at a time, never
    // finishing: each write resets a naive per-read timeout, but not the
    // total request deadline.
    let head = b"GET /healthz HTTP/1.1\r\nhost: chaos\r\nx-padding: aaaaaaaaaaaaaaaa\r\n";
    let started = Instant::now();
    for chunk in head.chunks(3) {
        if started.elapsed() > Duration::from_secs(1) || stream.write_all(chunk).is_err() {
            break; // server already gave up on us — expected
        }
        let _ = stream.flush();
        std::thread::sleep(Duration::from_millis(40));
    }
    let (head, _body) = read_framed(&mut stream);
    assert!(head.starts_with("HTTP/1.1 408"), "head: {head}");

    let stats = String::from_utf8(get(addr, "/stats").1).expect("stats");
    assert!(stat_field(&stats, "timeouts") >= 1, "stats: {stats}");
    let health = String::from_utf8(get(addr, "/healthz").1).expect("healthz");
    assert!(
        health.contains("\"status\":\"ok\""),
        "daemon survives loris"
    );
    handle.shutdown();
}

#[test]
fn dribbled_body_within_deadline_completes_and_replays() {
    let (addr, handle) = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        threads_per_job: 1,
        workers: 2,
        request_timeout: Duration::from_secs(10),
        drain_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    });
    let record = JobRecord::new(spec(4242, 4096, 2));
    let body = serde_json::to_string(&record).expect("record JSON");
    let mut stream = connect(addr);
    write!(
        stream,
        "POST /jobs HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .expect("head written");
    // Drip the body in seeded, irregular slices: a patient-but-slow
    // client is served, not punished.
    let mut state = CHAOS_SEED;
    let mut sent = 0usize;
    while sent < body.len() {
        state = splitmix64(state);
        let step = (1 + state as usize % 37).min(body.len() - sent);
        stream
            .write_all(&body.as_bytes()[sent..sent + step])
            .expect("dribble slice");
        stream.flush().expect("flush");
        sent += step;
        std::thread::sleep(Duration::from_millis(5));
    }
    let (head, resp_body) = read_framed(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "head: {head}");
    let lines = body_lines(&resp_body);
    let offline =
        run_job(&CompileCache::new(), &Collector::disabled(), &record, 1).expect("offline replay");
    assert_eq!(lines.last().expect("final"), &offline.to_line());
    handle.shutdown();
}

#[test]
fn dribbled_body_that_stalls_times_out_with_408() {
    let (addr, handle) = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        threads_per_job: 1,
        workers: 2,
        request_timeout: Duration::from_millis(300),
        drain_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    });
    let mut stream = connect(addr);
    write!(
        stream,
        "POST /jobs HTTP/1.1\r\nconnection: close\r\ncontent-length: 10000\r\n\r\n{{\"a"
    )
    .expect("partial body");
    stream.flush().expect("flush");
    // ...and never send the rest.
    let (head, _body) = read_framed(&mut stream);
    assert!(head.starts_with("HTTP/1.1 408"), "head: {head}");
    let health = String::from_utf8(get(addr, "/healthz").1).expect("healthz");
    assert!(health.contains("\"status\":\"ok\""), "daemon survives");
    handle.shutdown();
}

#[test]
fn mid_stream_disconnect_frees_the_only_worker() {
    use std::io::Read;
    // One worker: if a disconnect leaked it, the follow-up job would
    // never be served.
    let (addr, handle) = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        threads_per_job: 1,
        workers: 1,
        accept_queue: 4,
        max_jobs: 1,
        drain_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    });
    // A long job: many rounds, cancelled by our disconnect.
    let record = JobRecord::new(spec(9, 65_536, 4096));
    let mut stream = post_job(addr, &record);
    let mut seen = Vec::new();
    let mut buf = [0u8; 1024];
    let deadline = Instant::now() + Duration::from_secs(30);
    while !String::from_utf8_lossy(&seen).contains("\"kind\":\"interval\"") {
        assert!(Instant::now() < deadline, "no interval line within 30s");
        let n = stream.read(&mut buf).expect("stream data");
        assert!(n > 0, "stream ended before first interval");
        seen.extend_from_slice(&buf[..n]);
    }
    drop(stream); // disconnect mid-stream

    // The worker notices at the next round boundary and serves the next
    // job to completion.
    let quick = JobRecord::new(spec(10, 4096, 1));
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut stream = post_job(addr, &quick);
        let (head, body) = read_framed(&mut stream);
        if head.starts_with("HTTP/1.1 200") {
            let offline = run_job(&CompileCache::new(), &Collector::disabled(), &quick, 1)
                .expect("offline replay");
            assert_eq!(body_lines(&body).last().expect("final"), &offline.to_line());
            break;
        }
        // Still draining the cancelled job: admission says retry.
        assert!(head.starts_with("HTTP/1.1 503"), "head: {head}");
        assert!(
            Instant::now() < deadline,
            "worker never freed after disconnect"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let stats = String::from_utf8(get(addr, "/stats").1).expect("stats");
    assert!(stat_field(&stats, "early_disconnects") >= 1, "{stats}");
    handle.shutdown();
}

#[test]
fn deadline_exceeded_jobs_stream_a_cancelled_line() {
    let (addr, handle) = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        threads_per_job: 1,
        workers: 2,
        drain_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    });
    // A 1 ms deadline against multi-millisecond rounds: round 1 streams
    // its interval, then the boundary check cancels.
    let mut s = spec(31337, 1 << 18, 64);
    s.deadline_ms = Some(1);
    let mut stream = post_job(addr, &JobRecord::new(s));
    let (head, body) = read_framed(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "head: {head}");
    let lines = body_lines(&body);
    assert!(lines.len() >= 2, "interval(s) then cancelled: {lines:?}");
    let last = lines.last().expect("last line");
    assert!(last.contains("\"kind\":\"cancelled\""), "last: {last}");
    assert!(last.contains("deadline exceeded"), "last: {last}");
    for line in &lines[..lines.len() - 1] {
        assert!(line.contains("\"kind\":\"interval\""), "line: {line}");
    }

    // The terminator can land at the client before the server's
    // bookkeeping runs; poll briefly.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = String::from_utf8(get(addr, "/stats").1).expect("stats");
        if stat_field(&stats, "timeouts") >= 1 && stat_field(&stats, "jobs_active") == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "deadline cancel not recorded; stats: {stats}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown();
}

#[test]
fn server_side_deadline_cap_applies_without_client_deadline() {
    let (addr, handle) = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        threads_per_job: 1,
        workers: 2,
        job_deadline: Some(Duration::from_millis(1)),
        drain_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    });
    let record = JobRecord::new(spec(31338, 1 << 18, 64));
    let mut stream = post_job(addr, &record);
    let (head, body) = read_framed(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "head: {head}");
    let last = body_lines(&body).pop().expect("last line");
    assert!(last.contains("\"kind\":\"cancelled\""), "last: {last}");
    handle.shutdown();
}

#[test]
fn seeded_garbage_never_kills_the_daemon() {
    let (addr, handle) = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        threads_per_job: 1,
        workers: 2,
        request_timeout: Duration::from_millis(500),
        drain_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    });
    let valid = {
        let record = JobRecord::new(spec(1, 4096, 1));
        let body = serde_json::to_string(&record).expect("record JSON");
        format!(
            "POST /jobs HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{}",
            body.len(),
            body
        )
    };
    let mut state = CHAOS_SEED ^ 0xBAD_F00D;
    for trial in 0..24 {
        state = splitmix64(state);
        let mut stream = connect(addr);
        match state % 3 {
            // A random prefix of a valid request, then a hard close.
            0 => {
                let cut = (splitmix64(state ^ 1) as usize) % valid.len();
                let _ = stream.write_all(&valid.as_bytes()[..cut]);
                drop(stream);
            }
            // Random bytes (seeded), then wait for the 4xx.
            1 => {
                let len = 1 + (splitmix64(state ^ 2) as usize) % 64;
                let garbage: Vec<u8> = (0..len)
                    .map(|i| (splitmix64(state ^ (i as u64) << 8) & 0xFF) as u8)
                    .collect();
                if stream.write_all(&garbage).is_ok() {
                    let _ = stream.shutdown(std::net::Shutdown::Write);
                    // Any framed or empty answer is fine; no panic, no hang.
                    let mut out = Vec::new();
                    let _ = std::io::Read::read_to_end(&mut stream, &mut out);
                }
            }
            // A valid request truncated mid-body, write half closed.
            _ => {
                let head_end = valid.find("\r\n\r\n").expect("head") + 4;
                let cut = head_end + (splitmix64(state ^ 3) as usize) % (valid.len() - head_end);
                let _ = stream.write_all(&valid.as_bytes()[..cut]);
                let _ = stream.shutdown(std::net::Shutdown::Write);
                let mut out = Vec::new();
                let _ = std::io::Read::read_to_end(&mut stream, &mut out);
                if !out.is_empty() {
                    let head = String::from_utf8_lossy(&out);
                    assert!(
                        head.starts_with("HTTP/1.1 4") || head.starts_with("HTTP/1.1 5"),
                        "trial {trial}: truncated body must 4xx/5xx: {head}"
                    );
                }
            }
        }
    }
    // After the storm: healthy, and a real job still round-trips.
    let health = String::from_utf8(get(addr, "/healthz").1).expect("healthz");
    assert!(health.contains("\"status\":\"ok\""), "health: {health}");
    let record = JobRecord::new(spec(2, 4096, 1));
    let mut stream = post_job(addr, &record);
    let (head, body) = read_framed(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "head: {head}");
    let offline =
        run_job(&CompileCache::new(), &Collector::disabled(), &record, 1).expect("offline replay");
    assert_eq!(body_lines(&body).last().expect("final"), &offline.to_line());
    handle.shutdown();
}
