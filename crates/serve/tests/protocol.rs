//! Protocol-layer robustness: the parser never panics on any byte
//! sequence, and the live server answers garbage with clean 4xx — then
//! keeps serving.

use proptest::prelude::*;
use rft_serve::http::{read_request, Limits};
use rft_serve::{Server, ServerConfig};
use std::io::{Cursor, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn tiny_limits() -> Limits {
    Limits {
        max_head_bytes: 1024,
        max_body_bytes: 4096,
    }
}

proptest! {
    /// Arbitrary bytes: parse returns Ok or a typed error — never panics.
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = read_request(&mut Cursor::new(&bytes), &tiny_limits());
    }

    /// A valid request truncated at any byte boundary parses or fails
    /// cleanly — and a truncation strictly inside the body or head is
    /// always an error, never a silent success.
    #[test]
    fn truncated_requests_fail_cleanly(cut in 0usize..64) {
        let full = b"POST /jobs HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello";
        let cut = cut.min(full.len());
        let result = read_request(&mut Cursor::new(&full[..cut]), &tiny_limits());
        if cut < full.len() {
            prop_assert!(result.is_err(), "truncated request must not parse");
        } else {
            prop_assert!(result.is_ok());
        }
    }

    /// Declared lengths past the limit are rejected up front with 413.
    #[test]
    fn oversized_declared_bodies_reject(extra in 1usize..1_000_000) {
        let declared = tiny_limits().max_body_bytes + extra;
        let head = format!("POST /jobs HTTP/1.1\r\ncontent-length: {declared}\r\n\r\n");
        let err = read_request(&mut Cursor::new(head.as_bytes()), &tiny_limits())
            .expect_err("over-limit body must reject");
        prop_assert_eq!(err.status(), 413);
    }

    /// Random ASCII header soup: any parse failure surfaces as a 4xx/5xx
    /// status the server can answer with.
    #[test]
    fn malformed_heads_map_to_http_statuses(
        soup in prop::collection::vec(32u8..127, 0..200),
    ) {
        let mut bytes = soup.clone();
        bytes.extend_from_slice(b"\r\n\r\n");
        if let Err(e) = read_request(&mut Cursor::new(&bytes), &tiny_limits()) {
            let status = e.status();
            prop_assert!((400..=599).contains(&status), "status {status}");
        }
    }
}

// ---------------------------------------------------------------------------
// Live-server robustness
// ---------------------------------------------------------------------------

fn start_server() -> (SocketAddr, rft_serve::ShutdownHandle) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        threads_per_job: 1,
        drain_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let handle = server.shutdown_handle();
    std::thread::spawn(move || server.run().expect("accept loop"));
    (addr, handle)
}

/// One raw request/response exchange (half-close after writing).
fn exchange(addr: SocketAddr, raw: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream.write_all(raw).expect("request written");
    // Best-effort half-close: the server may already have answered and
    // closed (even RST on pathological inputs), which makes this fail.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    response
}

fn status_of(response: &[u8]) -> u16 {
    let line = response.split(|&b| b == b'\r').next().unwrap_or_default();
    let text = std::str::from_utf8(line).expect("ASCII status line");
    text.split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code")
}

#[test]
fn live_server_answers_garbage_with_4xx_and_survives() {
    let (addr, handle) = start_server();
    let cases: &[&[u8]] = &[
        b"\x00\x01\x02\x03\xff\xfe\r\n\r\n",
        b"GARBAGE\r\n\r\n",
        b"GET / HTTP/9.9\r\n\r\n",
        b"POST /jobs HTTP/1.1\r\ncontent-length: 3\r\n\r\n{",
        b"POST /jobs HTTP/1.1\r\ncontent-length: 12\r\n\r\nnot json here",
        b"POST /jobs HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n",
        b"DELETE /jobs HTTP/1.1\r\n\r\n",
        b"GET /no/such/path HTTP/1.1\r\n\r\n",
    ];
    for raw in cases {
        let response = exchange(addr, raw);
        assert!(!response.is_empty(), "server answered: {raw:?}");
        let status = status_of(&response);
        assert!(
            (400..=599).contains(&status),
            "garbage maps to an error status, got {status} for {raw:?}"
        );
    }
    // Truncated-JSON job body: parses as HTTP, rejects as JSON.
    let response = exchange(
        addr,
        b"POST /jobs HTTP/1.1\r\ncontent-length: 9\r\n\r\n{\"spec\": ",
    );
    assert_eq!(status_of(&response), 400);

    // The server is still alive and healthy after all of the above.
    let response = exchange(addr, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert_eq!(status_of(&response), 200);
    let text = String::from_utf8_lossy(&response).to_string();
    assert!(text.contains("\"status\":\"ok\""), "healthz body: {text}");
    handle.shutdown();
}

#[test]
fn oversized_body_gets_413_over_the_wire() {
    let (addr, handle) = start_server();
    let huge = ServerConfig::default().limits.max_body_bytes + 1;
    let head = format!("POST /jobs HTTP/1.1\r\ncontent-length: {huge}\r\n\r\n");
    let response = exchange(addr, head.as_bytes());
    assert_eq!(status_of(&response), 413);
    handle.shutdown();
}

#[test]
fn semantically_invalid_job_gets_400_with_reason() {
    let (addr, handle) = start_server();
    // Parses as a JobSpec but fails validation: level 0.
    let body = r#"{"circuit":{"Concat":{"level":0,"gate":{"Toffoli":{"controls":[0,1],"target":2}},"cycles":1}},"noise":{"Uniform":{"g":0.01}},"seed":1,"estimator":"Plain","backend":"Auto","width":"Auto","trials_per_round":64,"max_rounds":1,"target_rel_half_width":null}"#;
    let raw = format!(
        "POST /jobs HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let response = exchange(addr, raw.as_bytes());
    assert_eq!(status_of(&response), 400);
    let text = String::from_utf8_lossy(&response).to_string();
    assert!(text.contains("level"), "reason names the bad field: {text}");
    handle.shutdown();
}
