//! Shared test-side HTTP client: framed reads that work on keep-alive
//! connections (where `read_to_end` would block until the idle timeout).

use std::io::Read;
use std::net::TcpStream;

/// Reads one framed response without consuming past it: head, then a
/// `Content-Length` body or chunked body to the zero chunk. Returns
/// `(head, body)`. Panics on malformed framing — tests want loud
/// failures.
pub fn read_framed(stream: &mut TcpStream) -> (String, Vec<u8>) {
    let head = read_until(stream, b"\r\n\r\n");
    let head = String::from_utf8(head).expect("UTF-8 head");
    let lower = head.to_ascii_lowercase();
    let mut body = Vec::new();
    if lower.contains("transfer-encoding: chunked") {
        loop {
            let size_line = read_until(stream, b"\r\n");
            let size_str = std::str::from_utf8(&size_line[..size_line.len() - 2])
                .expect("chunk size UTF-8")
                .trim()
                .to_string();
            let size = usize::from_str_radix(&size_str, 16).expect("hex chunk size");
            if size == 0 {
                let crlf = read_exact(stream, 2);
                assert_eq!(crlf, b"\r\n", "terminating chunk CRLF");
                break;
            }
            let chunk = read_exact(stream, size + 2);
            assert_eq!(&chunk[size..], b"\r\n", "chunk CRLF");
            body.extend_from_slice(&chunk[..size]);
        }
    } else if let Some(at) = lower.find("content-length:") {
        let rest = &lower[at + "content-length:".len()..];
        let len: usize = rest
            .split("\r\n")
            .next()
            .expect("header line")
            .trim()
            .parse()
            .expect("numeric content-length");
        body = read_exact(stream, len);
    }
    (head, body)
}

/// The NDJSON lines of a framed body.
pub fn body_lines(body: &[u8]) -> Vec<String> {
    String::from_utf8(body.to_vec())
        .expect("UTF-8 NDJSON")
        .lines()
        .map(str::to_string)
        .collect()
}

fn read_until(stream: &mut TcpStream, terminator: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut byte = [0u8; 1];
    while !out.ends_with(terminator) {
        let n = stream.read(&mut byte).expect("read byte");
        assert!(n > 0, "EOF before terminator; got {:?}", out);
        out.push(byte[0]);
        assert!(out.len() < 1 << 20, "unbounded frame");
    }
    out
}

fn read_exact(stream: &mut TcpStream, len: usize) -> Vec<u8> {
    let mut buf = vec![0u8; len];
    stream.read_exact(&mut buf).expect("framed read");
    buf
}
