//! A minimal, allocation-bounded HTTP/1.1 server protocol layer.
//!
//! The daemon speaks just enough HTTP for `curl` and any stock client:
//! request-line + headers + `Content-Length` bodies in, fixed-length or
//! `Transfer-Encoding: chunked` responses out, HTTP/1.1 keep-alive
//! connection reuse (the parser computes [`Request::keep_alive`]; the
//! writers take [`ResponseOpts`]). Everything is hand-rolled on
//! `std::io` — the build environment is offline, so no HTTP dependency
//! is available (or needed: the grammar subset below is ~100 lines).
//!
//! **Robustness contract** (pinned by the proptest suite in
//! `tests/protocol.rs`): [`read_request`] never panics on any byte
//! sequence — malformed request lines, truncated bodies, oversized heads
//! or bodies, and non-UTF-8 all map to typed [`HttpError`]s that the
//! server turns into clean 4xx responses.

use std::io::{self, Read, Write};

/// Parsing limits: every buffer the parser grows is bounded up front.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes of request body.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 256 * 1024,
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (path + optional query).
    pub path: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the client may reuse the connection: HTTP/1.1 unless it
    /// sent `Connection: close`, HTTP/1.0 only with
    /// `Connection: keep-alive`.
    pub keep_alive: bool,
}

impl Request {
    /// The first value of lowercased header `name`, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. [`HttpError::status`] maps each to
/// the response the server sends before closing the connection.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed before a full request arrived.
    Closed,
    /// A read timed out before a full request arrived (slow-loris heads,
    /// byte-dribble bodies, or a stalled peer).
    Timeout,
    /// Transport error.
    Io(io::Error),
    /// Grammar violation: bad request line, header, or length field.
    Malformed(&'static str),
    /// Head grew past [`Limits::max_head_bytes`].
    HeadTooLarge,
    /// Declared `Content-Length` past [`Limits::max_body_bytes`].
    BodyTooLarge,
    /// The client sent `Transfer-Encoding` (unsupported for requests).
    UnsupportedEncoding,
}

impl HttpError {
    /// The HTTP status code this error answers with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Closed | HttpError::Io(_) => 400,
            HttpError::Timeout => 408,
            HttpError::Malformed(_) => 400,
            HttpError::HeadTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::UnsupportedEncoding => 501,
        }
    }

    /// A short client-facing reason.
    pub fn reason(&self) -> &'static str {
        match self {
            HttpError::Closed => "connection closed mid-request",
            HttpError::Timeout => "request timed out",
            HttpError::Io(_) => "read error",
            HttpError::Malformed(m) => m,
            HttpError::HeadTooLarge => "request head too large",
            HttpError::BodyTooLarge => "request body too large",
            HttpError::UnsupportedEncoding => "request transfer-encoding unsupported",
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        if is_timeout(&e) {
            HttpError::Timeout
        } else {
            HttpError::Io(e)
        }
    }
}

/// Whether an I/O error is a read/write timeout (both kinds appear
/// depending on platform: `WouldBlock` on Unix socket timeouts,
/// `TimedOut` elsewhere and from [`crate::server`]'s deadline wrapper).
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one request from `r` under `limits`.
///
/// Generic over [`Read`] so the proptest suite can drive the parser from
/// in-memory byte slices; the server passes a `TcpStream` with a read
/// timeout installed.
///
/// # Errors
///
/// Any malformed, truncated, or over-limit input returns an
/// [`HttpError`]; this function never panics.
pub fn read_request<R: Read>(r: &mut R, limits: &Limits) -> Result<Request, HttpError> {
    let head = read_head(r, limits)?;
    let head_str =
        std::str::from_utf8(&head).map_err(|_| HttpError::Malformed("head is not UTF-8"))?;
    let mut lines = head_str.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default();
    let path = parts.next().ok_or(HttpError::Malformed("missing path"))?;
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(HttpError::Malformed("extra tokens in request line"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed("bad method"));
    }
    if !path.starts_with('/') {
        return Err(HttpError::Malformed("path must start with '/'"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // trailing empty split after final CRLF
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without ':'"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed("bad header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut req = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
        keep_alive: false,
    };
    let connection = req.header("connection").map(str::to_ascii_lowercase);
    req.keep_alive = match version {
        "HTTP/1.0" => connection.as_deref() == Some("keep-alive"),
        _ => connection.as_deref() != Some("close"),
    };
    if req.header("transfer-encoding").is_some() {
        return Err(HttpError::UnsupportedEncoding);
    }
    let content_length = match req.header("content-length") {
        None => 0usize,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed("bad content-length"))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }
    req.body = read_body(r, content_length)?;
    Ok(req)
}

/// Reads bytes until the `\r\n\r\n` head terminator (exclusive),
/// enforcing the head limit. Reads one byte at a time — heads are small
/// and this must not consume body bytes.
fn read_head<R: Read>(r: &mut R, limits: &Limits) -> Result<Vec<u8>, HttpError> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => return Err(HttpError::Closed),
            Ok(_) => head.push(byte[0]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
        if head.ends_with(b"\r\n\r\n") {
            head.truncate(head.len() - 4);
            return Ok(head);
        }
        if head.len() > limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge);
        }
    }
}

/// Reads an already-limit-checked body of `len` bytes. The buffer grows
/// with the bytes that actually arrive (8 KiB steps) instead of being
/// sized to the advertised length up front, so a peer that declares a
/// large body and dribbles — or never sends — costs one small allocation,
/// not `Content-Length` bytes.
fn read_body<R: Read>(r: &mut R, len: usize) -> Result<Vec<u8>, HttpError> {
    const STEP: usize = 8 * 1024;
    let mut body = Vec::with_capacity(len.min(STEP));
    let mut chunk = [0u8; STEP];
    while body.len() < len {
        let want = (len - body.len()).min(STEP);
        match r.read(&mut chunk[..want]) {
            Ok(0) => return Err(HttpError::Closed),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(body)
}

/// The standard reason phrase of `status` (subset this server sends).
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Per-response header options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResponseOpts {
    /// `Connection: keep-alive` instead of `Connection: close`.
    pub keep_alive: bool,
    /// Adds `Retry-After: <seconds>` (shed/overload responses).
    pub retry_after_s: Option<u32>,
}

impl ResponseOpts {
    /// Options for a connection that stays open afterwards.
    pub fn keep_alive() -> Self {
        ResponseOpts {
            keep_alive: true,
            retry_after_s: None,
        }
    }

    fn connection(&self) -> &'static str {
        if self.keep_alive {
            "keep-alive"
        } else {
            "close"
        }
    }

    fn extra_headers(&self) -> String {
        match self.retry_after_s {
            Some(s) => format!("retry-after: {s}\r\n"),
            None => String::new(),
        }
    }
}

/// Writes a complete fixed-length response with explicit header options.
///
/// # Errors
///
/// Propagates transport errors (a closed peer is not an error the caller
/// can act on beyond dropping the connection).
pub fn write_response_opts<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    opts: ResponseOpts,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n{}connection: {}\r\n\r\n",
        status,
        reason_phrase(status),
        content_type,
        body.len(),
        opts.extra_headers(),
        opts.connection(),
    )?;
    w.write_all(body)?;
    w.flush()
}

/// Writes a complete fixed-length `Connection: close` response.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write_response_opts(w, status, content_type, body, ResponseOpts::default())
}

/// Writes a JSON error body `{"error": reason}` with `status` and
/// explicit header options.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_error_opts<W: Write>(
    w: &mut W,
    status: u16,
    reason: &str,
    opts: ResponseOpts,
) -> io::Result<()> {
    let body = format!(
        "{{\"error\":{}}}",
        serde_json::to_string(reason).unwrap_or_else(|_| "\"error\"".to_string())
    );
    write_response_opts(w, status, "application/json", body.as_bytes(), opts)
}

/// Writes a JSON error body `{"error": reason}` with `status`, closing.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_error<W: Write>(w: &mut W, status: u16, reason: &str) -> io::Result<()> {
    write_error_opts(w, status, reason, ResponseOpts::default())
}

/// A `Transfer-Encoding: chunked` response writer: one [`Self::send`]
/// per NDJSON line, [`Self::finish`] for the terminating chunk. A send
/// failing means the client went away — the caller cancels the job.
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    w: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the status line + headers with explicit connection
    /// semantics and returns the chunk writer.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn start_opts(
        mut w: W,
        status: u16,
        content_type: &str,
        opts: ResponseOpts,
    ) -> io::Result<Self> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ntransfer-encoding: chunked\r\n{}connection: {}\r\n\r\n",
            status,
            reason_phrase(status),
            content_type,
            opts.extra_headers(),
            opts.connection(),
        )?;
        w.flush()?;
        Ok(ChunkedWriter { w })
    }

    /// Writes the status line + headers (`Connection: close`) and
    /// returns the chunk writer.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn start(w: W, status: u16, content_type: &str) -> io::Result<Self> {
        Self::start_opts(w, status, content_type, ResponseOpts::default())
    }

    /// Sends one chunk (the daemon sends exactly one JSON line, newline
    /// included, per chunk) and flushes so the client sees it *now*.
    ///
    /// # Errors
    ///
    /// Propagates transport errors — the signal that the client
    /// disconnected early.
    pub fn send(&mut self, chunk: &[u8]) -> io::Result<()> {
        if chunk.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        write!(self.w, "{:x}\r\n", chunk.len())?;
        self.w.write_all(chunk)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Sends the terminating zero chunk.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn finish(mut self) -> io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

/// Parses a complete chunked-encoded body back into the concatenated
/// payload — the client-side half, used by the loopback tests and kept
/// here so the encoder and decoder stay in one reviewed place.
///
/// # Errors
///
/// Returns a description of the first grammar violation.
pub fn decode_chunked(mut data: &[u8]) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    loop {
        let line_end = find_crlf(data).ok_or("missing chunk-size CRLF")?;
        let size_str =
            std::str::from_utf8(&data[..line_end]).map_err(|_| "chunk size not UTF-8")?;
        // Ignore chunk extensions (";..." suffix) per RFC 9112.
        let size_str = size_str.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_str, 16).map_err(|_| "bad chunk size")?;
        data = &data[line_end + 2..];
        if size == 0 {
            return Ok(out);
        }
        if data.len() < size + 2 {
            return Err("truncated chunk".into());
        }
        out.extend_from_slice(&data[..size]);
        if &data[size..size + 2] != b"\r\n" {
            return Err("chunk data not CRLF-terminated".into());
        }
        data = &data[size + 2..];
    }
}

fn find_crlf(data: &[u8]) -> Option<usize> {
    data.windows(2).position(|w| w == b"\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(bytes), &Limits::default())
    }

    #[test]
    fn parses_a_get() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n").expect("valid");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /jobs HTTP/1.1\r\ncontent-length: 4\r\n\r\n{\"a\"").expect("valid");
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn rejects_bad_grammar() {
        assert!(parse(b"").is_err());
        assert!(parse(b"GET\r\n\r\n").is_err());
        assert!(parse(b"GET noslash HTTP/1.1\r\n\r\n").is_err());
        assert!(parse(b"GET / HTTP/2.0\r\n\r\n").is_err());
        assert!(parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").is_err());
        assert!(parse(b"POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n").is_err());
    }

    #[test]
    fn rejects_oversized_body_without_reading_it() {
        let err = parse(b"POST / HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn rejects_truncated_body() {
        let err = parse(b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort").unwrap_err();
        assert!(matches!(err, HttpError::Closed));
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        let req = parse(b"GET / HTTP/1.1\r\n\r\n").expect("valid");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        let req = parse(b"GET / HTTP/1.1\r\nconnection: close\r\n\r\n").expect("valid");
        assert!(!req.keep_alive);
        let req = parse(b"GET / HTTP/1.1\r\nconnection: Close\r\n\r\n").expect("valid");
        assert!(!req.keep_alive, "connection value is case-insensitive");
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").expect("valid");
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
        let req = parse(b"GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n").expect("valid");
        assert!(req.keep_alive);
    }

    #[test]
    fn timeouts_map_to_408() {
        struct Stall;
        impl Read for Stall {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::TimedOut, "stalled"))
            }
        }
        let err = read_request(&mut Stall, &Limits::default()).unwrap_err();
        assert!(matches!(err, HttpError::Timeout), "got {err:?}");
        assert_eq!(err.status(), 408);

        // A dribbled body that stalls times out too, not 400.
        struct StallAfter(Vec<u8>, usize);
        impl Read for StallAfter {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "stalled"));
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let head = b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nab".to_vec();
        let err = read_request(&mut StallAfter(head, 0), &Limits::default()).unwrap_err();
        assert_eq!(err.status(), 408, "got {err:?}");
    }

    #[test]
    fn response_opts_control_connection_and_retry_after() {
        let mut buf = Vec::new();
        write_response_opts(
            &mut buf,
            503,
            "application/json",
            b"{}",
            ResponseOpts {
                keep_alive: false,
                retry_after_s: Some(2),
            },
        )
        .expect("write");
        let text = String::from_utf8(buf).expect("ascii");
        assert!(text.contains("retry-after: 2\r\n"), "head: {text}");
        assert!(text.contains("connection: close\r\n"), "head: {text}");

        let mut buf = Vec::new();
        write_response_opts(
            &mut buf,
            200,
            "application/json",
            b"{}",
            ResponseOpts::keep_alive(),
        )
        .expect("write");
        let text = String::from_utf8(buf).expect("ascii");
        assert!(text.contains("connection: keep-alive\r\n"), "head: {text}");
        assert!(!text.contains("retry-after"), "head: {text}");
    }

    #[test]
    fn chunked_round_trip() {
        let mut buf = Vec::new();
        {
            let mut w = ChunkedWriter::start(&mut buf, 200, "application/x-ndjson").expect("start");
            w.send(b"{\"kind\":\"interval\"}\n").expect("send");
            w.send(b"{\"kind\":\"final\"}\n").expect("send");
            w.finish().expect("finish");
        }
        let head_end = buf
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("head terminator")
            + 4;
        let body = decode_chunked(&buf[head_end..]).expect("decode");
        assert_eq!(body, b"{\"kind\":\"interval\"}\n{\"kind\":\"final\"}\n");
    }
}
