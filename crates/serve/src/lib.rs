//! # rft-serve — estimation-as-a-service for the reproduction
//!
//! A long-running daemon that accepts logical-error-rate estimation jobs
//! over a minimal HTTP/1.1 + JSON protocol (hand-rolled on
//! `std::net::TcpListener` — the build is offline, so no HTTP or async
//! dependency exists) and streams confidence intervals back as estimator
//! rounds complete. The pieces:
//!
//! - [`http`] — the allocation-bounded request parser (never panics on
//!   any byte sequence; proptest-pinned), keep-alive-aware fixed and
//!   chunked response writers, and the chunked decoder the tests reuse;
//! - [`pool`] — the bounded accept queue behind the fixed worker pool:
//!   overload fills the queue and sheds with `503` + `Retry-After`
//!   instead of spawning unbounded threads;
//! - [`fair`] — the FIFO-ticketed global [`ThreadBudget`](fair::ThreadBudget):
//!   jobs hold worker threads per *round*, not per job, so concurrent
//!   jobs interleave round-robin;
//! - [`server`] — routing (`GET /healthz`, `GET /stats`, `POST /jobs`),
//!   HTTP/1.1 keep-alive connection handling with request/idle
//!   timeouts, admission control over concurrent jobs, per-job
//!   wall-clock deadlines (cancelled jobs end with a clean
//!   `"cancelled"` line), the per-round streaming loop over
//!   [`run_job_streaming`](rft_analysis::job::run_job_streaming), early
//!   disconnect cancellation, and two-phase graceful drain.
//!
//! Jobs share one process-wide
//! [`CompileCache`](rft_analysis::experiment::CompileCache) bounded in
//! bytes by the cost-based GreedyDual-Size LRU
//! ([`CostLru`](rft_analysis::cache::CostLru)), and every served answer
//! embeds its [`JobRecord`](rft_analysis::job::JobRecord) so
//! `repro replay job.json` reproduces the final line byte-identically
//! offline. Determinism, protocol robustness, overload/fault handling,
//! and the replay equality are pinned by `tests/loopback.rs`,
//! `tests/protocol.rs`, `tests/chaos.rs`, and the `serve_smoke.py` /
//! `serve_chaos.py` scripts in CI.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fair;
pub mod http;
pub mod pool;
pub mod server;

pub use server::{Server, ServerConfig, ShutdownHandle};
