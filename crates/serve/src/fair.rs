//! The global thread budget and its round-robin fairness discipline.
//!
//! The daemon runs every job's Monte-Carlo rounds on a fixed process-wide
//! budget of worker threads ([`ThreadBudget`]). A job does **not** hold
//! its threads for its whole lifetime: it acquires a permit *per round*
//! and re-queues between rounds. Because the budget is a strict FIFO
//! ticket lock — waiters are served in arrival order, and a released
//! permit always goes to the earliest waiter — `k` concurrent jobs
//! interleave their rounds round-robin instead of the first arrival
//! monopolizing the budget until it converges. A ten-minute rare-event
//! job and a ten-millisecond smoke job share the daemon gracefully: the
//! smoke job waits at most one round, not one job.
//!
//! Strict FIFO also means head-of-line blocking is possible when the
//! head waiter wants more threads than are free while a smaller request
//! waits behind it — accepted on purpose: it guarantees big jobs can
//! never be starved by a stream of small ones.

use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct Inner {
    /// Threads currently free.
    available: usize,
    /// Next ticket to hand out.
    next_ticket: u64,
    /// Ticket currently at the head of the queue.
    now_serving: u64,
}

/// A FIFO-fair counting budget of worker threads. See the module docs
/// for the fairness discipline.
#[derive(Debug)]
pub struct ThreadBudget {
    capacity: usize,
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl ThreadBudget {
    /// A budget of `capacity` threads (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        ThreadBudget {
            capacity,
            inner: Mutex::new(Inner {
                available: capacity,
                next_ticket: 0,
                now_serving: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Threads currently free (racy snapshot, for stats only).
    pub fn available(&self) -> usize {
        self.inner.lock().expect("budget poisoned").available
    }

    /// Blocks until `want` threads (clamped to capacity) are free *and*
    /// every earlier waiter has been served, then takes them. The permit
    /// releases on drop.
    pub fn acquire(&self, want: usize) -> ThreadPermit<'_> {
        let want = want.clamp(1, self.capacity);
        let mut inner = self.inner.lock().expect("budget poisoned");
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        while inner.now_serving != ticket || inner.available < want {
            inner = self.cv.wait(inner).expect("budget poisoned");
        }
        inner.available -= want;
        inner.now_serving += 1;
        // Wake the next ticket holder (it may be runnable already).
        self.cv.notify_all();
        ThreadPermit {
            budget: self,
            threads: want,
        }
    }
}

/// An acquired slice of the budget; threads return on drop.
#[derive(Debug)]
pub struct ThreadPermit<'a> {
    budget: &'a ThreadBudget,
    threads: usize,
}

impl ThreadPermit<'_> {
    /// How many threads this permit holds.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Drop for ThreadPermit<'_> {
    fn drop(&mut self) {
        let mut inner = self.budget.inner.lock().expect("budget poisoned");
        inner.available += self.threads;
        self.budget.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn permits_release_on_drop() {
        let budget = ThreadBudget::new(4);
        assert_eq!(budget.available(), 4);
        let p = budget.acquire(3);
        assert_eq!(p.threads(), 3);
        assert_eq!(budget.available(), 1);
        drop(p);
        assert_eq!(budget.available(), 4);
    }

    #[test]
    fn acquire_clamps_to_capacity() {
        let budget = ThreadBudget::new(2);
        let p = budget.acquire(100);
        assert_eq!(p.threads(), 2, "oversized request clamps, never deadlocks");
    }

    #[test]
    fn waiters_are_served_fifo() {
        let budget = Arc::new(ThreadBudget::new(1));
        let order = Arc::new(Mutex::new(Vec::new()));

        let head = budget.acquire(1); // ticket 0; all capacity held
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let waiter = Arc::clone(&budget);
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                let _p = waiter.acquire(1);
                order.lock().expect("order").push(i);
            }));
            // Deterministic ordering: wait until thread i has drawn its
            // ticket (i + 2 tickets issued: the head's plus i + 1
            // waiters') before spawning the next waiter.
            while budget.inner.lock().expect("budget").next_ticket != i + 2 {
                std::thread::yield_now();
            }
        }
        drop(head);
        for h in handles {
            h.join().expect("waiter");
        }
        assert_eq!(*order.lock().expect("order"), vec![0, 1, 2, 3]);
    }
}
