//! The daemon: accept loop, worker pool, routing, job streaming, and
//! graceful drain.
//!
//! Connections flow through a bounded pipeline: the accept loop pushes
//! each socket into a bounded [`ConnQueue`]; a fixed pool of
//! [`ServerConfig::workers`] threads pops and serves them with HTTP/1.1
//! keep-alive, so overload produces backpressure (queue fills → excess
//! connections are shed with `503` + `Retry-After`) instead of an
//! unbounded pile of OS threads. `POST /jobs` turns the connection into
//! an NDJSON stream: one chunk per completed estimator round (an
//! [`rft_analysis::job::IntervalUpdate`] line), then one `"final"` line
//! carrying the replayable [`JobRecord`] and pooled result — the line
//! `repro replay` reproduces byte-for-byte. A failed chunk write means
//! the client went away; the job is cancelled at the next round boundary
//! and its threads return to the budget.
//!
//! **Timeouts.** Every read of a request runs under a total
//! [`ServerConfig::request_timeout`] deadline (slow-loris heads and
//! byte-dribble bodies get a clean `408`), keep-alive connections that
//! stay quiet past [`ServerConfig::idle_timeout`] are closed, and jobs
//! carrying a `deadline_ms` (or capped by
//! [`ServerConfig::job_deadline`]) are cancelled at the next round
//! boundary with a `"cancelled"` line and a clean chunked terminator —
//! never a hung thread.
//!
//! **Admission control.** At most [`ServerConfig::max_jobs`] jobs stream
//! concurrently; excess job requests are shed with `503` +
//! `Retry-After` and counted in `serve.shed`. `GET /healthz` reports
//! `"degraded"` while shedding is likely.
//!
//! Shutdown is two-phase: [`ShutdownHandle::shutdown`] (the signal
//! handler's lever) stops the accept loop and closes the queue, then
//! in-flight jobs get [`ServerConfig::drain_timeout`] to finish before
//! they are force-cancelled and the process exits.

use crate::fair::ThreadBudget;
use crate::http::{self, ChunkedWriter, HttpError, Limits, Request, ResponseOpts};
use crate::pool::ConnQueue;
use rft_analysis::job::{run_job_streaming, CancelledUpdate, JobControl, JobRecord, JobSpec};
use rft_obs::{Collector, Gauge, Hist, Metric};
use serde::Serialize;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// `Retry-After` seconds on shed responses: the queue turns over in
/// well under a second for every workload we serve, so an immediate-ish
/// retry is the honest hint.
const RETRY_AFTER_S: u32 = 1;

/// Everything tunable about a daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Global estimator-thread budget shared by all jobs.
    pub threads: usize,
    /// Threads one job holds per round (clamped to `threads`).
    pub threads_per_job: usize,
    /// Connection-handler pool size: the hard cap on concurrently
    /// served connections (a keep-alive stream holds its worker for the
    /// connection's lifetime).
    pub workers: usize,
    /// Bound on accepted-but-unserved connections; beyond it the accept
    /// loop sheds with `503` + `Retry-After`.
    pub accept_queue: usize,
    /// Bound on concurrently streaming jobs; beyond it `POST /jobs` is
    /// shed with `503` + `Retry-After`.
    pub max_jobs: usize,
    /// Total wall-clock budget for reading one request (head + body);
    /// exceeded → `408` and the connection closes.
    pub request_timeout: Duration,
    /// How long a keep-alive connection may sit quiet between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// Per-write socket timeout (a stalled reader cannot pin a worker).
    pub write_timeout: Duration,
    /// Server-side cap on any job's wall-clock deadline; the effective
    /// deadline is the minimum of this and the spec's `deadline_ms`.
    /// `None` leaves only client-requested deadlines.
    pub job_deadline: Option<Duration>,
    /// Compile-cache byte budget (`None` = unbounded).
    pub cache_bytes: Option<usize>,
    /// How long in-flight jobs may run after shutdown begins.
    pub drain_timeout: Duration,
    /// HTTP parsing limits.
    pub limits: Limits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: std::thread::available_parallelism().map_or(2, |n| n.get()),
            threads_per_job: 2,
            workers: 16,
            accept_queue: 64,
            max_jobs: 16,
            request_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            job_deadline: None,
            cache_bytes: Some(256 * 1024 * 1024),
            drain_timeout: Duration::from_secs(5),
            limits: Limits::default(),
        }
    }
}

/// Shared server state: the process-wide cache, metrics, budget, queue,
/// and shutdown flags.
#[derive(Debug)]
struct State {
    config: ServerConfig,
    /// The resolved bind address (shutdown wakes the accept loop by
    /// connecting to it).
    local_addr: SocketAddr,
    cache: rft_analysis::experiment::CompileCache,
    obs: Collector,
    budget: ThreadBudget,
    /// Accepted connections waiting for a pool worker.
    queue: ConnQueue,
    /// Set once: stop accepting, begin the drain.
    shutdown: AtomicBool,
    /// Set at the drain deadline: cancel jobs at their next round.
    force_cancel: AtomicBool,
    /// Connections currently being handled (jobs included).
    connections_active: AtomicU64,
    /// Jobs currently streaming.
    jobs_active: AtomicU64,
    /// Monotonic job-id source for the start-time table.
    next_job: AtomicU64,
    /// Start instants of streaming jobs, keyed by job id — the source
    /// of the oldest-job-age gauge.
    job_started: Mutex<HashMap<u64, Instant>>,
}

/// A clonable lever that begins graceful shutdown (signal handlers and
/// tests hold one).
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    state: Arc<State>,
}

impl ShutdownHandle {
    /// Begins the drain: the accept loop stops and `run` returns once
    /// in-flight jobs finish or the drain timeout expires.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; a throwaway connection
        // wakes it so it observes the flag without polling.
        let _ = TcpStream::connect_timeout(&self.state.local_addr, Duration::from_millis(200));
    }
}

/// A bound, not-yet-running daemon.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

/// The `GET /stats` payload. Point-in-time values are sourced from the
/// obs gauge catalog (refreshed by [`snapshot_stats`]), totals from the
/// counter catalog.
#[derive(Debug, Clone, Serialize)]
struct Stats {
    jobs_active: u64,
    connections_active: u64,
    queued_connections: u64,
    oldest_job_ms: u64,
    requests: u64,
    rejected: u64,
    shed: u64,
    timeouts: u64,
    early_disconnects: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    cache_bytes: u64,
    cache_programs: u64,
    cache_engines: u64,
    budget_capacity: u64,
    budget_available: u64,
    workers: u64,
    max_jobs: u64,
}

impl Server {
    /// Binds `config.addr` and builds the shared state (cache bounded to
    /// `config.cache_bytes`, budget of `config.threads`, accept queue of
    /// `config.accept_queue`).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let obs = Collector::new();
        let cache = rft_analysis::experiment::CompileCache::with_collector_and_budget(
            obs.clone(),
            config.cache_bytes,
        );
        let budget = ThreadBudget::new(config.threads);
        let queue = ConnQueue::new(config.accept_queue);
        Ok(Server {
            listener,
            state: Arc::new(State {
                config,
                local_addr,
                cache,
                obs,
                budget,
                queue,
                shutdown: AtomicBool::new(false),
                force_cancel: AtomicBool::new(false),
                connections_active: AtomicU64::new(0),
                jobs_active: AtomicU64::new(0),
                next_job: AtomicU64::new(0),
                job_started: Mutex::new(HashMap::new()),
            }),
        })
    }

    /// The actually-bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown lever for this server.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Spawns the worker pool, then runs the accept loop until shutdown
    /// and drains. Thread count is bounded for the server's lifetime:
    /// `workers` pool threads plus this accept thread — overload fills
    /// the queue and sheds instead of spawning.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop transport errors (not per-connection ones).
    pub fn run(self) -> io::Result<()> {
        for _ in 0..self.state.config.workers.max(1) {
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || worker_loop(&state));
        }
        loop {
            // Blocking accept: zero added latency per connection and no
            // idle polling. `ShutdownHandle::shutdown` wakes it with a
            // throwaway connection, dropped by the flag check below.
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.state.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match self.state.queue.push(stream) {
                        Ok(depth) => self
                            .state
                            .obs
                            .set_gauge(Gauge::ServeQueueDepth, depth as f64),
                        Err(mut shed) => {
                            // Queue full: shed from the accept thread so
                            // the client gets an actionable answer now.
                            self.state.obs.incr(Metric::ServeShed);
                            let _ = shed.set_write_timeout(Some(Duration::from_secs(1)));
                            let _ = http::write_error_opts(
                                &mut shed,
                                503,
                                "accept queue full; retry later",
                                ResponseOpts {
                                    keep_alive: false,
                                    retry_after_s: Some(RETRY_AFTER_S),
                                },
                            );
                            // Lingering close: the client's unread request
                            // is still in our receive buffer, and closing
                            // now would RST and destroy the 503 before
                            // the peer reads it. Bounded drain, so a
                            // hostile peer can't stall the accept loop.
                            let _ = shed.set_read_timeout(Some(Duration::from_millis(250)));
                            let _ = shed.shutdown(std::net::Shutdown::Write);
                            let mut sink = [0u8; 1024];
                            let linger = Instant::now() + Duration::from_millis(500);
                            while matches!(io::Read::read(&mut shed, &mut sink), Ok(n) if n > 0) {
                                if Instant::now() >= linger {
                                    break;
                                }
                            }
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    if self.state.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                }
                Err(e) => {
                    self.state.queue.close();
                    return Err(e);
                }
            }
        }
        // Queued-but-unserved connections are dropped (never half-served)
        // and blocked workers wake to exit; workers serving a connection
        // observe the shutdown flag at their next request boundary.
        self.state.queue.close();
        self.drain();
        Ok(())
    }

    /// Waits out in-flight connections up to the drain timeout, then
    /// force-cancels remaining jobs and gives them a short grace period
    /// to notice at their next round boundary.
    fn drain(&self) {
        let deadline = Instant::now() + self.state.config.drain_timeout;
        while self.state.connections_active.load(Ordering::SeqCst) > 0 {
            if Instant::now() >= deadline {
                self.state.force_cancel.store(true, Ordering::SeqCst);
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let grace = Instant::now() + Duration::from_secs(2);
        while self.state.connections_active.load(Ordering::SeqCst) > 0 && Instant::now() < grace {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// One pool worker: pop connections until the queue closes.
fn worker_loop(state: &State) {
    while let Some(stream) = state.queue.pop() {
        // NDJSON streaming writes one small chunk per round; with Nagle
        // on, each chunk after the first waits on the peer's delayed ACK
        // (~40 ms) before leaving — disastrous for keep-alive latency.
        let _ = stream.set_nodelay(true);
        state
            .obs
            .set_gauge(Gauge::ServeQueueDepth, state.queue.depth() as f64);
        let active = state.connections_active.fetch_add(1, Ordering::SeqCst) + 1;
        state
            .obs
            .set_gauge(Gauge::ServeConnectionsActive, active as f64);
        handle_connection(state, stream);
        let active = state.connections_active.fetch_sub(1, Ordering::SeqCst) - 1;
        state
            .obs
            .set_gauge(Gauge::ServeConnectionsActive, active as f64);
    }
}

/// How waiting for a request's first byte ended.
enum Wait {
    /// A byte is readable: parse a request now.
    Ready,
    /// The peer closed (or the socket failed).
    Closed,
    /// Nothing arrived within the idle timeout.
    Idle,
    /// The server is shutting down.
    Shutdown,
}

/// Waits for the next request's first byte with the idle timeout,
/// checking the shutdown flag every ≤100 ms so draining closes idle
/// keep-alive connections promptly instead of after a full idle window.
fn wait_for_readable(state: &State, stream: &TcpStream) -> Wait {
    let deadline = Instant::now() + state.config.idle_timeout;
    let mut byte = [0u8; 1];
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return Wait::Shutdown;
        }
        let now = Instant::now();
        if now >= deadline {
            return Wait::Idle;
        }
        let slice = (deadline - now).min(Duration::from_millis(100));
        if stream.set_read_timeout(Some(slice)).is_err() {
            return Wait::Closed;
        }
        match stream.peek(&mut byte) {
            Ok(0) => return Wait::Closed,
            Ok(_) => return Wait::Ready,
            Err(e) if http::is_timeout(&e) => continue,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Wait::Closed,
        }
    }
}

/// A [`io::Read`] view of a `TcpStream` that re-arms the socket read
/// timeout to the remaining request deadline before every read: the
/// *total* time to read one request is bounded, so dribbling one byte
/// per poll (slow-loris) cannot hold a worker past the deadline.
struct DeadlineStream<'a> {
    stream: &'a TcpStream,
    deadline: Instant,
}

impl io::Read for DeadlineStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "request deadline exceeded",
            ));
        }
        self.stream.set_read_timeout(Some(remaining))?;
        (&mut &*self.stream).read(buf)
    }
}

/// Serves requests on one connection until it closes, idles out, errors,
/// or the server drains; all request errors end in a best-effort
/// response.
fn handle_connection(state: &State, mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(state.config.write_timeout));
    while let Wait::Ready = wait_for_readable(state, &stream) {
        let started = Instant::now();
        state.obs.incr(Metric::ServeRequests);
        let parsed = http::read_request(
            &mut DeadlineStream {
                stream: &stream,
                deadline: started + state.config.request_timeout,
            },
            &state.config.limits,
        );
        let keep = match parsed {
            Err(e) => {
                if matches!(e, HttpError::Timeout) {
                    state.obs.incr(Metric::ServeTimeouts);
                }
                state.obs.incr(Metric::ServeRejected);
                let _ = http::write_error(&mut stream, e.status(), e.reason());
                false
            }
            Ok(req) => route(state, &mut stream, &req).unwrap_or(false),
        };
        state
            .obs
            .observe(Hist::RequestMicros, started.elapsed().as_micros() as u64);
        if !keep {
            break;
        }
    }
    // Lingering close: a request rejected at the head (oversized body,
    // unsupported encoding) leaves unread bytes in our receive buffer,
    // and closing then makes the kernel send RST — which can destroy
    // the response before the peer reads it. Drain briefly so the close
    // is a clean FIN.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 1024];
    while matches!(io::Read::read(&mut stream, &mut sink), Ok(n) if n > 0) {}
}

/// Routes a parsed request; returns whether the connection stays open.
fn route(state: &State, stream: &mut TcpStream, req: &Request) -> io::Result<bool> {
    let draining = state.shutdown.load(Ordering::SeqCst);
    let keep = req.keep_alive && !draining;
    let opts = ResponseOpts {
        keep_alive: keep,
        retry_after_s: None,
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let body = healthz_body(state, draining);
            http::write_response_opts(stream, 200, "application/json", body.as_bytes(), opts)
                .map(|()| keep)
        }
        ("GET", "/stats") => {
            let stats = snapshot_stats(state);
            let body = serde_json::to_string(&stats).unwrap_or_else(|_| "{}".into());
            http::write_response_opts(stream, 200, "application/json", body.as_bytes(), opts)
                .map(|()| keep)
        }
        ("POST", "/jobs") => handle_job(state, stream, req, keep),
        ("POST", _) | ("GET", _) => {
            state.obs.incr(Metric::ServeRejected);
            http::write_error_opts(stream, 404, "no such endpoint", opts).map(|()| keep)
        }
        _ => {
            state.obs.incr(Metric::ServeRejected);
            http::write_error_opts(stream, 405, "method not allowed", opts).map(|()| keep)
        }
    }
}

/// The `GET /healthz` body: `"ok"` while the daemon has headroom,
/// `"degraded"` while draining or while shedding is likely (job cap
/// reached or accept queue full).
fn healthz_body(state: &State, draining: bool) -> String {
    let jobs = state.jobs_active.load(Ordering::SeqCst);
    let queued = state.queue.depth();
    let degraded =
        draining || jobs >= state.config.max_jobs as u64 || queued >= state.queue.capacity();
    format!(
        "{{\"status\":\"{}\",\"draining\":{},\"jobs_active\":{},\"max_jobs\":{},\
         \"queued_connections\":{},\"accept_queue\":{}}}",
        if degraded { "degraded" } else { "ok" },
        draining,
        jobs,
        state.config.max_jobs,
        queued,
        state.queue.capacity(),
    )
}

/// Builds the `/stats` snapshot: refreshes the point-in-time gauges,
/// then reads every serving stat back out of the obs catalog.
fn snapshot_stats(state: &State) -> Stats {
    let obs = &state.obs;
    obs.set_gauge(Gauge::ServeQueueDepth, state.queue.depth() as f64);
    let oldest_ms = state
        .job_started
        .lock()
        .expect("job table")
        .values()
        .map(|t| t.elapsed().as_millis() as u64)
        .max()
        .unwrap_or(0);
    obs.set_gauge(Gauge::ServeOldestJobMs, oldest_ms as f64);
    Stats {
        jobs_active: obs.gauge(Gauge::JobsActive) as u64,
        connections_active: obs.gauge(Gauge::ServeConnectionsActive) as u64,
        queued_connections: obs.gauge(Gauge::ServeQueueDepth) as u64,
        oldest_job_ms: obs.gauge(Gauge::ServeOldestJobMs) as u64,
        requests: obs.get(Metric::ServeRequests),
        rejected: obs.get(Metric::ServeRejected),
        shed: obs.get(Metric::ServeShed),
        timeouts: obs.get(Metric::ServeTimeouts),
        early_disconnects: obs.get(Metric::ServeEarlyDisconnects),
        cache_hits: state.cache.hits(),
        cache_misses: state.cache.misses(),
        cache_evictions: state.cache.evictions(),
        cache_bytes: state.cache.cached_bytes() as u64,
        cache_programs: state.cache.programs_cached() as u64,
        cache_engines: state.cache.engines_cached() as u64,
        budget_capacity: state.budget.capacity() as u64,
        budget_available: state.budget.available() as u64,
        workers: state.config.workers as u64,
        max_jobs: state.config.max_jobs as u64,
    }
}

/// Why a streaming job ended without a final line.
enum StreamEnd {
    /// Ran to completion; final line sent.
    Completed,
    /// A chunk write failed: the client disconnected early.
    Disconnected,
    /// The drain deadline force-cancelled it.
    Drained,
    /// The wall-clock deadline cancelled it; a `"cancelled"` line and a
    /// clean chunked terminator were sent.
    DeadlineExceeded,
}

/// `POST /jobs`: validate, admit, stream rounds, finish with the
/// replayable final line. Returns whether the connection stays open.
fn handle_job(
    state: &State,
    stream: &mut TcpStream,
    req: &Request,
    keep: bool,
) -> io::Result<bool> {
    let obs = &state.obs;
    let opts = ResponseOpts {
        keep_alive: keep,
        retry_after_s: None,
    };
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => {
            obs.incr(Metric::ServeRejected);
            return http::write_error_opts(stream, 400, "body is not UTF-8", opts).map(|()| keep);
        }
    };
    // Accept a full record or (for curl ergonomics) a bare spec.
    let record = match serde_json::from_str::<JobRecord>(body) {
        Ok(r) => r,
        Err(_) => match serde_json::from_str::<JobSpec>(body) {
            Ok(spec) => JobRecord::new(spec),
            Err(e) => {
                obs.incr(Metric::ServeRejected);
                return http::write_error_opts(stream, 400, &format!("bad job JSON: {e}"), opts)
                    .map(|()| keep);
            }
        },
    };
    if let Err(msg) = record.validate() {
        obs.incr(Metric::ServeRejected);
        return http::write_error_opts(stream, 400, &msg, opts).map(|()| keep);
    }
    if state.shutdown.load(Ordering::SeqCst) {
        obs.incr(Metric::ServeRejected);
        return http::write_error_opts(stream, 503, "server is draining", ResponseOpts::default())
            .map(|()| false);
    }

    // Admission control: at most `max_jobs` concurrently streaming jobs;
    // the rest are shed with an actionable retry hint.
    let active = state.jobs_active.fetch_add(1, Ordering::SeqCst) + 1;
    if active > state.config.max_jobs as u64 {
        state.jobs_active.fetch_sub(1, Ordering::SeqCst);
        obs.incr(Metric::ServeShed);
        return http::write_error_opts(
            stream,
            503,
            "job capacity reached; retry later",
            ResponseOpts {
                keep_alive: keep,
                retry_after_s: Some(RETRY_AFTER_S),
            },
        )
        .map(|()| keep);
    }
    obs.set_gauge(Gauge::JobsActive, active as f64);
    let job_id = state.next_job.fetch_add(1, Ordering::SeqCst);
    state
        .job_started
        .lock()
        .expect("job table")
        .insert(job_id, Instant::now());

    let result = catch_unwind(AssertUnwindSafe(|| {
        stream_job(state, stream, &record, keep)
    }));

    state.job_started.lock().expect("job table").remove(&job_id);
    let active = state.jobs_active.fetch_sub(1, Ordering::SeqCst) - 1;
    obs.set_gauge(Gauge::JobsActive, active as f64);

    match result {
        Ok(end) => match end {
            Ok(StreamEnd::Completed) => Ok(keep),
            Ok(StreamEnd::Disconnected) => {
                obs.incr(Metric::ServeEarlyDisconnects);
                Ok(false)
            }
            Ok(StreamEnd::DeadlineExceeded) => {
                obs.incr(Metric::ServeTimeouts);
                Ok(false)
            }
            Ok(StreamEnd::Drained) => Ok(false),
            Err(e) => Err(e),
        },
        // A panic past validation would be an engine bug; the stream is
        // already committed, so all we can do is drop the connection —
        // truncated chunked encoding tells the client the job died.
        Err(_panic) => Ok(false),
    }
}

/// Runs the job rounds under the fairness discipline, streaming a line
/// per round. Returns how the stream ended.
fn stream_job(
    state: &State,
    stream: &mut TcpStream,
    record: &JobRecord,
    keep: bool,
) -> io::Result<StreamEnd> {
    let obs = &state.obs;
    let mut out = ChunkedWriter::start_opts(
        &mut *stream,
        200,
        "application/x-ndjson",
        ResponseOpts {
            keep_alive: keep,
            retry_after_s: None,
        },
    )?;

    // The effective wall-clock deadline: the tighter of the client's
    // `deadline_ms` and the server-side cap. Checked at round
    // boundaries, and only for jobs that are not already done — a job
    // whose last round finishes late still completes (determinism over
    // punctuality).
    let job_deadline = [
        record.spec.deadline_ms.map(Duration::from_millis),
        state.config.job_deadline,
    ]
    .into_iter()
    .flatten()
    .min()
    .map(|d| Instant::now() + d);

    // Round-robin fairness: hold a budget permit only per round,
    // re-queueing (strict FIFO) between rounds so concurrent jobs
    // interleave instead of the first admission monopolizing the budget.
    let want = state.config.threads_per_job;
    let mut permit = Some(state.budget.acquire(want));
    let threads = permit.as_ref().map_or(1, |p| p.threads());
    let mut end = StreamEnd::Completed;
    let mut last_round = 0u32;

    let outcome = run_job_streaming(&state.cache, obs, record, threads, |update| {
        if state.force_cancel.load(Ordering::SeqCst) {
            end = StreamEnd::Drained;
            return JobControl::Cancel;
        }
        let mut line = serde_json::to_string(update).unwrap_or_default();
        line.push('\n');
        if out.send(line.as_bytes()).is_err() {
            end = StreamEnd::Disconnected;
            return JobControl::Cancel;
        }
        last_round = update.round;
        if !update.done {
            if let Some(d) = job_deadline {
                if Instant::now() >= d {
                    end = StreamEnd::DeadlineExceeded;
                    return JobControl::Cancel;
                }
            }
            permit = None; // release before re-queueing
            permit = Some(state.budget.acquire(want));
        }
        JobControl::Continue
    });
    drop(permit);

    match outcome {
        // Validation already passed, so Err is unreachable; treat it
        // like a completed-with-error stream for robustness.
        Err(msg) => {
            let _ = out.send(
                format!(
                    "{{\"kind\":\"error\",\"error\":{}}}\n",
                    serde_json::to_string(&msg).unwrap_or_else(|_| "\"error\"".into())
                )
                .as_bytes(),
            );
            out.finish()?;
            Ok(StreamEnd::Completed)
        }
        Ok(None) => {
            if matches!(end, StreamEnd::DeadlineExceeded) {
                // A deadline cancel still ends the stream cleanly: the
                // client learns why, and the chunked framing terminates.
                let mut line =
                    CancelledUpdate::new("deadline exceeded", last_round, record.spec.max_rounds)
                        .to_line();
                line.push('\n');
                let _ = out.send(line.as_bytes());
                let _ = out.finish();
            }
            // Disconnected/drained: no terminating chunk — truncation is
            // the signal.
            Ok(end)
        }
        Ok(Some(final_update)) => {
            let mut line = final_update.to_line();
            line.push('\n');
            if out.send(line.as_bytes()).is_err() {
                return Ok(StreamEnd::Disconnected);
            }
            out.finish()?;
            Ok(StreamEnd::Completed)
        }
    }
}
