//! The daemon: accept loop, routing, job streaming, and graceful drain.
//!
//! One thread per connection, one request per connection. `POST /jobs`
//! turns the connection into an NDJSON stream: one chunk per completed
//! estimator round (an [`rft_analysis::job::IntervalUpdate`] line), then
//! one `"final"` line
//! carrying the replayable [`JobRecord`] and pooled result — the line
//! `repro replay` reproduces byte-for-byte. A failed chunk write means
//! the client went away; the job is cancelled at the next round boundary
//! and its threads return to the budget.
//!
//! Shutdown is two-phase: [`ShutdownHandle::shutdown`] (the signal
//! handler's lever) stops the accept loop, then in-flight jobs get
//! [`ServerConfig::drain_timeout`] to finish before they are
//! force-cancelled and the process exits.

use crate::fair::ThreadBudget;
use crate::http::{self, ChunkedWriter, Limits, Request};
use rft_analysis::experiment::CompileCache;
use rft_analysis::job::{run_job_streaming, JobControl, JobRecord, JobSpec};
use rft_obs::{Collector, Gauge, Hist, Metric};
use serde::Serialize;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything tunable about a daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Global worker-thread budget shared by all jobs.
    pub threads: usize,
    /// Threads one job holds per round (clamped to `threads`).
    pub threads_per_job: usize,
    /// Compile-cache byte budget (`None` = unbounded).
    pub cache_bytes: Option<usize>,
    /// How long in-flight jobs may run after shutdown begins.
    pub drain_timeout: Duration,
    /// HTTP parsing limits.
    pub limits: Limits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: std::thread::available_parallelism().map_or(2, |n| n.get()),
            threads_per_job: 2,
            cache_bytes: Some(256 * 1024 * 1024),
            drain_timeout: Duration::from_secs(5),
            limits: Limits::default(),
        }
    }
}

/// Shared server state: the process-wide cache, metrics, budget, and
/// shutdown flags.
#[derive(Debug)]
struct State {
    config: ServerConfig,
    /// The resolved bind address (shutdown wakes the accept loop by
    /// connecting to it).
    local_addr: SocketAddr,
    cache: CompileCache,
    obs: Collector,
    budget: ThreadBudget,
    /// Set once: stop accepting, begin the drain.
    shutdown: AtomicBool,
    /// Set at the drain deadline: cancel jobs at their next round.
    force_cancel: AtomicBool,
    /// Connections currently being handled (jobs included).
    connections_active: AtomicU64,
    /// Jobs currently streaming.
    jobs_active: AtomicU64,
}

/// A clonable lever that begins graceful shutdown (signal handlers and
/// tests hold one).
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    state: Arc<State>,
}

impl ShutdownHandle {
    /// Begins the drain: the accept loop stops and `run` returns once
    /// in-flight jobs finish or the drain timeout expires.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; a throwaway connection
        // wakes it so it observes the flag without polling.
        let _ = TcpStream::connect_timeout(&self.state.local_addr, Duration::from_millis(200));
    }
}

/// A bound, not-yet-running daemon.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

/// The `GET /stats` payload.
#[derive(Debug, Clone, Serialize)]
struct Stats {
    jobs_active: u64,
    requests: u64,
    rejected: u64,
    early_disconnects: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    cache_bytes: u64,
    cache_programs: u64,
    cache_engines: u64,
    budget_capacity: u64,
    budget_available: u64,
}

impl Server {
    /// Binds `config.addr` and builds the shared state (cache bounded to
    /// `config.cache_bytes`, budget of `config.threads`).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let obs = Collector::new();
        let cache = CompileCache::with_collector_and_budget(obs.clone(), config.cache_bytes);
        let budget = ThreadBudget::new(config.threads);
        Ok(Server {
            listener,
            state: Arc::new(State {
                config,
                local_addr,
                cache,
                obs,
                budget,
                shutdown: AtomicBool::new(false),
                force_cancel: AtomicBool::new(false),
                connections_active: AtomicU64::new(0),
                jobs_active: AtomicU64::new(0),
            }),
        })
    }

    /// The actually-bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown lever for this server.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Runs the accept loop until shutdown, then drains. Connection
    /// handling never takes this thread down: each connection runs on
    /// its own thread with panics caught at the job boundary.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop transport errors (not per-connection ones).
    pub fn run(self) -> io::Result<()> {
        loop {
            // Blocking accept: zero added latency per connection and no
            // idle polling. `ShutdownHandle::shutdown` wakes it with a
            // throwaway connection, dropped by the flag check below.
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.state.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let state = Arc::clone(&self.state);
                    state.connections_active.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || {
                        handle_connection(&state, stream);
                        state.connections_active.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    if self.state.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                }
                Err(e) => return Err(e),
            }
        }
        self.drain();
        Ok(())
    }

    /// Waits out in-flight connections up to the drain timeout, then
    /// force-cancels remaining jobs and gives them a short grace period
    /// to notice at their next round boundary.
    fn drain(&self) {
        let deadline = Instant::now() + self.state.config.drain_timeout;
        while self.state.connections_active.load(Ordering::SeqCst) > 0 {
            if Instant::now() >= deadline {
                self.state.force_cancel.store(true, Ordering::SeqCst);
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let grace = Instant::now() + Duration::from_secs(2);
        while self.state.connections_active.load(Ordering::SeqCst) > 0 && Instant::now() < grace {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Reads, routes, and answers one connection; all errors end in a
/// best-effort response and a closed socket.
fn handle_connection(state: &State, mut stream: TcpStream) {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let obs = &state.obs;
    obs.incr(Metric::ServeRequests);

    let outcome = match http::read_request(&mut stream, &state.config.limits) {
        Err(e) => {
            obs.incr(Metric::ServeRejected);
            reject(&mut stream, e.status(), e.reason())
        }
        Ok(req) => route(state, &mut stream, &req),
    };
    if outcome.is_err() {
        // The peer is gone; nothing left to tell it.
    }
    // Lingering close: a request rejected at the head (oversized body,
    // unsupported encoding) leaves unread bytes in our receive buffer,
    // and closing then makes the kernel send RST — which can destroy
    // the response before the peer reads it. Drain briefly so the close
    // is a clean FIN.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 1024];
    while matches!(io::Read::read(&mut stream, &mut sink), Ok(n) if n > 0) {}
    obs.observe(Hist::RequestMicros, started.elapsed().as_micros() as u64);
}

/// Routes a parsed request.
fn route(state: &State, stream: &mut TcpStream, req: &Request) -> io::Result<()> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            http::write_response(stream, 200, "application/json", b"{\"status\":\"ok\"}")
        }
        ("GET", "/stats") => {
            let stats = snapshot_stats(state);
            let body = serde_json::to_string(&stats).unwrap_or_else(|_| "{}".into());
            http::write_response(stream, 200, "application/json", body.as_bytes())
        }
        ("POST", "/jobs") => handle_job(state, stream, req),
        ("POST", _) | ("GET", _) => {
            state.obs.incr(Metric::ServeRejected);
            reject(stream, 404, "no such endpoint")
        }
        _ => {
            state.obs.incr(Metric::ServeRejected);
            reject(stream, 405, "method not allowed")
        }
    }
}

/// Counts and writes a rejection.
fn reject(stream: &mut TcpStream, status: u16, reason: &str) -> io::Result<()> {
    http::write_error(stream, status, reason)
}

/// Builds the `/stats` snapshot.
fn snapshot_stats(state: &State) -> Stats {
    Stats {
        jobs_active: state.jobs_active.load(Ordering::SeqCst),
        requests: state.obs.get(Metric::ServeRequests),
        rejected: state.obs.get(Metric::ServeRejected),
        early_disconnects: state.obs.get(Metric::ServeEarlyDisconnects),
        cache_hits: state.cache.hits(),
        cache_misses: state.cache.misses(),
        cache_evictions: state.cache.evictions(),
        cache_bytes: state.cache.cached_bytes() as u64,
        cache_programs: state.cache.programs_cached() as u64,
        cache_engines: state.cache.engines_cached() as u64,
        budget_capacity: state.budget.capacity() as u64,
        budget_available: state.budget.available() as u64,
    }
}

/// Why a streaming job ended without a final line.
enum StreamEnd {
    /// Ran to completion; final line sent.
    Completed,
    /// A chunk write failed: the client disconnected early.
    Disconnected,
    /// The drain deadline force-cancelled it.
    Drained,
}

/// `POST /jobs`: validate, admit, stream rounds, finish with the
/// replayable final line.
fn handle_job(state: &State, stream: &mut TcpStream, req: &Request) -> io::Result<()> {
    let obs = &state.obs;
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => {
            obs.incr(Metric::ServeRejected);
            return reject(stream, 400, "body is not UTF-8");
        }
    };
    // Accept a full record or (for curl ergonomics) a bare spec.
    let record = match serde_json::from_str::<JobRecord>(body) {
        Ok(r) => r,
        Err(_) => match serde_json::from_str::<JobSpec>(body) {
            Ok(spec) => JobRecord::new(spec),
            Err(e) => {
                obs.incr(Metric::ServeRejected);
                return reject(stream, 400, &format!("bad job JSON: {e}"));
            }
        },
    };
    if let Err(msg) = record.validate() {
        obs.incr(Metric::ServeRejected);
        return reject(stream, 400, &msg);
    }
    if state.shutdown.load(Ordering::SeqCst) {
        obs.incr(Metric::ServeRejected);
        return reject(stream, 503, "server is draining");
    }

    let active = state.jobs_active.fetch_add(1, Ordering::SeqCst) + 1;
    obs.set_gauge(Gauge::JobsActive, active as f64);
    let result = catch_unwind(AssertUnwindSafe(|| stream_job(state, stream, &record)));
    let active = state.jobs_active.fetch_sub(1, Ordering::SeqCst) - 1;
    obs.set_gauge(Gauge::JobsActive, active as f64);

    match result {
        Ok(end) => {
            if matches!(end, Ok(StreamEnd::Disconnected)) {
                obs.incr(Metric::ServeEarlyDisconnects);
            }
            end.map(|_| ())
        }
        // A panic past validation would be an engine bug; the stream is
        // already committed, so all we can do is drop the connection —
        // truncated chunked encoding tells the client the job died.
        Err(_panic) => Ok(()),
    }
}

/// Runs the job rounds under the fairness discipline, streaming a line
/// per round. Returns how the stream ended.
fn stream_job(state: &State, stream: &mut TcpStream, record: &JobRecord) -> io::Result<StreamEnd> {
    let obs = &state.obs;
    let mut out = ChunkedWriter::start(&mut *stream, 200, "application/x-ndjson")?;

    // Round-robin fairness: hold a budget permit only per round,
    // re-queueing (strict FIFO) between rounds so concurrent jobs
    // interleave instead of the first admission monopolizing the budget.
    let want = state.config.threads_per_job;
    let mut permit = Some(state.budget.acquire(want));
    let threads = permit.as_ref().map_or(1, |p| p.threads());
    let mut end = StreamEnd::Completed;

    let outcome = run_job_streaming(&state.cache, obs, record, threads, |update| {
        if state.force_cancel.load(Ordering::SeqCst) {
            end = StreamEnd::Drained;
            return JobControl::Cancel;
        }
        let mut line = serde_json::to_string(update).unwrap_or_default();
        line.push('\n');
        if out.send(line.as_bytes()).is_err() {
            end = StreamEnd::Disconnected;
            return JobControl::Cancel;
        }
        if !update.done {
            permit = None; // release before re-queueing
            permit = Some(state.budget.acquire(want));
        }
        JobControl::Continue
    });
    drop(permit);

    match outcome {
        // Validation already passed, so Err is unreachable; treat it
        // like a completed-with-error stream for robustness.
        Err(msg) => {
            let _ = out.send(
                format!(
                    "{{\"kind\":\"error\",\"error\":{}}}\n",
                    serde_json::to_string(&msg).unwrap_or_else(|_| "\"error\"".into())
                )
                .as_bytes(),
            );
            out.finish()?;
            Ok(StreamEnd::Completed)
        }
        Ok(None) => Ok(end), // cancelled: no terminating chunk — truncation is the signal
        Ok(Some(final_update)) => {
            let mut line = final_update.to_line();
            line.push('\n');
            if out.send(line.as_bytes()).is_err() {
                return Ok(StreamEnd::Disconnected);
            }
            out.finish()?;
            Ok(StreamEnd::Completed)
        }
    }
}
