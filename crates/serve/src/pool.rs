//! The bounded accept queue behind the daemon's worker pool.
//!
//! The accept loop pushes each accepted connection into a [`ConnQueue`];
//! a fixed set of worker threads pops and serves them. The queue is
//! bounded: when it is full, [`ConnQueue::push`] hands the connection
//! back instead of growing, and the accept loop sheds it with
//! `503` + `Retry-After`. That turns overload into backpressure the
//! client can act on, instead of an unbounded pile of OS threads — the
//! serving-layer version of the paper's trade of detection for graceful
//! degradation.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct Inner {
    queue: VecDeque<TcpStream>,
    closed: bool,
}

/// A bounded MPMC queue of accepted connections (mutex + condvar — the
/// producer is one accept loop, consumers are the pool workers).
#[derive(Debug)]
pub struct ConnQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
    capacity: usize,
}

impl ConnQueue {
    /// A queue holding at most `capacity` waiting connections
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        ConnQueue {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The bound this queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Connections currently waiting for a worker.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").queue.len()
    }

    /// Enqueues a connection; returns the new depth. When the queue is
    /// full or closed the connection comes back as `Err` so the caller
    /// can shed it with a response instead of silently dropping it.
    pub fn push(&self, conn: TcpStream) -> Result<usize, TcpStream> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed || inner.queue.len() >= self.capacity {
            return Err(conn);
        }
        inner.queue.push_back(conn);
        let depth = inner.queue.len();
        drop(inner);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks until a connection is available and pops it. Returns
    /// `None` once the queue is closed and empty — the workers' exit
    /// signal.
    pub fn pop(&self) -> Option<TcpStream> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(conn) = inner.queue.pop_front() {
                return Some(conn);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock");
        }
    }

    /// Closes the queue: wakes every blocked worker and drops the
    /// connections still waiting (shutdown never serves them). Returns
    /// how many were dropped.
    pub fn close(&self) -> usize {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.closed = true;
        let dropped = inner.queue.len();
        inner.queue.clear();
        drop(inner);
        self.ready.notify_all();
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;
    use std::time::Duration;

    /// A connected socket pair for queue plumbing (contents never read).
    fn conn(listener: &TcpListener) -> TcpStream {
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let _ = listener.accept().expect("accept");
        client
    }

    #[test]
    fn push_pop_is_fifo_and_bounded() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let q = ConnQueue::new(2);
        let a = conn(&listener);
        let a_addr = a.local_addr().expect("addr");
        assert_eq!(q.push(a).expect("fits"), 1);
        assert_eq!(q.push(conn(&listener)).expect("fits"), 2);
        assert_eq!(q.depth(), 2);
        // Full: the third connection comes back for shedding.
        assert!(q.push(conn(&listener)).is_err());
        let popped = q.pop().expect("nonempty");
        assert_eq!(popped.local_addr().expect("addr"), a_addr, "FIFO order");
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn close_wakes_blocked_workers_and_rejects_pushes() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let q = Arc::new(ConnQueue::new(4));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Let the worker block on the empty queue, then close it.
        std::thread::sleep(Duration::from_millis(50));
        q.push(conn(&listener)).expect("fits");
        assert!(waiter.join().expect("worker").is_some());
        assert_eq!(q.close(), 0);
        assert!(q.push(conn(&listener)).is_err(), "closed queues shed");
        assert!(q.pop().is_none(), "closed and empty");
    }

    #[test]
    fn close_drops_waiting_connections() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let q = ConnQueue::new(4);
        q.push(conn(&listener)).expect("fits");
        q.push(conn(&listener)).expect("fits");
        assert_eq!(q.close(), 2);
        assert_eq!(q.depth(), 0);
    }
}
