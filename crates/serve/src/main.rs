//! `rft-serve` — the estimation daemon's CLI entry point.
//!
//! ```text
//! rft-serve [--addr HOST:PORT] [--threads N] [--threads-per-job N]
//!           [--workers N] [--accept-queue N] [--max-jobs N]
//!           [--request-timeout-ms MS] [--idle-timeout-ms MS]
//!           [--job-deadline-ms MS] [--cache-mb MB]
//!           [--drain-timeout SECS]
//! ```
//!
//! Prints `listening on <addr>` once bound (the smoke script parses this
//! to discover an ephemeral port), then serves until SIGINT/SIGTERM,
//! drains in-flight jobs up to `--drain-timeout`, and exits 0.

use rft_serve::{Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set by the signal handler; polled by the watcher thread.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // The vendored workspace has no libc crate; bind the two POSIX calls
    // we need directly. Handlers may only do async-signal-safe work —
    // a relaxed store qualifies.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::Relaxed);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn usage() -> ! {
    eprintln!(
        "usage: rft-serve [--addr HOST:PORT] [--threads N] [--threads-per-job N] \
         [--workers N] [--accept-queue N] [--max-jobs N] [--request-timeout-ms MS] \
         [--idle-timeout-ms MS] [--job-deadline-ms MS] [--cache-mb MB] \
         [--drain-timeout SECS]"
    );
    std::process::exit(2);
}

fn parse_config() -> ServerConfig {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7070".to_string(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--threads" => match value("--threads").parse() {
                Ok(n) if n >= 1 => config.threads = n,
                _ => usage(),
            },
            "--threads-per-job" => match value("--threads-per-job").parse() {
                Ok(n) if n >= 1 => config.threads_per_job = n,
                _ => usage(),
            },
            "--workers" => match value("--workers").parse() {
                Ok(n) if n >= 1 => config.workers = n,
                _ => usage(),
            },
            "--accept-queue" => match value("--accept-queue").parse() {
                Ok(n) if n >= 1 => config.accept_queue = n,
                _ => usage(),
            },
            "--max-jobs" => match value("--max-jobs").parse() {
                Ok(n) if n >= 1 => config.max_jobs = n,
                _ => usage(),
            },
            "--request-timeout-ms" => match value("--request-timeout-ms").parse::<u64>() {
                Ok(ms) if ms >= 1 => config.request_timeout = Duration::from_millis(ms),
                _ => usage(),
            },
            "--idle-timeout-ms" => match value("--idle-timeout-ms").parse::<u64>() {
                Ok(ms) if ms >= 1 => config.idle_timeout = Duration::from_millis(ms),
                _ => usage(),
            },
            "--job-deadline-ms" => match value("--job-deadline-ms").parse::<u64>() {
                Ok(0) => config.job_deadline = None,
                Ok(ms) => config.job_deadline = Some(Duration::from_millis(ms)),
                Err(_) => usage(),
            },
            "--cache-mb" => match value("--cache-mb").parse::<usize>() {
                Ok(0) => config.cache_bytes = None,
                Ok(mb) => config.cache_bytes = Some(mb * 1024 * 1024),
                Err(_) => usage(),
            },
            "--drain-timeout" => match value("--drain-timeout").parse::<u64>() {
                Ok(secs) => config.drain_timeout = Duration::from_secs(secs),
                Err(_) => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
    }
    config
}

fn main() {
    install_signal_handlers();
    let config = parse_config();
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind failed: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.local_addr().expect("bound socket has an address");
    println!("listening on {addr}");

    let handle = server.shutdown_handle();
    std::thread::spawn(move || {
        while !SIGNALLED.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(50));
        }
        eprintln!("signal received; draining");
        handle.shutdown();
    });

    if let Err(e) = server.run() {
        eprintln!("accept loop failed: {e}");
        std::process::exit(1);
    }
    eprintln!("drained; bye");
}
