//! # rft-locality — nearest-neighbour reversible fault tolerance
//!
//! Section 3 of *“Reversible Fault-Tolerant Logic”* (Boykin &
//! Roychowdhury, DSN 2005) restricted to lattices where gates act only on
//! adjacent bits:
//!
//! - [`lattice`] — 1D/2D cell lattices, adjacency, and a locality validator
//!   for circuits;
//! - [`layout2d`] — the Figure 4 tile placement on which the whole recovery
//!   circuit is nearest-neighbour for free, plus both SWAP3 interleave
//!   schemes of §3.1 (the `ρ₂ = 1/273` configuration);
//! - [`layout1d`] — the Figure 7 one-dimensional recovery (13 ops) and the
//!   Figure 6 interleave reproducing the paper's `8+7+6 / 10+8+6 = 45`
//!   swap schedule (the `ρ₁ = 1/2340` configuration);
//! - [`route`] — a generic circuit-to-line compiler (gather, operate,
//!   restore);
//! - [`cost`] — per-codeword operation audits that track codeword transport
//!   through swap networks, yielding the empirical gate budgets `G`.
//!
//! # Examples
//!
//! Verify that error recovery on the 2D tile needs no transport at all:
//!
//! ```
//! use rft_locality::layout2d::build_recovery_row;
//!
//! let (circuit, lattice, _tiles) = build_recovery_row(2);
//! let report = lattice.check_circuit(&circuit);
//! assert!(report.is_local());
//! assert_eq!(report.local_bend, 0); // every gate is a straight triple
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod lattice;
pub mod layout1d;
pub mod layout2d;
pub mod route;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::cost::{audit_transport, TransportAudit};
    pub use crate::lattice::{Lattice, LocalityReport, OpLocality};
    pub use crate::layout1d::{
        build_cycle_1d, build_recovery_1d, interleave_1d, Cycle1D, InterleaveCost1D, Tile1D,
        E_LOCAL_1D_NO_INIT, E_LOCAL_1D_WITH_INIT,
    };
    pub use crate::layout2d::{
        build_cycle_2d, build_recovery_row, Cycle2D, InterleaveScheme, Tile2D, TILE_COORDS,
    };
    pub use crate::route::{route_line, RouteStats};
}
