//! The 2D nearest-neighbour scheme (§3.1, Figures 4 and 5).
//!
//! Each codeword lives on a 3×3 *tile* laid out as in Figure 4:
//!
//! ```text
//!        x=0  x=1  x=2
//!  y=0 [ q8   q2   q5 ]
//!  y=1 [ q7   q1   q4 ]
//!  y=2 [ q6   q0   q3 ]
//! ```
//!
//! The logical bit line is the centre column (`q2,q1,q0`). With this
//! placement *every* operation of the Figure 2 recovery circuit acts on a
//! straight run of three cells — the recovery needs no SWAPs at all. Only
//! logical operations pay transport: three codewords are interleaved with
//! SWAP3 gates (Figure 5), either perpendicular to the bit line (12 SWAPs)
//! or parallel to it (9 SWAPs), at most six SWAPs = three SWAP3 per
//! codeword each way.

use crate::cost::{audit_transport, TransportAudit};
use crate::lattice::Lattice;
use rft_core::ftcheck::CycleSpec;
use rft_revsim::circuit::Circuit;
use rft_revsim::gate::Gate;
use rft_revsim::op::Op;
use rft_revsim::permutation::Permutation;
use rft_revsim::wire::Wire;
use serde::{Deserialize, Serialize};

/// Within-tile coordinates `(x, y)` of `q0..q8` per Figure 4.
pub const TILE_COORDS: [(usize, usize); 9] = [
    (1, 2), // q0
    (1, 1), // q1
    (1, 0), // q2
    (2, 2), // q3
    (2, 1), // q4
    (2, 0), // q5
    (0, 2), // q6
    (0, 1), // q7
    (0, 0), // q8
];

/// Direction in which three codewords are brought together (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterleaveScheme {
    /// Move the outer codewords across the ancilla columns between bit
    /// lines: 12 SWAPs total, 6 per moving codeword.
    Perpendicular,
    /// Riffle three codewords stacked along the same bit line: 9 SWAPs.
    Parallel,
}

/// A placed tile: maps `q0..q8` to lattice wires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile2D {
    lattice: Lattice,
    origin: (usize, usize),
}

impl Tile2D {
    /// Creates a tile with its top-left corner at `origin` on `lattice`.
    ///
    /// # Panics
    ///
    /// Panics if the tile does not fit on the lattice.
    pub fn new(lattice: Lattice, origin: (usize, usize)) -> Self {
        assert!(
            origin.0 + 3 <= lattice.width() && origin.1 + 3 <= lattice.height(),
            "tile at {origin:?} does not fit on {lattice:?}"
        );
        Tile2D { lattice, origin }
    }

    /// The lattice wire of tile bit `q` (0..9).
    ///
    /// # Panics
    ///
    /// Panics if `q >= 9`.
    pub fn wire(&self, q: usize) -> Wire {
        let (tx, ty) = TILE_COORDS[q];
        self.lattice.wire_at(self.origin.0 + tx, self.origin.1 + ty)
    }

    /// Codeword input positions `(q0, q1, q2)`.
    pub fn data_in(&self) -> [Wire; 3] {
        [self.wire(0), self.wire(1), self.wire(2)]
    }

    /// Codeword output positions after recovery `(q0, q3, q6)`.
    pub fn data_out(&self) -> [Wire; 3] {
        [self.wire(0), self.wire(3), self.wire(6)]
    }

    /// Appends the Figure 2 recovery onto `circuit`, placed on this tile.
    /// All eight operations are nearest-neighbour straight triples.
    pub fn push_recovery(&self, circuit: &mut Circuit) {
        let q = |i: usize| self.wire(i);
        circuit
            .init(&[q(3), q(4), q(5)])
            .init(&[q(6), q(7), q(8)])
            .maj_inv(q(0), q(3), q(6))
            .maj_inv(q(1), q(4), q(7))
            .maj_inv(q(2), q(5), q(8))
            .maj(q(0), q(1), q(2))
            .maj(q(3), q(4), q(5))
            .maj(q(6), q(7), q(8));
    }
}

/// A complete executable 2D fault-tolerant cycle on three codewords:
/// interleave → transversal gate → uninterleave → recovery on each tile.
#[derive(Debug, Clone)]
pub struct Cycle2D {
    /// The physical circuit.
    pub circuit: Circuit,
    /// The lattice it is placed on.
    pub lattice: Lattice,
    /// Input codeword positions per logical bit.
    pub inputs: Vec<[Wire; 3]>,
    /// Output codeword positions per logical bit.
    pub outputs: Vec<[Wire; 3]>,
    /// The interleave scheme used.
    pub scheme: InterleaveScheme,
    /// Op index range of the transport phases (interleave + uninterleave).
    pub transport_ops: usize,
    /// Recovery ops per codeword (8, Figure 2).
    pub recovery_ops_per_codeword: usize,
}

impl Cycle2D {
    /// Converts to a [`CycleSpec`] for exhaustive fault sweeps.
    ///
    /// # Panics
    ///
    /// Panics if the gate permutation cannot be extracted (never for valid
    /// 3-bit gates).
    pub fn to_cycle_spec(&self, gate: &Gate) -> CycleSpec {
        let mut logical = Circuit::new(3);
        logical.push(Op::Gate(*gate));
        let perm = Permutation::of_circuit(&logical).expect("3-bit logical gate");
        CycleSpec::new(
            self.circuit.clone(),
            self.inputs.clone(),
            self.outputs.clone(),
            perm,
        )
    }

    /// Transport audit of the full cycle (per-codeword op touches).
    pub fn audit(&self) -> TransportAudit {
        let initial: Vec<Vec<Wire>> = self.inputs.iter().map(|b| b.to_vec()).collect();
        audit_transport(&self.circuit, &initial)
    }

    /// Per-codeword operation budget `G`: transport + transversal touches
    /// (from the audit) plus the recovery operations on the codeword's tile
    /// whose failure feeds its output (the paper counts all 8).
    pub fn per_codeword_budget(&self) -> Vec<usize> {
        // The audit already counts transversal gates and the recovery ops
        // touching current data cells; recovery init/ancilla-only MAJ ops
        // feed the output without touching inputs, so add the difference.
        // Audit counts for recovery phase: MAJ⁻¹(q0,..) + MAJ(q0,q1,q2) = 4
        // ops touch the input data cells; the other 4 (2 inits + 2 ancilla
        // MAJs) do not but still belong to the extended rectangle.
        self.audit()
            .ops_touching
            .iter()
            .map(|&t| t + (self.recovery_ops_per_codeword - 4))
            .collect()
    }
}

/// Builds a full 2D cycle applying `gate` (wires must be logical indices
/// 0, 1, 2) to three codewords.
///
/// # Panics
///
/// Panics if `gate` does not act on exactly the logical wires `{0,1,2}`.
pub fn build_cycle_2d(gate: &Gate, scheme: InterleaveScheme) -> Cycle2D {
    let support = gate.support();
    assert!(
        support.len() == 3 && (0..3).all(|i| support.contains(Wire::new(i))),
        "gate must act on logical wires 0,1,2"
    );
    match scheme {
        InterleaveScheme::Perpendicular => build_perpendicular(gate),
        InterleaveScheme::Parallel => build_parallel(gate),
    }
}

/// Perpendicular interleave: tiles side by side, outer data columns move
/// across the ancilla columns to meet the middle one.
fn build_perpendicular(gate: &Gate) -> Cycle2D {
    let lattice = Lattice::grid(9, 3);
    let tiles: Vec<Tile2D> = (0..3).map(|t| Tile2D::new(lattice, (3 * t, 0))).collect();
    let mut c = Circuit::new(lattice.n_cells());
    let at = |x: usize, y: usize| lattice.wire_at(x, y);

    // Interleave: A's data column x=1 → x=3; C's x=7 → x=5. 6 SWAP3.
    for y in 0..3 {
        c.swap3(at(1, y), at(2, y), at(3, y));
    }
    for y in 0..3 {
        c.swap3(at(7, y), at(6, y), at(5, y));
    }
    // Transversal gate on each row: (A,B,C) at x = 3,4,5.
    for y in 0..3 {
        let map = [at(3, y), at(4, y), at(5, y)];
        c.push(Op::Gate(gate.remap(&map)));
    }
    // Uninterleave (exact inverses).
    for y in 0..3 {
        c.swap3(at(3, y), at(2, y), at(1, y));
    }
    for y in 0..3 {
        c.swap3(at(5, y), at(6, y), at(7, y));
    }
    let transport_ops = 12;
    // Recovery on each tile.
    for tile in &tiles {
        tile.push_recovery(&mut c);
    }
    Cycle2D {
        circuit: c,
        lattice,
        inputs: tiles.iter().map(|t| t.data_in()).collect(),
        outputs: tiles.iter().map(|t| t.data_out()).collect(),
        scheme: InterleaveScheme::Perpendicular,
        transport_ops,
        recovery_ops_per_codeword: 8,
    }
}

/// Parallel interleave: tiles stacked along the bit line; the nine data
/// cells form one contiguous column and are riffled with 4 SWAP3 + 1 SWAP.
fn build_parallel(gate: &Gate) -> Cycle2D {
    let lattice = Lattice::grid(3, 9);
    let tiles: Vec<Tile2D> = (0..3).map(|t| Tile2D::new(lattice, (0, 3 * t))).collect();
    let mut c = Circuit::new(lattice.n_cells());
    // The data column: x=1, y = 0..9. Position p in the column.
    let col = |p: usize| lattice.wire_at(1, p);

    // Riffle [a0 a1 a2 b0 b1 b2 c0 c1 c2] -> [a0 b0 c0 a1 b1 c1 a2 b2 c2]:
    // the involution (0)(4)(8)(1 3)(2 6)(5 7), done in 9 elementary swaps.
    let riffle: [(usize, usize, Option<usize>); 5] = [
        (3, 2, Some(1)),
        (6, 5, Some(4)),
        (4, 3, Some(2)),
        (4, 5, None),
        (7, 6, Some(5)),
    ];
    for &(a, b, m) in &riffle {
        match m {
            Some(m2) => {
                c.swap3(col(a), col(b), col(m2));
            }
            None => {
                c.swap(col(a), col(b));
            }
        }
    }
    // Transversal gates on contiguous vertical triples.
    for i in 0..3 {
        let map = [col(3 * i), col(3 * i + 1), col(3 * i + 2)];
        c.push(Op::Gate(gate.remap(&map)));
    }
    // Un-riffle: inverse schedule in reverse order.
    for &(a, b, m) in riffle.iter().rev() {
        match m {
            Some(m2) => {
                c.swap3(col(m2), col(b), col(a));
            }
            None => {
                c.swap(col(a), col(b));
            }
        }
    }
    let transport_ops = 10;
    for tile in &tiles {
        tile.push_recovery(&mut c);
    }
    Cycle2D {
        circuit: c,
        lattice,
        inputs: tiles.iter().map(|t| t.data_in()).collect(),
        outputs: tiles.iter().map(|t| t.data_out()).collect(),
        scheme: InterleaveScheme::Parallel,
        transport_ops,
        recovery_ops_per_codeword: 8,
    }
}

/// Builds the recovery-only circuit for `n_tiles` codewords in a row — the
/// configuration showing that 2D error recovery needs *no* transport.
pub fn build_recovery_row(n_tiles: usize) -> (Circuit, Lattice, Vec<Tile2D>) {
    assert!(n_tiles > 0, "need at least one tile");
    let lattice = Lattice::grid(3 * n_tiles, 3);
    let tiles: Vec<Tile2D> = (0..n_tiles)
        .map(|t| Tile2D::new(lattice, (3 * t, 0)))
        .collect();
    let mut c = Circuit::new(lattice.n_cells());
    for tile in &tiles {
        tile.push_recovery(&mut c);
    }
    (c, lattice, tiles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rft_revsim::gate::OpKind;
    use rft_revsim::prelude::*;

    fn toffoli() -> Gate {
        Gate::Toffoli {
            controls: [w(0), w(1)],
            target: w(2),
        }
    }

    #[test]
    fn tile_coords_cover_the_tile() {
        let mut seen = [[false; 3]; 3];
        for (x, y) in TILE_COORDS {
            assert!(!seen[y][x], "coordinate ({x},{y}) repeated");
            seen[y][x] = true;
        }
    }

    #[test]
    fn recovery_on_a_tile_is_fully_local() {
        let (c, lattice, _) = build_recovery_row(1);
        let report = lattice.check_circuit(&c);
        assert!(report.is_local(), "non-local ops: {:?}", report.non_local);
        // In 2D even the init triples are straight columns.
        assert_eq!(report.local_bend, 0, "all recovery ops are straight lines");
        assert_eq!(report.init_exempt, 2);
        assert_eq!(report.local_line, 6);
    }

    #[test]
    fn recovery_row_of_many_tiles_stays_local() {
        let (c, lattice, tiles) = build_recovery_row(4);
        assert!(lattice.check_circuit(&c).is_local());
        assert_eq!(tiles.len(), 4);
        assert_eq!(c.len(), 4 * 8);
    }

    #[test]
    fn perpendicular_cycle_is_fully_local() {
        let cycle = build_cycle_2d(&toffoli(), InterleaveScheme::Perpendicular);
        let report = cycle.lattice.check_circuit(&cycle.circuit);
        assert!(report.is_local(), "non-local ops: {:?}", report.non_local);
    }

    #[test]
    fn parallel_cycle_is_fully_local() {
        let cycle = build_cycle_2d(&toffoli(), InterleaveScheme::Parallel);
        let report = cycle.lattice.check_circuit(&cycle.circuit);
        assert!(report.is_local(), "non-local ops: {:?}", report.non_local);
    }

    #[test]
    fn perpendicular_swap_counts_match_paper() {
        // "Interleaving three logical bits perpendicular to the logic line
        // requires 12 SWAP gates" (= 6 SWAP3), 6 swaps on a moving codeword.
        let cycle = build_cycle_2d(&toffoli(), InterleaveScheme::Perpendicular);
        let stats = cycle.circuit.stats();
        assert_eq!(stats.count(OpKind::Swap3), 12); // 6 in + 6 out
        let audit = cycle.audit();
        // Moving codewords (A, C) each see 2×3 SWAP3 = 12 elementary swaps
        // round trip = 6 each way; B sees none.
        assert_eq!(audit.elementary_swaps[0], 12);
        assert_eq!(audit.elementary_swaps[1], 0);
        assert_eq!(audit.elementary_swaps[2], 12);
    }

    #[test]
    fn parallel_swap_counts_match_paper() {
        // "Interleaving three logical bits parallel to the logical line
        // requires nine SWAP gates" per direction.
        let cycle = build_cycle_2d(&toffoli(), InterleaveScheme::Parallel);
        let stats = cycle.circuit.stats();
        assert_eq!(stats.count(OpKind::Swap3), 8); // 4 in + 4 out
        assert_eq!(stats.count(OpKind::Swap), 2); // 1 in + 1 out
                                                  // 9 elementary swaps per direction in total across codewords; each
                                                  // codeword participates in at most 3 SWAP3-equivalents per
                                                  // direction ("at most six SWAPs on a given logical bit").
        let audit = cycle.audit();
        for (i, &sw) in audit.swaps_touching.iter().enumerate() {
            assert!(sw <= 10, "codeword {i} touched by {sw} swap ops round-trip");
        }
    }

    #[test]
    fn cycles_compute_the_logical_gate() {
        for scheme in [InterleaveScheme::Perpendicular, InterleaveScheme::Parallel] {
            let cycle = build_cycle_2d(&toffoli(), scheme);
            let spec = cycle.to_cycle_spec(&toffoli());
            spec.verify_ideal()
                .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
        }
    }

    #[test]
    fn perpendicular_cycle_is_single_fault_tolerant() {
        // The perpendicular interleave moves data only across *ancilla*
        // columns, so no operation ever touches data bits of two codewords
        // at misaligned code positions: the full cycle is exactly
        // single-fault tolerant, as the paper's counting assumes.
        let cycle = build_cycle_2d(&toffoli(), InterleaveScheme::Perpendicular);
        let spec = cycle.to_cycle_spec(&toffoli());
        let sweep = spec.sweep_single_faults();
        assert!(sweep.is_fault_tolerant(), "violated by {:?}", sweep.worst);
        assert_eq!(sweep.max_codeword_error, 1);
        assert_eq!(sweep.first_order_worst, 0.0);
    }

    #[test]
    fn parallel_cycle_has_first_order_failures() {
        // REPRODUCTION FINDING (see DESIGN.md): riffling codewords that are
        // adjacent *along the bit line* makes some SWAP3 ops span two data
        // bits of one codeword (e.g. a1,a2 next to b0). A single fault
        // there leaves two errors in that codeword — the exhaustive sweep
        // exposes a first-order failure path the paper's per-codeword swap
        // counting does not model. The coefficient is small (a few bad
        // (op, pattern) pairs), so the quoted threshold still describes the
        // practically relevant regime, but strict fault tolerance fails.
        let cycle = build_cycle_2d(&toffoli(), InterleaveScheme::Parallel);
        let spec = cycle.to_cycle_spec(&toffoli());
        let sweep = spec.sweep_single_faults();
        assert!(!sweep.is_fault_tolerant(), "expected the known violation");
        assert!(sweep.first_order_worst > 0.0);
        // Measured: ≈ 2.9 equivalent always-fatal ops for the worst input.
        assert!(
            sweep.first_order_worst < 5.0,
            "first-order coefficient {} unexpectedly large",
            sweep.first_order_worst
        );
    }

    #[test]
    fn per_codeword_budget_brackets_paper_g() {
        // The paper quotes G = 14 (16 with init) for a full 2D cycle; our
        // audited construction gives 15/17 for the moving codewords (see
        // DESIGN.md "known discrepancies"). Assert we are within one op.
        let cycle = build_cycle_2d(&toffoli(), InterleaveScheme::Perpendicular);
        let budget = cycle.per_codeword_budget();
        let worst = *budget.iter().max().unwrap();
        assert!(
            (16..=17).contains(&worst),
            "worst-codeword budget {worst} not within expected range"
        );
        // The middle codeword needs no transport: 3 gate + 8 recovery.
        assert_eq!(budget[1], 11);
    }

    #[test]
    fn tile_wires_are_distinct_across_tiles() {
        let (_, lattice, tiles) = build_recovery_row(3);
        let mut seen = std::collections::HashSet::new();
        for t in &tiles {
            for q in 0..9 {
                assert!(seen.insert(t.wire(q)), "wire reused across tiles");
            }
        }
        assert_eq!(seen.len(), 27);
        assert_eq!(lattice.n_cells(), 27);
    }

    #[test]
    #[should_panic(expected = "logical wires 0,1,2")]
    fn cycle_rejects_wrong_logical_wires() {
        let bad = Gate::Maj(w(0), w(1), w(3));
        let _ = build_cycle_2d(&bad, InterleaveScheme::Perpendicular);
    }
}
