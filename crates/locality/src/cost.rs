//! Per-codeword operation accounting.
//!
//! The threshold analysis of §2.2 counts `G`: the number of operations per
//! cycle whose failure can corrupt one encoded bit. On a lattice, codeword
//! bits *move* (SWAP/SWAP3 transport), so the audit tracks cell ownership
//! through the circuit and counts, for each codeword, the operations that
//! touch any cell it currently occupies.

use rft_revsim::circuit::Circuit;
use rft_revsim::gate::Gate;
use rft_revsim::op::Op;
use rft_revsim::wire::Wire;
use serde::{Deserialize, Serialize};

/// Result of tracking codeword transport through a circuit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportAudit {
    /// Per codeword: number of ops touching a currently-owned cell.
    pub ops_touching: Vec<usize>,
    /// Per codeword: SWAP-family ops among those (the transport overhead).
    pub swaps_touching: Vec<usize>,
    /// Per codeword: elementary swap count (a SWAP3 counts as two).
    pub elementary_swaps: Vec<usize>,
    /// Final cell of each codeword bit (`positions[cw][bit]`).
    pub final_positions: Vec<Vec<Wire>>,
}

impl TransportAudit {
    /// The largest per-codeword op count — the budget `G` contribution of
    /// the audited phase for the worst codeword.
    pub fn worst(&self) -> usize {
        self.ops_touching.iter().copied().max().unwrap_or(0)
    }

    /// Total elementary swaps across all codewords' touches. Note a swap
    /// touching two codewords is counted once per codeword here.
    pub fn total_elementary_swaps(&self) -> usize {
        self.elementary_swaps.iter().sum()
    }
}

/// Tracks codeword bits through `circuit`, starting from
/// `initial[cw][bit] = cell`, and counts per-codeword op touches.
///
/// SWAP and SWAP3 move ownership with the values they carry; all other
/// gates act in place. Two cells owned by the same codeword touched by one
/// op count once.
///
/// # Panics
///
/// Panics if initial positions repeat a cell or lie outside the circuit.
pub fn audit_transport(circuit: &Circuit, initial: &[Vec<Wire>]) -> TransportAudit {
    let n = circuit.n_wires();
    let mut owner: Vec<Option<(usize, usize)>> = vec![None; n];
    for (cw, bits) in initial.iter().enumerate() {
        for (b, wire) in bits.iter().enumerate() {
            assert!(wire.index() < n, "initial position {wire} out of range");
            assert!(owner[wire.index()].is_none(), "cell {wire} assigned twice");
            owner[wire.index()] = Some((cw, b));
        }
    }
    let mut ops_touching = vec![0usize; initial.len()];
    let mut swaps_touching = vec![0usize; initial.len()];
    let mut elementary = vec![0usize; initial.len()];

    for op in circuit.ops() {
        let support = op.support();
        // Count each touched codeword once per op.
        let mut touched = [usize::MAX; 3];
        let mut n_touched = 0;
        for wire in support.as_slice() {
            if let Some((cw, _)) = owner[wire.index()] {
                if !touched[..n_touched].contains(&cw) {
                    touched[n_touched] = cw;
                    n_touched += 1;
                }
            }
        }
        let is_swap = matches!(op, Op::Gate(Gate::Swap(..)) | Op::Gate(Gate::Swap3(..)));
        for &cw in &touched[..n_touched] {
            ops_touching[cw] += 1;
            if is_swap {
                swaps_touching[cw] += 1;
            }
        }
        // Move ownership along with values.
        match op {
            Op::Gate(Gate::Swap(a, b)) => {
                owner.swap(a.index(), b.index());
                for &cw in &touched[..n_touched] {
                    elementary[cw] += 1;
                }
            }
            Op::Gate(Gate::Swap3(a, b, c)) => {
                // Values: new[a] = old[b], new[b] = old[c], new[c] = old[a].
                let oa = owner[a.index()];
                owner[a.index()] = owner[b.index()];
                owner[b.index()] = owner[c.index()];
                owner[c.index()] = oa;
                for &cw in &touched[..n_touched] {
                    elementary[cw] += 2;
                }
            }
            _ => {}
        }
    }

    let mut final_positions: Vec<Vec<Wire>> = initial
        .iter()
        .map(|bits| vec![Wire::new(0); bits.len()])
        .collect();
    for (cell, o) in owner.iter().enumerate() {
        if let Some((cw, b)) = o {
            final_positions[*cw][*b] = Wire::new(cell as u32);
        }
    }
    TransportAudit {
        ops_touching,
        swaps_touching,
        elementary_swaps: elementary,
        final_positions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rft_revsim::prelude::*;

    #[test]
    fn swaps_move_ownership() {
        let mut c = Circuit::new(4);
        c.swap(w(0), w(1)).swap(w(1), w(2)).swap(w(2), w(3));
        let audit = audit_transport(&c, &[vec![w(0)]]);
        assert_eq!(audit.final_positions[0], vec![w(3)]);
        assert_eq!(audit.ops_touching[0], 3);
        assert_eq!(audit.elementary_swaps[0], 3);
    }

    #[test]
    fn swap3_moves_two_cells() {
        let mut c = Circuit::new(3);
        c.swap3(w(0), w(1), w(2));
        let audit = audit_transport(&c, &[vec![w(0)]]);
        assert_eq!(audit.final_positions[0], vec![w(2)]);
        assert_eq!(audit.elementary_swaps[0], 2);
        assert_eq!(audit.worst(), 1);
    }

    #[test]
    fn gates_count_without_moving() {
        let mut c = Circuit::new(3);
        c.maj(w(0), w(1), w(2)).not(w(2));
        let audit = audit_transport(&c, &[vec![w(0)], vec![w(2)]]);
        assert_eq!(audit.final_positions, vec![vec![w(0)], vec![w(2)]]);
        assert_eq!(audit.ops_touching, vec![1, 2]);
        assert_eq!(audit.swaps_touching, vec![0, 0]);
    }

    #[test]
    fn one_op_touching_two_bits_of_same_codeword_counts_once() {
        let mut c = Circuit::new(3);
        c.maj(w(0), w(1), w(2));
        let audit = audit_transport(&c, &[vec![w(0), w(1), w(2)]]);
        assert_eq!(audit.ops_touching, vec![1]);
    }

    #[test]
    fn untouched_codeword_counts_zero() {
        let mut c = Circuit::new(5);
        c.cnot(w(0), w(1));
        let audit = audit_transport(&c, &[vec![w(0)], vec![w(3), w(4)]]);
        assert_eq!(audit.ops_touching, vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn overlapping_initial_positions_rejected() {
        let c = Circuit::new(3);
        let _ = audit_transport(&c, &[vec![w(0)], vec![w(0)]]);
    }

    #[test]
    fn swap_between_codewords_touches_both() {
        let mut c = Circuit::new(2);
        c.swap(w(0), w(1));
        let audit = audit_transport(&c, &[vec![w(0)], vec![w(1)]]);
        assert_eq!(audit.ops_touching, vec![1, 1]);
        assert_eq!(audit.final_positions, vec![vec![w(1)], vec![w(0)]]);
    }
}
