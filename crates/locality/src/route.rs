//! A generic nearest-neighbour compiler for 1D chains.
//!
//! §3 notes that "when it is necessary to operate on pairs of remote bits,
//! we must first move them close together by a series of SWAP operations
//! and then operate". This module implements exactly that for arbitrary
//! circuits: every non-local operation is sandwiched between a swap network
//! that gathers its operands around the middle one and the inverse network
//! that restores the placement, so wire `i` always lives at cell `i`
//! between gates.
//!
//! The output circuit computes the same permutation (restoring placement
//! after every gate keeps the identity layout) and passes the
//! [`Lattice::line`] locality check; the swap overhead is the price the 1D
//! threshold of §3.2 pays.

use crate::lattice::Lattice;
use rft_revsim::circuit::Circuit;
use rft_revsim::gate::Gate;
use rft_revsim::op::Op;
use rft_revsim::wire::{w, Wire};
use serde::{Deserialize, Serialize};

/// Statistics of a line-routing pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteStats {
    /// Logical operations routed.
    pub ops: usize,
    /// Operations that needed no transport.
    pub already_local: usize,
    /// SWAP3 gates inserted (gather + restore).
    pub swap3_inserted: usize,
    /// SWAP gates inserted (gather + restore).
    pub swap_inserted: usize,
}

impl RouteStats {
    /// Total elementary swaps inserted.
    pub fn elementary_swaps(&self) -> usize {
        2 * self.swap3_inserted + self.swap_inserted
    }
}

/// Emits adjacent swaps (bundled into SWAP3s) moving the value at `from`
/// to `to`; records the moves so they can be undone.
fn gather(c: &mut Circuit, moves: &mut Vec<Gate>, stats: &mut RouteStats, from: usize, to: usize) {
    let mut pos = from as isize;
    let target = to as isize;
    let step: isize = if target > pos { 1 } else { -1 };
    while pos != target {
        let remaining = (target - pos).abs();
        let gate = if remaining >= 2 {
            stats.swap3_inserted += 1;
            let g = Gate::Swap3(
                w(pos as u32),
                w((pos + step) as u32),
                w((pos + 2 * step) as u32),
            );
            pos += 2 * step;
            g
        } else {
            stats.swap_inserted += 1;
            let g = Gate::Swap(w(pos as u32), w((pos + step) as u32));
            pos += step;
            g
        };
        c.push(Op::Gate(gate));
        moves.push(gate);
    }
}

/// Compiles `circuit` into an equivalent nearest-neighbour circuit on a
/// line where wire `i` occupies cell `i` before and after every operation.
///
/// Returns the routed circuit and insertion statistics.
///
/// # Examples
///
/// ```
/// use rft_locality::route::route_line;
/// use rft_locality::lattice::Lattice;
/// use rft_revsim::prelude::*;
///
/// let mut c = Circuit::new(6);
/// c.toffoli(w(0), w(5), w(2)); // far-apart operands
/// let (routed, stats) = route_line(&c);
/// assert!(Lattice::line(6).check_circuit(&routed).is_local());
/// assert!(stats.elementary_swaps() > 0);
/// ```
pub fn route_line(circuit: &Circuit) -> (Circuit, RouteStats) {
    let lattice = Lattice::line(circuit.n_wires().max(1));
    let mut out = Circuit::with_capacity(circuit.n_wires(), circuit.len() * 4);
    let mut stats = RouteStats::default();
    for op in circuit.ops() {
        stats.ops += 1;
        if !matches!(lattice.classify(op), crate::lattice::OpLocality::NonLocal) {
            stats.already_local += 1;
            out.push(*op);
            continue;
        }
        let support = op.support();
        let s = support.as_slice();
        let mut moves: Vec<Gate> = Vec::new();
        // Current cell of each operand (identity placement before gather).
        let mut cells: Vec<usize> = s.iter().map(|w| w.index()).collect();
        match cells.len() {
            2 => {
                // Bring the second operand next to the first.
                let a = cells[0];
                let b = cells[1];
                let target = if b > a { a + 1 } else { a - 1 };
                gather(&mut out, &mut moves, &mut stats, b, target);
                cells[1] = target;
            }
            3 => {
                // Sort operand cells, park outer ones beside the middle.
                let mut order = [0usize, 1, 2];
                order.sort_by_key(|&i| cells[i]);
                let (lo, mid, hi) = (order[0], order[1], order[2]);
                let mid_cell = cells[mid];
                if cells[lo] != mid_cell - 1 {
                    gather(&mut out, &mut moves, &mut stats, cells[lo], mid_cell - 1);
                    cells[lo] = mid_cell - 1;
                }
                if cells[hi] != mid_cell + 1 {
                    gather(&mut out, &mut moves, &mut stats, cells[hi], mid_cell + 1);
                    cells[hi] = mid_cell + 1;
                }
            }
            _ => {}
        }
        // Apply the op with operands at their gathered cells.
        let max_wire = s.iter().map(|w| w.index()).max().unwrap_or(0);
        let mut map: Vec<Wire> = (0..=max_wire as u32).map(w).collect();
        for (operand, &cell) in s.iter().zip(cells.iter()) {
            map[operand.index()] = w(cell as u32);
        }
        out.push(op.remap(&map));
        // Restore placement.
        for g in moves.iter().rev() {
            out.push(Op::Gate(g.inverse()));
        }
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rft_revsim::permutation::Permutation;

    #[test]
    fn local_circuits_pass_through() {
        let mut c = Circuit::new(4);
        c.cnot(w(0), w(1)).maj(w(1), w(2), w(3));
        let (routed, stats) = route_line(&c);
        assert_eq!(routed.len(), c.len());
        assert_eq!(stats.already_local, 2);
        assert_eq!(stats.elementary_swaps(), 0);
    }

    #[test]
    fn remote_cnot_is_gathered_and_restored() {
        let mut c = Circuit::new(5);
        c.cnot(w(0), w(4));
        let (routed, _) = route_line(&c);
        assert!(Lattice::line(5).check_circuit(&routed).is_local());
        let p = Permutation::of_circuit(&c).unwrap();
        let pr = Permutation::of_circuit(&routed).unwrap();
        assert_eq!(p, pr, "routing must preserve semantics");
    }

    #[test]
    fn remote_toffoli_preserves_semantics() {
        let mut c = Circuit::new(7);
        c.toffoli(w(0), w(6), w(3));
        let (routed, stats) = route_line(&c);
        assert!(Lattice::line(7).check_circuit(&routed).is_local());
        assert_eq!(
            Permutation::of_circuit(&c).unwrap(),
            Permutation::of_circuit(&routed).unwrap()
        );
        assert!(stats.elementary_swaps() >= 4);
    }

    #[test]
    fn mixed_program_routes_correctly() {
        let mut c = Circuit::new(6);
        c.maj(w(0), w(3), w(5))
            .cnot(w(5), w(0))
            .toffoli(w(1), w(4), w(2))
            .swap(w(0), w(5))
            .not(w(3));
        let (routed, _) = route_line(&c);
        assert!(Lattice::line(6).check_circuit(&routed).is_local());
        assert_eq!(
            Permutation::of_circuit(&c).unwrap(),
            Permutation::of_circuit(&routed).unwrap()
        );
    }

    #[test]
    fn inits_pass_through_unrouted() {
        let mut c = Circuit::new(6);
        c.init(&[w(0), w(3), w(5)]);
        let (routed, stats) = route_line(&c);
        assert_eq!(routed.len(), 1);
        assert_eq!(stats.already_local, 1);
    }

    #[test]
    fn adjacent_operands_in_reverse_order_stay_put() {
        let mut c = Circuit::new(3);
        c.maj(w(2), w(1), w(0)); // contiguous, just reversed
        let (routed, stats) = route_line(&c);
        assert_eq!(stats.elementary_swaps(), 0);
        assert_eq!(routed.len(), 1);
    }
}
