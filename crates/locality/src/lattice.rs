//! Lattices of bits with nearest-neighbour interactions (§3).
//!
//! "We assume that we may only operate on at most three neighboring bits at
//! a time." A [`Lattice`] assigns every wire a cell on a line or grid and
//! judges whether each circuit operation is *local*: its support must form
//! a connected set of cells under 4-neighbour adjacency.
//!
//! Initializations are exempt: a reset is a single-cell erasure against a
//! fresh-bit reservoir and needs no neighbour *interaction* — the paper
//! bundles resets in threes purely for error accounting ("we assume that we
//! can reset three bits with one initialization operation"). The verdict
//! still records them so reports can show the exemption explicitly.

use rft_revsim::circuit::Circuit;
use rft_revsim::op::Op;
use rft_revsim::wire::{w, Wire};
use serde::{Deserialize, Serialize};

/// A physical arrangement of wires on a 1D line or 2D grid.
///
/// Wires map to cells row-major: wire `y·width + x` sits at `(x, y)`.
///
/// # Examples
///
/// ```
/// use rft_locality::lattice::Lattice;
/// use rft_revsim::prelude::*;
///
/// let grid = Lattice::grid(3, 3);
/// assert!(grid.adjacent(w(0), w(1)));     // (0,0)-(1,0)
/// assert!(grid.adjacent(w(1), w(4)));     // (1,0)-(1,1)
/// assert!(!grid.adjacent(w(0), w(4)));    // diagonal
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Lattice {
    width: usize,
    height: usize,
}

impl Lattice {
    /// A 1D chain of `len` cells.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn line(len: usize) -> Self {
        assert!(len > 0, "lattice must have at least one cell");
        Lattice {
            width: len,
            height: 1,
        }
    }

    /// A `width × height` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn grid(width: usize, height: usize) -> Self {
        assert!(
            width > 0 && height > 0,
            "lattice must have at least one cell"
        );
        Lattice { width, height }
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height (1 for a line).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of cells (= wires).
    pub fn n_cells(&self) -> usize {
        self.width * self.height
    }

    /// Whether this lattice is one-dimensional.
    pub fn is_line(&self) -> bool {
        self.height == 1 || self.width == 1
    }

    /// The wire at grid coordinates `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the lattice.
    pub fn wire_at(&self, x: usize, y: usize) -> Wire {
        assert!(
            x < self.width && y < self.height,
            "({x},{y}) outside {self:?}"
        );
        w((y * self.width + x) as u32)
    }

    /// Grid coordinates of a wire.
    ///
    /// # Panics
    ///
    /// Panics if the wire is outside the lattice.
    pub fn coords(&self, wire: Wire) -> (usize, usize) {
        let i = wire.index();
        assert!(i < self.n_cells(), "wire {wire} outside {self:?}");
        (i % self.width, i / self.width)
    }

    /// Whether two wires occupy 4-neighbour adjacent cells.
    pub fn adjacent(&self, a: Wire, b: Wire) -> bool {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by) == 1
    }

    /// Classifies the locality of one operation.
    pub fn classify(&self, op: &Op) -> OpLocality {
        if matches!(op, Op::Init(_)) {
            return OpLocality::InitExempt;
        }
        let support = op.support();
        let s = support.as_slice();
        let connected = match s.len() {
            1 => true,
            2 => self.adjacent(s[0], s[1]),
            3 => {
                let ab = self.adjacent(s[0], s[1]);
                let bc = self.adjacent(s[1], s[2]);
                let ac = self.adjacent(s[0], s[2]);
                (ab && (bc || ac)) || (bc && ac)
            }
            _ => false,
        };
        if !connected {
            return OpLocality::NonLocal;
        }
        if s.len() == 3 {
            let (x0, y0) = self.coords(s[0]);
            let (x1, y1) = self.coords(s[1]);
            let (x2, y2) = self.coords(s[2]);
            let collinear = (x0 == x1 && x1 == x2) || (y0 == y1 && y1 == y2);
            if collinear {
                OpLocality::LocalLine
            } else {
                OpLocality::LocalBend
            }
        } else {
            OpLocality::LocalLine
        }
    }

    /// Validates every operation of a circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more wires than the lattice has cells.
    pub fn check_circuit(&self, circuit: &Circuit) -> LocalityReport {
        assert!(
            circuit.n_wires() <= self.n_cells(),
            "circuit has {} wires but lattice only {} cells",
            circuit.n_wires(),
            self.n_cells()
        );
        let mut report = LocalityReport::default();
        for (i, op) in circuit.ops().iter().enumerate() {
            match self.classify(op) {
                OpLocality::LocalLine => report.local_line += 1,
                OpLocality::LocalBend => report.local_bend += 1,
                OpLocality::InitExempt => report.init_exempt += 1,
                OpLocality::NonLocal => report.non_local.push(i),
            }
        }
        report
    }
}

/// Locality classification of a single operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpLocality {
    /// Support is a straight contiguous run of cells (or ≤ 2 adjacent cells).
    LocalLine,
    /// Support is a connected L-shaped cell triple.
    LocalBend,
    /// Reset — exempt from the interaction-locality requirement.
    InitExempt,
    /// Support is not a connected set of cells.
    NonLocal,
}

/// Summary of a circuit locality check.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalityReport {
    /// Gates on straight contiguous cells.
    pub local_line: usize,
    /// Gates on L-shaped connected triples.
    pub local_bend: usize,
    /// Exempted initializations.
    pub init_exempt: usize,
    /// Op indices whose support is not connected.
    pub non_local: Vec<usize>,
}

impl LocalityReport {
    /// Whether every gate (resets aside) is nearest-neighbour local.
    pub fn is_local(&self) -> bool {
        self.non_local.is_empty()
    }

    /// Total gates inspected (excluding exempt resets).
    pub fn gates(&self) -> usize {
        self.local_line + self.local_bend + self.non_local.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rft_revsim::gate::Gate;

    #[test]
    fn line_adjacency() {
        let line = Lattice::line(5);
        assert!(line.is_line());
        assert!(line.adjacent(w(0), w(1)));
        assert!(line.adjacent(w(3), w(2)));
        assert!(!line.adjacent(w(0), w(2)));
        assert_eq!(line.n_cells(), 5);
    }

    #[test]
    fn grid_coords_roundtrip() {
        let g = Lattice::grid(4, 3);
        for y in 0..3 {
            for x in 0..4 {
                assert_eq!(g.coords(g.wire_at(x, y)), (x, y));
            }
        }
    }

    #[test]
    fn grid_rejects_wraparound_adjacency() {
        let g = Lattice::grid(3, 3);
        // wire 2 = (2,0), wire 3 = (0,1): consecutive indices but not adjacent.
        assert!(!g.adjacent(w(2), w(3)));
    }

    #[test]
    fn classify_line_and_bend_triples() {
        let g = Lattice::grid(3, 3);
        // Horizontal line (0,0),(1,0),(2,0) = wires 0,1,2.
        let line3 = Op::Gate(Gate::Maj(w(0), w(1), w(2)));
        assert_eq!(g.classify(&line3), OpLocality::LocalLine);
        // Vertical line wires 1,4,7.
        let vline = Op::Gate(Gate::Maj(w(1), w(4), w(7)));
        assert_eq!(g.classify(&vline), OpLocality::LocalLine);
        // L-shape (0,0),(1,0),(1,1) = wires 0,1,4.
        let bend = Op::Gate(Gate::Maj(w(0), w(1), w(4)));
        assert_eq!(g.classify(&bend), OpLocality::LocalBend);
        // Disconnected (0,0),(2,0),(2,2) = wires 0,2,8.
        let far = Op::Gate(Gate::Maj(w(0), w(2), w(8)));
        assert_eq!(g.classify(&far), OpLocality::NonLocal);
    }

    #[test]
    fn classify_unordered_triples() {
        // Connectivity must not depend on argument order.
        let g = Lattice::line(9);
        for perm in [[2u32, 0, 1], [1, 2, 0], [0, 2, 1]] {
            let gate = Op::Gate(Gate::Maj(w(perm[0]), w(perm[1]), w(perm[2])));
            assert_ne!(g.classify(&gate), OpLocality::NonLocal, "{perm:?}");
        }
    }

    #[test]
    fn inits_are_exempt() {
        let g = Lattice::line(9);
        let init = Op::init(&[w(0), w(4), w(8)]);
        assert_eq!(g.classify(&init), OpLocality::InitExempt);
    }

    #[test]
    fn single_bit_gates_always_local() {
        let g = Lattice::grid(2, 2);
        assert_eq!(
            g.classify(&Op::Gate(Gate::Not(w(3)))),
            OpLocality::LocalLine
        );
    }

    #[test]
    fn report_flags_nonlocal_ops() {
        let g = Lattice::line(5);
        let mut c = Circuit::new(5);
        c.cnot(w(0), w(1)); // local
        c.cnot(w(0), w(4)); // non-local
        c.init(&[w(2), w(3), w(4)]);
        let report = g.check_circuit(&c);
        assert!(!report.is_local());
        assert_eq!(report.non_local, vec![1]);
        assert_eq!(report.local_line, 1);
        assert_eq!(report.init_exempt, 1);
        assert_eq!(report.gates(), 2);
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn check_rejects_oversized_circuits() {
        let g = Lattice::line(3);
        let c = Circuit::new(4);
        let _ = g.check_circuit(&c);
    }

    #[test]
    fn swap3_on_a_line_is_local() {
        let g = Lattice::line(9);
        let op = Op::Gate(Gate::Swap3(w(3), w(4), w(5)));
        assert_eq!(g.classify(&op), OpLocality::LocalLine);
    }
}
