//! The 1D nearest-neighbour scheme (§3.2, Figures 6 and 7).
//!
//! Each codeword occupies a nine-cell tile on the line, in the wire order
//! of Figure 7: `[q0 q3 q6 | q1 q4 q7 | q2 q5 q8]` — data at offsets
//! 0, 3, 6 and ancillas between them. With that order the three `MAJ⁻¹`
//! fan-outs act on contiguous cell triples for free; regrouping for the
//! three decode `MAJ` gates costs nine adjacent SWAPs, bundled as four
//! SWAP3 gates plus one SWAP. Total recovery cost: 13 operations with
//! initialization, 11 without — the paper's `E` for 1D.
//!
//! Logical gates additionally pay the Figure 6 interleave: bringing the two
//! outer codewords to the middle one costs `8+7+6` SWAPs for `b0` and
//! `10+8+6` for `b2` — 45 in total — and the same again to uninterleave,
//! giving the paper's `G = 40` (12 SWAP3 each way + 3 gate ops + 13
//! recovery ops).

use crate::cost::{audit_transport, TransportAudit};
use crate::lattice::Lattice;
use rft_core::ftcheck::CycleSpec;
use rft_revsim::circuit::Circuit;
use rft_revsim::gate::Gate;
use rft_revsim::op::Op;
use rft_revsim::permutation::Permutation;
use rft_revsim::wire::{w, Wire};
use serde::{Deserialize, Serialize};

/// Cells per codeword tile.
pub const TILE_LEN: usize = 9;

/// Within-tile offsets of the data bits (code bits 0, 1, 2).
pub const DATA_OFFSETS: [usize; 3] = [0, 3, 6];

/// Figure 7 wire labels in line order: cell `i` of a tile holds `TILE_ORDER[i]`.
pub const TILE_ORDER: [usize; 9] = [0, 3, 6, 1, 4, 7, 2, 5, 8];

/// Operations in the 1D recovery with initialization (paper: 13).
pub const E_LOCAL_1D_WITH_INIT: usize = 13;

/// Operations in the 1D recovery without initialization (paper: 11).
pub const E_LOCAL_1D_NO_INIT: usize = 11;

/// A codeword tile on the line, starting at cell `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tile1D {
    start: usize,
}

impl Tile1D {
    /// Creates a tile whose first cell is `start`.
    pub fn new(start: usize) -> Self {
        Tile1D { start }
    }

    /// The wire of within-tile cell `offset` (0..9).
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 9`.
    pub fn wire(&self, offset: usize) -> Wire {
        assert!(offset < TILE_LEN, "tile offset {offset} out of range");
        w((self.start + offset) as u32)
    }

    /// Codeword positions at the start of a cycle (offsets 0, 3, 6).
    pub fn data(&self) -> [Wire; 3] {
        [self.wire(0), self.wire(3), self.wire(6)]
    }

    /// Appends the Figure 7 local recovery onto `circuit`.
    ///
    /// Sequence: two ancilla resets, three contiguous `MAJ⁻¹`, the nine-swap
    /// regroup (4 SWAP3 + 1 SWAP), three contiguous `MAJ`. The refreshed
    /// codeword lands back on offsets 0, 3, 6 — the tile pattern is
    /// self-similar from cycle to cycle.
    pub fn push_recovery(&self, circuit: &mut Circuit) {
        let p = |offset: usize| self.wire(offset);
        // Ancilla groups in paper labels: (q3,q4,q5) at offsets 1,4,7 and
        // (q6,q7,q8) at offsets 2,5,8. Resets are single-cell erasures
        // bundled for accounting; they need no adjacency (see lattice docs).
        circuit.init(&[p(1), p(4), p(7)]);
        circuit.init(&[p(2), p(5), p(8)]);
        // Fan-out on contiguous triples: (q0,q3,q6), (q1,q4,q7), (q2,q5,q8).
        circuit.maj_inv(p(0), p(1), p(2));
        circuit.maj_inv(p(3), p(4), p(5));
        circuit.maj_inv(p(6), p(7), p(8));
        // Regroup [q0,q3,q6,q1,q4,q7,q2,q5,q8] -> [q0,q1,q2,q3,...,q8]
        // in nine adjacent swaps = 4 SWAP3 + 1 SWAP.
        circuit.swap3(p(3), p(2), p(1));
        circuit.swap3(p(6), p(5), p(4));
        circuit.swap3(p(4), p(3), p(2));
        circuit.swap(p(4), p(5));
        circuit.swap3(p(7), p(6), p(5));
        // Decode on contiguous triples.
        circuit.maj(p(0), p(1), p(2));
        circuit.maj(p(3), p(4), p(5));
        circuit.maj(p(6), p(7), p(8));
    }
}

/// Swap-count bookkeeping for a Figure 6 interleave.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterleaveCost1D {
    /// Elementary swaps per moved bit, in the paper's order:
    /// `b0` last/second/first, then `b2` first/second/last.
    pub per_move: Vec<usize>,
    /// Total elementary swaps (paper: 45).
    pub total_swaps: usize,
    /// SWAP3 operations emitted.
    pub swap3_ops: usize,
    /// Bare SWAP operations emitted.
    pub swap_ops: usize,
}

/// Moves a bit along the line with adjacent swaps, bundling consecutive
/// pairs into SWAP3 gates. Returns the number of elementary swaps.
fn route_bit(circuit: &mut Circuit, from: usize, to: usize, cost: &mut InterleaveCost1D) -> usize {
    let mut pos = from as isize;
    let target = to as isize;
    let step: isize = if target > pos { 1 } else { -1 };
    let mut swaps = 0usize;
    while pos != target {
        let remaining = (target - pos).abs();
        if remaining >= 2 {
            // SWAP3 moves the bit two cells: Swap3(a,b,c) sends a's value to c.
            let a = pos;
            let b = pos + step;
            let c = pos + 2 * step;
            circuit.swap3(w(a as u32), w(b as u32), w(c as u32));
            cost.swap3_ops += 1;
            swaps += 2;
            pos = c;
        } else {
            circuit.swap(w(pos as u32), w((pos + step) as u32));
            cost.swap_ops += 1;
            swaps += 1;
            pos += step;
        }
    }
    swaps
}

/// The Figure 6 interleave: brings the outer codewords `b0` and `b2` next
/// to the middle codeword `b1`, producing contiguous transversal triples.
///
/// Follows the paper's move order exactly: last/second/first bit of `b0`
/// to just above the corresponding bit of `b1`, then the same for `b2`
/// below — reproducing the `8+7+6` and `10+8+6` swap counts.
///
/// Returns the circuit segment, the cost account, and the positions of the
/// three transversal triples `(b0_i, b1_i, b2_i)`.
pub fn interleave_1d(
    circuit: &mut Circuit,
    tiles: &[Tile1D; 3],
) -> (InterleaveCost1D, [[Wire; 3]; 3]) {
    let mut cost = InterleaveCost1D {
        per_move: Vec::new(),
        total_swaps: 0,
        swap3_ops: 0,
        swap_ops: 0,
    };
    // Track current cell of every data bit as moves displace bystanders.
    // b1 never moves on its own but shifts when others pass it... on a
    // line, moving a bit from `from` to `to` shifts every cell in between
    // by one in the opposite direction.
    let mut pos: [[isize; 3]; 3] = [[0; 3]; 3];
    for (t, tile) in tiles.iter().enumerate() {
        for (b, offset) in DATA_OFFSETS.iter().enumerate() {
            pos[t][b] = (tile.start + offset) as isize;
        }
    }
    let do_move = |circuit: &mut Circuit,
                   cost: &mut InterleaveCost1D,
                   pos: &mut [[isize; 3]; 3],
                   cw: usize,
                   bit: usize,
                   target: isize| {
        let from = pos[cw][bit];
        let swaps = route_bit(circuit, from as usize, target as usize, cost);
        cost.per_move.push(swaps);
        cost.total_swaps += swaps;
        // Shift every bit strictly between from and target one cell back.
        for p in pos.iter_mut().flat_map(|t| t.iter_mut()) {
            if from < target && *p > from && *p <= target {
                *p -= 1;
            } else if from > target && *p < from && *p >= target {
                *p += 1;
            }
        }
        pos[cw][bit] = target;
    };
    // b0: move its last bit just above (left of) b1's last bit, then the
    // second, then the first.
    for bit in [2, 1, 0] {
        let target = pos[1][bit] - 1;
        do_move(circuit, &mut cost, &mut pos, 0, bit, target);
    }
    // b2: first bit just below (right of) b1's first bit, then second, last.
    for bit in [0, 1, 2] {
        let target = pos[1][bit] + 1;
        do_move(circuit, &mut cost, &mut pos, 2, bit, target);
    }
    let triples = [
        [
            Wire::new(pos[0][0] as u32),
            Wire::new(pos[1][0] as u32),
            Wire::new(pos[2][0] as u32),
        ],
        [
            Wire::new(pos[0][1] as u32),
            Wire::new(pos[1][1] as u32),
            Wire::new(pos[2][1] as u32),
        ],
        [
            Wire::new(pos[0][2] as u32),
            Wire::new(pos[1][2] as u32),
            Wire::new(pos[2][2] as u32),
        ],
    ];
    (cost, triples)
}

/// A complete executable 1D fault-tolerant cycle on three codewords.
#[derive(Debug, Clone)]
pub struct Cycle1D {
    /// The physical circuit.
    pub circuit: Circuit,
    /// The line lattice.
    pub lattice: Lattice,
    /// Input codeword positions per logical bit.
    pub inputs: Vec<[Wire; 3]>,
    /// Output codeword positions per logical bit.
    pub outputs: Vec<[Wire; 3]>,
    /// Interleave cost (one direction).
    pub interleave: InterleaveCost1D,
    /// Recovery ops per codeword (13, Figure 7).
    pub recovery_ops_per_codeword: usize,
}

impl Cycle1D {
    /// Converts to a [`CycleSpec`] for exhaustive fault sweeps.
    pub fn to_cycle_spec(&self, gate: &Gate) -> CycleSpec {
        let mut logical = Circuit::new(3);
        logical.push(Op::Gate(*gate));
        let perm = Permutation::of_circuit(&logical).expect("3-bit logical gate");
        CycleSpec::new(
            self.circuit.clone(),
            self.inputs.clone(),
            self.outputs.clone(),
            perm,
        )
    }

    /// Transport audit over the full cycle.
    pub fn audit(&self) -> TransportAudit {
        let initial: Vec<Vec<Wire>> = self.inputs.iter().map(|b| b.to_vec()).collect();
        audit_transport(&self.circuit, &initial)
    }
}

/// Builds a full 1D cycle applying `gate` (wires = logical indices 0,1,2):
/// Figure 6 interleave → transversal gate → uninterleave → Figure 7
/// recovery on each tile.
///
/// # Panics
///
/// Panics if `gate` does not act on exactly the logical wires `{0,1,2}`.
pub fn build_cycle_1d(gate: &Gate) -> Cycle1D {
    let support = gate.support();
    assert!(
        support.len() == 3 && (0..3).all(|i| support.contains(Wire::new(i))),
        "gate must act on logical wires 0,1,2"
    );
    let lattice = Lattice::line(3 * TILE_LEN);
    let tiles = [Tile1D::new(0), Tile1D::new(9), Tile1D::new(18)];
    let mut c = Circuit::new(lattice.n_cells());

    let interleave_start = c.len();
    let (cost, triples) = interleave_1d(&mut c, &tiles);
    // Transversal gate on contiguous triples (b0_i, b1_i, b2_i).
    for triple in triples {
        c.push(Op::Gate(gate.remap(&triple)));
    }
    // Uninterleave: exact inverse of the interleave segment.
    let interleave_ops: Vec<Op> =
        c.ops()[interleave_start..interleave_start + cost.swap3_ops + cost.swap_ops].to_vec();
    for op in interleave_ops.iter().rev() {
        match op {
            Op::Gate(g) => {
                c.push(Op::Gate(g.inverse()));
            }
            Op::Init(_) => unreachable!("interleave emits only swaps"),
        }
    }
    // Local recovery on each tile.
    for tile in &tiles {
        tile.push_recovery(&mut c);
    }
    Cycle1D {
        circuit: c,
        lattice,
        inputs: tiles.iter().map(|t| t.data()).collect(),
        outputs: tiles.iter().map(|t| t.data()).collect(),
        interleave: cost,
        recovery_ops_per_codeword: E_LOCAL_1D_WITH_INIT,
    }
}

/// Builds the recovery-only circuit for one codeword tile on a 9-cell line.
pub fn build_recovery_1d() -> (Circuit, Lattice, Tile1D) {
    let lattice = Lattice::line(TILE_LEN);
    let tile = Tile1D::new(0);
    let mut c = Circuit::new(TILE_LEN);
    tile.push_recovery(&mut c);
    (c, lattice, tile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rft_revsim::gate::OpKind;
    use rft_revsim::prelude::*;

    fn toffoli() -> Gate {
        Gate::Toffoli {
            controls: [w(0), w(1)],
            target: w(2),
        }
    }

    #[test]
    fn recovery_op_count_matches_paper() {
        let (c, _, _) = build_recovery_1d();
        assert_eq!(c.len(), E_LOCAL_1D_WITH_INIT);
        let stats = c.stats();
        assert_eq!(stats.init_ops(), 2);
        assert_eq!(stats.count(OpKind::Maj), 3);
        assert_eq!(stats.count(OpKind::MajInv), 3);
        assert_eq!(stats.count(OpKind::Swap3), 4);
        assert_eq!(stats.count(OpKind::Swap), 1);
        assert_eq!(c.len() - stats.init_ops(), E_LOCAL_1D_NO_INIT);
    }

    #[test]
    fn recovery_gates_are_all_local() {
        let (c, lattice, _) = build_recovery_1d();
        let report = lattice.check_circuit(&c);
        assert!(report.is_local(), "non-local: {:?}", report.non_local);
        assert_eq!(report.init_exempt, 2);
    }

    #[test]
    fn recovery_refreshes_and_self_similar_layout() {
        // Data enters at offsets 0,3,6 and must leave at offsets 0,3,6
        // holding the refreshed codeword.
        let (c, _, tile) = build_recovery_1d();
        for bit in [false, true] {
            for flip in 0..3usize {
                let mut s = BitState::zeros(TILE_LEN);
                for q in tile.data() {
                    s.set(q, bit);
                }
                s.flip(tile.data()[flip]);
                c.run(&mut s);
                for (i, q) in tile.data().iter().enumerate() {
                    assert_eq!(s.get(*q), bit, "output bit {i}, flip {flip}, value {bit}");
                }
            }
        }
    }

    #[test]
    fn recovery_is_single_fault_tolerant() {
        let (c, _, tile) = build_recovery_1d();
        let spec = CycleSpec::new(
            c,
            vec![tile.data()],
            vec![tile.data()],
            Permutation::identity(1),
        );
        spec.verify_ideal().unwrap();
        let sweep = spec.sweep_single_faults();
        assert!(sweep.is_fault_tolerant(), "violation: {:?}", sweep.worst);
        assert_eq!(sweep.max_codeword_error, 1);
    }

    #[test]
    fn interleave_reproduces_paper_swap_counts() {
        // "Interleaving b0 and b1 requires 8+7+6 SWAPs … Interleaving b2
        // requires 10+8+6 SWAPs. This gives a total of 45 SWAPs."
        let tiles = [Tile1D::new(0), Tile1D::new(9), Tile1D::new(18)];
        let mut c = Circuit::new(27);
        let (cost, triples) = interleave_1d(&mut c, &tiles);
        assert_eq!(cost.per_move, vec![8, 7, 6, 10, 8, 6]);
        assert_eq!(cost.total_swaps, 45);
        // Triples are contiguous and ordered (b0_i, b1_i, b2_i).
        for triple in triples {
            assert_eq!(triple[1].index(), triple[0].index() + 1);
            assert_eq!(triple[2].index(), triple[1].index() + 1);
        }
    }

    #[test]
    fn interleave_is_local() {
        let tiles = [Tile1D::new(0), Tile1D::new(9), Tile1D::new(18)];
        let mut c = Circuit::new(27);
        let _ = interleave_1d(&mut c, &tiles);
        assert!(Lattice::line(27).check_circuit(&c).is_local());
    }

    #[test]
    fn full_cycle_is_local_and_correct() {
        let cycle = build_cycle_1d(&toffoli());
        let report = cycle.lattice.check_circuit(&cycle.circuit);
        assert!(report.is_local(), "non-local: {:?}", report.non_local);
        let spec = cycle.to_cycle_spec(&toffoli());
        spec.verify_ideal().unwrap();
    }

    #[test]
    fn full_cycle_has_first_order_failures() {
        // REPRODUCTION FINDING (see DESIGN.md): on a line, interleaving
        // forces data bits of different codewords to cross at some swap, so
        // a single fault can corrupt e.g. b0's bit 2 and b1's bit 0 at
        // once. Both are single errors in their own codewords, but the
        // transversal 3-bit gate propagates them into *different* bits of
        // the target codeword — two errors, which majority recovery turns
        // into a logical flip. The paper's G = 40 counting assumes each
        // fault yields at most one error per codeword; the literal Figure 6
        // schedule does not satisfy that. The recovery circuit itself
        // (Figure 7) is fully fault tolerant — see
        // `recovery_is_single_fault_tolerant`.
        let cycle = build_cycle_1d(&toffoli());
        let spec = cycle.to_cycle_spec(&toffoli());
        let sweep = spec.sweep_single_faults();
        assert!(!sweep.is_fault_tolerant(), "expected the known violation");
        assert!(sweep.first_order_worst > 0.0);
        // The coefficient is a small number of equivalent ops, far below
        // the ~40-op budget: the O(g) term matters only at tiny g.
        assert!(
            sweep.first_order_worst < 3.0,
            "first-order coefficient {} unexpectedly large",
            sweep.first_order_worst
        );
    }

    #[test]
    fn per_codeword_swap3_counts_near_paper_twelve() {
        // Paper: "only 12 SWAP3 gates acting on each codeword to
        // interleave" (= 24 elementary swaps on the worst codeword).
        let cycle = build_cycle_1d(&toffoli());
        let audit = cycle.audit();
        // Round trip: at most 24 swap ops touching any codeword each way.
        for (i, &sw) in audit.swaps_touching.iter().enumerate() {
            assert!(sw <= 48, "codeword {i}: {sw} swap ops");
        }
        let worst = audit.swaps_touching.iter().max().unwrap();
        assert!(
            *worst >= 20,
            "worst codeword only touched by {worst} swap ops"
        );
    }

    #[test]
    fn cycle_op_total_is_near_paper_g_40() {
        // G = 12 SWAP3 + 3 gates + 12 SWAP3 + 13 recovery = 40 per codeword
        // in the paper's counting. Audit the worst codeword.
        let cycle = build_cycle_1d(&toffoli());
        let audit = cycle.audit();
        let worst_transport = *audit.ops_touching.iter().max().unwrap();
        // Recovery contributes ops beyond those touching input data cells.
        // The constructed budget should land within a few ops of 40.
        assert!(
            (34..=46).contains(&worst_transport),
            "worst codeword ops {worst_transport} far from paper G = 40"
        );
    }

    #[test]
    fn tile_order_is_figure_7() {
        assert_eq!(TILE_ORDER, [0, 3, 6, 1, 4, 7, 2, 5, 8]);
        // Data labels q0,q1,q2 sit at offsets 0,3,6.
        assert_eq!(TILE_ORDER[0], 0);
        assert_eq!(TILE_ORDER[3], 1);
        assert_eq!(TILE_ORDER[6], 2);
    }
}
