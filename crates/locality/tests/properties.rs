//! Property-based tests for the locality layer.

use proptest::prelude::*;
use rft_locality::prelude::*;
use rft_revsim::permutation::Permutation;
use rft_revsim::prelude::*;

const N_WIRES: usize = 8;

fn arb_gate() -> impl Strategy<Value = Gate> {
    let wire = 0..N_WIRES as u32;
    let d3 = (wire.clone(), wire.clone(), wire.clone())
        .prop_filter("distinct", |(a, b, c)| a != b && b != c && a != c);
    let d2 = (wire.clone(), wire).prop_filter("distinct", |(a, b)| a != b);
    prop_oneof![
        d3.clone().prop_map(|(a, b, c)| Gate::Toffoli {
            controls: [w(a), w(b)],
            target: w(c)
        }),
        d3.clone().prop_map(|(a, b, c)| Gate::Maj(w(a), w(b), w(c))),
        d3.clone()
            .prop_map(|(a, b, c)| Gate::MajInv(w(a), w(b), w(c))),
        d3.prop_map(|(a, b, c)| Gate::Fredkin {
            control: w(a),
            targets: [w(b), w(c)]
        }),
        d2.clone().prop_map(|(a, b)| Gate::Cnot {
            control: w(a),
            target: w(b)
        }),
        d2.prop_map(|(a, b)| Gate::Swap(w(a), w(b))),
    ]
}

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(), 0..12).prop_map(|gates| {
        let mut c = Circuit::new(N_WIRES);
        for g in gates {
            c.push(Op::Gate(g));
        }
        c
    })
}

proptest! {
    /// The line router always produces nearest-neighbour circuits that
    /// compute the same permutation.
    #[test]
    fn route_line_preserves_semantics_and_locality(c in arb_circuit()) {
        let (routed, _) = route_line(&c);
        prop_assert!(Lattice::line(N_WIRES).check_circuit(&routed).is_local());
        prop_assert_eq!(
            Permutation::of_circuit(&c).unwrap(),
            Permutation::of_circuit(&routed).unwrap()
        );
    }

    /// Routing is idempotent: a local circuit routes to itself.
    #[test]
    fn route_line_is_idempotent(c in arb_circuit()) {
        let (once, _) = route_line(&c);
        let (twice, stats) = route_line(&once);
        prop_assert_eq!(once.len(), twice.len());
        prop_assert_eq!(stats.elementary_swaps(), 0);
    }

    /// Transport audits conserve codeword bits: final positions are a
    /// permutation of some cells, one per tracked bit.
    #[test]
    fn transport_audit_conserves_bits(c in arb_circuit()) {
        let initial = vec![vec![w(0), w(1)], vec![w(5), w(7)]];
        let audit = audit_transport(&c, &initial);
        let mut all: Vec<Wire> = audit.final_positions.iter().flatten().copied().collect();
        prop_assert_eq!(all.len(), 4);
        all.sort();
        all.dedup();
        prop_assert_eq!(all.len(), 4, "two bits ended on the same cell");
    }

    /// Lattice adjacency is symmetric and irreflexive.
    #[test]
    fn adjacency_symmetric(width in 1usize..6, height in 1usize..6, a in 0usize..36, b in 0usize..36) {
        let lat = Lattice::grid(width, height);
        let wa = w((a % lat.n_cells()) as u32);
        let wb = w((b % lat.n_cells()) as u32);
        prop_assert_eq!(lat.adjacent(wa, wb), lat.adjacent(wb, wa));
        prop_assert!(!lat.adjacent(wa, wa));
    }

    /// Every op the validator accepts as local on a line has support
    /// confined to a window of ≤ 3 consecutive cells.
    #[test]
    fn local_line_ops_are_windowed(g in arb_gate()) {
        let lat = Lattice::line(N_WIRES);
        let op = Op::Gate(g);
        let s = op.support();
        let min = s.as_slice().iter().map(|w| w.index()).min().unwrap();
        let max = s.as_slice().iter().map(|w| w.index()).max().unwrap();
        if !matches!(lat.classify(&op), OpLocality::NonLocal) {
            prop_assert!(max - min <= 2, "window {}..{}", min, max);
        }
    }
}
