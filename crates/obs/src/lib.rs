//! Zero-cost instrumentation for the reversible-fault-tolerance workspace.
//!
//! The crate exposes one handle, [`Collector`], carrying three kinds of
//! observables drawn from a fixed catalog (see [`Metric`], [`Gauge`],
//! [`Hist`]):
//!
//! * **counters** — monotonically increasing `u64`s, one relaxed atomic
//!   add per bump;
//! * **gauges** — last-write-wins `f64`s (stored as bit patterns);
//! * **histograms** — power-of-two-bucketed `u64` distributions;
//! * **spans** — RAII guards timing a region on the monotonic clock,
//!   recorded with the worker thread that ran them and exportable as
//!   Chrome-trace-event JSON ([`Collector::trace_json`]).
//!
//! Two disabling mechanisms exist, with different cost models:
//!
//! * Building with `--no-default-features` (turning off the `enabled`
//!   feature) replaces every type with a zero-sized struct and every
//!   method with an empty `#[inline]` body — the disabled path is
//!   provably free: no branch, no load, nothing for the optimizer to
//!   even elide.
//! * [`Collector::disabled`] gives a runtime no-op handle in a build
//!   that *does* have the feature on; each operation is then one
//!   `Option` check. This is what the `obs_overhead` benchmark uses to
//!   compare instrumented against disabled in a single binary.
//!
//! The design contract, enforced by the golden-report tests in
//! `rft-bench`: instrumentation never touches an RNG stream and never
//! influences a scheduling decision, so every report stays byte-identical
//! whether collection is on, off, or absent.

mod catalog;

pub use catalog::{Gauge, Hist, Metric};

#[cfg(feature = "enabled")]
mod real {
    use super::{Gauge, Hist, Metric};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Instant;

    /// Histogram bucket count: bucket 0 holds zeros, bucket `i` holds
    /// values whose bit length is `i` (i.e. `2^(i-1) <= v < 2^i`).
    pub const HIST_BUCKETS: usize = 65;

    static NEXT_TID: AtomicU64 = AtomicU64::new(1);

    thread_local! {
        static TID: Cell<u64> = const { Cell::new(0) };
    }

    /// Process-wide id of the calling thread, assigned lazily on first
    /// use, starting at 1. Stable across a run: the main thread gets the
    /// first id it asks for and keeps it.
    pub fn current_tid() -> u64 {
        TID.with(|c| {
            let mut t = c.get();
            if t == 0 {
                t = NEXT_TID.fetch_add(1, Ordering::Relaxed);
                c.set(t);
            }
            t
        })
    }

    struct HistCell {
        count: AtomicU64,
        sum: AtomicU64,
        buckets: [AtomicU64; HIST_BUCKETS],
    }

    impl HistCell {
        fn new() -> Self {
            HistCell {
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            }
        }

        fn observe(&self, v: u64) {
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Bucket index for a histogram observation: 0 for 0, else the bit
    /// length of the value (1..=64).
    pub fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of a bucket, used when rendering.
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// One completed span, in nanoseconds since the sink epoch.
    #[derive(Debug, Clone)]
    pub struct SpanEvent {
        /// Static span name (e.g. `"engine.estimate"`).
        pub name: &'static str,
        /// Optional dynamic label (e.g. the experiment id).
        pub label: Option<String>,
        /// Start offset from the collector epoch, nanoseconds.
        pub ts_ns: u64,
        /// Duration, nanoseconds.
        pub dur_ns: u64,
        /// Process-wide thread id (see [`current_tid`]).
        pub tid: u64,
    }

    struct SpanSink {
        epoch: Instant,
        events: Mutex<Vec<SpanEvent>>,
    }

    struct Inner {
        counters: [AtomicU64; Metric::COUNT],
        gauges: [AtomicU64; Gauge::COUNT],
        hists: [HistCell; Hist::COUNT],
        sink: Arc<SpanSink>,
        parent: Option<Arc<Inner>>,
    }

    impl Inner {
        fn root() -> Arc<Inner> {
            Arc::new(Inner {
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                gauges: std::array::from_fn(|_| AtomicU64::new(0f64.to_bits())),
                hists: std::array::from_fn(|_| HistCell::new()),
                sink: Arc::new(SpanSink {
                    epoch: Instant::now(),
                    events: Mutex::new(Vec::new()),
                }),
                parent: None,
            })
        }

        fn child_of(parent: &Arc<Inner>) -> Arc<Inner> {
            Arc::new(Inner {
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                gauges: std::array::from_fn(|_| AtomicU64::new(0f64.to_bits())),
                hists: std::array::from_fn(|_| HistCell::new()),
                sink: Arc::clone(&parent.sink),
                parent: Some(Arc::clone(parent)),
            })
        }

        fn add(&self, m: Metric, v: u64) {
            self.counters[m as usize].fetch_add(v, Ordering::Relaxed);
            let mut up = self.parent.as_deref();
            while let Some(p) = up {
                p.counters[m as usize].fetch_add(v, Ordering::Relaxed);
                up = p.parent.as_deref();
            }
        }

        fn set_gauge(&self, g: Gauge, v: f64) {
            self.gauges[g as usize].store(v.to_bits(), Ordering::Relaxed);
            let mut up = self.parent.as_deref();
            while let Some(p) = up {
                p.gauges[g as usize].store(v.to_bits(), Ordering::Relaxed);
                up = p.parent.as_deref();
            }
        }

        fn observe(&self, h: Hist, v: u64) {
            self.hists[h as usize].observe(v);
            let mut up = self.parent.as_deref();
            while let Some(p) = up {
                p.hists[h as usize].observe(v);
                up = p.parent.as_deref();
            }
        }
    }

    /// Handle to an instrumentation sink. Cheap to clone (one `Arc`
    /// bump); clones share all state. See the crate docs for the cost
    /// model of [`Collector::disabled`] versus the feature-off build.
    #[derive(Clone)]
    pub struct Collector {
        inner: Option<Arc<Inner>>,
    }

    impl std::fmt::Debug for Collector {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Collector")
                .field("enabled", &self.is_enabled())
                .finish()
        }
    }

    impl Default for Collector {
        fn default() -> Self {
            Collector::new()
        }
    }

    impl Collector {
        /// A live collector with its own counters and span sink. The
        /// monotonic epoch for span timestamps is `now`.
        pub fn new() -> Collector {
            Collector {
                inner: Some(Inner::root()),
            }
        }

        /// A runtime no-op handle: every operation is one `Option`
        /// check, nothing is recorded.
        pub fn disabled() -> Collector {
            Collector { inner: None }
        }

        /// Whether this handle records anything.
        pub fn is_enabled(&self) -> bool {
            self.inner.is_some()
        }

        /// A child collector: fresh counters/gauges/histograms whose
        /// updates also propagate into this collector, and a *shared*
        /// span sink and epoch. Children give per-experiment attribution
        /// while the parent keeps the global aggregate and the unified
        /// trace timeline.
        pub fn child(&self) -> Collector {
            Collector {
                inner: self.inner.as_ref().map(Inner::child_of),
            }
        }

        /// Add `v` to a counter.
        #[inline]
        pub fn add(&self, m: Metric, v: u64) {
            if let Some(inner) = &self.inner {
                inner.add(m, v);
            }
        }

        /// Add 1 to a counter.
        #[inline]
        pub fn incr(&self, m: Metric) {
            self.add(m, 1);
        }

        /// Current value of a counter (0 when disabled).
        pub fn get(&self, m: Metric) -> u64 {
            match &self.inner {
                Some(inner) => inner.counters[m as usize].load(Ordering::Relaxed),
                None => 0,
            }
        }

        /// Set a gauge to `v`.
        #[inline]
        pub fn set_gauge(&self, g: Gauge, v: f64) {
            if let Some(inner) = &self.inner {
                inner.set_gauge(g, v);
            }
        }

        /// Current value of a gauge (0.0 when disabled).
        pub fn gauge(&self, g: Gauge) -> f64 {
            match &self.inner {
                Some(inner) => f64::from_bits(inner.gauges[g as usize].load(Ordering::Relaxed)),
                None => 0.0,
            }
        }

        /// Record one observation into a histogram.
        #[inline]
        pub fn observe(&self, h: Hist, v: u64) {
            if let Some(inner) = &self.inner {
                inner.observe(h, v);
            }
        }

        /// Start a span; it ends (and is recorded) when the returned
        /// guard drops.
        #[inline]
        pub fn span(&self, name: &'static str) -> Span<'_> {
            self.span_inner(name, None, None)
        }

        /// Start a span that also adds its duration (ns) into `m` when
        /// it ends.
        #[inline]
        pub fn span_metric(&self, name: &'static str, m: Metric) -> Span<'_> {
            self.span_inner(name, None, Some(m))
        }

        /// Start a span with a dynamic label. The closure only runs when
        /// the collector is live, so building the label costs nothing on
        /// the disabled path.
        #[inline]
        pub fn labeled_span(&self, name: &'static str, label: impl FnOnce() -> String) -> Span<'_> {
            let label = self.inner.as_ref().map(|_| label());
            self.span_inner(name, label, None)
        }

        /// [`Collector::labeled_span`] that also adds its duration (ns)
        /// into `m` when it ends.
        #[inline]
        pub fn labeled_span_metric(
            &self,
            name: &'static str,
            m: Metric,
            label: impl FnOnce() -> String,
        ) -> Span<'_> {
            let label = self.inner.as_ref().map(|_| label());
            self.span_inner(name, label, Some(m))
        }

        fn span_inner(
            &self,
            name: &'static str,
            label: Option<String>,
            metric: Option<Metric>,
        ) -> Span<'_> {
            match &self.inner {
                Some(inner) => Span {
                    owner: Some(SpanOwner {
                        inner,
                        name,
                        label,
                        metric,
                        start: Instant::now(),
                    }),
                },
                None => Span { owner: None },
            }
        }

        /// A point-in-time copy of all counters, gauges and histograms.
        pub fn snapshot(&self) -> Snapshot {
            match &self.inner {
                Some(inner) => Snapshot {
                    counters: std::array::from_fn(|i| inner.counters[i].load(Ordering::Relaxed)),
                    gauges: std::array::from_fn(|i| {
                        f64::from_bits(inner.gauges[i].load(Ordering::Relaxed))
                    }),
                    hists: std::array::from_fn(|i| {
                        let cell = &inner.hists[i];
                        HistSnapshot {
                            count: cell.count.load(Ordering::Relaxed),
                            sum: cell.sum.load(Ordering::Relaxed),
                            buckets: std::array::from_fn(|b| {
                                cell.buckets[b].load(Ordering::Relaxed)
                            }),
                        }
                    }),
                },
                None => Snapshot::empty(),
            }
        }

        /// All completed spans so far, unsorted.
        pub fn span_events(&self) -> Vec<SpanEvent> {
            match &self.inner {
                Some(inner) => inner.sink.events.lock().unwrap().clone(),
                None => Vec::new(),
            }
        }

        /// Chrome-trace-event JSON (the `{"traceEvents": [...]}` shape
        /// Perfetto and `chrome://tracing` load). Spans become complete
        /// (`"ph":"X"`) events with microsecond timestamps attributed to
        /// their worker thread; a `thread_name` metadata record is
        /// emitted per thread. Events are sorted by start time so output
        /// for a single-threaded run is deterministic.
        pub fn trace_json(&self) -> String {
            let mut events = self.span_events();
            events.sort_by_key(|e| (e.ts_ns, e.tid, e.dur_ns));
            let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
            tids.sort_unstable();
            tids.dedup();

            let mut out = String::with_capacity(64 + events.len() * 96);
            out.push_str("{\"traceEvents\":[");
            let mut first = true;
            for tid in &tids {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"name\":\"worker-{tid}\"}}}}"
                ));
            }
            for e in &events {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"rft\",\"ph\":\"X\",\"ts\":{:.3},\
                     \"dur\":{:.3},\"pid\":1,\"tid\":{}",
                    escape_json(e.name),
                    e.ts_ns as f64 / 1000.0,
                    e.dur_ns as f64 / 1000.0,
                    e.tid,
                ));
                if let Some(label) = &e.label {
                    out.push_str(&format!(
                        ",\"args\":{{\"label\":\"{}\"}}",
                        escape_json(label)
                    ));
                }
                out.push('}');
            }
            out.push_str("]}");
            out
        }
    }

    fn escape_json(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out
    }

    struct SpanOwner<'a> {
        inner: &'a Arc<Inner>,
        name: &'static str,
        label: Option<String>,
        metric: Option<Metric>,
        start: Instant,
    }

    /// RAII span guard; records the span into its collector on drop.
    #[must_use = "a span measures the region until it is dropped"]
    pub struct Span<'a> {
        owner: Option<SpanOwner<'a>>,
    }

    impl Drop for Span<'_> {
        fn drop(&mut self) {
            let Some(owner) = self.owner.take() else {
                return;
            };
            let dur_ns = owner.start.elapsed().as_nanos() as u64;
            let ts_ns = owner
                .start
                .duration_since(owner.inner.sink.epoch)
                .as_nanos() as u64;
            if let Some(m) = owner.metric {
                owner.inner.add(m, dur_ns);
            }
            owner.inner.sink.events.lock().unwrap().push(SpanEvent {
                name: owner.name,
                label: owner.label,
                ts_ns,
                dur_ns,
                tid: current_tid(),
            });
        }
    }

    /// Point-in-time copy of one histogram.
    #[derive(Debug, Clone)]
    pub struct HistSnapshot {
        /// Number of observations.
        pub count: u64,
        /// Sum of observed values.
        pub sum: u64,
        /// Per-bucket counts; see [`bucket_index`].
        pub buckets: [u64; HIST_BUCKETS],
    }

    impl Default for HistSnapshot {
        fn default() -> Self {
            HistSnapshot {
                count: 0,
                sum: 0,
                buckets: [0; HIST_BUCKETS],
            }
        }
    }

    impl HistSnapshot {
        /// Mean observed value (0.0 when empty).
        pub fn mean(&self) -> f64 {
            if self.count == 0 {
                0.0
            } else {
                self.sum as f64 / self.count as f64
            }
        }

        /// Inclusive upper bound of the highest non-empty bucket.
        pub fn approx_max(&self) -> u64 {
            self.buckets
                .iter()
                .rposition(|&c| c > 0)
                .map(bucket_upper_bound)
                .unwrap_or(0)
        }
    }

    /// Point-in-time copy of a collector's counters, gauges and
    /// histograms.
    #[derive(Debug, Clone)]
    pub struct Snapshot {
        counters: [u64; Metric::COUNT],
        gauges: [f64; Gauge::COUNT],
        hists: [HistSnapshot; Hist::COUNT],
    }

    impl Default for Snapshot {
        fn default() -> Self {
            Snapshot::empty()
        }
    }

    impl Snapshot {
        /// An all-zero snapshot (what a disabled collector yields).
        pub fn empty() -> Snapshot {
            Snapshot {
                counters: [0; Metric::COUNT],
                gauges: [0.0; Gauge::COUNT],
                hists: std::array::from_fn(|_| HistSnapshot::default()),
            }
        }

        /// Counter value at snapshot time.
        pub fn counter(&self, m: Metric) -> u64 {
            self.counters[m as usize]
        }

        /// Gauge value at snapshot time.
        pub fn gauge(&self, g: Gauge) -> f64 {
            self.gauges[g as usize]
        }

        /// Histogram state at snapshot time.
        pub fn hist(&self, h: Hist) -> &HistSnapshot {
            &self.hists[h as usize]
        }

        /// Aligned human-readable table of every non-zero observable, in
        /// catalog order: counters, then gauges, then histogram
        /// summaries (count / mean / approximate max).
        pub fn render_table(&self) -> String {
            let mut rows: Vec<(String, String, &'static str, &'static str)> = Vec::new();
            for m in Metric::ALL {
                let v = self.counter(m);
                if v != 0 {
                    rows.push((m.name().to_string(), v.to_string(), m.unit(), m.subsystem()));
                }
            }
            for g in Gauge::ALL {
                let v = self.gauge(g);
                if v != 0.0 {
                    rows.push((
                        g.name().to_string(),
                        format!("{v:.6}"),
                        g.unit(),
                        g.subsystem(),
                    ));
                }
            }
            for h in Hist::ALL {
                let s = self.hist(h);
                if s.count != 0 {
                    rows.push((
                        h.name().to_string(),
                        format!("n={} mean={:.1} max<={}", s.count, s.mean(), s.approx_max()),
                        h.unit(),
                        h.subsystem(),
                    ));
                }
            }
            if rows.is_empty() {
                return "(no observations)\n".to_string();
            }
            let name_w = rows.iter().map(|r| r.0.len()).max().unwrap().max(6);
            let val_w = rows.iter().map(|r| r.1.len()).max().unwrap().max(5);
            let mut out = String::new();
            out.push_str(&format!(
                "{:<name_w$}  {:>val_w$}  {:<11}  {}\n",
                "metric", "value", "unit", "subsystem"
            ));
            for (name, value, unit, subsystem) in &rows {
                out.push_str(&format!(
                    "{name:<name_w$}  {value:>val_w$}  {unit:<11}  {subsystem}\n"
                ));
            }
            out
        }
    }
}

#[cfg(feature = "enabled")]
pub use real::{
    bucket_index, bucket_upper_bound, current_tid, Collector, HistSnapshot, Snapshot, Span,
    SpanEvent, HIST_BUCKETS,
};

#[cfg(not(feature = "enabled"))]
mod noop {
    use super::{Gauge, Hist, Metric};

    /// Histogram bucket count (mirrors the enabled build).
    pub const HIST_BUCKETS: usize = 65;

    /// Thread id stub; always 0 in the no-op build.
    #[inline(always)]
    pub fn current_tid() -> u64 {
        0
    }

    /// Bucket index stub (kept functional: it is a pure function).
    #[inline(always)]
    pub fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Bucket bound stub (kept functional: it is a pure function).
    #[inline(always)]
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Zero-sized stand-in for a span event; never constructed.
    #[derive(Debug, Clone)]
    pub struct SpanEvent {
        /// Static span name.
        pub name: &'static str,
        /// Optional dynamic label.
        pub label: Option<String>,
        /// Start offset, nanoseconds.
        pub ts_ns: u64,
        /// Duration, nanoseconds.
        pub dur_ns: u64,
        /// Thread id.
        pub tid: u64,
    }

    /// Zero-sized no-op collector: every method is an empty inline body.
    #[derive(Debug, Clone, Default)]
    pub struct Collector;

    impl Collector {
        /// No-op constructor.
        #[inline(always)]
        pub fn new() -> Collector {
            Collector
        }

        /// No-op constructor (same as [`Collector::new`] here).
        #[inline(always)]
        pub fn disabled() -> Collector {
            Collector
        }

        /// Always `false` in the no-op build.
        #[inline(always)]
        pub fn is_enabled(&self) -> bool {
            false
        }

        /// Returns another no-op handle.
        #[inline(always)]
        pub fn child(&self) -> Collector {
            Collector
        }

        /// Does nothing.
        #[inline(always)]
        pub fn add(&self, _m: Metric, _v: u64) {}

        /// Does nothing.
        #[inline(always)]
        pub fn incr(&self, _m: Metric) {}

        /// Always 0.
        #[inline(always)]
        pub fn get(&self, _m: Metric) -> u64 {
            0
        }

        /// Does nothing.
        #[inline(always)]
        pub fn set_gauge(&self, _g: Gauge, _v: f64) {}

        /// Always 0.0.
        #[inline(always)]
        pub fn gauge(&self, _g: Gauge) -> f64 {
            0.0
        }

        /// Does nothing.
        #[inline(always)]
        pub fn observe(&self, _h: Hist, _v: u64) {}

        /// Returns a zero-sized guard.
        #[inline(always)]
        pub fn span(&self, _name: &'static str) -> Span<'_> {
            Span(std::marker::PhantomData)
        }

        /// Returns a zero-sized guard.
        #[inline(always)]
        pub fn span_metric(&self, _name: &'static str, _m: Metric) -> Span<'_> {
            Span(std::marker::PhantomData)
        }

        /// Returns a zero-sized guard; the label closure never runs.
        #[inline(always)]
        pub fn labeled_span(
            &self,
            _name: &'static str,
            _label: impl FnOnce() -> String,
        ) -> Span<'_> {
            Span(std::marker::PhantomData)
        }

        /// Returns a zero-sized guard; the label closure never runs.
        #[inline(always)]
        pub fn labeled_span_metric(
            &self,
            _name: &'static str,
            _m: Metric,
            _label: impl FnOnce() -> String,
        ) -> Span<'_> {
            Span(std::marker::PhantomData)
        }

        /// An all-zero snapshot.
        #[inline(always)]
        pub fn snapshot(&self) -> Snapshot {
            Snapshot
        }

        /// Always empty.
        #[inline(always)]
        pub fn span_events(&self) -> Vec<SpanEvent> {
            Vec::new()
        }

        /// An empty trace document.
        #[inline(always)]
        pub fn trace_json(&self) -> String {
            "{\"traceEvents\":[]}".to_string()
        }
    }

    /// Zero-sized span guard.
    #[must_use = "a span measures the region until it is dropped"]
    pub struct Span<'a>(pub(crate) std::marker::PhantomData<&'a ()>);

    /// Zero-sized histogram snapshot.
    #[derive(Debug, Clone, Default)]
    pub struct HistSnapshot;

    impl HistSnapshot {
        /// Always 0.0.
        #[inline(always)]
        pub fn mean(&self) -> f64 {
            0.0
        }

        /// Always 0.
        #[inline(always)]
        pub fn approx_max(&self) -> u64 {
            0
        }
    }

    /// Zero-sized snapshot.
    #[derive(Debug, Clone, Default)]
    pub struct Snapshot;

    impl Snapshot {
        /// An all-zero snapshot.
        #[inline(always)]
        pub fn empty() -> Snapshot {
            Snapshot
        }

        /// Always 0.
        #[inline(always)]
        pub fn counter(&self, _m: Metric) -> u64 {
            0
        }

        /// Always 0.0.
        #[inline(always)]
        pub fn gauge(&self, _g: Gauge) -> f64 {
            0.0
        }

        /// Always the zero histogram.
        #[inline(always)]
        pub fn hist(&self, _h: Hist) -> &HistSnapshot {
            const EMPTY: &HistSnapshot = &HistSnapshot;
            EMPTY
        }

        /// Always the empty-table placeholder.
        #[inline(always)]
        pub fn render_table(&self) -> String {
            "(no observations)\n".to_string()
        }
    }
}

#[cfg(not(feature = "enabled"))]
pub use noop::{
    bucket_index, bucket_upper_bound, current_tid, Collector, HistSnapshot, Snapshot, Span,
    SpanEvent, HIST_BUCKETS,
};

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_names_are_unique_and_prefixed_by_subsystem() {
        let mut seen = HashSet::new();
        for m in Metric::ALL {
            assert!(seen.insert(m.name()), "duplicate metric name {}", m.name());
            assert!(
                m.name().starts_with(m.subsystem()),
                "{} not prefixed by {}",
                m.name(),
                m.subsystem()
            );
            assert!(!m.unit().is_empty());
        }
        for g in Gauge::ALL {
            assert!(seen.insert(g.name()), "duplicate gauge name {}", g.name());
            assert!(g.name().starts_with(g.subsystem()));
        }
        for h in Hist::ALL {
            assert!(seen.insert(h.name()), "duplicate hist name {}", h.name());
            assert!(h.name().starts_with(h.subsystem()));
        }
        assert_eq!(seen.len(), Metric::COUNT + Gauge::COUNT + Hist::COUNT);
    }

    #[test]
    fn counters_accumulate_and_propagate_to_parent() {
        let root = Collector::new();
        let child = root.child();
        child.add(Metric::ExecutedWords, 5);
        child.incr(Metric::CacheHits);
        root.add(Metric::ExecutedWords, 2);
        assert_eq!(child.get(Metric::ExecutedWords), 5);
        assert_eq!(child.get(Metric::CacheHits), 1);
        assert_eq!(root.get(Metric::ExecutedWords), 7);
        assert_eq!(root.get(Metric::CacheHits), 1);
    }

    #[test]
    fn gauges_last_write_wins_and_propagate() {
        let root = Collector::new();
        let child = root.child();
        child.set_gauge(Gauge::ElidedMass, 0.25);
        assert_eq!(child.gauge(Gauge::ElidedMass), 0.25);
        assert_eq!(root.gauge(Gauge::ElidedMass), 0.25);
        root.set_gauge(Gauge::ElidedMass, 0.5);
        assert_eq!(root.gauge(Gauge::ElidedMass), 0.5);
    }

    #[test]
    fn histogram_bucketing_is_power_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);

        let c = Collector::new();
        c.observe(Hist::QueueDepth, 0);
        c.observe(Hist::QueueDepth, 3);
        c.observe(Hist::QueueDepth, 9);
        let snap = c.snapshot();
        let h = snap.hist(Hist::QueueDepth);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 12);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[4], 1);
        assert_eq!(h.approx_max(), 15);
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let c = Collector::disabled();
        assert!(!c.is_enabled());
        c.add(Metric::ExecutedWords, 10);
        c.observe(Hist::QueueDepth, 3);
        c.set_gauge(Gauge::ElidedMass, 1.0);
        {
            let _s = c.span("dead");
        }
        assert_eq!(c.get(Metric::ExecutedWords), 0);
        assert_eq!(c.gauge(Gauge::ElidedMass), 0.0);
        assert!(c.span_events().is_empty());
        assert_eq!(c.trace_json(), "{\"traceEvents\":[]}");
    }

    #[test]
    fn spans_record_name_label_tid_and_metric() {
        let c = Collector::new();
        {
            let _outer = c.span_metric("outer", Metric::EstimateNanos);
            let _inner = c.labeled_span("inner", || "exp-\"x\"".to_string());
        }
        let events = c.span_events();
        assert_eq!(events.len(), 2);
        // Drop order is LIFO: inner first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[0].label.as_deref(), Some("exp-\"x\""));
        assert_eq!(events[1].name, "outer");
        let tid = current_tid();
        assert!(events.iter().all(|e| e.tid == tid));
        // Inner is nested within outer on the timeline.
        assert!(events[0].ts_ns >= events[1].ts_ns);
        assert!(events[0].ts_ns + events[0].dur_ns <= events[1].ts_ns + events[1].dur_ns);
        assert!(c.get(Metric::EstimateNanos) >= events[1].dur_ns);
    }

    #[test]
    fn trace_json_is_well_formed_and_escaped() {
        let c = Collector::new();
        {
            let _s = c.labeled_span("phase", || "a\\b\"c\nd".to_string());
        }
        let json = c.trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // One metadata record for the thread plus the span itself.
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 1);
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("\"name\":\"phase\""));
        // The label's backslash, quote and newline are escaped.
        assert!(json.contains("\"label\":\"a\\\\b\\\"c\\nd\""));
        // No raw control characters survive in the document.
        assert!(!json.chars().any(|ch| (ch as u32) < 0x20));
        // Braces balance (every event object is closed).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn render_table_aligns_and_omits_zeros() {
        let c = Collector::new();
        c.add(Metric::ExecutedWords, 1234);
        c.incr(Metric::CacheHits);
        let table = c.snapshot().render_table();
        assert!(table.contains("engine.executed_words"));
        assert!(table.contains("1234"));
        assert!(table.contains("cache.hits"));
        assert!(!table.contains("engine.replayed_segments"));
        let header_cols = table.lines().next().unwrap();
        assert!(header_cols.contains("metric") && header_cols.contains("unit"));
    }

    #[test]
    fn snapshot_roundtrips_counters() {
        let c = Collector::new();
        for (i, m) in Metric::ALL.iter().enumerate() {
            c.add(*m, (i as u64 + 1) * 3);
        }
        let snap = c.snapshot();
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(snap.counter(*m), (i as u64 + 1) * 3);
        }
    }
}
