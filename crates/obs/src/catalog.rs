//! The metric catalog: every counter, gauge and histogram the workspace
//! records, as fixed enums.
//!
//! A fixed catalog (instead of string-keyed maps) is what keeps the hot
//! path cheap — a counter bump is one indexed atomic add, no hashing, no
//! allocation — and what makes the set of observables documentable: the
//! table in `BENCH_NOTES.md` is generated from these `name`/`unit`/
//! `subsystem` projections, and a unit test pins their uniqueness.

/// A monotonic counter. Names are `subsystem.metric`, dot-separated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Metric {
    /// Engines compiled (fault-table lowering passes).
    EngineCompiles,
    /// Micro-op programs lowered (lazy IR compilation passes).
    IrLowerings,
    /// Nanoseconds spent compiling engines and concatenated programs.
    CompileNanos,
    /// Nanoseconds spent lowering micro-op programs.
    LowerNanos,
    /// Monte-Carlo estimation calls entered.
    EstimateCalls,
    /// Nanoseconds spent inside estimation calls.
    EstimateNanos,
    /// 64-lane words executed by the word loops.
    ExecutedWords,
    /// Trials (lanes) executed inside the budget.
    ExecutedTrials,
    /// Lanes judged as logical failures.
    LaneFailures,
    /// Lanes that experienced at least one fault.
    FaultedLanes,
    /// Individual `(op, lane)` fault injections.
    FaultEvents,
    /// Fused-segment executions that stayed on the affine fast path
    /// (clean or exact-propagation patch).
    FusedSegments,
    /// Fused-segment executions that fell back to native replay.
    ReplayedSegments,
    /// Words executed under a conditional (stratified) mask schedule.
    MaskedWords,
    /// Plain-estimator runs.
    PlainRuns,
    /// Stratified-estimator runs.
    StratifiedRuns,
    /// Stratified Neyman-reallocation rounds executed.
    StratifiedRounds,
    /// Words allocated across strata by the round planner.
    AllocatedWords,
    /// Runs that stopped early at their target relative error.
    EarlyStops,
    /// Compile-cache lookups that found an artifact.
    CacheHits,
    /// Compile-cache lookups that had to compile.
    CacheMisses,
    /// Compile-cache entries evicted by the cost-based LRU policy.
    CacheEvictions,
    /// HTTP requests the serve daemon accepted a connection for.
    ServeRequests,
    /// Requests the daemon refused (draining, over capacity, malformed).
    ServeRejected,
    /// Streamed jobs whose client disconnected before the final interval
    /// (the job was cancelled and its budget freed).
    ServeEarlyDisconnects,
    /// Requests shed by admission control (accept queue or job cap full);
    /// each was answered `503` with `Retry-After`.
    ServeShed,
    /// Requests or jobs ended by a timeout: slow-loris/stalled reads
    /// answered `408`, and jobs cancelled at their wall-clock deadline.
    ServeTimeouts,
    /// Parity-checked circuits synthesized and wrapped by the detection
    /// subsystem (adder constructions + invariant-checker wraps).
    DetectSyntheses,
    /// Planned single-fault cases evaluated by exhaustive detection-
    /// coverage enumeration.
    DetectCoverageCases,
    /// Monte-Carlo estimation calls over parity-checked circuits.
    DetectEstimates,
    /// Work items executed by the cross-point scheduler.
    SchedItems,
    /// Items a worker pulled beyond its first (work stolen from the
    /// shared queue tail).
    SchedSteals,
    /// Nanoseconds of per-point work under the scheduler.
    PointNanos,
}

impl Metric {
    /// Number of counters in the catalog.
    pub const COUNT: usize = 33;

    /// Every counter, in catalog order.
    pub const ALL: [Metric; Metric::COUNT] = [
        Metric::EngineCompiles,
        Metric::IrLowerings,
        Metric::CompileNanos,
        Metric::LowerNanos,
        Metric::EstimateCalls,
        Metric::EstimateNanos,
        Metric::ExecutedWords,
        Metric::ExecutedTrials,
        Metric::LaneFailures,
        Metric::FaultedLanes,
        Metric::FaultEvents,
        Metric::FusedSegments,
        Metric::ReplayedSegments,
        Metric::MaskedWords,
        Metric::PlainRuns,
        Metric::StratifiedRuns,
        Metric::StratifiedRounds,
        Metric::AllocatedWords,
        Metric::EarlyStops,
        Metric::CacheHits,
        Metric::CacheMisses,
        Metric::CacheEvictions,
        Metric::ServeRequests,
        Metric::ServeRejected,
        Metric::ServeEarlyDisconnects,
        Metric::ServeShed,
        Metric::ServeTimeouts,
        Metric::DetectSyntheses,
        Metric::DetectCoverageCases,
        Metric::DetectEstimates,
        Metric::SchedItems,
        Metric::SchedSteals,
        Metric::PointNanos,
    ];

    /// Stable dotted name (`subsystem.metric`).
    pub const fn name(self) -> &'static str {
        match self {
            Metric::EngineCompiles => "engine.compiles",
            Metric::IrLowerings => "engine.ir_lowerings",
            Metric::CompileNanos => "engine.compile_ns",
            Metric::LowerNanos => "engine.lower_ns",
            Metric::EstimateCalls => "engine.estimates",
            Metric::EstimateNanos => "engine.estimate_ns",
            Metric::ExecutedWords => "engine.executed_words",
            Metric::ExecutedTrials => "engine.executed_trials",
            Metric::LaneFailures => "engine.lane_failures",
            Metric::FaultedLanes => "engine.faulted_lanes",
            Metric::FaultEvents => "engine.fault_events",
            Metric::FusedSegments => "engine.fused_segments",
            Metric::ReplayedSegments => "engine.replayed_segments",
            Metric::MaskedWords => "engine.masked_words",
            Metric::PlainRuns => "estimator.plain_runs",
            Metric::StratifiedRuns => "estimator.stratified_runs",
            Metric::StratifiedRounds => "estimator.rounds",
            Metric::AllocatedWords => "estimator.allocated_words",
            Metric::EarlyStops => "estimator.early_stops",
            Metric::CacheHits => "cache.hits",
            Metric::CacheMisses => "cache.misses",
            Metric::CacheEvictions => "cache.evictions",
            Metric::ServeRequests => "serve.requests",
            Metric::ServeRejected => "serve.rejected",
            Metric::ServeEarlyDisconnects => "serve.early_disconnects",
            Metric::ServeShed => "serve.shed",
            Metric::ServeTimeouts => "serve.timeouts",
            Metric::DetectSyntheses => "detect.syntheses",
            Metric::DetectCoverageCases => "detect.coverage_cases",
            Metric::DetectEstimates => "detect.estimates",
            Metric::SchedItems => "sched.items",
            Metric::SchedSteals => "sched.steals",
            Metric::PointNanos => "sched.point_ns",
        }
    }

    /// Unit of the counted quantity.
    pub const fn unit(self) -> &'static str {
        match self {
            Metric::EngineCompiles => "engines",
            Metric::IrLowerings => "programs",
            Metric::CompileNanos | Metric::LowerNanos | Metric::EstimateNanos => "ns",
            Metric::PointNanos => "ns",
            Metric::EstimateCalls => "calls",
            Metric::ExecutedWords | Metric::MaskedWords | Metric::AllocatedWords => "words",
            Metric::ExecutedTrials | Metric::LaneFailures | Metric::FaultedLanes => "lanes",
            Metric::FaultEvents => "events",
            Metric::FusedSegments | Metric::ReplayedSegments => "segments",
            Metric::PlainRuns | Metric::StratifiedRuns | Metric::EarlyStops => "runs",
            Metric::StratifiedRounds => "rounds",
            Metric::CacheHits => "lookups",
            Metric::CacheMisses => "compiles",
            Metric::CacheEvictions => "entries",
            Metric::ServeRequests | Metric::ServeRejected => "requests",
            Metric::ServeShed | Metric::ServeTimeouts => "requests",
            Metric::ServeEarlyDisconnects => "jobs",
            Metric::DetectSyntheses => "circuits",
            Metric::DetectCoverageCases => "cases",
            Metric::DetectEstimates => "calls",
            Metric::SchedItems | Metric::SchedSteals => "items",
        }
    }

    /// Owning subsystem (the prefix of [`Metric::name`]).
    pub const fn subsystem(self) -> &'static str {
        match self {
            Metric::EngineCompiles
            | Metric::IrLowerings
            | Metric::CompileNanos
            | Metric::LowerNanos
            | Metric::EstimateCalls
            | Metric::EstimateNanos
            | Metric::ExecutedWords
            | Metric::ExecutedTrials
            | Metric::LaneFailures
            | Metric::FaultedLanes
            | Metric::FaultEvents
            | Metric::FusedSegments
            | Metric::ReplayedSegments
            | Metric::MaskedWords => "engine",
            Metric::PlainRuns
            | Metric::StratifiedRuns
            | Metric::StratifiedRounds
            | Metric::AllocatedWords
            | Metric::EarlyStops => "estimator",
            Metric::CacheHits | Metric::CacheMisses | Metric::CacheEvictions => "cache",
            Metric::ServeRequests
            | Metric::ServeRejected
            | Metric::ServeEarlyDisconnects
            | Metric::ServeShed
            | Metric::ServeTimeouts => "serve",
            Metric::DetectSyntheses | Metric::DetectCoverageCases | Metric::DetectEstimates => {
                "detect"
            }
            Metric::SchedItems | Metric::SchedSteals | Metric::PointNanos => "sched",
        }
    }
}

/// A last-write-wins `f64` gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Gauge {
    /// Probability mass the stratified estimator resolved analytically
    /// (elided strata) in the most recent stratified run.
    ElidedMass,
    /// Distinct concatenated programs currently cached.
    CachedPrograms,
    /// Distinct compiled engines currently cached.
    CachedEngines,
    /// Approximate bytes held by the compile cache (programs + engines).
    CacheBytes,
    /// Estimation jobs currently running in the serve daemon.
    JobsActive,
    /// Accepted connections waiting in the serve daemon's bounded accept
    /// queue for a free pool worker.
    ServeQueueDepth,
    /// Connections a serve-daemon pool worker is currently handling.
    ServeConnectionsActive,
    /// Age in milliseconds of the oldest job currently streaming
    /// (refreshed on each `/stats` snapshot; 0 when idle).
    ServeOldestJobMs,
}

impl Gauge {
    /// Number of gauges in the catalog.
    pub const COUNT: usize = 8;

    /// Every gauge, in catalog order.
    pub const ALL: [Gauge; Gauge::COUNT] = [
        Gauge::ElidedMass,
        Gauge::CachedPrograms,
        Gauge::CachedEngines,
        Gauge::CacheBytes,
        Gauge::JobsActive,
        Gauge::ServeQueueDepth,
        Gauge::ServeConnectionsActive,
        Gauge::ServeOldestJobMs,
    ];

    /// Stable dotted name.
    pub const fn name(self) -> &'static str {
        match self {
            Gauge::ElidedMass => "estimator.elided_mass",
            Gauge::CachedPrograms => "cache.programs",
            Gauge::CachedEngines => "cache.engines",
            Gauge::CacheBytes => "cache.bytes",
            Gauge::JobsActive => "serve.jobs_active",
            Gauge::ServeQueueDepth => "serve.queue_depth",
            Gauge::ServeConnectionsActive => "serve.connections_active",
            Gauge::ServeOldestJobMs => "serve.oldest_job_ms",
        }
    }

    /// Unit of the gauged quantity.
    pub const fn unit(self) -> &'static str {
        match self {
            Gauge::ElidedMass => "probability",
            Gauge::CachedPrograms => "programs",
            Gauge::CachedEngines => "engines",
            Gauge::CacheBytes => "bytes",
            Gauge::JobsActive => "jobs",
            Gauge::ServeQueueDepth | Gauge::ServeConnectionsActive => "connections",
            Gauge::ServeOldestJobMs => "ms",
        }
    }

    /// Owning subsystem.
    pub const fn subsystem(self) -> &'static str {
        match self {
            Gauge::ElidedMass => "estimator",
            Gauge::CachedPrograms | Gauge::CachedEngines | Gauge::CacheBytes => "cache",
            Gauge::JobsActive
            | Gauge::ServeQueueDepth
            | Gauge::ServeConnectionsActive
            | Gauge::ServeOldestJobMs => "serve",
        }
    }
}

/// A power-of-two-bucketed histogram of `u64` observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Hist {
    /// Items left in the scheduler queue when a worker pulled one.
    QueueDepth,
    /// Words a single stratum was allocated in one stratified round.
    RoundWords,
    /// Items one scheduler worker executed over its lifetime.
    ItemsPerWorker,
    /// Wall-clock microseconds one serve-daemon request took, end to end
    /// (connection accepted to response flushed).
    RequestMicros,
}

impl Hist {
    /// Number of histograms in the catalog.
    pub const COUNT: usize = 4;

    /// Every histogram, in catalog order.
    pub const ALL: [Hist; Hist::COUNT] = [
        Hist::QueueDepth,
        Hist::RoundWords,
        Hist::ItemsPerWorker,
        Hist::RequestMicros,
    ];

    /// Stable dotted name.
    pub const fn name(self) -> &'static str {
        match self {
            Hist::QueueDepth => "sched.queue_depth",
            Hist::RoundWords => "estimator.round_words",
            Hist::ItemsPerWorker => "sched.items_per_worker",
            Hist::RequestMicros => "serve.request_us",
        }
    }

    /// Unit of the observed quantity.
    pub const fn unit(self) -> &'static str {
        match self {
            Hist::QueueDepth => "items",
            Hist::RoundWords => "words",
            Hist::ItemsPerWorker => "items",
            Hist::RequestMicros => "us",
        }
    }

    /// Owning subsystem.
    pub const fn subsystem(self) -> &'static str {
        match self {
            Hist::QueueDepth | Hist::ItemsPerWorker => "sched",
            Hist::RoundWords => "estimator",
            Hist::RequestMicros => "serve",
        }
    }
}
