//! Exhaustive fault-tolerance verification of FT cycles.
//!
//! The paper's central claim about Figure 2 is combinatorial: *any single
//! faulty operation leaves at most one error in each output codeword*, so a
//! following recovery cycle can absorb it. [`CycleSpec::sweep_single_faults`]
//! verifies this by enumerating every `(logical input, failing op,
//! corruption pattern)` triple — a proof by exhaustion over the full fault
//! set, which is feasible because supports have at most three bits
//! (`2^3 = 8` patterns per op).

use rand::{Rng, RngCore};
use rft_revsim::batch::kernels::majority3;
use rft_revsim::batch::BatchState;
use rft_revsim::circuit::Circuit;
use rft_revsim::engine::{failure_mask_in, PlannedFaultBackend, WordTrial};
use rft_revsim::fault::{double_fault_plans, single_fault_plans, FaultPlan};
use rft_revsim::permutation::Permutation;
use rft_revsim::state::BitState;
use rft_revsim::wire::Wire;

/// A fault-tolerant cycle to verify: a physical circuit computing a logical
/// function on level-1 repetition codewords.
#[derive(Debug, Clone)]
pub struct CycleSpec {
    circuit: Circuit,
    inputs: Vec<[Wire; 3]>,
    outputs: Vec<[Wire; 3]>,
    logical: Permutation,
}

/// Result of an exhaustive single-fault sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweep {
    /// Number of fault plans enumerated.
    pub plans: usize,
    /// Number of (input × plan) runs executed.
    pub runs: usize,
    /// Largest per-codeword Hamming error observed at the outputs.
    pub max_codeword_error: u32,
    /// Runs in which some output codeword had ≥ 2 errors (FT violations).
    pub violations: usize,
    /// One violating `(logical_input, plan)` example, if any.
    pub worst: Option<(u64, FaultPlan)>,
    /// Mean over inputs of `Σ_ops P(random fault pattern defeats FT)` —
    /// the coefficient `c` of the first-order term `c·g` in the cycle's
    /// logical error rate. Zero iff the cycle is single-fault tolerant.
    pub first_order_mean: f64,
    /// The same coefficient for the worst-case input.
    pub first_order_worst: f64,
}

impl FaultSweep {
    /// Whether the single-fault tolerance property holds
    /// (every output codeword within distance 1 of the ideal codeword).
    pub fn is_fault_tolerant(&self) -> bool {
        self.violations == 0
    }
}

impl CycleSpec {
    /// Creates a cycle specification.
    ///
    /// `inputs[i]` / `outputs[i]` are the level-1 codeword positions of
    /// logical bit `i` before/after the cycle, and `logical` is the
    /// intended function on `inputs.len()` logical bits.
    ///
    /// # Panics
    ///
    /// Panics if the logical width disagrees with `inputs`/`outputs`, or if
    /// any listed wire is out of range for the circuit.
    pub fn new(
        circuit: Circuit,
        inputs: Vec<[Wire; 3]>,
        outputs: Vec<[Wire; 3]>,
        logical: Permutation,
    ) -> Self {
        assert_eq!(inputs.len(), outputs.len(), "inputs/outputs must pair up");
        assert_eq!(logical.n_bits(), inputs.len(), "logical width mismatch");
        for block in inputs.iter().chain(outputs.iter()) {
            for wire in block {
                assert!(
                    wire.index() < circuit.n_wires(),
                    "wire {wire} out of range for {}-wire cycle",
                    circuit.n_wires()
                );
            }
        }
        CycleSpec {
            circuit,
            inputs,
            outputs,
            logical,
        }
    }

    /// The physical circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Number of logical bits.
    pub fn n_logical(&self) -> usize {
        self.inputs.len()
    }

    /// Input codeword positions per logical bit.
    pub fn inputs(&self) -> &[[Wire; 3]] {
        &self.inputs
    }

    /// Output codeword positions per logical bit.
    pub fn outputs(&self) -> &[[Wire; 3]] {
        &self.outputs
    }

    /// The intended logical function.
    pub fn logical(&self) -> &Permutation {
        &self.logical
    }

    /// Prepares the all-zero physical state with `input` encoded on the
    /// input codewords.
    pub fn encode_input(&self, input: u64) -> BitState {
        let mut state = BitState::zeros(self.circuit.n_wires());
        for (i, block) in self.inputs.iter().enumerate() {
            let bit = (input >> i) & 1 == 1;
            for &wire in block {
                state.set(wire, bit);
            }
        }
        state
    }

    /// Per-codeword Hamming distance of the outputs from the ideal
    /// codewords for logical input `input`.
    pub fn output_errors(&self, input: u64, state: &BitState) -> Vec<u32> {
        let ideal = self.logical.apply(input);
        self.outputs
            .iter()
            .enumerate()
            .map(|(i, block)| {
                let bit = (ideal >> i) & 1 == 1;
                block.iter().filter(|&&w| state.get(w) != bit).count() as u32
            })
            .collect()
    }

    /// Decodes the output codewords by majority into a logical value.
    pub fn decode_output(&self, state: &BitState) -> u64 {
        let mut value = 0u64;
        for (i, block) in self.outputs.iter().enumerate() {
            let ones = block.iter().filter(|&&w| state.get(w)).count();
            if ones >= 2 {
                value |= 1 << i;
            }
        }
        value
    }

    /// Batch analogue of [`CycleSpec::encode_input`]: writes 64 logical
    /// inputs at once onto plane word `word`. `logical[i]` holds logical
    /// bit `i`'s value across lanes.
    ///
    /// # Panics
    ///
    /// Panics if `logical.len() != self.n_logical()`.
    pub fn encode_input_word(&self, batch: &mut BatchState, word: usize, logical: &[u64]) {
        assert_eq!(logical.len(), self.n_logical(), "logical width mismatch");
        for (block, &bits) in self.inputs.iter().zip(logical) {
            for &wire in block {
                batch.set_word(wire, word, bits);
            }
        }
    }

    /// Batch analogue of [`CycleSpec::decode_output`]: bitwise majority per
    /// output codeword. Returns one plane word per logical bit.
    pub fn decode_output_word(&self, batch: &BatchState, word: usize) -> Vec<u64> {
        self.outputs
            .iter()
            .map(|block| {
                majority3(
                    batch.word(block[0], word),
                    batch.word(block[1], word),
                    batch.word(block[2], word),
                )
            })
            .collect()
    }

    /// Checks that without faults the cycle maps every encoded input to the
    /// exactly-encoded ideal output (all output codewords clean).
    pub fn verify_ideal(&self) -> Result<(), String> {
        for input in 0..(1u64 << self.n_logical()) {
            let mut state = self.encode_input(input);
            self.circuit.run(&mut state);
            let errors = self.output_errors(input, &state);
            if errors.iter().any(|&e| e != 0) {
                return Err(format!(
                    "ideal run of input {input:b} leaves output errors {errors:?}"
                ));
            }
        }
        Ok(())
    }

    /// Exhaustively verifies single-fault tolerance: for every logical
    /// input and every possible single-op corruption, every output codeword
    /// must be within Hamming distance 1 of its ideal codeword.
    pub fn sweep_single_faults(&self) -> FaultSweep {
        let mut sweep = FaultSweep {
            plans: 0,
            runs: 0,
            max_codeword_error: 0,
            violations: 0,
            worst: None,
            first_order_mean: 0.0,
            first_order_worst: 0.0,
        };
        let n_inputs = 1u64 << self.n_logical();
        let mut coeff = vec![0.0f64; n_inputs as usize];
        for plan in single_fault_plans(&self.circuit) {
            sweep.plans += 1;
            let op_index = plan.faults()[0].op_index;
            let pattern_weight = 1.0 / (1u64 << self.circuit.ops()[op_index].arity()) as f64;
            for input in 0..n_inputs {
                sweep.runs += 1;
                let mut state = self.encode_input(input);
                PlannedFaultBackend::new(&plan).run_state(&self.circuit, &mut state);
                let worst_block = self
                    .output_errors(input, &state)
                    .into_iter()
                    .max()
                    .unwrap_or(0);
                sweep.max_codeword_error = sweep.max_codeword_error.max(worst_block);
                if worst_block >= 2 {
                    sweep.violations += 1;
                    coeff[input as usize] += pattern_weight;
                    if sweep.worst.is_none() {
                        sweep.worst = Some((input, plan.clone()));
                    }
                }
            }
        }
        sweep.first_order_mean = coeff.iter().sum::<f64>() / n_inputs as f64;
        sweep.first_order_worst = coeff.iter().copied().fold(0.0, f64::max);
        sweep
    }

    /// Searches for a pair of faults that defeats the cycle (≥ 2 errors in
    /// some output codeword). Returns the first such `(input, plan)`.
    ///
    /// The existence of such a pair shows the single-fault guarantee is
    /// tight — the scheme corrects one error, not two.
    pub fn find_double_fault_failure(&self) -> Option<(u64, FaultPlan)> {
        for plan in double_fault_plans(&self.circuit) {
            for input in 0..(1u64 << self.n_logical()) {
                let mut state = self.encode_input(input);
                PlannedFaultBackend::new(&plan).run_state(&self.circuit, &mut state);
                if self
                    .output_errors(input, &state)
                    .into_iter()
                    .any(|e| e >= 2)
                {
                    return Some((input, plan));
                }
            }
        }
        None
    }
}

/// A `CycleSpec` is directly usable as a Monte-Carlo trial: each lane
/// draws an independent uniform logical input, the input codewords are
/// encoded onto the plane word, and a lane fails when the majority-decoded
/// output disagrees with the intended logical function.
impl WordTrial for CycleSpec {
    fn n_wires(&self) -> usize {
        self.circuit.n_wires()
    }

    fn prepare(&self, batch: &mut BatchState, rng: &mut dyn RngCore) -> Vec<u64> {
        let mut logical = Vec::new();
        self.prepare_into(batch, rng, &mut logical);
        logical
    }

    fn prepare_into(&self, batch: &mut BatchState, rng: &mut dyn RngCore, inputs: &mut Vec<u64>) {
        inputs.clear();
        inputs.extend((0..self.n_logical()).map(|_| rng.random::<u64>()));
        self.encode_input_word(batch, 0, inputs);
    }

    fn judge(&self, batch: &BatchState, inputs: &[u64]) -> u64 {
        self.judge_masked(batch, inputs, u64::MAX)
    }

    fn judge_masked(&self, batch: &BatchState, inputs: &[u64], candidates: u64) -> u64 {
        if candidates == 0 {
            return 0;
        }
        let decoded = self.decode_output_word(batch, 0);
        failure_mask_in(candidates, inputs, &decoded, |input| {
            self.logical.apply(input)
        })
    }

    /// Encode → run → decode against the ideal function: a fault-free
    /// lane decodes exactly, so zero-fault elision is sound.
    fn fault_free_can_fail(&self) -> bool {
        false
    }
}

/// Builds the §2.2 non-local fault-tolerant cycle as a [`CycleSpec`]:
/// three level-1 codewords on their own 9-wire tiles, a transversal
/// application of `gate` (wires must be logical indices 0,1,2), then the
/// Figure 2 recovery on each tile. Exactly `G = 3 + 8 = 11` operations act
/// on each encoded bit.
///
/// # Panics
///
/// Panics if `gate` does not act on exactly the logical wires `{0,1,2}`.
pub fn transversal_cycle(gate: &rft_revsim::gate::Gate) -> CycleSpec {
    use crate::recovery::{DATA_IN, DATA_OUT, TILE_WIDTH};
    use rft_revsim::wire::w;

    let support = gate.support();
    assert!(
        support.len() == 3 && (0..3).all(|i| support.contains(w(i))),
        "gate must act on logical wires 0,1,2"
    );
    let mut circuit = Circuit::new(3 * TILE_WIDTH);
    let tile_wire = |tile: usize, q: Wire| w((tile * TILE_WIDTH) as u32 + q.raw());
    // Transversal application: code bit k of each tile.
    for q in DATA_IN {
        let map = [tile_wire(0, q), tile_wire(1, q), tile_wire(2, q)];
        circuit.push(rft_revsim::op::Op::Gate(gate.remap(&map)));
    }
    // Recovery on each tile.
    let recovery = crate::recovery::recovery_circuit();
    for tile in 0..3 {
        let map: Vec<Wire> = (0..TILE_WIDTH as u32)
            .map(|q| w((tile * TILE_WIDTH) as u32 + q))
            .collect();
        circuit.append_mapped(&recovery, &map);
    }
    let inputs = (0..3).map(|t| DATA_IN.map(|q| tile_wire(t, q))).collect();
    let outputs = (0..3).map(|t| DATA_OUT.map(|q| tile_wire(t, q))).collect();
    let mut logical = Circuit::new(3);
    logical.push(rft_revsim::op::Op::Gate(*gate));
    let perm = Permutation::of_circuit(&logical).expect("3-bit logical gate");
    CycleSpec::new(circuit, inputs, outputs, perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::{recovery_circuit, DATA_IN, DATA_OUT};
    use rft_revsim::prelude::*;

    fn recovery_spec() -> CycleSpec {
        CycleSpec::new(
            recovery_circuit(),
            vec![DATA_IN],
            vec![DATA_OUT],
            Permutation::identity(1),
        )
    }

    #[test]
    fn recovery_ideal_runs_clean() {
        recovery_spec().verify_ideal().unwrap();
    }

    #[test]
    fn recovery_is_single_fault_tolerant() {
        // THE theorem of §2: 8 ops × (2 four-pattern inits? no — inits are
        // 3-bit, so 8 patterns each) × 2 inputs, all leave ≤ 1 output error.
        let sweep = recovery_spec().sweep_single_faults();
        assert!(sweep.is_fault_tolerant(), "violation: {:?}", sweep.worst);
        assert_eq!(sweep.plans, 8 * 8); // 8 ops, all arity 3
        assert_eq!(sweep.runs, 64 * 2);
        assert_eq!(
            sweep.max_codeword_error, 1,
            "some fault must actually hit an output"
        );
    }

    #[test]
    fn recovery_double_faults_can_defeat_it() {
        let failure = recovery_spec().find_double_fault_failure();
        assert!(
            failure.is_some(),
            "two faults should be able to corrupt the codeword"
        );
    }

    #[test]
    fn decode_output_majority() {
        let spec = recovery_spec();
        let mut state = spec.encode_input(1);
        spec.circuit().run(&mut state);
        assert_eq!(spec.decode_output(&state), 1);
    }

    #[test]
    fn encode_input_writes_codewords() {
        let spec = recovery_spec();
        let state = spec.encode_input(1);
        assert!(state.get(DATA_IN[0]) && state.get(DATA_IN[1]) && state.get(DATA_IN[2]));
        assert_eq!(state.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "logical width mismatch")]
    fn spec_rejects_wrong_logical_width() {
        let _ = CycleSpec::new(
            recovery_circuit(),
            vec![DATA_IN],
            vec![DATA_OUT],
            Permutation::identity(2),
        );
    }

    #[test]
    fn transversal_cycle_budget_is_paper_g_11() {
        let gate = Gate::Toffoli {
            controls: [w(0), w(1)],
            target: w(2),
        };
        let spec = transversal_cycle(&gate);
        // G = 3 transversal + 8 recovery ops act on each encoded bit's tile.
        assert_eq!(spec.circuit().len(), 3 + 3 * 8);
        for tile in 0..3usize {
            let tile_wires: Vec<Wire> = (0..9u32).map(|q| w((tile * 9) as u32 + q)).collect();
            assert_eq!(
                spec.circuit().ops_touching_any(&tile_wires),
                11,
                "tile {tile}"
            );
        }
    }

    #[test]
    fn transversal_cycle_is_correct_and_fault_tolerant() {
        let gate = Gate::Toffoli {
            controls: [w(0), w(1)],
            target: w(2),
        };
        let spec = transversal_cycle(&gate);
        spec.verify_ideal().unwrap();
        let sweep = spec.sweep_single_faults();
        assert!(sweep.is_fault_tolerant(), "violation: {:?}", sweep.worst);
        assert_eq!(sweep.first_order_worst, 0.0);
    }

    #[test]
    fn transversal_cycle_with_unordered_gate_wires() {
        // MAJ with logical wires in non-ascending order must still verify.
        let gate = Gate::Maj(w(2), w(0), w(1));
        let spec = transversal_cycle(&gate);
        spec.verify_ideal().unwrap();
    }

    #[test]
    fn a_bare_gate_cycle_is_not_fault_tolerant() {
        // Control: transversal MAJ on three codewords *without* recovery
        // still satisfies ≤1 error per codeword for a single fault (the
        // fault hits one bit of each codeword at most)… but a cycle that
        // *decodes* without fan-out protection is not. Use a single-codeword
        // "recovery" built from one MAJ + one MAJ⁻¹ on the same block: a
        // fault on the middle of the pair can leave 2+ errors.
        let mut c = Circuit::new(3);
        c.maj(w(0), w(1), w(2)).maj_inv(w(0), w(1), w(2));
        let spec = CycleSpec::new(
            c,
            vec![[w(0), w(1), w(2)]],
            vec![[w(0), w(1), w(2)]],
            Permutation::identity(1),
        );
        spec.verify_ideal().unwrap();
        let sweep = spec.sweep_single_faults();
        assert!(
            !sweep.is_fault_tolerant(),
            "unprotected cycle should fail the sweep"
        );
    }
}
