//! The concatenated three-bit repetition code (§2.1).
//!
//! A bit at concatenation level `L` is represented by three bits at level
//! `L−1`; a level-0 bit is physical. A level-`L` logical bit therefore
//! spans `3^L` physical bits, and decoding is *recursive* majority: majority
//! of block majorities, not a flat majority vote over all `3^L` bits.

use rft_revsim::state::BitState;
use rft_revsim::wire::Wire;
use serde::{Deserialize, Serialize};

/// The three-bit repetition code concatenated `level` times.
///
/// # Examples
///
/// ```
/// use rft_core::code::RepetitionCode;
///
/// let code = RepetitionCode::new(2);
/// assert_eq!(code.block_len(), 9);
/// let word = code.encode(true);
/// assert_eq!(word, vec![true; 9]);
/// assert!(code.decode(&word));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RepetitionCode {
    level: u8,
}

impl RepetitionCode {
    /// Maximum supported concatenation level (3^10 = 59049 bits per block).
    pub const MAX_LEVEL: u8 = 10;

    /// Creates the code at the given concatenation level. Level 0 is the
    /// trivial (unencoded) code.
    ///
    /// # Panics
    ///
    /// Panics if `level > Self::MAX_LEVEL`.
    pub fn new(level: u8) -> Self {
        assert!(
            level <= Self::MAX_LEVEL,
            "level {level} exceeds maximum {}",
            Self::MAX_LEVEL
        );
        RepetitionCode { level }
    }

    /// The concatenation level.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Number of physical bits per logical bit: `3^level`.
    pub fn block_len(&self) -> usize {
        3usize.pow(self.level as u32)
    }

    /// Encodes a logical bit: every physical bit takes the logical value.
    pub fn encode(&self, bit: bool) -> Vec<bool> {
        vec![bit; self.block_len()]
    }

    /// Decodes by recursive majority.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.block_len()`.
    pub fn decode(&self, bits: &[bool]) -> bool {
        assert_eq!(bits.len(), self.block_len(), "codeword length mismatch");
        recursive_majority(bits)
    }

    /// Decodes a codeword read from `state` at the given wire positions
    /// (`wires[i]` is physical position `i` of the block).
    ///
    /// # Panics
    ///
    /// Panics if `wires.len() != self.block_len()`.
    pub fn decode_state(&self, state: &BitState, wires: &[Wire]) -> bool {
        assert_eq!(wires.len(), self.block_len(), "codeword length mismatch");
        let bits: Vec<bool> = wires.iter().map(|&w| state.get(w)).collect();
        recursive_majority(&bits)
    }

    /// Writes the codeword for `bit` into `state` at the given positions.
    ///
    /// # Panics
    ///
    /// Panics if `wires.len() != self.block_len()`.
    pub fn write_state(&self, state: &mut BitState, wires: &[Wire], bit: bool) {
        assert_eq!(wires.len(), self.block_len(), "codeword length mismatch");
        for &w in wires {
            state.set(w, bit);
        }
    }

    /// The number of arbitrary physical-bit errors the recursive decoder is
    /// guaranteed to correct: `(3^level − 1) / 2` for a flat code would be
    /// optimistic; recursive majority guarantees `2^level − 1`.
    ///
    /// (One error per level-1 block can be absorbed; adversarially placed
    /// errors must pair up inside a block to defeat it, giving the `2^L − 1`
    /// guarantee.)
    pub fn guaranteed_correctable(&self) -> usize {
        2usize.pow(self.level as u32) - 1
    }
}

impl Default for RepetitionCode {
    /// The level-1 code (three bits), as used by the Figure 2 recovery tile.
    fn default() -> Self {
        RepetitionCode::new(1)
    }
}

/// Recursive majority over a slice whose length is a power of three.
fn recursive_majority(bits: &[bool]) -> bool {
    match bits.len() {
        1 => bits[0],
        n => {
            debug_assert_eq!(n % 3, 0);
            let third = n / 3;
            let a = recursive_majority(&bits[..third]);
            let b = recursive_majority(&bits[third..2 * third]);
            let c = recursive_majority(&bits[2 * third..]);
            (a as u8 + b as u8 + c as u8) >= 2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rft_revsim::wire::w;

    #[test]
    fn block_lengths_are_powers_of_three() {
        for level in 0..=4u8 {
            assert_eq!(
                RepetitionCode::new(level).block_len(),
                3usize.pow(level as u32)
            );
        }
    }

    #[test]
    fn level_zero_is_trivial() {
        let code = RepetitionCode::new(0);
        assert_eq!(code.encode(true), vec![true]);
        assert!(code.decode(&[true]));
        assert!(!code.decode(&[false]));
        assert_eq!(code.guaranteed_correctable(), 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        for level in 0..=3u8 {
            let code = RepetitionCode::new(level);
            for bit in [false, true] {
                assert_eq!(code.decode(&code.encode(bit)), bit);
            }
        }
    }

    #[test]
    fn level_one_tolerates_any_single_flip() {
        let code = RepetitionCode::new(1);
        for bit in [false, true] {
            for flip in 0..3 {
                let mut word = code.encode(bit);
                word[flip] = !word[flip];
                assert_eq!(code.decode(&word), bit);
            }
        }
    }

    #[test]
    fn level_two_tolerates_spread_errors() {
        // One flip in each of the three level-1 blocks: recursive majority
        // still decodes correctly (3 errors, more than a flat-code bound of
        // 4 would allow... here the placement matters).
        let code = RepetitionCode::new(2);
        for bit in [false, true] {
            let mut word = code.encode(bit);
            word[0] = !word[0];
            word[3] = !word[3];
            word[6] = !word[6];
            assert_eq!(code.decode(&word), bit);
        }
    }

    #[test]
    fn level_two_fails_on_concentrated_errors() {
        // Two flips inside the same level-1 block flip that block; two such
        // corrupted blocks flip the logical bit. 4 adversarial errors defeat
        // level 2 — matching guaranteed_correctable() = 3.
        let code = RepetitionCode::new(2);
        let mut word = code.encode(false);
        word[0] = true;
        word[1] = true;
        word[3] = true;
        word[4] = true;
        assert!(
            code.decode(&word),
            "4 concentrated errors must flip the logical bit"
        );
    }

    #[test]
    fn guaranteed_correctable_bound_is_tight_at_level_two() {
        let code = RepetitionCode::new(2);
        assert_eq!(code.guaranteed_correctable(), 3);
        // No 3-error pattern can defeat recursive majority at level 2:
        // exhaustively check all C(9,3) placements.
        for i in 0..9 {
            for j in (i + 1)..9 {
                for k in (j + 1)..9 {
                    let mut word = code.encode(false);
                    word[i] = true;
                    word[j] = true;
                    word[k] = true;
                    assert!(
                        !code.decode(&word),
                        "errors at {i},{j},{k} defeated the code"
                    );
                }
            }
        }
    }

    #[test]
    fn recursive_majority_differs_from_flat_majority() {
        // 5 ones out of 9, but arranged so recursive majority says 0:
        // blocks (1,1,0) -> wait we need blocks decoding to 0,0,1.
        // blocks: [1,0,0], [1,0,0], [1,1,1] -> block values 0,0,1 -> logical 0
        // flat majority of 5 ones would say 1.
        let word = [true, false, false, true, false, false, true, true, true];
        let code = RepetitionCode::new(2);
        assert!(!code.decode(&word));
        assert_eq!(word.iter().filter(|&&b| b).count(), 5);
    }

    #[test]
    fn state_read_write() {
        let code = RepetitionCode::new(1);
        let mut state = BitState::zeros(9);
        let wires = [w(2), w(5), w(7)];
        code.write_state(&mut state, &wires, true);
        assert!(code.decode_state(&state, &wires));
        state.flip(w(5));
        assert!(code.decode_state(&state, &wires), "single flip tolerated");
        state.flip(w(7));
        assert!(
            !code.decode_state(&state, &wires),
            "double flip decodes wrong"
        );
    }

    #[test]
    #[should_panic(expected = "codeword length mismatch")]
    fn decode_rejects_wrong_length() {
        let _ = RepetitionCode::new(1).decode(&[true, false]);
    }

    #[test]
    #[should_panic(expected = "exceeds maximum")]
    fn level_cap_enforced() {
        let _ = RepetitionCode::new(11);
    }

    #[test]
    fn default_is_level_one() {
        assert_eq!(RepetitionCode::default().level(), 1);
    }
}
