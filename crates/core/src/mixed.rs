//! Concatenating different thresholds (§3.3, Table 2).
//!
//! Using `k` levels of a high-threshold scheme (2D, `ρ₂`) below `L−k`
//! levels of a low-threshold scheme (1D, `ρ₁`) gives an effective threshold
//!
//! ```text
//! ρ(k) = ρ₂ · (ρ₁/ρ₂)^(1/2^k)
//! ```
//!
//! which approaches `ρ₂` rapidly: a 1D machine whose lattice is only
//! `3^k` bits wide recovers most of the 2D threshold.

use crate::threshold::GateBudget;
use serde::{Deserialize, Serialize};

/// §3.3: effective threshold after `k` levels of a `rho2` scheme under an
/// outer `rho1` scheme.
///
/// # Panics
///
/// Panics unless `0 < rho1 <= rho2 <= 1`.
///
/// # Examples
///
/// ```
/// use rft_core::mixed::mixed_threshold;
///
/// let rho2 = 1.0 / 273.0;  // 2D (no init)
/// let rho1 = 1.0 / 2109.0; // 1D (no init)
/// // k = 3 (width-27 lattice): 77% of the full 2D threshold.
/// let ratio = mixed_threshold(rho1, rho2, 3) / rho2;
/// assert!((ratio - 0.77).abs() < 0.005);
/// ```
pub fn mixed_threshold(rho1: f64, rho2: f64, k: u32) -> f64 {
    assert!(
        rho1 > 0.0 && rho2 >= rho1 && rho2 <= 1.0,
        "need 0 < rho1 <= rho2 <= 1"
    );
    rho2 * (rho1 / rho2).powf(1.0 / 2f64.powi(k as i32))
}

/// One row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Levels of 2D concatenation at the bottom.
    pub k: u32,
    /// Lattice width required: `3^k` bit lines.
    pub width: u32,
    /// Effective threshold `ρ(k)`.
    pub rho_k: f64,
    /// `ρ(k)/ρ₂` as printed in the paper.
    pub ratio: f64,
}

/// The paper's Table 2 values (`k`, width, `ρ(k)/ρ₂`).
pub const PAPER_TABLE_2: [(u32, u32, f64); 6] = [
    (0, 1, 0.13),
    (1, 3, 0.36),
    (2, 9, 0.60),
    (3, 27, 0.77),
    (4, 81, 0.88),
    (5, 243, 0.94),
];

/// Regenerates Table 2 from arbitrary 1D/2D thresholds.
pub fn table2_for(rho1: f64, rho2: f64, max_k: u32) -> Vec<Table2Row> {
    (0..=max_k)
        .map(|k| {
            let rho_k = mixed_threshold(rho1, rho2, k);
            Table2Row {
                k,
                width: 3u32.pow(k),
                rho_k,
                ratio: rho_k / rho2,
            }
        })
        .collect()
}

/// Regenerates Table 2 with the thresholds the paper used:
/// `ρ₁ = 1/2109` (1D, initialization ignored) and `ρ₂ = 1/273`
/// (2D, initialization ignored).
pub fn table2() -> Vec<Table2Row> {
    table2_for(
        GateBudget::LOCAL_1D_NO_INIT.threshold(),
        GateBudget::LOCAL_2D_NO_INIT.threshold(),
        5,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_table_2_to_printed_precision() {
        let rows = table2();
        assert_eq!(rows.len(), PAPER_TABLE_2.len());
        for (row, &(k, width, ratio)) in rows.iter().zip(PAPER_TABLE_2.iter()) {
            assert_eq!(row.k, k);
            assert_eq!(row.width, width);
            assert!(
                (row.ratio - ratio).abs() < 0.005,
                "k={k}: computed {:.4} vs paper {ratio}",
                row.ratio
            );
        }
    }

    #[test]
    fn k_zero_is_pure_1d_and_limit_is_2d() {
        let rho1 = 1.0 / 2109.0;
        let rho2 = 1.0 / 273.0;
        assert!((mixed_threshold(rho1, rho2, 0) - rho1).abs() < 1e-15);
        // Large k converges to ρ₂.
        let deep = mixed_threshold(rho1, rho2, 30);
        assert!((deep / rho2 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ratio_is_monotonically_increasing_in_k() {
        let rows = table2();
        for pair in rows.windows(2) {
            assert!(pair[1].ratio > pair[0].ratio);
        }
    }

    #[test]
    fn abstract_claim_27_wide_within_23_percent() {
        // Abstract: "a 1D lattice that is 27 bits wide … has an error
        // threshold only 23% less than the full 2D case".
        let row = &table2()[3];
        assert_eq!(row.width, 27);
        assert!((1.0 - row.ratio - 0.23).abs() < 0.01);
    }

    #[test]
    fn nine_wide_is_sixty_percent() {
        // §3.3: "a linear array nine bits wide has a threshold 60% as large
        // as the full 2D case".
        let row = &table2()[2];
        assert_eq!(row.width, 9);
        assert!((row.ratio - 0.60).abs() < 0.005);
    }

    #[test]
    fn equal_thresholds_are_fixed() {
        for k in 0..6 {
            assert!((mixed_threshold(0.01, 0.01, k) - 0.01).abs() < 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "rho1 <= rho2")]
    fn rejects_swapped_arguments() {
        let _ = mixed_threshold(0.1, 0.01, 1);
    }

    #[test]
    fn general_formula_interpolates_geometrically() {
        // ρ(k+1)² · ρ2⁻¹ = ρ(k) · … — equivalent check: log-ratio halves.
        let rho1 = 1e-4;
        let rho2 = 1e-2;
        for k in 0..5 {
            let a = (mixed_threshold(rho1, rho2, k) / rho2).ln();
            let b = (mixed_threshold(rho1, rho2, k + 1) / rho2).ln();
            assert!((a / b - 2.0).abs() < 1e-9);
        }
    }
}
