//! The concatenated fault-tolerant compiler (Figure 3, §2.1 & §2.3).
//!
//! A gate at concatenation level `L` on three level-`L` logical bits is
//! implemented by applying the gate at level `L−1` transversally to the
//! three code bits and then running an error-recovery cycle at level `L` on
//! every touched logical bit. Recoveries at level `L` use gates at level
//! `L−1`, which recursively carry their own recoveries, bottoming out at
//! physical operations.
//!
//! A level-`L` logical bit occupies a *tile* of `9^L` physical wires: three
//! sub-tiles hold the code bits and six hold the recovery ancillas, at every
//! level — exactly the `S_L = 9^L` size blow-up of §2.3.
//!
//! The recovery circuit leaves the refreshed codeword on rotated positions
//! (`q0,q3,q6` of the tile). The compiler tracks these rotations in a
//! 9-ary position tree per logical wire instead of emitting repair SWAPs,
//! matching the paper's footnote 3 ("this rotation is uniform throughout
//! the circuit and can be ignored").

use crate::error::{Error, Result};
use rft_revsim::batch::kernels::majority3;
use rft_revsim::batch::BatchState;
use rft_revsim::circuit::Circuit;
use rft_revsim::gate::Gate;
use rft_revsim::op::Op;
use rft_revsim::state::BitState;
use rft_revsim::wire::{w, Wire};

/// Arena index of a tile node.
type NodeId = usize;

/// A node in the tile tree: one logical bit at some level ≥ 1.
#[derive(Debug, Clone)]
struct Node {
    /// Concatenation level of this bit (≥ 1).
    level: u8,
    /// First physical wire of this bit's tile (`9^level` wires).
    base: u32,
    /// Child node ids (level ≥ 2 only), one per sub-tile 0..9.
    children: [NodeId; 9],
    /// Which of the nine sub-tiles currently hold the three code bits.
    data: [u8; 3],
}

const NO_CHILD: NodeId = usize::MAX;

/// Recursive data-position tree used to encode and decode logical bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataTree {
    /// A physical wire holding (a share of) the logical value.
    Leaf(Wire),
    /// Three sub-blocks; the logical value is their recursive majority.
    Block(Box<[DataTree; 3]>),
}

impl DataTree {
    /// All physical wires in this tree, left to right (`3^L` leaves).
    pub fn leaves(&self) -> Vec<Wire> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<Wire>) {
        match self {
            DataTree::Leaf(wire) => out.push(*wire),
            DataTree::Block(children) => {
                for c in children.iter() {
                    c.collect_leaves(out);
                }
            }
        }
    }

    /// Decodes the logical value from `state` by recursive majority.
    pub fn decode(&self, state: &BitState) -> bool {
        match self {
            DataTree::Leaf(wire) => state.get(*wire),
            DataTree::Block(children) => {
                let votes = children.iter().filter(|c| c.decode(state)).count();
                votes >= 2
            }
        }
    }

    /// Writes the logical value `bit` onto every leaf.
    pub fn encode(&self, state: &mut BitState, bit: bool) {
        match self {
            DataTree::Leaf(wire) => state.set(*wire, bit),
            DataTree::Block(children) => {
                for c in children.iter() {
                    c.encode(state, bit);
                }
            }
        }
    }

    /// Number of physical errors relative to a clean encoding of `bit`.
    pub fn error_weight(&self, state: &BitState, bit: bool) -> u32 {
        self.leaves()
            .iter()
            .filter(|&&w| state.get(w) != bit)
            .count() as u32
    }

    /// Batch analogue of [`DataTree::decode`]: decodes plane word `word`
    /// for all 64 lanes at once by bitwise recursive majority.
    pub fn decode_word(&self, state: &BatchState, word: usize) -> u64 {
        match self {
            DataTree::Leaf(wire) => state.word(*wire, word),
            DataTree::Block(children) => majority3(
                children[0].decode_word(state, word),
                children[1].decode_word(state, word),
                children[2].decode_word(state, word),
            ),
        }
    }

    /// Batch analogue of [`DataTree::encode`]: writes the per-lane logical
    /// bits `bits` onto every leaf's plane word `word`.
    pub fn encode_word(&self, state: &mut BatchState, word: usize, bits: u64) {
        match self {
            DataTree::Leaf(wire) => state.set_word(*wire, word, bits),
            DataTree::Block(children) => {
                for c in children.iter() {
                    c.encode_word(state, word, bits);
                }
            }
        }
    }
}

/// Builds fault-tolerant physical circuits by concatenated encoding.
///
/// # Examples
///
/// Compile a logical Toffoli at level 1 and check the blow-up of §2.3
/// (`Γ₁ = 3·(1+E) = 27` operations for `E = 8`):
///
/// ```
/// use rft_core::concat::FtBuilder;
/// use rft_revsim::prelude::*;
///
/// let mut b = FtBuilder::new(1, 3);
/// b.apply(&Gate::Toffoli { controls: [w(0), w(1)], target: w(2) });
/// let program = b.finish();
/// assert_eq!(program.circuit().len(), 27);
/// assert_eq!(program.n_physical(), 3 * 9);
/// ```
#[must_use = "an FtBuilder emits nothing until finished into an FtProgram"]
#[derive(Debug, Clone)]
pub struct FtBuilder {
    level: u8,
    n_logical: usize,
    nodes: Vec<Node>,
    roots: Vec<NodeId>,
    circuit: Circuit,
    initial_trees: Vec<DataTree>,
    logical_gates: usize,
}

impl FtBuilder {
    /// Maximum supported concatenation level (9^4 = 6561 wires per bit).
    pub const MAX_LEVEL: u8 = 4;

    /// Creates a builder for `n_logical` logical wires encoded at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level > Self::MAX_LEVEL` or `n_logical == 0`.
    pub fn new(level: u8, n_logical: usize) -> Self {
        assert!(
            level <= Self::MAX_LEVEL,
            "level {level} exceeds maximum {}",
            Self::MAX_LEVEL
        );
        assert!(n_logical > 0, "need at least one logical wire");
        let tile = 9usize.pow(level as u32);
        let mut builder = FtBuilder {
            level,
            n_logical,
            nodes: Vec::new(),
            roots: Vec::new(),
            circuit: Circuit::new(n_logical * tile),
            initial_trees: Vec::new(),
            logical_gates: 0,
        };
        for i in 0..n_logical {
            let root = builder.build_tree(level, (i * tile) as u32);
            builder.roots.push(root);
        }
        builder.initial_trees = (0..n_logical).map(|i| builder.tree_of_wire(i)).collect();
        builder
    }

    /// Allocates the node tree for a tile. Returns `NO_CHILD` for level 0
    /// (physical bits need no node).
    fn build_tree(&mut self, level: u8, base: u32) -> NodeId {
        if level == 0 {
            return NO_CHILD;
        }
        let sub = 9u32.pow(level as u32 - 1);
        let mut children = [NO_CHILD; 9];
        if level >= 2 {
            for (k, child) in children.iter_mut().enumerate() {
                *child = self.build_tree(level - 1, base + k as u32 * sub);
            }
        }
        self.nodes.push(Node {
            level,
            base,
            children,
            data: [0, 1, 2],
        });
        self.nodes.len() - 1
    }

    /// The concatenation level.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Number of logical wires.
    pub fn n_logical(&self) -> usize {
        self.n_logical
    }

    /// Physical wire of sub-position `k` of a level-1 node.
    fn phys(&self, node: NodeId, k: u8) -> Wire {
        w(self.nodes[node].base + k as u32)
    }

    /// The six sub-tile indices currently holding ancillas, ascending.
    fn ancilla_slots(&self, node: NodeId) -> [u8; 6] {
        let data = self.nodes[node].data;
        let mut out = [0u8; 6];
        let mut n = 0;
        for k in 0..9u8 {
            if !data.contains(&k) {
                out[n] = k;
                n += 1;
            }
        }
        debug_assert_eq!(n, 6);
        out
    }

    /// Applies `gate` (wires = logical wire indices) fault-tolerantly:
    /// transversal application plus recovery on every touched logical bit.
    ///
    /// # Panics
    ///
    /// Panics if the gate references logical wires beyond `n_logical`, or
    /// is an `Init` — resets of logical wires are not part of the scheme.
    pub fn apply(&mut self, gate: &Gate) -> &mut Self {
        self.apply_inner(gate, true)
    }

    /// Applies `gate` transversally *without* the trailing recovery cycle —
    /// the unprotected baseline used for ablation experiments.
    ///
    /// # Panics
    ///
    /// As for [`FtBuilder::apply`].
    pub fn apply_bare(&mut self, gate: &Gate) -> &mut Self {
        self.apply_inner(gate, false)
    }

    fn apply_inner(&mut self, gate: &Gate, recover: bool) -> &mut Self {
        let support = gate.support();
        for wire in support.as_slice() {
            assert!(
                wire.index() < self.n_logical,
                "logical wire {wire} out of range ({} logical wires)",
                self.n_logical
            );
        }
        self.logical_gates += 1;
        if self.level == 0 {
            self.circuit.push(Op::Gate(*gate));
            return self;
        }
        let operands: Vec<NodeId> = support
            .as_slice()
            .iter()
            .map(|w| self.roots[w.index()])
            .collect();
        // Canonicalize: rewrite the gate so wire k refers to operands[k]
        // (gate_at instantiates it by remapping slot k to a physical wire).
        let max = support.max_index();
        let mut slots = vec![w(0); max + 1];
        for (k, wire) in support.as_slice().iter().enumerate() {
            slots[wire.index()] = w(k as u32);
        }
        let slot_gate = gate.remap(&slots);
        self.gate_at(&slot_gate, &operands, recover);
        self
    }

    /// Runs an error-recovery cycle at the top level on one logical wire.
    ///
    /// # Panics
    ///
    /// Panics if `logical` is out of range, or at level 0 (nothing to
    /// recover).
    pub fn recover(&mut self, logical: usize) -> &mut Self {
        assert!(
            logical < self.n_logical,
            "logical wire {logical} out of range"
        );
        assert!(self.level > 0, "level-0 circuits have no recovery");
        let root = self.roots[logical];
        self.recover_node(root);
        self
    }

    /// Recursive FT gate application on nodes of equal level ≥ 1.
    ///
    /// `gate`'s wires index into `operands` (wire k → operands[k]).
    fn gate_at(&mut self, gate: &Gate, operands: &[NodeId], recover: bool) {
        let level = self.nodes[operands[0]].level;
        debug_assert!(operands.iter().all(|&n| self.nodes[n].level == level));
        if level == 1 {
            // Transversal physical application on the current code bits.
            for k in 0..3usize {
                let map: Vec<Wire> = operands
                    .iter()
                    .map(|&n| self.phys(n, self.nodes[n].data[k]))
                    .collect();
                self.circuit.push(Op::Gate(gate.remap(&map)));
            }
        } else {
            for k in 0..3usize {
                let subs: Vec<NodeId> = operands
                    .iter()
                    .map(|&n| self.nodes[n].children[self.nodes[n].data[k] as usize])
                    .collect();
                self.gate_at(gate, &subs, recover);
            }
        }
        if recover {
            for &n in operands {
                self.recover_node(n);
            }
        }
    }

    /// Error recovery at `node`'s level, per Figure 2 / Figure 3.
    fn recover_node(&mut self, node: NodeId) {
        let level = self.nodes[node].level;
        let data = self.nodes[node].data;
        let anc = self.ancilla_slots(node);
        if level == 1 {
            let p = |k: u8| self.phys(node, k);
            let ops: [Op; 8] = [
                Op::init(&[p(anc[0]), p(anc[1]), p(anc[2])]),
                Op::init(&[p(anc[3]), p(anc[4]), p(anc[5])]),
                Op::Gate(Gate::MajInv(p(data[0]), p(anc[0]), p(anc[3]))),
                Op::Gate(Gate::MajInv(p(data[1]), p(anc[1]), p(anc[4]))),
                Op::Gate(Gate::MajInv(p(data[2]), p(anc[2]), p(anc[5]))),
                Op::Gate(Gate::Maj(p(data[0]), p(data[1]), p(data[2]))),
                Op::Gate(Gate::Maj(p(anc[0]), p(anc[1]), p(anc[2]))),
                Op::Gate(Gate::Maj(p(anc[3]), p(anc[4]), p(anc[5]))),
            ];
            for op in ops {
                self.circuit.push(op);
            }
        } else {
            let children = self.nodes[node].children;
            let child = |k: u8| children[k as usize];
            // Two init operations at level-1 granularity: reset the six
            // ancilla sub-bits (their data children, recursively).
            self.reset_triple([child(anc[0]), child(anc[1]), child(anc[2])]);
            self.reset_triple([child(anc[3]), child(anc[4]), child(anc[5])]);
            // Six MAJ-family gates at one level lower, each a full FT gate.
            let enc = Gate::MajInv(w(0), w(1), w(2));
            let dec = Gate::Maj(w(0), w(1), w(2));
            self.gate_at(&enc, &[child(data[0]), child(anc[0]), child(anc[3])], true);
            self.gate_at(&enc, &[child(data[1]), child(anc[1]), child(anc[4])], true);
            self.gate_at(&enc, &[child(data[2]), child(anc[2]), child(anc[5])], true);
            self.gate_at(
                &dec,
                &[child(data[0]), child(data[1]), child(data[2])],
                true,
            );
            self.gate_at(&dec, &[child(anc[0]), child(anc[1]), child(anc[2])], true);
            self.gate_at(&dec, &[child(anc[3]), child(anc[4]), child(anc[5])], true);
        }
        // Output rotation: the refreshed codeword sits on (q0, q3, q6) —
        // i.e. first data slot and the first slot of each ancilla group.
        self.nodes[node].data = [data[0], anc[0], anc[3]];
    }

    /// Resets three same-level logical bits to |0⟩ (recursively resets
    /// their data children; stale ancillas below are cleaned by later
    /// recoveries before use).
    fn reset_triple(&mut self, bits: [NodeId; 3]) {
        let level = self.nodes[bits[0]].level;
        if level == 1 {
            for b in bits {
                let data = self.nodes[b].data;
                let wires = [
                    self.phys(b, data[0]),
                    self.phys(b, data[1]),
                    self.phys(b, data[2]),
                ];
                self.circuit.push(Op::init(&wires));
            }
        } else {
            for b in bits {
                let data = self.nodes[b].data;
                let child = |k: u8| self.nodes[b].children[k as usize];
                self.reset_triple([child(data[0]), child(data[1]), child(data[2])]);
            }
        }
    }

    /// The data-position tree of a logical wire in the builder's current
    /// state.
    fn tree_of_wire(&self, logical: usize) -> DataTree {
        if self.level == 0 {
            return DataTree::Leaf(w(logical as u32));
        }
        self.tree_of_node(self.roots[logical])
    }

    fn tree_of_node(&self, node: NodeId) -> DataTree {
        let n = &self.nodes[node];
        if n.level == 1 {
            DataTree::Block(Box::new([
                DataTree::Leaf(self.phys(node, n.data[0])),
                DataTree::Leaf(self.phys(node, n.data[1])),
                DataTree::Leaf(self.phys(node, n.data[2])),
            ]))
        } else {
            DataTree::Block(Box::new([
                self.tree_of_node(n.children[n.data[0] as usize]),
                self.tree_of_node(n.children[n.data[1] as usize]),
                self.tree_of_node(n.children[n.data[2] as usize]),
            ]))
        }
    }

    /// Finalizes the builder into an executable program.
    #[must_use = "finishing produces the program; the builder is consumed"]
    pub fn finish(self) -> FtProgram {
        let final_trees: Vec<DataTree> =
            (0..self.n_logical).map(|i| self.tree_of_wire(i)).collect();
        FtProgram {
            level: self.level,
            n_logical: self.n_logical,
            circuit: self.circuit,
            initial_trees: self.initial_trees,
            final_trees,
            logical_gates: self.logical_gates,
        }
    }

    /// Compiles a whole logical circuit at the given level.
    ///
    /// Every gate of `logical` becomes one fault-tolerant cycle
    /// (transversal gate + recoveries), reproducing Figure 3.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnsupportedLogicalOp`] if `logical` contains `Init`
    /// operations (logical resets are not part of the paper's scheme).
    pub fn compile(level: u8, logical: &Circuit) -> Result<FtProgram> {
        let mut builder = FtBuilder::new(level, logical.n_wires());
        for op in logical.ops() {
            match op {
                Op::Gate(g) => {
                    builder.apply(g);
                }
                Op::Init(_) => return Err(Error::UnsupportedLogicalOp),
            }
        }
        Ok(builder.finish())
    }
}

/// A compiled fault-tolerant program: physical circuit plus the data-
/// position bookkeeping needed to encode inputs and decode outputs.
#[must_use = "a compiled program does nothing until executed"]
#[derive(Debug, Clone)]
pub struct FtProgram {
    level: u8,
    n_logical: usize,
    circuit: Circuit,
    initial_trees: Vec<DataTree>,
    final_trees: Vec<DataTree>,
    logical_gates: usize,
}

impl FtProgram {
    /// The physical circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Concatenation level.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Number of logical wires.
    pub fn n_logical(&self) -> usize {
        self.n_logical
    }

    /// Number of physical wires: `n_logical × 9^level`.
    pub fn n_physical(&self) -> usize {
        self.circuit.n_wires()
    }

    /// Number of logical gates compiled.
    pub fn logical_gates(&self) -> usize {
        self.logical_gates
    }

    /// Data-position tree of a logical wire before the program runs.
    pub fn initial_tree(&self, logical: usize) -> &DataTree {
        &self.initial_trees[logical]
    }

    /// Data-position tree of a logical wire after the program runs.
    pub fn final_tree(&self, logical: usize) -> &DataTree {
        &self.final_trees[logical]
    }

    /// Encodes a logical state: data leaves take the logical bit values,
    /// every other physical wire is zero.
    ///
    /// # Panics
    ///
    /// Panics if `logical.len() != self.n_logical()`.
    pub fn encode(&self, logical: &BitState) -> BitState {
        assert_eq!(logical.len(), self.n_logical, "logical width mismatch");
        let mut state = BitState::zeros(self.n_physical());
        for (i, tree) in self.initial_trees.iter().enumerate() {
            tree.encode(&mut state, logical.get(w(i as u32)));
        }
        state
    }

    /// Decodes the final physical state into logical bits by recursive
    /// majority over the final data positions.
    ///
    /// # Panics
    ///
    /// Panics if `physical.len() != self.n_physical()`.
    pub fn decode(&self, physical: &BitState) -> BitState {
        assert_eq!(physical.len(), self.n_physical(), "physical width mismatch");
        let bits: Vec<bool> = self
            .final_trees
            .iter()
            .map(|t| t.decode(physical))
            .collect();
        BitState::from_bools(&bits)
    }

    /// Batch analogue of [`FtProgram::encode`]: encodes 64 logical states
    /// per plane word. `logical[i]` holds logical wire `i`'s value across
    /// the lanes of plane word `word`.
    ///
    /// # Panics
    ///
    /// Panics if `logical.len() != self.n_logical()` or `word` is out of
    /// range for `batch`.
    pub fn encode_word(&self, batch: &mut BatchState, word: usize, logical: &[u64]) {
        assert_eq!(logical.len(), self.n_logical, "logical width mismatch");
        for (tree, &bits) in self.initial_trees.iter().zip(logical) {
            tree.encode_word(batch, word, bits);
        }
    }

    /// Batch analogue of [`FtProgram::decode`]: recursive bitwise majority
    /// over the final data positions. Returns one plane word per logical
    /// wire.
    ///
    /// # Panics
    ///
    /// Panics if the batch width disagrees with [`FtProgram::n_physical`].
    pub fn decode_word(&self, batch: &BatchState, word: usize) -> Vec<u64> {
        assert_eq!(
            batch.n_wires(),
            self.n_physical(),
            "physical width mismatch"
        );
        self.final_trees
            .iter()
            .map(|t| t.decode_word(batch, word))
            .collect()
    }
}

/// Measured cost of one fault-tolerant logical gate at a given level —
/// the empirical counterpart of §2.3's `Γ_L = (3(G−2))^L` and `S_L = 9^L`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateCost {
    /// Concatenation level.
    pub level: u8,
    /// Operations emitted for one logical gate (measured `Γ`).
    pub ops: usize,
    /// Reversible gates among them.
    pub gates: usize,
    /// `Init` resets among them.
    pub inits: usize,
    /// Physical wires per logical bit (measured `S = 9^level`).
    pub wires_per_bit: usize,
    /// Circuit depth of the cycle.
    pub depth: usize,
}

/// Compiles a single 3-bit gate at `level` and measures its cost.
///
/// # Panics
///
/// Panics if `level > FtBuilder::MAX_LEVEL`.
#[must_use = "the measured cost is the result"]
pub fn measure_gate_cost(level: u8) -> GateCost {
    let mut b = FtBuilder::new(level, 3);
    b.apply(&Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    });
    let program = b.finish();
    let stats = program.circuit().stats();
    GateCost {
        level,
        ops: stats.total(),
        gates: stats.gate_ops(),
        inits: stats.init_ops(),
        wires_per_bit: 9usize.pow(level as u32),
        depth: program.circuit().depth(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rft_revsim::permutation::Permutation;

    fn toffoli() -> Gate {
        Gate::Toffoli {
            controls: [w(0), w(1)],
            target: w(2),
        }
    }

    #[test]
    fn level_zero_is_passthrough() {
        let mut logical = Circuit::new(3);
        logical.toffoli(w(0), w(1), w(2));
        let program = FtBuilder::compile(0, &logical).unwrap();
        assert_eq!(program.n_physical(), 3);
        assert_eq!(program.circuit().len(), 1);
        for input in 0..8u64 {
            let mut s = program.encode(&BitState::from_u64(input, 3));
            program.circuit().run(&mut s);
            let out = program.decode(&s).to_u64();
            let mut direct = BitState::from_u64(input, 3);
            logical.run(&mut direct);
            assert_eq!(out, direct.to_u64());
        }
    }

    #[test]
    fn level_one_gate_cost_matches_gamma_formula_exactly() {
        // Γ₁ = 3(1+E) with E = 8: 3 transversal + 3 recoveries × 8 ops.
        let cost = measure_gate_cost(1);
        assert_eq!(cost.ops, 27);
        assert_eq!(cost.inits, 3 * 2);
        assert_eq!(cost.gates, 3 + 3 * 6);
        assert_eq!(cost.wires_per_bit, 9);
    }

    #[test]
    fn level_two_gate_cost_is_below_the_uniform_formula() {
        // The closed form (3(G−2))² = 729 counts level-1 inits as full
        // gates; the physical compile is cheaper but of the same order.
        let cost = measure_gate_cost(2);
        assert!(cost.ops <= 729, "measured {} > formula 729", cost.ops);
        assert!(cost.ops >= 400, "measured {} suspiciously small", cost.ops);
        assert_eq!(cost.wires_per_bit, 81);
    }

    #[test]
    fn noiseless_level_one_computes_the_logical_function() {
        let mut logical = Circuit::new(3);
        logical.toffoli(w(0), w(1), w(2));
        let program = FtBuilder::compile(1, &logical).unwrap();
        let logical_perm = Permutation::of_circuit(&logical).unwrap();
        for input in 0..8u64 {
            let mut s = program.encode(&BitState::from_u64(input, 3));
            program.circuit().run(&mut s);
            assert_eq!(
                program.decode(&s).to_u64(),
                logical_perm.apply(input),
                "input {input:03b}"
            );
        }
    }

    #[test]
    fn noiseless_level_two_computes_the_logical_function() {
        let mut logical = Circuit::new(3);
        logical.toffoli(w(0), w(1), w(2));
        logical.maj(w(2), w(0), w(1));
        let program = FtBuilder::compile(2, &logical).unwrap();
        let logical_perm = Permutation::of_circuit(&logical).unwrap();
        for input in 0..8u64 {
            let mut s = program.encode(&BitState::from_u64(input, 3));
            program.circuit().run(&mut s);
            assert_eq!(program.decode(&s).to_u64(), logical_perm.apply(input));
        }
    }

    #[test]
    fn multi_cycle_rotation_tracking_stays_consistent() {
        // Many cycles: the data positions rotate every recovery; encoding/
        // decoding through the trees must stay exact without noise.
        let mut b = FtBuilder::new(1, 3);
        for _ in 0..7 {
            b.apply(&toffoli());
        }
        let program = b.finish();
        for input in 0..8u64 {
            let mut s = program.encode(&BitState::from_u64(input, 3));
            program.circuit().run(&mut s);
            // Toffoli is self-inverse: 7 applications = 1 application.
            let mut expect = BitState::from_u64(input, 3);
            toffoli().apply(&mut expect);
            assert_eq!(program.decode(&s).to_u64(), expect.to_u64());
        }
    }

    #[test]
    fn rotation_changes_data_positions() {
        let mut b = FtBuilder::new(1, 1);
        let before = b.tree_of_wire(0);
        b.recover(0);
        let after = b.tree_of_wire(0);
        assert_ne!(before, after, "recovery must rotate the codeword");
        assert_eq!(
            after.leaves(),
            vec![w(0), w(3), w(6)],
            "outputs land on q0,q3,q6 (Figure 2)"
        );
    }

    #[test]
    fn recovery_cleans_a_single_physical_error() {
        let mut b = FtBuilder::new(1, 1);
        b.recover(0);
        let program = b.finish();
        for bit in [false, true] {
            for flip in 0..3usize {
                let mut logical = BitState::zeros(1);
                logical.set(w(0), bit);
                let mut s = program.encode(&logical);
                let leaf = program.initial_tree(0).leaves()[flip];
                s.flip(leaf);
                program.circuit().run(&mut s);
                assert_eq!(program.decode(&s).get(w(0)), bit);
                // The output codeword is *clean*, not just decodable:
                assert_eq!(program.final_tree(0).error_weight(&s, bit), 0);
            }
        }
    }

    #[test]
    fn size_blowup_is_nine_per_level() {
        for level in 0..=3u8 {
            let b = FtBuilder::new(level, 2);
            let program = b.finish();
            assert_eq!(program.n_physical(), 2 * 9usize.pow(level as u32));
        }
    }

    #[test]
    fn gate_cost_ratio_between_levels_tracks_3g_minus_2() {
        // Γ_k / Γ_{k-1} ≤ 3(1+E) = 27, and ≥ 21 (the no-init count 3(1+6)).
        let c1 = measure_gate_cost(1).ops as f64;
        let c2 = measure_gate_cost(2).ops as f64;
        let ratio = c2 / c1;
        assert!((21.0..=27.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn compile_rejects_logical_inits() {
        let mut logical = Circuit::new(3);
        logical.init(&[w(0)]);
        assert!(matches!(
            FtBuilder::compile(1, &logical),
            Err(crate::Error::UnsupportedLogicalOp)
        ));
    }

    #[test]
    fn bare_application_skips_recovery() {
        let mut b = FtBuilder::new(1, 3);
        b.apply_bare(&toffoli());
        let program = b.finish();
        assert_eq!(program.circuit().len(), 3, "transversal only");
        assert_eq!(program.circuit().stats().init_ops(), 0);
    }

    #[test]
    fn two_logical_wires_do_not_interfere() {
        let mut b = FtBuilder::new(1, 2);
        b.apply(&Gate::Cnot {
            control: w(0),
            target: w(1),
        });
        let program = b.finish();
        for input in 0..4u64 {
            let mut s = program.encode(&BitState::from_u64(input, 2));
            program.circuit().run(&mut s);
            let expect = {
                let mut t = BitState::from_u64(input, 2);
                Gate::Cnot {
                    control: w(0),
                    target: w(1),
                }
                .apply(&mut t);
                t.to_u64()
            };
            assert_eq!(program.decode(&s).to_u64(), expect);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds maximum")]
    fn level_cap_enforced() {
        let _ = FtBuilder::new(5, 1);
    }
}
