//! Crate error type.

use std::fmt;

/// Errors produced by the fault-tolerance layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The logical circuit contains an operation the FT compiler does not
    /// encode (currently: logical `Init` resets).
    UnsupportedLogicalOp,
    /// A gate error rate was outside `[0, 1]` or otherwise meaningless.
    InvalidRate {
        /// The offending value.
        value: f64,
    },
    /// A gate budget smaller than 2 operations cannot define a threshold.
    DegenerateBudget {
        /// The offending operation count.
        ops: u32,
    },
    /// An error from the underlying simulator.
    Revsim(rft_revsim::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnsupportedLogicalOp => {
                write!(
                    f,
                    "logical circuit contains an operation the compiler cannot encode"
                )
            }
            Error::InvalidRate { value } => {
                write!(f, "error rate {value} is not a probability")
            }
            Error::DegenerateBudget { ops } => {
                write!(
                    f,
                    "gate budget of {ops} operations cannot define a threshold"
                )
            }
            Error::Revsim(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Revsim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rft_revsim::Error> for Error {
    fn from(e: rft_revsim::Error) -> Self {
        Error::Revsim(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(Error::UnsupportedLogicalOp.to_string().contains("compiler"));
        assert!(Error::InvalidRate { value: 2.0 }.to_string().contains("2"));
        assert!(Error::DegenerateBudget { ops: 1 }.to_string().contains("1"));
    }

    #[test]
    fn wraps_revsim_errors_with_source() {
        use std::error::Error as _;
        let e = Error::from(rft_revsim::Error::Irreversible);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("simulator error"));
    }
}
