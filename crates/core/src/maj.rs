//! The reversible majority gate: Table 1 and Figure 1 of the paper.
//!
//! `MAJ` is obtained "by flipping the second two bits if the first bit is 1,
//! and then flipping the first bit if the second two bits are 1" — i.e. the
//! three-gate decomposition `CNOT(q0→q1)`, `CNOT(q0→q2)`,
//! `Toffoli(q1,q2→q0)` of Figure 1. Its first output bit is the majority of
//! the inputs, and its inverse maps `(b, 0, 0)` to `(b, b, b)`, encoding the
//! three-bit repetition code.

use rft_revsim::circuit::Circuit;
use rft_revsim::permutation::Permutation;
use rft_revsim::wire::{w, Wire};

/// The paper's Table 1, with rows written as `q0 q1 q2` bit strings.
///
/// Each input has a unique output and the first output bit is the majority
/// of the input bits.
pub const TABLE_1: [(&str, &str); 8] = [
    ("000", "000"),
    ("001", "001"),
    ("010", "010"),
    ("011", "111"),
    ("100", "011"),
    ("101", "110"),
    ("110", "101"),
    ("111", "100"),
];

/// Parses a `q0 q1 q2` bit string into the little-endian packed value used
/// by the simulator (`q0` → bit 0).
///
/// # Panics
///
/// Panics if `s` contains characters other than `0`/`1`.
pub fn parse_bits(s: &str) -> u64 {
    s.bytes().enumerate().fold(0u64, |acc, (i, b)| match b {
        b'0' => acc,
        b'1' => acc | (1 << i),
        _ => panic!("invalid bit character in {s:?}"),
    })
}

/// Formats a packed value as a `q0 q1 q2 …` bit string of width `n`.
pub fn format_bits(value: u64, n: usize) -> String {
    (0..n)
        .map(|i| if (value >> i) & 1 == 1 { '1' } else { '0' })
        .collect()
}

/// Boolean majority of three bits.
pub fn majority(a: bool, b: bool, c: bool) -> bool {
    (a as u8 + b as u8 + c as u8) >= 2
}

/// A single-`MAJ` circuit on three wires (the primitive gate).
pub fn maj_circuit() -> Circuit {
    let mut c = Circuit::new(3);
    c.maj(w(0), w(1), w(2));
    c
}

/// A single-`MAJ⁻¹` circuit on three wires.
pub fn maj_inv_circuit() -> Circuit {
    let mut c = Circuit::new(3);
    c.maj_inv(w(0), w(1), w(2));
    c
}

/// Figure 1: `MAJ` decomposed into two CNOTs and one Toffoli.
pub fn maj_decomposition() -> Circuit {
    let mut c = Circuit::new(3);
    c.cnot(w(0), w(1))
        .cnot(w(0), w(2))
        .toffoli(w(1), w(2), w(0));
    c
}

/// The inverse of Figure 1: `MAJ⁻¹` as one Toffoli and two CNOTs.
pub fn maj_inv_decomposition() -> Circuit {
    maj_decomposition()
        .inverted()
        .expect("gate-only circuit is invertible")
}

/// Appends `MAJ(a, b, c)` as its Figure 1 decomposition onto `circuit`.
///
/// # Panics
///
/// Panics if the wires are invalid for `circuit` (see [`Circuit::push`]).
pub fn push_maj_decomposed(circuit: &mut Circuit, a: Wire, b: Wire, c: Wire) {
    circuit.cnot(a, b).cnot(a, c).toffoli(b, c, a);
}

/// The permutation computed by `MAJ` (eight rows of Table 1).
pub fn maj_permutation() -> Permutation {
    Permutation::of_circuit(&maj_circuit()).expect("3-wire reversible circuit")
}

/// Result of checking the MAJ primitive against Table 1 and Figure 1,
/// consumed by the `table1`/`fig1` experiment reproductions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MajVerification {
    /// Truth-table rows `(input, output)` as `q0q1q2` strings.
    pub rows: Vec<(String, String)>,
    /// Whether the simulated table matches Table 1 exactly.
    pub matches_table_1: bool,
    /// Whether the first output bit equals the input majority on all rows.
    pub majority_property: bool,
    /// Whether the Figure 1 decomposition computes the same permutation.
    pub decomposition_matches: bool,
    /// Whether `MAJ⁻¹` composed with `MAJ` is the identity.
    pub inverse_matches: bool,
}

/// Runs every structural check on the MAJ gate.
pub fn verify_maj() -> MajVerification {
    let p = maj_permutation();
    // Rows in the paper's order: inputs sorted as q0 q1 q2 bit strings.
    let rows: Vec<(String, String)> = (0..8u64)
        .map(|k| {
            let s = format!("{k:03b}");
            let input = parse_bits(&s);
            (s, format_bits(p.apply(input), 3))
        })
        .collect();

    let matches_table_1 = TABLE_1
        .iter()
        .all(|&(i, o)| p.apply(parse_bits(i)) == parse_bits(o));

    let majority_property = p.rows().all(|(input, output)| {
        let maj = majority(input & 1 == 1, (input >> 1) & 1 == 1, (input >> 2) & 1 == 1);
        (output & 1 == 1) == maj
    });

    let decomposition =
        Permutation::of_circuit(&maj_decomposition()).expect("3-wire reversible circuit");
    let decomposition_matches = decomposition == p;

    let inv = Permutation::of_circuit(&maj_inv_circuit()).expect("3-wire reversible circuit");
    let inverse_matches = p.compose(&inv).is_identity();

    MajVerification {
        rows,
        matches_table_1,
        majority_property,
        decomposition_matches,
        inverse_matches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rft_revsim::prelude::*;

    #[test]
    fn parse_format_roundtrip() {
        for s in ["000", "101", "110", "111"] {
            assert_eq!(format_bits(parse_bits(s), 3), s);
        }
        assert_eq!(parse_bits("011"), 0b110); // q1,q2 set
    }

    #[test]
    #[should_panic(expected = "invalid bit character")]
    fn parse_rejects_garbage() {
        let _ = parse_bits("01x");
    }

    #[test]
    fn table_1_is_exactly_the_paper() {
        let v = verify_maj();
        assert!(v.matches_table_1, "simulated MAJ must reproduce Table 1");
        assert_eq!(v.rows.len(), 8);
    }

    #[test]
    fn majority_property_holds() {
        assert!(verify_maj().majority_property);
    }

    #[test]
    fn figure_1_decomposition_is_exact() {
        assert!(verify_maj().decomposition_matches);
    }

    #[test]
    fn maj_inverse_cancels() {
        assert!(verify_maj().inverse_matches);
    }

    #[test]
    fn maj_inv_decomposition_matches_primitive() {
        let prim = Permutation::of_circuit(&maj_inv_circuit()).unwrap();
        let dec = Permutation::of_circuit(&maj_inv_decomposition()).unwrap();
        assert_eq!(prim, dec);
    }

    #[test]
    fn push_maj_decomposed_embeds_anywhere() {
        let mut c = Circuit::new(5);
        push_maj_decomposed(&mut c, w(4), w(2), w(0));
        assert_eq!(c.len(), 3);
        // (q4,q2,q0) = (1,1,0): majority 1 should land on q4.
        let mut s = BitState::zeros(5);
        s.set(w(4), true);
        s.set(w(2), true);
        c.run(&mut s);
        assert!(s.get(w(4)));
    }

    #[test]
    fn majority_function() {
        assert!(!majority(false, false, true));
        assert!(majority(true, false, true));
        assert!(majority(true, true, true));
        assert!(!majority(false, false, false));
    }

    #[test]
    fn encoding_property_via_maj_inv() {
        // MAJ⁻¹(b,0,0) = (b,b,b) — the repetition encoder.
        for b in [false, true] {
            let mut s = BitState::zeros(3);
            s.set(w(0), b);
            maj_inv_circuit().run(&mut s);
            assert_eq!(s.iter().collect::<Vec<_>>(), vec![b, b, b]);
        }
    }

    #[test]
    fn decoding_clean_codeword_clears_syndrome() {
        // MAJ(b,b,b) = (b,0,0).
        for b in [false, true] {
            let mut s = BitState::from_bools(&[b, b, b]);
            maj_circuit().run(&mut s);
            assert_eq!(s.get(w(0)), b);
            assert!(!s.get(w(1)));
            assert!(!s.get(w(2)));
        }
    }

    #[test]
    fn single_flip_still_decodes_to_majority() {
        for b in [false, true] {
            for flip in 0..3u32 {
                let mut s = BitState::from_bools(&[b, b, b]);
                s.flip(w(flip));
                maj_circuit().run(&mut s);
                assert_eq!(s.get(w(0)), b, "bit {flip} flipped on value {b}");
            }
        }
    }
}
