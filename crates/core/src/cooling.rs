//! Reversible (algorithmic) cooling with the MAJ gate.
//!
//! §4 relies on cooling to price entropy removal fairly: "when n bits have
//! n×H bits of entropy, it is not necessary to replace them with n
//! zero-entropy bits; instead, reversible cooling schemes can ensure that
//! we only need to replace n×H of them with zero-entropy bits". The
//! scheme referenced (Boykin–Mor–Roychowdhury–Vatan–Vrijen, footnote 2's
//! "algorithmic cooling") is built from exactly the MAJ gate of Table 1:
//! applied to three bits of bias `ε`, it concentrates bias onto its first
//! output (`ε' = (3ε − ε³)/2`) while the other two bits heat up and can be
//! traded against the environment.
//!
//! This module provides the analytic bias ladder, a circuit builder for
//! the recursive MAJ cooling tree on `3^L` bits, and the entropy
//! accounting that connects cooling to §4's reset budget.

use crate::entropy::binary_entropy;
use rft_revsim::circuit::Circuit;
use rft_revsim::wire::{w, Wire};
use serde::{Deserialize, Serialize};

/// Bias of the majority of three independent bits of bias `eps`.
///
/// A bit has *bias* `ε` when it is 0 with probability `(1+ε)/2`. One MAJ
/// application boosts `ε → (3ε − ε³)/2` on its first output.
///
/// # Panics
///
/// Panics unless `-1 ≤ eps ≤ 1`.
///
/// # Examples
///
/// ```
/// use rft_core::cooling::maj_bias_boost;
///
/// let boosted = maj_bias_boost(0.1);
/// assert!(boosted > 0.1 && boosted < 0.15);
/// assert_eq!(maj_bias_boost(1.0), 1.0); // already pure
/// ```
pub fn maj_bias_boost(eps: f64) -> f64 {
    assert!(
        (-1.0..=1.0).contains(&eps),
        "bias must lie in [-1,1], got {eps}"
    );
    (3.0 * eps - eps * eps * eps) / 2.0
}

/// The bias ladder: bias after `levels` recursive MAJ cooling rounds
/// starting from `eps0` (each round consumes 3 bits of the previous
/// round's bias to make one colder bit).
pub fn bias_ladder(eps0: f64, levels: u32) -> Vec<f64> {
    let mut out = Vec::with_capacity(levels as usize + 1);
    let mut eps = eps0;
    out.push(eps);
    for _ in 0..levels {
        eps = maj_bias_boost(eps);
        out.push(eps);
    }
    out
}

/// Entropy (bits) of one bit at bias `eps`: `H((1+ε)/2)`.
pub fn bias_entropy(eps: f64) -> f64 {
    binary_entropy((1.0 + eps.clamp(-1.0, 1.0)) / 2.0)
}

/// §4's accounting: resets needed to refresh `n` bits carrying `n·H(ε)`
/// bits of entropy, assuming ideal reversible cooling.
pub fn resets_needed(n: f64, eps: f64) -> f64 {
    n * bias_entropy(eps)
}

/// A recursive MAJ cooling tree on `3^levels` wires.
///
/// Round `r` applies MAJ to the cold outputs of round `r−1` in groups of
/// three; after all rounds the coldest bit sits on wire 0.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoolingTree {
    levels: u32,
}

impl CoolingTree {
    /// Maximum supported depth (3^8 = 6561 wires).
    pub const MAX_LEVELS: u32 = 8;

    /// Creates a cooling tree of the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `levels > Self::MAX_LEVELS`.
    pub fn new(levels: u32) -> Self {
        assert!(
            levels <= Self::MAX_LEVELS,
            "depth {levels} exceeds {}",
            Self::MAX_LEVELS
        );
        CoolingTree { levels }
    }

    /// Number of input wires: `3^levels`.
    pub fn n_wires(&self) -> usize {
        3usize.pow(self.levels)
    }

    /// The wire carrying the coldest bit after the circuit runs.
    pub fn cold_output(&self) -> Wire {
        w(0)
    }

    /// Builds the cooling circuit.
    ///
    /// Round `r` operates on wires whose index is a multiple of `3^r`;
    /// group `(k, k+3^r, k+2·3^r)` feeds its majority back onto wire `k`.
    pub fn circuit(&self) -> Circuit {
        let mut c = Circuit::new(self.n_wires().max(1));
        for r in 0..self.levels {
            let stride = 3usize.pow(r);
            let groups = 3usize.pow(self.levels - r - 1);
            for k in 0..groups {
                let base = k * 3 * stride;
                c.maj(
                    w(base as u32),
                    w((base + stride) as u32),
                    w((base + 2 * stride) as u32),
                );
            }
        }
        c
    }

    /// Analytic bias of the cold output for inputs of bias `eps`.
    pub fn output_bias(&self, eps: f64) -> f64 {
        *bias_ladder(eps, self.levels)
            .last()
            .expect("non-empty ladder")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rft_revsim::state::BitState;

    #[test]
    fn boost_formula_fixed_points() {
        assert_eq!(maj_bias_boost(0.0), 0.0);
        assert_eq!(maj_bias_boost(1.0), 1.0);
        assert_eq!(maj_bias_boost(-1.0), -1.0);
        // Strictly improving for 0 < ε < 1.
        for eps in [0.01, 0.1, 0.5, 0.9] {
            assert!(maj_bias_boost(eps) > eps, "ε = {eps}");
            assert!(maj_bias_boost(eps) <= 1.0);
        }
    }

    #[test]
    fn small_bias_boost_is_three_halves() {
        // ε' ≈ (3/2)ε for small ε — the classic 1.5× per round.
        let eps = 1e-4;
        assert!((maj_bias_boost(eps) / eps - 1.5).abs() < 1e-6);
    }

    #[test]
    fn ladder_is_monotone_and_converges_to_one() {
        let ladder = bias_ladder(0.05, 30);
        for pair in ladder.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
        assert!(ladder.last().unwrap() > &0.999);
    }

    #[test]
    fn circuit_matches_analytic_bias_monte_carlo() {
        let tree = CoolingTree::new(3); // 27 wires
        let circuit = tree.circuit();
        let eps = 0.2;
        let expect = tree.output_bias(eps);
        let mut rng = SmallRng::seed_from_u64(77);
        let trials = 60_000;
        let mut zeros = 0u64;
        for _ in 0..trials {
            let mut s = BitState::zeros(tree.n_wires());
            for i in 0..tree.n_wires() as u32 {
                // bit = 0 with probability (1+ε)/2
                s.set(w(i), rng.random::<f64>() >= (1.0 + eps) / 2.0);
            }
            circuit.run(&mut s);
            if !s.get(tree.cold_output()) {
                zeros += 1;
            }
        }
        let measured = 2.0 * (zeros as f64 / trials as f64) - 1.0;
        assert!(
            (measured - expect).abs() < 0.02,
            "measured bias {measured} vs analytic {expect}"
        );
    }

    #[test]
    fn cooling_reduces_cold_bit_entropy() {
        let eps = 0.1;
        let tree = CoolingTree::new(4);
        let cold = tree.output_bias(eps);
        assert!(bias_entropy(cold) < bias_entropy(eps));
    }

    #[test]
    fn resets_accounting_matches_section_4() {
        // n bits at ε = 0 carry n bits of entropy: all must be replaced.
        assert!((resets_needed(100.0, 0.0) - 100.0).abs() < 1e-12);
        // Pure bits need no resets.
        assert_eq!(resets_needed(100.0, 1.0), 0.0);
        // Intermediate bias: 0 < resets < n.
        let r = resets_needed(100.0, 0.5);
        assert!(r > 0.0 && r < 100.0);
    }

    #[test]
    fn tree_shapes() {
        assert_eq!(CoolingTree::new(0).n_wires(), 1);
        assert_eq!(CoolingTree::new(0).circuit().len(), 0);
        let t = CoolingTree::new(2);
        assert_eq!(t.n_wires(), 9);
        // Rounds: 3 groups of stride 1 + 1 group of stride 3 = 4 MAJ gates.
        assert_eq!(t.circuit().len(), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn depth_cap() {
        let _ = CoolingTree::new(9);
    }
}
