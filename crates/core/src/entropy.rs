//! Entropy dissipation of noisy reversible computing (§4).
//!
//! A noisy reversible computer must eject entropy through bit resets
//! (Aharonov et al.); Landauer prices each ejected bit at `k_B·T·ln 2` of
//! heat. §4 bounds the entropy generated per level-`L` gate:
//!
//! ```text
//! g·(3E)^(L−1) ≤ H_L ≤ G̃^L · κ · √g ,   κ = 2√(7/8) + (7/8)·log₂7
//! ```
//!
//! and concludes entropy per gate stays `O(1)` only up to
//! `L ≤ log(1/g)/log(3E) + 1` levels.
//!
//! The section also calibrates against irreversible logic: a reversible
//! gate can simulate NAND while dissipating only **3/2 bits** per cycle,
//! optimally achieved by `MAJ⁻¹` (footnote 4). [`optimal_nand_dissipation`]
//! proves that optimum by exhausting all `8!` three-bit reversible gates.

use rft_revsim::circuit::Circuit;
use rft_revsim::state::BitState;
use rft_revsim::wire::w;
use serde::{Deserialize, Serialize};

/// Boltzmann's constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Binary Shannon entropy `H(p)` in bits; `H(0) = H(1) = 0`.
///
/// # Panics
///
/// Panics if `p` is not a probability.
pub fn binary_entropy(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability required, got {p}");
    if p == 0.0 || p == 1.0 {
        return 0.0;
    }
    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
}

/// Shannon entropy in bits of an empirical distribution given as counts.
///
/// Zero-count entries are ignored. Returns 0 for an empty histogram.
pub fn entropy_of_counts(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.log2()
        })
        .sum()
}

/// The paper's constant `κ = 2√(7/8) + (7/8)·log₂ 7 ≈ 4.33`.
pub fn kappa() -> f64 {
    2.0 * (7.0f64 / 8.0).sqrt() + (7.0 / 8.0) * 7.0f64.log2()
}

/// Entropy of one noisy gate's output: with probability `1−g` correct, with
/// probability `g` one of eight equally likely patterns —
/// `H(7g/8) + (7g/8)·log₂ 7` bits.
///
/// # Panics
///
/// Panics if `g` is not a probability.
pub fn gate_output_entropy(g: f64) -> f64 {
    let q = 7.0 * g / 8.0;
    binary_entropy(q) + q * 7.0f64.log2()
}

/// §4 upper bound on the level-1 entropy per gate:
/// `H₁ ≤ G̃·(H(7g/8) + (7g/8)log₂7)`, where `G̃` is the number of
/// physical gates per level-1 logical gate.
pub fn h1_upper(g: f64, g_tilde: f64) -> f64 {
    g_tilde * gate_output_entropy(g)
}

/// The √g relaxation of the upper bound: `H_L ≤ G̃^L · κ · √g`.
///
/// # Panics
///
/// Panics if `g` is negative.
pub fn hl_upper(g: f64, g_tilde: f64, level: u32) -> f64 {
    assert!(g >= 0.0, "need a non-negative rate");
    g_tilde.powi(level as i32) * kappa() * g.sqrt()
}

/// §4 lower bound: `H_L ≥ g·(3E)^(L−1)` for `L ≥ 1`.
///
/// # Panics
///
/// Panics if `level == 0` (the bound is stated for encoded gates).
pub fn hl_lower(g: f64, e_ops: f64, level: u32) -> f64 {
    assert!(
        level >= 1,
        "the lower bound applies to encoded levels L >= 1"
    );
    g * (3.0 * e_ops).powi(level as i32 - 1)
}

/// §4: the largest concatenation level keeping entropy per gate `O(1)`:
/// `L ≤ log(1/g)/log(3E) + 1`.
///
/// The paper's worked example (`g = 10⁻²`, `E = 11`) gives 2.3.
///
/// # Panics
///
/// Panics unless `0 < g < 1` and `e_ops > 1/3`.
pub fn max_level_constant_entropy(g: f64, e_ops: f64) -> f64 {
    assert!(g > 0.0 && g < 1.0, "need 0 < g < 1");
    assert!(3.0 * e_ops > 1.0, "need 3E > 1");
    (1.0 / g).ln() / (3.0 * e_ops).ln() + 1.0
}

/// Landauer: minimum heat in joules to erase `bits` of entropy at
/// temperature `kelvin`: `ΔE ≥ k_B·T·ln2·ΔH`.
///
/// # Panics
///
/// Panics if `kelvin` is negative.
pub fn landauer_heat_joules(bits: f64, kelvin: f64) -> f64 {
    assert!(kelvin >= 0.0, "temperature must be non-negative");
    bits * kelvin * BOLTZMANN * std::f64::consts::LN_2
}

/// How a three-bit reversible gate simulates NAND, and what it costs.
///
/// Two uniform input bits occupy two wires, a constant occupies the third;
/// after the gate, one output wire carries `NAND(a,b)` and the other two
/// must be reset for the next cycle. The dissipation is the Shannon entropy
/// of those two reset bits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NandSimulation {
    /// Human-readable description of the wiring.
    pub wiring: String,
    /// Which output wire carries the NAND result.
    pub output_wire: usize,
    /// Joint entropy of the two reset wires (bits dissipated per cycle).
    pub reset_joint_entropy: f64,
    /// Sum of marginal entropies of the reset wires (what per-bit resetting
    /// without reversible pre-concentration would cost).
    pub reset_marginal_sum: f64,
    /// Conditional entropy of the reset wires given the kept output — the
    /// information-theoretic floor if the eraser could exploit the output.
    pub reset_conditional_entropy: f64,
}

/// Analyses one gate's NAND simulation for a fixed wiring.
///
/// `inputs[i]` gives for each of the 4 `(a,b)` combinations the packed
/// 3-bit input state; `output_wire` is where NAND must appear.
fn analyse_nand(
    circuit: &Circuit,
    wiring: &str,
    prepare: impl Fn(bool, bool) -> u64,
    output_wire: usize,
) -> Option<NandSimulation> {
    let mut outputs = [0u64; 4];
    for (idx, (a, b)) in [(false, false), (false, true), (true, false), (true, true)]
        .into_iter()
        .enumerate()
    {
        let mut s = BitState::from_u64(prepare(a, b), 3);
        circuit.run(&mut s);
        let out = s.to_u64();
        let nand = !(a && b);
        if ((out >> output_wire) & 1 == 1) != nand {
            return None; // this wiring does not compute NAND
        }
        outputs[idx] = out;
    }
    let reset_wires: Vec<usize> = (0..3).filter(|&i| i != output_wire).collect();
    // Joint histogram of the reset pair over the 4 equally likely inputs.
    let mut joint = [0u64; 4];
    let mut marg = [[0u64; 2]; 2];
    let mut cond: std::collections::BTreeMap<u64, Vec<u64>> = std::collections::BTreeMap::new();
    for &out in &outputs {
        let r0 = (out >> reset_wires[0]) & 1;
        let r1 = (out >> reset_wires[1]) & 1;
        joint[(r0 | (r1 << 1)) as usize] += 1;
        marg[0][r0 as usize] += 1;
        marg[1][r1 as usize] += 1;
        let kept = (out >> output_wire) & 1;
        cond.entry(kept).or_insert_with(|| vec![0; 4])[(r0 | (r1 << 1)) as usize] += 1;
    }
    let reset_joint_entropy = entropy_of_counts(&joint);
    let reset_marginal_sum = entropy_of_counts(&marg[0]) + entropy_of_counts(&marg[1]);
    // H(reset|kept) = Σ_kept P(kept)·H(reset | kept)
    let reset_conditional_entropy = cond
        .values()
        .map(|counts| {
            let n: u64 = counts.iter().sum();
            (n as f64 / 4.0) * entropy_of_counts(counts)
        })
        .sum();
    Some(NandSimulation {
        wiring: wiring.to_string(),
        output_wire,
        reset_joint_entropy,
        reset_marginal_sum,
        reset_conditional_entropy,
    })
}

/// NAND via a Toffoli gate: inputs on the controls, constant 1 on the
/// target, output on the target (`c ⊕ a·b = ¬(a·b)`).
pub fn nand_via_toffoli() -> NandSimulation {
    let mut c = Circuit::new(3);
    c.toffoli(w(0), w(1), w(2));
    analyse_nand(
        &c,
        "Toffoli(a,b,1): keep target",
        |a, b| (a as u64) | ((b as u64) << 1) | (1 << 2),
        2,
    )
    .expect("Toffoli computes NAND on the target")
}

/// NAND via `MAJ⁻¹` — footnote 4's optimal scheme: constant 1 on `q0`,
/// inputs on `q1,q2`; the NAND lands on `q0` and the reset pair
/// concentrates to only 3/2 bits of entropy.
pub fn nand_via_maj_inv() -> NandSimulation {
    let mut c = Circuit::new(3);
    c.maj_inv(w(0), w(1), w(2));
    analyse_nand(
        &c,
        "MAJ⁻¹(1,a,b): keep q0",
        |a, b| 1 | ((a as u64) << 1) | ((b as u64) << 2),
        0,
    )
    .expect("MAJ⁻¹ computes NAND on q0")
}

/// Exhaustive optimum over *all* three-bit reversible gates: the minimum
/// joint reset entropy of any NAND simulation (over all `8!` permutations,
/// all constant placements/values, all output wires).
///
/// Footnote 4 claims this is exactly 3/2 bits; this function proves it by
/// exhaustion. Returns `(minimum_bits, number_of_optimal_schemes)`.
pub fn optimal_nand_dissipation() -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut count = 0usize;
    // Iterate over all permutations of {0..8} via Heap's algorithm.
    let mut perm: [u64; 8] = [0, 1, 2, 3, 4, 5, 6, 7];
    let mut c = [0usize; 8];
    let mut consider = |perm: &[u64; 8]| {
        for const_wire in 0..3usize {
            for const_val in 0..2u64 {
                let in_wires: Vec<usize> = (0..3).filter(|&i| i != const_wire).collect();
                for out_wire in 0..3usize {
                    // Outputs for the four (a,b) inputs.
                    let mut joint = [0u64; 4];
                    let mut ok = true;
                    let reset: Vec<usize> = (0..3).filter(|&i| i != out_wire).collect();
                    for (a, b) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
                        let input =
                            (a << in_wires[0]) | (b << in_wires[1]) | (const_val << const_wire);
                        let out = perm[input as usize];
                        let nand = 1 - (a & b);
                        if (out >> out_wire) & 1 != nand {
                            ok = false;
                            break;
                        }
                        let r0 = (out >> reset[0]) & 1;
                        let r1 = (out >> reset[1]) & 1;
                        joint[(r0 | (r1 << 1)) as usize] += 1;
                    }
                    if !ok {
                        continue;
                    }
                    let h = entropy_of_counts(&joint);
                    if h < best - 1e-12 {
                        best = h;
                        count = 1;
                    } else if (h - best).abs() <= 1e-12 {
                        count += 1;
                    }
                }
            }
        }
    };
    consider(&perm);
    let mut i = 0usize;
    while i < 8 {
        if c[i] < i {
            if i.is_multiple_of(2) {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            consider(&perm);
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    (best, count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_entropy_shape() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!((binary_entropy(0.25) - 0.811278).abs() < 1e-5);
        // Symmetric.
        assert!((binary_entropy(0.3) - binary_entropy(0.7)).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_counts_basics() {
        assert_eq!(entropy_of_counts(&[]), 0.0);
        assert_eq!(entropy_of_counts(&[5]), 0.0);
        assert!((entropy_of_counts(&[1, 1]) - 1.0).abs() < 1e-12);
        assert!((entropy_of_counts(&[2, 1, 1]) - 1.5).abs() < 1e-12);
        assert!((entropy_of_counts(&[1, 1, 1, 1]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn kappa_matches_paper_constant() {
        // κ = 2√(7/8) + (7/8)log₂7 ≈ 1.8708 + 2.4565 ≈ 4.327
        assert!((kappa() - 4.3273).abs() < 1e-3);
    }

    #[test]
    fn gate_output_entropy_below_sqrt_relaxation() {
        for &g in &[1e-6, 1e-4, 1e-2, 0.1] {
            let exact = gate_output_entropy(g);
            let relaxed = kappa() * g.sqrt();
            assert!(exact <= relaxed + 1e-12, "g={g}: {exact} > {relaxed}");
        }
    }

    #[test]
    fn h1_bounds_nest() {
        let g = 1e-3;
        let g_tilde = 27.0;
        assert!(h1_upper(g, g_tilde) <= hl_upper(g, g_tilde, 1) + 1e-12);
        assert!(hl_lower(g, 8.0, 1) <= h1_upper(g, g_tilde));
    }

    #[test]
    fn lower_bound_level_one_is_g() {
        // H_1 ≥ g·(3E)⁰ = g.
        assert!((hl_lower(1e-3, 11.0, 1) - 1e-3).abs() < 1e-18);
    }

    #[test]
    fn bounds_grow_exponentially_with_level() {
        let g = 1e-4;
        for level in 1..5u32 {
            let lo = hl_lower(g, 8.0, level);
            let hi = hl_upper(g, 27.0, level);
            assert!(lo <= hi, "level {level}");
            assert!(hl_lower(g, 8.0, level + 1) / lo - 24.0 < 1e-9);
        }
    }

    #[test]
    fn paper_worked_example_l_2_3() {
        // "if g = 10⁻², and E = 11, we have L ≤ 2.3"
        let l = max_level_constant_entropy(1e-2, 11.0);
        assert!((l - 2.3).abs() < 0.02, "got {l}");
    }

    #[test]
    fn max_level_grows_as_log_inverse_g() {
        // §4: entropic savings need O(log 1/g) levels of error correction.
        let l1 = max_level_constant_entropy(1e-2, 8.0);
        let l2 = max_level_constant_entropy(1e-4, 8.0);
        let l3 = max_level_constant_entropy(1e-8, 8.0);
        assert!(((l2 - 1.0) / (l1 - 1.0) - 2.0).abs() < 1e-9);
        assert!(((l3 - 1.0) / (l1 - 1.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn landauer_at_room_temperature() {
        // kT·ln2 at 300K ≈ 2.87e-21 J per bit.
        let j = landauer_heat_joules(1.0, 300.0);
        assert!((j - 2.871e-21).abs() < 1e-23);
        assert_eq!(landauer_heat_joules(0.0, 300.0), 0.0);
    }

    #[test]
    fn toffoli_nand_costs_two_bits_jointly() {
        let sim = nand_via_toffoli();
        assert!((sim.reset_joint_entropy - 2.0).abs() < 1e-12);
        assert!((sim.reset_marginal_sum - 2.0).abs() < 1e-12);
        // Information floor: H(a,b|NAND) = 2 − H(1/4) ≈ 1.1887.
        assert!((sim.reset_conditional_entropy - 1.18872).abs() < 1e-4);
    }

    #[test]
    fn maj_inv_nand_achieves_three_halves() {
        let sim = nand_via_maj_inv();
        assert!(
            (sim.reset_joint_entropy - 1.5).abs() < 1e-12,
            "MAJ⁻¹ should dissipate exactly 3/2 bits, got {}",
            sim.reset_joint_entropy
        );
        // Without joint concentration, per-bit resets would cost more.
        assert!(sim.reset_marginal_sum > 1.5);
    }

    #[test]
    fn exhaustive_search_confirms_three_halves_optimal() {
        let (best, schemes) = optimal_nand_dissipation();
        assert!((best - 1.5).abs() < 1e-12, "optimal is {best}");
        assert!(schemes > 0);
    }
}
