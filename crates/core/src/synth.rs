//! Optimal synthesis of three-bit reversible functions.
//!
//! §2 notes that "since the codewords in this system are repetition code
//! words, we can use any universal, reversible set of gates for
//! computation directly on the repetition codewords". This module makes
//! the universality claim concrete: a breadth-first search over all
//! `8! = 40320` permutations of three-bit space finds a *shortest* circuit
//! for any target function over a chosen gate set — and proves which gate
//! sets are universal at all.
//!
//! Classical facts the search reproduces (and the tests pin):
//!
//! - `{NOT, CNOT, Toffoli}` generates the full symmetric group `S₈`
//!   (40320 functions) — universal;
//! - `{NOT, CNOT}` generates only the affine group `AGL(3,2)` of order
//!   1344 — linear gates are *not* universal;
//! - the Figure 1 decomposition of MAJ (three gates) is optimal.

use crate::error::{Error, Result};
use rft_revsim::circuit::Circuit;
use rft_revsim::gate::Gate;
use rft_revsim::op::Op;
use rft_revsim::permutation::Permutation;
use rft_revsim::state::BitState;
use rft_revsim::wire::w;
use std::collections::HashMap;

/// Packs a permutation of `{0..8}` into 24 bits (3 bits per image).
fn pack(perm: &[u8; 8]) -> u32 {
    perm.iter()
        .enumerate()
        .fold(0u32, |acc, (i, &v)| acc | ((v as u32) << (3 * i)))
}

/// Image of `x` under a packed permutation.
fn apply_packed(packed: u32, x: u8) -> u8 {
    ((packed >> (3 * x)) & 0b111) as u8
}

/// The identity permutation, packed.
fn packed_identity() -> u32 {
    pack(&[0, 1, 2, 3, 4, 5, 6, 7])
}

/// All placements of the named gate kinds on three wires.
///
/// `NOT`: 3 placements; `CNOT`: 6; `Toffoli`: 3; `Fredkin`: 3; `SWAP`: 3;
/// `MAJ`/`MAJ⁻¹`: 6 each (orientation matters: the majority lands on the
/// first wire).
pub fn placements(kinds: &[rft_revsim::gate::OpKind]) -> Vec<Gate> {
    use rft_revsim::gate::OpKind;
    let mut gates = Vec::new();
    let wires = [w(0), w(1), w(2)];
    for kind in kinds {
        match kind {
            OpKind::Not => {
                for a in wires {
                    gates.push(Gate::Not(a));
                }
            }
            OpKind::Cnot => {
                for a in wires {
                    for b in wires {
                        if a != b {
                            gates.push(Gate::Cnot {
                                control: a,
                                target: b,
                            });
                        }
                    }
                }
            }
            OpKind::Toffoli => {
                for t in 0..3 {
                    let others: Vec<_> = (0..3).filter(|&i| i != t).collect();
                    gates.push(Gate::Toffoli {
                        controls: [wires[others[0]], wires[others[1]]],
                        target: wires[t],
                    });
                }
            }
            OpKind::Fredkin => {
                for c in 0..3 {
                    let others: Vec<_> = (0..3).filter(|&i| i != c).collect();
                    gates.push(Gate::Fredkin {
                        control: wires[c],
                        targets: [wires[others[0]], wires[others[1]]],
                    });
                }
            }
            OpKind::Swap => {
                gates.push(Gate::Swap(w(0), w(1)));
                gates.push(Gate::Swap(w(1), w(2)));
                gates.push(Gate::Swap(w(0), w(2)));
            }
            OpKind::Maj | OpKind::MajInv => {
                for a in 0..3 {
                    let others: Vec<_> = (0..3).filter(|&i| i != a).collect();
                    for flip in [false, true] {
                        let (b, c) = if flip {
                            (others[1], others[0])
                        } else {
                            (others[0], others[1])
                        };
                        gates.push(match kind {
                            OpKind::Maj => Gate::Maj(wires[a], wires[b], wires[c]),
                            _ => Gate::MajInv(wires[a], wires[b], wires[c]),
                        });
                    }
                }
            }
            OpKind::Swap3 => {
                // Orientation matters for the rotation direction.
                gates.push(Gate::Swap3(w(0), w(1), w(2)));
                gates.push(Gate::Swap3(w(2), w(1), w(0)));
            }
            OpKind::F2g => {
                // F2G(a,b,c) is symmetric in its targets: one placement
                // per choice of shared control.
                for a in 0..3 {
                    let others: Vec<_> = (0..3).filter(|&i| i != a).collect();
                    gates.push(Gate::F2g(wires[a], wires[others[0]], wires[others[1]]));
                }
            }
            OpKind::Nft | OpKind::NftInv => {
                for a in 0..3 {
                    let others: Vec<_> = (0..3).filter(|&i| i != a).collect();
                    for flip in [false, true] {
                        let (b, c) = if flip {
                            (others[1], others[0])
                        } else {
                            (others[0], others[1])
                        };
                        gates.push(match kind {
                            OpKind::Nft => Gate::Nft(wires[a], wires[b], wires[c]),
                            _ => Gate::NftInv(wires[a], wires[b], wires[c]),
                        });
                    }
                }
            }
            // IG is a four-wire gate: no placement on the three-wire
            // synthesis lattice.
            OpKind::Ig | OpKind::IgInv => {}
            OpKind::Init => {}
        }
    }
    gates
}

/// A breadth-first synthesis table over three-bit reversible functions.
///
/// # Examples
///
/// ```
/// use rft_core::synth::Synthesizer;
/// use rft_core::maj::maj_permutation;
/// use rft_revsim::gate::OpKind;
///
/// let synth = Synthesizer::new(&[OpKind::Not, OpKind::Cnot, OpKind::Toffoli]);
/// assert!(synth.is_universal()); // all 8! functions reachable
/// let circuit = synth.circuit_for(&maj_permutation()).expect("reachable");
/// assert_eq!(circuit.len(), 3); // Figure 1 is optimal
/// ```
#[derive(Debug, Clone)]
pub struct Synthesizer {
    generators: Vec<(Gate, u32)>,
    /// packed permutation → (packed parent, generator index)
    parents: HashMap<u32, (u32, usize)>,
}

impl Synthesizer {
    /// Builds the full BFS table for the given gate kinds on three wires.
    ///
    /// # Panics
    ///
    /// Panics if the kinds produce no generator gates.
    pub fn new(kinds: &[rft_revsim::gate::OpKind]) -> Self {
        let gates = placements(kinds);
        assert!(!gates.is_empty(), "gate set produced no generators");
        let generators: Vec<(Gate, u32)> = gates
            .into_iter()
            .map(|g| {
                let mut table = [0u8; 8];
                for (x, entry) in table.iter_mut().enumerate() {
                    let mut s = BitState::from_u64(x as u64, 3);
                    g.apply(&mut s);
                    *entry = s.to_u64() as u8;
                }
                (g, pack(&table))
            })
            .collect();

        let id = packed_identity();
        let mut parents: HashMap<u32, (u32, usize)> = HashMap::with_capacity(40320);
        parents.insert(id, (id, usize::MAX));
        let mut frontier = vec![id];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &f in &frontier {
                for (gi, (_, gperm)) in generators.iter().enumerate() {
                    // f' = g ∘ f (apply f first, then the gate).
                    let mut composed = [0u8; 8];
                    for (x, entry) in composed.iter_mut().enumerate() {
                        *entry = apply_packed(*gperm, apply_packed(f, x as u8));
                    }
                    let packed = pack(&composed);
                    parents.entry(packed).or_insert_with(|| {
                        next.push(packed);
                        (f, gi)
                    });
                }
            }
            frontier = next;
        }
        Synthesizer {
            generators,
            parents,
        }
    }

    /// Number of distinct reachable three-bit functions.
    pub fn reachable(&self) -> usize {
        self.parents.len()
    }

    /// Whether the gate set generates all `8! = 40320` functions.
    pub fn is_universal(&self) -> bool {
        self.reachable() == 40320
    }

    /// Length of the shortest circuit for `target`, if reachable.
    pub fn distance(&self, target: &Permutation) -> Option<usize> {
        self.path_to(target).map(|gates| gates.len())
    }

    /// A shortest gate sequence reaching `target`, if reachable.
    fn path_to(&self, target: &Permutation) -> Option<Vec<Gate>> {
        let mut table = [0u8; 8];
        for (x, entry) in table.iter_mut().enumerate() {
            *entry = target.apply(x as u64) as u8;
        }
        let mut cursor = pack(&table);
        let mut gates = Vec::new();
        loop {
            let &(parent, gi) = self.parents.get(&cursor)?;
            if gi == usize::MAX {
                break;
            }
            gates.push(self.generators[gi].0);
            cursor = parent;
        }
        gates.reverse();
        Some(gates)
    }

    /// Synthesizes a shortest circuit computing `target`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnsupportedLogicalOp`] if `target` is wider than
    /// three bits or unreachable with this gate set.
    pub fn circuit_for(&self, target: &Permutation) -> Result<Circuit> {
        if target.n_bits() != 3 {
            return Err(Error::UnsupportedLogicalOp);
        }
        let gates = self.path_to(target).ok_or(Error::UnsupportedLogicalOp)?;
        let mut c = Circuit::new(3);
        for g in gates {
            c.push(Op::Gate(g));
        }
        Ok(c)
    }

    /// The eccentricity of the identity: the gate count needed for the
    /// hardest reachable function (search diameter).
    pub fn worst_case_gates(&self) -> usize {
        // Re-derive distances by walking parents (depth of BFS tree).
        let mut worst = 0usize;
        for &start in self.parents.keys() {
            let mut cursor = start;
            let mut depth = 0usize;
            while let Some(&(parent, gi)) = self.parents.get(&cursor) {
                if gi == usize::MAX {
                    break;
                }
                depth += 1;
                cursor = parent;
            }
            worst = worst.max(depth);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maj::{maj_decomposition, maj_permutation};
    use rft_revsim::gate::OpKind;

    fn universal() -> Synthesizer {
        Synthesizer::new(&[OpKind::Not, OpKind::Cnot, OpKind::Toffoli])
    }

    #[test]
    fn not_cnot_toffoli_is_universal() {
        assert!(universal().is_universal());
        assert_eq!(universal().reachable(), 40320);
    }

    #[test]
    fn linear_gates_are_not_universal() {
        // {NOT, CNOT} generates AGL(3,2): 2³ · |GL(3,2)| = 8 · 168 = 1344.
        let synth = Synthesizer::new(&[OpKind::Not, OpKind::Cnot]);
        assert_eq!(synth.reachable(), 1344);
        assert!(!synth.is_universal());
        // MAJ is non-linear: unreachable.
        assert!(synth.distance(&maj_permutation()).is_none());
    }

    #[test]
    fn figure_1_is_an_optimal_maj_decomposition() {
        let synth = universal();
        let circuit = synth.circuit_for(&maj_permutation()).unwrap();
        assert_eq!(
            circuit.len(),
            3,
            "MAJ needs exactly 3 gates from {{NOT,CNOT,Toffoli}}"
        );
        assert_eq!(maj_decomposition().len(), 3);
        // And the synthesized circuit actually computes MAJ.
        let p = Permutation::of_circuit(&circuit).unwrap();
        assert_eq!(p, maj_permutation());
    }

    #[test]
    fn synthesized_circuits_compute_their_targets() {
        let synth = universal();
        // A handful of structured targets.
        let targets = [
            maj_permutation(),
            maj_permutation().inverse(),
            Permutation::identity(3),
            maj_permutation().compose(&maj_permutation()),
        ];
        for t in targets {
            let c = synth.circuit_for(&t).unwrap();
            assert_eq!(Permutation::of_circuit(&c).unwrap(), t);
        }
    }

    #[test]
    fn identity_synthesizes_to_empty() {
        let synth = universal();
        assert_eq!(synth.distance(&Permutation::identity(3)), Some(0));
    }

    #[test]
    fn maj_gate_set_with_not_is_universal() {
        // The paper's native gate (plus NOT for odd parity coverage…
        // MAJ contains a Toffoli, NOT provides the rest).
        let synth = Synthesizer::new(&[OpKind::Maj, OpKind::MajInv, OpKind::Not]);
        assert!(synth.is_universal(), "reached {}", synth.reachable());
    }

    #[test]
    fn fredkin_conserves_weight_and_is_not_universal_alone() {
        let synth = Synthesizer::new(&[OpKind::Fredkin, OpKind::Swap]);
        // Weight-preserving permutations only: Π C(3,k)! = 1·6·6·1 = 36.
        assert_eq!(synth.reachable(), 36);
    }

    #[test]
    fn worst_case_depth_is_reasonable() {
        let synth = universal();
        let worst = synth.worst_case_gates();
        assert!((6..=20).contains(&worst), "diameter {worst}");
    }

    #[test]
    fn rejects_wide_targets() {
        let synth = Synthesizer::new(&[OpKind::Not]);
        assert!(matches!(
            synth.circuit_for(&Permutation::identity(4)),
            Err(crate::Error::UnsupportedLogicalOp)
        ));
    }
}
