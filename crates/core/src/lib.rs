//! # rft-core — reversible fault-tolerant logic
//!
//! The primary contribution of *“Reversible Fault-Tolerant Logic”*
//! (P. O. Boykin & V. P. Roychowdhury, DSN 2005, arXiv:cs/0504010),
//! implemented on top of the [`rft_revsim`] gate-array simulator:
//!
//! - [`maj`] — the reversible majority gate (Table 1) and its CNOT/Toffoli
//!   decomposition (Figure 1);
//! - [`code`] — the concatenated three-bit repetition code (§2.1);
//! - [`recovery`] — the nine-bit fault-tolerant error-recovery circuit
//!   (Figure 2);
//! - [`ftcheck`] — exhaustive verification that single faults never leave
//!   more than one error per output codeword;
//! - [`concat`](mod@concat) — the recursive fault-tolerant compiler (Figure 3) with the
//!   `Γ_L`/`S_L` blow-up accounting of §2.3;
//! - [`threshold`] — the analytic threshold model (Equations 1–3, the
//!   published thresholds 1/108, 1/165, 1/273, 1/360, 1/2340, 1/2109);
//! - [`mixed`] — concatenating 2D below 1D schemes (§3.3, Table 2);
//! - [`entropy`] — entropy/heat bounds for noisy reversible computing (§4)
//!   and the 3/2-bit NAND optimality proof (footnote 4).
//!
//! # Examples
//!
//! Encode a bit, corrupt it, and recover it fault-tolerantly:
//!
//! ```
//! use rft_core::recovery::{recovery_circuit, DATA_IN, DATA_OUT, TILE_WIDTH};
//! use rft_revsim::prelude::*;
//!
//! let mut state = BitState::zeros(TILE_WIDTH);
//! for q in DATA_IN {
//!     state.set(q, true); // logical 1 = codeword 111
//! }
//! state.flip(DATA_IN[1]); // a physical error
//!
//! recovery_circuit().run(&mut state);
//! assert!(DATA_OUT.iter().all(|&q| state.get(q))); // refreshed to 111
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod code;
pub mod concat;
pub mod cooling;
pub mod entropy;
mod error;
pub mod ftcheck;
pub mod maj;
pub mod mixed;
pub mod recovery;
pub mod synth;
pub mod threshold;

pub use error::{Error, Result};

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::code::RepetitionCode;
    pub use crate::concat::{measure_gate_cost, DataTree, FtBuilder, FtProgram, GateCost};
    pub use crate::cooling::{bias_ladder, maj_bias_boost, CoolingTree};
    pub use crate::ftcheck::{transversal_cycle, CycleSpec, FaultSweep};
    pub use crate::maj::{verify_maj, MajVerification, TABLE_1};
    pub use crate::mixed::{mixed_threshold, table2, Table2Row};
    pub use crate::recovery::{
        recovery_circuit, recovery_circuit_no_init, DATA_IN, DATA_OUT, E_NO_INIT, E_WITH_INIT,
        TILE_WIDTH,
    };
    pub use crate::synth::Synthesizer;
    pub use crate::threshold::{GateBudget, ModuleOverhead};
    pub use crate::{Error, Result};
}
