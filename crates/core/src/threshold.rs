//! The analytic threshold model of §2.2–§2.3.
//!
//! With `G` operations acting on each encoded bit per fault-tolerant cycle,
//! a bit fails only if two or more of them fail:
//!
//! ```text
//! P_bit ≤ C(G,2)·g²            (two-fault bound)
//! g_logical ≤ 3·C(G,2)·g²      (Equation 1)
//! ```
//!
//! so error rates improve whenever `g < ρ = 1 / (3·C(G,2))` — the
//! *threshold*. Concatenating `k` levels gives the doubly-exponential
//! suppression of Equation 2, `g_k ≤ ρ·(g/ρ)^(2^k)`, at the poly-log
//! blow-ups Γ_L = (3(G−2))^L gates and S_L = 9^L bits of §2.3.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// A per-encoded-bit operation budget `G`, defining a threshold.
///
/// # Examples
///
/// ```
/// use rft_core::threshold::GateBudget;
///
/// // §2.2: G = 9 (init far more accurate than gates) gives ρ = 1/108.
/// let b = GateBudget::NONLOCAL_NO_INIT;
/// assert_eq!(b.ops(), 9);
/// assert!((b.threshold() - 1.0 / 108.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GateBudget {
    ops: u32,
}

impl GateBudget {
    /// §2.2, non-local, counting initialization: `G = 3 + 8 = 11`, ρ = 1/165.
    pub const NONLOCAL_WITH_INIT: GateBudget = GateBudget { ops: 11 };
    /// §2.2, non-local, perfect initialization: `G = 3 + 6 = 9`, ρ = 1/108.
    pub const NONLOCAL_NO_INIT: GateBudget = GateBudget { ops: 9 };
    /// §3.1, 2D nearest-neighbour, counting initialization: `G = 16`, ρ = 1/360.
    pub const LOCAL_2D_WITH_INIT: GateBudget = GateBudget { ops: 16 };
    /// §3.1, 2D nearest-neighbour, perfect initialization: `G = 14`, ρ = 1/273.
    pub const LOCAL_2D_NO_INIT: GateBudget = GateBudget { ops: 14 };
    /// §3.2, 1D nearest-neighbour, counting initialization: `G = 40`, ρ = 1/2340.
    pub const LOCAL_1D_WITH_INIT: GateBudget = GateBudget { ops: 40 };
    /// §3.2, 1D nearest-neighbour, perfect initialization: `G = 38`, ρ = 1/2109.
    pub const LOCAL_1D_NO_INIT: GateBudget = GateBudget { ops: 38 };

    /// Creates a budget of `ops` operations per encoded bit per cycle.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DegenerateBudget`] if `ops < 2` (no two operations
    /// can fail together, so no quadratic bound exists).
    pub fn new(ops: u32) -> Result<Self> {
        if ops < 2 {
            return Err(Error::DegenerateBudget { ops });
        }
        Ok(GateBudget { ops })
    }

    /// The operation count `G`.
    pub const fn ops(&self) -> u32 {
        self.ops
    }

    /// `C(G, 2)` — the number of operation pairs.
    pub const fn pairs(&self) -> u64 {
        (self.ops as u64) * (self.ops as u64 - 1) / 2
    }

    /// The threshold `ρ = 1 / (3·C(G,2))`.
    pub fn threshold(&self) -> f64 {
        1.0 / (3.0 * self.pairs() as f64)
    }

    /// Quadratic bound on the per-bit failure rate: `C(G,2)·g²`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRate`] if `g` is not a probability.
    pub fn bit_error_bound(&self, g: f64) -> Result<f64> {
        check_rate(g)?;
        Ok(self.pairs() as f64 * g * g)
    }

    /// The exact two-or-more-failures probability
    /// `Σ_{k=2}^{G} C(G,k) g^k (1−g)^{G−k}` (the first line of the paper's
    /// `P_bit` bound, before the convenience `C(G,2)g²` relaxation).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRate`] if `g` is not a probability.
    pub fn bit_error_exact(&self, g: f64) -> Result<f64> {
        check_rate(g)?;
        let n = self.ops as u64;
        // 1 - P(0 failures) - P(1 failure)
        let p0 = (1.0 - g).powi(n as i32);
        let p1 = n as f64 * g * (1.0 - g).powi(n as i32 - 1);
        Ok((1.0 - p0 - p1).max(0.0))
    }

    /// Equation 1: `g_logical ≤ 3·C(G,2)·g²`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRate`] if `g` is not a probability.
    pub fn logical_error_bound(&self, g: f64) -> Result<f64> {
        Ok(3.0 * self.bit_error_bound(g)?)
    }

    /// Equation 2: error rate after `k` levels of concatenation,
    /// `g_k ≤ ρ·(g/ρ)^(2^k)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRate`] if `g` is not a probability.
    pub fn error_at_level(&self, g: f64, level: u32) -> Result<f64> {
        check_rate(g)?;
        let rho = self.threshold();
        // (g/ρ)^(2^k) in log space to dodge overflow for deep levels.
        let log_ratio = (g / rho).ln();
        let exponent = 2f64.powi(level as i32);
        Ok((rho.ln() + exponent * log_ratio).exp())
    }

    /// Equation 3: the smallest level `L` with `g_L ≤ 1/T`, i.e.
    /// `L ≥ log₂( ln(Tρ) / ln(ρ/g) )`.
    ///
    /// Returns `None` when `g ≥ ρ` (above threshold — no level suffices)
    /// and `Some(0)` when even the bare gates meet the target.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRate`] if `g` is not a probability or
    /// `module_gates` is zero.
    pub fn required_level(&self, g: f64, module_gates: f64) -> Result<Option<u32>> {
        check_rate(g)?;
        if module_gates <= 0.0 {
            return Err(Error::InvalidRate {
                value: module_gates,
            });
        }
        let rho = self.threshold();
        if g >= rho {
            return Ok(None);
        }
        if g <= 1.0 / module_gates {
            return Ok(Some(0));
        }
        let t_rho = (module_gates * rho).ln();
        let margin = (rho / g).ln();
        let levels = (t_rho / margin).log2().ceil().max(0.0);
        Ok(Some(levels as u32))
    }

    /// §2.3: gate blow-up `Γ_L = (3(G−2))^L`.
    ///
    /// `G − 2 = 1 + E`: the logical gate plus the recovery, with the paper's
    /// uniform-cost counting.
    pub fn gate_blowup(&self, level: u32) -> f64 {
        (3.0 * (self.ops as f64 - 2.0)).powi(level as i32)
    }

    /// §2.3: size blow-up `S_L = 9^L`.
    pub fn size_blowup(level: u32) -> f64 {
        9f64.powi(level as i32)
    }

    /// Exponent of the poly-log gate overhead: `log₂(3(G−2))`
    /// (≈ 4.75 for `G = 11`).
    pub fn gate_blowup_exponent(&self) -> f64 {
        (3.0 * (self.ops as f64 - 2.0)).log2()
    }

    /// Exponent of the poly-log size overhead: `log₂ 9 ≈ 3.17`.
    pub fn size_blowup_exponent() -> f64 {
        9f64.log2()
    }

    /// Gate overhead for a `T`-gate module: `Γ_{L(T)}`, the paper's
    /// `O((log T)^{log₂ 3(G−2)})`.
    ///
    /// Returns `None` above threshold.
    ///
    /// # Errors
    ///
    /// As for [`GateBudget::required_level`].
    pub fn module_overhead(&self, g: f64, module_gates: f64) -> Result<Option<ModuleOverhead>> {
        let Some(level) = self.required_level(g, module_gates)? else {
            return Ok(None);
        };
        Ok(Some(ModuleOverhead {
            level,
            gate_factor: self.gate_blowup(level),
            size_factor: Self::size_blowup(level),
            achieved_error: self.error_at_level(g, level)?,
        }))
    }

    /// The tighter logical-error bound the paper alludes to ("we note that
    /// the above bound is a convenient bound, but a tighter bound will
    /// result in an improved error threshold"): the exact binomial tail
    /// for `P_bit` and the exact union `1 − (1 − P_bit)³` instead of the
    /// relaxations `C(G,2)·g²` and `3·P_bit`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRate`] if `g` is not a probability.
    pub fn logical_error_tight(&self, g: f64) -> Result<f64> {
        let p_bit = self.bit_error_exact(g)?;
        Ok(1.0 - (1.0 - p_bit).powi(3))
    }

    /// The improved threshold from [`GateBudget::logical_error_tight`]:
    /// the fixed point `g*` of `logical_error_tight(g) = g`, located by
    /// bisection. Always at least as large as [`GateBudget::threshold`].
    pub fn threshold_tight(&self) -> f64 {
        // logical_error_tight(g) − g is negative below the fixed point and
        // positive above it (within (0, ~0.5)); bisect on the sign.
        let f = |g: f64| self.logical_error_tight(g).expect("valid rate") - g;
        let mut lo = 1e-9;
        let mut hi = 0.5;
        debug_assert!(f(lo) < 0.0);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if f(mid) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// The cost of protecting a module at the minimum sufficient level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModuleOverhead {
    /// Minimum concatenation level meeting `g_L ≤ 1/T`.
    pub level: u32,
    /// Gate blow-up factor `Γ_L`.
    pub gate_factor: f64,
    /// Bit blow-up factor `S_L`.
    pub size_factor: f64,
    /// The logical error bound actually achieved at that level.
    pub achieved_error: f64,
}

fn check_rate(g: f64) -> Result<()> {
    if !(0.0..=1.0).contains(&g) || g.is_nan() {
        return Err(Error::InvalidRate { value: g });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_thresholds_reproduce_exactly() {
        // §2.2: "we get threshold results of ρ = 1/165 and ρ = 1/108".
        assert_eq!(GateBudget::NONLOCAL_WITH_INIT.pairs(), 55);
        assert!((GateBudget::NONLOCAL_WITH_INIT.threshold() - 1.0 / 165.0).abs() < 1e-15);
        assert!((GateBudget::NONLOCAL_NO_INIT.threshold() - 1.0 / 108.0).abs() < 1e-15);
        // §3.1: ρ₂ = 1/273 and 1/360.
        assert!((GateBudget::LOCAL_2D_NO_INIT.threshold() - 1.0 / 273.0).abs() < 1e-15);
        assert!((GateBudget::LOCAL_2D_WITH_INIT.threshold() - 1.0 / 360.0).abs() < 1e-15);
        // §3.2: ρ₁ = 1/2340 and 1/2109.
        assert!((GateBudget::LOCAL_1D_WITH_INIT.threshold() - 1.0 / 2340.0).abs() < 1e-15);
        assert!((GateBudget::LOCAL_1D_NO_INIT.threshold() - 1.0 / 2109.0).abs() < 1e-15);
    }

    #[test]
    fn equation_1_scales_quadratically() {
        let b = GateBudget::NONLOCAL_NO_INIT;
        let g = 1e-4;
        let bound = b.logical_error_bound(g).unwrap();
        assert!((bound - 3.0 * 36.0 * g * g).abs() < 1e-18);
        // Halving g quarters the bound.
        let half = b.logical_error_bound(g / 2.0).unwrap();
        assert!((bound / half - 4.0).abs() < 1e-9);
    }

    #[test]
    fn exact_bit_error_below_quadratic_bound() {
        let b = GateBudget::NONLOCAL_WITH_INIT;
        for &g in &[1e-4, 1e-3, 1e-2, 0.05] {
            let exact = b.bit_error_exact(g).unwrap();
            let bound = b.bit_error_bound(g).unwrap();
            assert!(
                exact <= bound + 1e-15,
                "g={g}: exact {exact} > bound {bound}"
            );
        }
    }

    #[test]
    fn below_threshold_improves_above_worsens() {
        let b = GateBudget::NONLOCAL_NO_INIT;
        let rho = b.threshold();
        assert!(b.logical_error_bound(rho / 2.0).unwrap() < rho / 2.0);
        assert!(b.logical_error_bound(rho * 2.0).unwrap() > rho * 2.0);
        // At exactly ρ the map is (approximately) the identity.
        let at = b.logical_error_bound(rho).unwrap();
        assert!((at - rho).abs() < 1e-15);
    }

    #[test]
    fn equation_2_doubly_exponential() {
        let b = GateBudget::NONLOCAL_NO_INIT;
        let g = b.threshold() / 10.0;
        // g_k = ρ·10^(−2^k)
        for k in 0..5u32 {
            let expect = b.threshold() * 10f64.powf(-(2f64.powi(k as i32)));
            let got = b.error_at_level(g, k).unwrap();
            assert!(
                (got / expect - 1.0).abs() < 1e-9,
                "level {k}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn equation_2_diverges_above_threshold() {
        let b = GateBudget::NONLOCAL_NO_INIT;
        let g = b.threshold() * 2.0;
        assert!(b.error_at_level(g, 5).unwrap() > 1.0);
    }

    #[test]
    fn paper_worked_example_t_one_million() {
        // §2.3: g = ρ/10, G = 9 (ρ ≈ 10⁻²), T = 10⁶ ⇒ L = 2,
        // gate blow-up (3·(9−2))² = 441, size blow-up 81.
        let b = GateBudget::NONLOCAL_NO_INIT;
        let g = b.threshold() / 10.0;
        let overhead = b.module_overhead(g, 1e6).unwrap().unwrap();
        assert_eq!(overhead.level, 2);
        assert!((overhead.gate_factor - 441.0).abs() < 1e-9);
        assert!((overhead.size_factor - 81.0).abs() < 1e-9);
        assert!(overhead.achieved_error <= 1e-6);
    }

    #[test]
    fn unprotected_module_of_1000_gates_is_the_paper_limit() {
        // "Without any error correction, modules larger than 1,000 gates
        // will almost certainly be faulty" at g = ρ/10 ≈ 10⁻³.
        let b = GateBudget::NONLOCAL_NO_INIT;
        let g = b.threshold() / 10.0;
        // Expected failures in a 1000-gate module: ~1.
        assert!((1000.0 * g - 0.93).abs() < 0.05);
    }

    #[test]
    fn blowup_exponents_match_paper() {
        // G = 11: (3(G−2))^L = O((log T)^4.75); size O((log T)^3.17).
        let e = GateBudget::NONLOCAL_WITH_INIT.gate_blowup_exponent();
        assert!((e - 4.75).abs() < 0.01, "gate exponent {e}");
        let s = GateBudget::size_blowup_exponent();
        assert!((s - 3.17).abs() < 0.01, "size exponent {s}");
    }

    #[test]
    fn required_level_edge_cases() {
        let b = GateBudget::NONLOCAL_NO_INIT;
        // Above threshold: impossible.
        assert_eq!(b.required_level(0.5, 1e6).unwrap(), None);
        // Tiny module with tiny g: level 0 suffices.
        assert_eq!(b.required_level(1e-6, 10.0).unwrap(), Some(0));
        // Monotone in T.
        let g = b.threshold() / 10.0;
        let mut last = 0;
        for t in [1e3, 1e6, 1e9, 1e12] {
            let l = b.required_level(g, t).unwrap().unwrap();
            assert!(l >= last, "levels must not decrease with T");
            last = l;
        }
    }

    #[test]
    fn required_level_is_sufficient_and_minimal() {
        let b = GateBudget::NONLOCAL_NO_INIT;
        let g = b.threshold() / 5.0;
        for t in [1e4, 1e7, 1e10] {
            let l = b.required_level(g, t).unwrap().unwrap();
            assert!(
                b.error_at_level(g, l).unwrap() <= 1.0 / t,
                "level {l} insufficient for T={t}"
            );
            if l > 0 {
                assert!(
                    b.error_at_level(g, l - 1).unwrap() > 1.0 / t,
                    "level {} already sufficed for T={t}",
                    l - 1
                );
            }
        }
    }

    #[test]
    fn budget_validation() {
        assert!(GateBudget::new(2).is_ok());
        assert!(matches!(
            GateBudget::new(1),
            Err(Error::DegenerateBudget { ops: 1 })
        ));
        assert!(matches!(
            GateBudget::NONLOCAL_NO_INIT.logical_error_bound(1.5),
            Err(Error::InvalidRate { .. })
        ));
        assert!(matches!(
            GateBudget::NONLOCAL_NO_INIT.error_at_level(-0.1, 1),
            Err(Error::InvalidRate { .. })
        ));
    }

    #[test]
    fn tight_bound_improves_the_threshold() {
        for budget in [
            GateBudget::NONLOCAL_NO_INIT,
            GateBudget::NONLOCAL_WITH_INIT,
            GateBudget::LOCAL_2D_NO_INIT,
            GateBudget::LOCAL_1D_WITH_INIT,
        ] {
            let basic = budget.threshold();
            let tight = budget.threshold_tight();
            assert!(
                tight > basic,
                "G = {}: tight {tight} should beat basic {basic}",
                budget.ops()
            );
            // …but stays the same order of magnitude (the relaxations are
            // mild): within a factor of 3.
            assert!(
                tight < basic * 3.0,
                "G = {}: tight {tight} vs {basic}",
                budget.ops()
            );
            // And it is a genuine fixed point of the tight map.
            let at = budget.logical_error_tight(tight).unwrap();
            assert!((at - tight).abs() / tight < 1e-6);
        }
    }

    #[test]
    fn tight_bound_dominated_by_eq1_bound() {
        let budget = GateBudget::NONLOCAL_NO_INIT;
        for &g in &[1e-4, 1e-3, 1e-2, 0.05] {
            let tight = budget.logical_error_tight(g).unwrap();
            let loose = budget.logical_error_bound(g).unwrap();
            assert!(tight <= loose + 1e-15, "g = {g}: {tight} > {loose}");
        }
    }

    #[test]
    fn gate_blowup_level_one_matches_cycle_structure() {
        // Γ₁ = 3(1+E) = 3(G−2): 27 for G=11, 21 for G=9.
        assert_eq!(GateBudget::NONLOCAL_WITH_INIT.gate_blowup(1), 27.0);
        assert_eq!(GateBudget::NONLOCAL_NO_INIT.gate_blowup(1), 21.0);
        assert_eq!(GateBudget::size_blowup(2), 81.0);
    }
}
