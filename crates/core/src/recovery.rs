//! The fault-tolerant error-recovery circuit E_L (Figure 2).
//!
//! Nine bits: the codeword enters on `q0,q1,q2`; `q3..q8` are ancillas reset
//! to zero. Three `MAJ⁻¹` gates fan each code bit out into one bit of each
//! of three decode blocks, then three `MAJ` gates write each block's
//! majority into its first bit. The refreshed codeword leaves on
//! `q0,q3,q6` — the "rotation of the logical bit line" mentioned in the
//! paper's footnote 3.
//!
//! The fault-tolerance property ("if any single error occurs, it will
//! change at most one bit in each of the final decoder blocks") is verified
//! *exhaustively* by [`crate::ftcheck`], not sampled.

use rft_revsim::circuit::Circuit;
use rft_revsim::wire::{w, Wire};

/// Width of one recovery tile: 3 data bits + 6 ancillas.
pub const TILE_WIDTH: usize = 9;

/// Wire positions of the incoming codeword within a tile.
pub const DATA_IN: [Wire; 3] = [w(0), w(1), w(2)];

/// Wire positions of the refreshed codeword after recovery.
pub const DATA_OUT: [Wire; 3] = [w(0), w(3), w(6)];

/// Number of operations in the recovery circuit with ancilla
/// initialization: two 3-bit inits + six MAJ gates (the paper's `E = 8`).
pub const E_WITH_INIT: usize = 8;

/// Number of operations ignoring initialization (the paper's `E = 6`).
pub const E_NO_INIT: usize = 6;

/// Builds the Figure 2 recovery circuit on a 9-wire tile.
///
/// The circuit always emits the two `Init3` resets — physically the
/// ancillas must be cleaned every cycle. To reproduce the paper's
/// "initialization far more accurate than gates" accounting, run it under
/// [`SplitNoise::perfect_init`](rft_revsim::noise::SplitNoise::perfect_init)
/// rather than removing the resets.
///
/// # Examples
///
/// ```
/// use rft_core::recovery::{recovery_circuit, DATA_IN, DATA_OUT, TILE_WIDTH};
/// use rft_revsim::prelude::*;
///
/// let c = recovery_circuit();
/// assert_eq!(c.n_wires(), TILE_WIDTH);
///
/// // A corrupted codeword (1,0,1) is refreshed to (1,1,1) on the outputs.
/// let mut s = BitState::zeros(TILE_WIDTH);
/// s.set(DATA_IN[0], true);
/// s.set(DATA_IN[2], true);
/// c.run(&mut s);
/// assert!(DATA_OUT.iter().all(|&q| s.get(q)));
/// ```
pub fn recovery_circuit() -> Circuit {
    let mut c = Circuit::with_capacity(TILE_WIDTH, E_WITH_INIT);
    c.init(&[w(3), w(4), w(5)])
        .init(&[w(6), w(7), w(8)])
        // Encoding: fan each code bit into one bit per decode block.
        .maj_inv(w(0), w(3), w(6))
        .maj_inv(w(1), w(4), w(7))
        .maj_inv(w(2), w(5), w(8))
        // Decoding: majority of each block lands on q0, q3, q6.
        .maj(w(0), w(1), w(2))
        .maj(w(3), w(4), w(5))
        .maj(w(6), w(7), w(8));
    c
}

/// The recovery circuit without ancilla resets, for contexts where fresh
/// zeroed ancillas are guaranteed externally (e.g. the exhaustive fault
/// sweeps, which zero the whole register first).
pub fn recovery_circuit_no_init() -> Circuit {
    let mut c = Circuit::with_capacity(TILE_WIDTH, E_NO_INIT);
    c.maj_inv(w(0), w(3), w(6))
        .maj_inv(w(1), w(4), w(7))
        .maj_inv(w(2), w(5), w(8))
        .maj(w(0), w(1), w(2))
        .maj(w(3), w(4), w(5))
        .maj(w(6), w(7), w(8));
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rft_revsim::gate::OpKind;
    use rft_revsim::prelude::*;

    fn run_recovery(input: [bool; 3], dirty_ancillas: bool) -> BitState {
        let c = recovery_circuit();
        let mut s = BitState::zeros(TILE_WIDTH);
        for (i, &b) in input.iter().enumerate() {
            s.set(DATA_IN[i], b);
        }
        if dirty_ancillas {
            // Garbage from a previous cycle: the Init3 ops must clean it.
            for q in 3..9u32 {
                s.set(w(q), (q % 2) == 0);
            }
        }
        c.run(&mut s);
        s
    }

    fn output_codeword(s: &BitState) -> [bool; 3] {
        [s.get(DATA_OUT[0]), s.get(DATA_OUT[1]), s.get(DATA_OUT[2])]
    }

    #[test]
    fn op_counts_match_paper_e_values() {
        let c = recovery_circuit();
        assert_eq!(c.len(), E_WITH_INIT);
        assert_eq!(c.stats().init_ops(), 2);
        assert_eq!(c.stats().count(OpKind::MajInv), 3);
        assert_eq!(c.stats().count(OpKind::Maj), 3);
        assert_eq!(recovery_circuit_no_init().len(), E_NO_INIT);
    }

    #[test]
    fn clean_codewords_pass_through() {
        for b in [false, true] {
            let s = run_recovery([b, b, b], false);
            assert_eq!(output_codeword(&s), [b, b, b]);
        }
    }

    #[test]
    fn dirty_ancillas_are_cleaned_by_init() {
        for b in [false, true] {
            let s = run_recovery([b, b, b], true);
            assert_eq!(output_codeword(&s), [b, b, b]);
        }
    }

    #[test]
    fn any_single_input_error_is_corrected() {
        for b in [false, true] {
            for flip in 0..3 {
                let mut input = [b, b, b];
                input[flip] = !input[flip];
                let s = run_recovery(input, false);
                assert_eq!(output_codeword(&s), [b, b, b], "flip {flip} value {b}");
            }
        }
    }

    #[test]
    fn double_input_errors_flip_the_logical_bit() {
        // The code has distance 3: two input errors decode to the wrong bit
        // — recovery faithfully "corrects" to the majority, i.e. the error.
        let s = run_recovery([true, true, false], false);
        assert_eq!(output_codeword(&s), [true, true, true]);
        let s = run_recovery([false, true, true], false);
        assert_eq!(output_codeword(&s), [true, true, true]);
    }

    #[test]
    fn recovery_is_depth_limited() {
        // Inits in parallel, MAJ⁻¹ layer in parallel, MAJ layer in parallel:
        // the tile runs in 3 time steps.
        assert_eq!(recovery_circuit().depth(), 3);
        assert_eq!(recovery_circuit_no_init().depth(), 2);
    }

    #[test]
    fn decode_blocks_receive_one_copy_of_each_code_bit() {
        // After the MAJ⁻¹ fan-out on a clean codeword, all nine bits carry
        // the logical value (the "should all have the same value" phase).
        let mut c = Circuit::new(TILE_WIDTH);
        c.maj_inv(w(0), w(3), w(6))
            .maj_inv(w(1), w(4), w(7))
            .maj_inv(w(2), w(5), w(8));
        for b in [false, true] {
            let mut s = BitState::zeros(TILE_WIDTH);
            for q in DATA_IN {
                s.set(q, b);
            }
            c.run(&mut s);
            assert!(s.iter().all(|v| v == b), "fan-out of {b}");
        }
    }

    #[test]
    fn outputs_live_on_rotated_positions() {
        // The refreshed codeword is on q0,q3,q6 — NOT the input positions.
        // Feed (1,1,1); check q1,q2 hold decode syndromes (zeros here).
        let s = run_recovery([true, true, true], false);
        assert!(s.get(w(0)) && s.get(w(3)) && s.get(w(6)));
        assert!(
            !s.get(w(1)) && !s.get(w(2)),
            "syndrome bits clear for a clean word"
        );
    }
}
