//! Property-based tests for the fault-tolerance core.

use proptest::prelude::*;
use rft_core::prelude::*;
use rft_revsim::permutation::Permutation;
use rft_revsim::prelude::*;

/// Strategy for a random 3-wire logical gate on `n` logical wires.
fn arb_logical_gate(n: u32) -> impl Strategy<Value = Gate> {
    let wire = 0..n;
    let distinct3 = (wire.clone(), wire.clone(), wire.clone())
        .prop_filter("distinct", |(a, b, c)| a != b && b != c && a != c);
    let distinct2 = (wire.clone(), wire).prop_filter("distinct", |(a, b)| a != b);
    prop_oneof![
        distinct3.clone().prop_map(|(a, b, c)| Gate::Toffoli {
            controls: [w(a), w(b)],
            target: w(c)
        }),
        distinct3
            .clone()
            .prop_map(|(a, b, c)| Gate::Maj(w(a), w(b), w(c))),
        distinct3
            .clone()
            .prop_map(|(a, b, c)| Gate::MajInv(w(a), w(b), w(c))),
        distinct3.clone().prop_map(|(a, b, c)| Gate::Fredkin {
            control: w(a),
            targets: [w(b), w(c)]
        }),
        distinct2.clone().prop_map(|(a, b)| Gate::Cnot {
            control: w(a),
            target: w(b)
        }),
        distinct2.prop_map(|(a, b)| Gate::Swap(w(a), w(b))),
    ]
}

fn arb_logical_circuit(n: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_logical_gate(n), 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n as usize);
        for g in gates {
            c.push(Op::Gate(g));
        }
        c
    })
}

proptest! {
    /// End-to-end: compiling any logical circuit at level 1 and running it
    /// noiselessly computes exactly the logical function.
    #[test]
    fn level_one_compilation_is_semantically_exact(
        logical in arb_logical_circuit(4, 6),
        input in 0u64..16,
    ) {
        let program = FtBuilder::compile(1, &logical).unwrap();
        let perm = Permutation::of_circuit(&logical).unwrap();
        let mut s = program.encode(&BitState::from_u64(input, 4));
        program.circuit().run(&mut s);
        prop_assert_eq!(program.decode(&s).to_u64(), perm.apply(input));
    }

    /// Same at level 2 (smaller circuits: 81 wires per logical bit).
    #[test]
    fn level_two_compilation_is_semantically_exact(
        logical in arb_logical_circuit(3, 3),
        input in 0u64..8,
    ) {
        let program = FtBuilder::compile(2, &logical).unwrap();
        let perm = Permutation::of_circuit(&logical).unwrap();
        let mut s = program.encode(&BitState::from_u64(input, 3));
        program.circuit().run(&mut s);
        prop_assert_eq!(program.decode(&s).to_u64(), perm.apply(input));
    }

    /// A level-1 program tolerates any single physical bit flip of its
    /// input codewords.
    #[test]
    fn level_one_tolerates_any_single_input_flip(
        logical in arb_logical_circuit(3, 4),
        input in 0u64..8,
        flip_wire in 0usize..27,
    ) {
        let program = FtBuilder::compile(1, &logical).unwrap();
        prop_assume!(flip_wire < program.n_physical());
        let perm = Permutation::of_circuit(&logical).unwrap();
        let mut s = program.encode(&BitState::from_u64(input, 3));
        // Only flip *data* wires: ancilla wires are reset by recovery anyway.
        let is_data = (0..3).any(|i| program.initial_tree(i).leaves().contains(&w(flip_wire as u32)));
        prop_assume!(is_data);
        s.flip(w(flip_wire as u32));
        program.circuit().run(&mut s);
        prop_assert_eq!(program.decode(&s).to_u64(), perm.apply(input));
    }

    /// Threshold model: below threshold, one more level always helps;
    /// above threshold, it always hurts.
    #[test]
    fn concatenation_monotonicity(ops in 3u32..60, frac in 0.01f64..0.99, level in 0u32..6) {
        let budget = GateBudget::new(ops).unwrap();
        let below = budget.threshold() * frac;
        prop_assert!(
            budget.error_at_level(below, level + 1).unwrap()
                <= budget.error_at_level(below, level).unwrap()
        );
        let above = (budget.threshold() * (1.0 + frac)).min(1.0);
        prop_assert!(
            budget.error_at_level(above, level + 1).unwrap()
                >= budget.error_at_level(above, level).unwrap()
        );
    }

    /// Equation 1's quadratic bound dominates the exact binomial tail.
    #[test]
    fn quadratic_bound_dominates_exact(ops in 2u32..64, g in 0.0f64..0.2) {
        let budget = GateBudget::new(ops).unwrap();
        prop_assert!(
            budget.bit_error_exact(g).unwrap() <= budget.bit_error_bound(g).unwrap() + 1e-12
        );
    }

    /// Mixed thresholds interpolate monotonically between ρ1 and ρ2.
    #[test]
    fn mixed_threshold_interpolates(rho1 in 1e-6f64..1e-2, factor in 1.0f64..100.0, k in 0u32..12) {
        let rho2 = (rho1 * factor).min(1.0);
        let rho_k = mixed_threshold(rho1, rho2, k);
        prop_assert!(rho_k >= rho1 - 1e-18);
        prop_assert!(rho_k <= rho2 + 1e-18);
        prop_assert!(mixed_threshold(rho1, rho2, k + 1) >= rho_k - 1e-18);
    }

    /// Repetition decode is majority-stable: flipping up to
    /// `guaranteed_correctable` arbitrary bits never changes the decode,
    /// exercised at level 1 where the guarantee is 1 flip.
    #[test]
    fn code_decode_stability(bit in any::<bool>(), flip in 0usize..3) {
        let code = RepetitionCode::new(1);
        let mut word = code.encode(bit);
        word[flip] = !word[flip];
        prop_assert_eq!(code.decode(&word), bit);
    }

    /// Entropy bounds of §4 hold for any rate and cycle size.
    #[test]
    fn entropy_bounds_are_ordered(g in 1e-9f64..0.5, level in 1u32..4) {
        use rft_core::entropy::{hl_lower, hl_upper};
        // Physical cycle: G̃ = 27 gates (level-1 FT cycle), E = 8.
        let lo = hl_lower(g, 8.0, level);
        let hi = hl_upper(g, 27.0, level);
        prop_assert!(lo <= hi, "lower {lo} > upper {hi}");
    }
}
