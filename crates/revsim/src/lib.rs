//! # rft-revsim — a noisy reversible-logic simulator
//!
//! This crate is the substrate for the reproduction of *“Reversible
//! Fault-Tolerant Logic”* (Boykin & Roychowdhury, DSN 2005): a gate-array
//! model of classical reversible computing in which bits sit at fixed
//! positions and reversible gates of up to three bits are applied in
//! sequence.
//!
//! It provides:
//!
//! - the paper's gate set ([`gate::Gate`]): NOT, CNOT, Toffoli, SWAP, the
//!   SWAP3 of Figure 5, Fredkin, and the reversible majority gate MAJ of
//!   Table 1 with its inverse;
//! - ancilla resets ([`op::Op::Init`]) — the one irreversible primitive,
//!   through which all of §4's entropy leaves the machine;
//! - validated circuits ([`circuit::Circuit`]) with composition, embedding,
//!   inversion, op statistics and depth;
//! - exhaustive permutation extraction ([`permutation::Permutation`]);
//! - the paper's error model ([`noise`]): each operation independently
//!   randomizes its support with probability *g*;
//! - **the unified execution engine ([`engine`])** — the single entry
//!   point for noisy simulation: [`engine::Engine`] compiles a circuit
//!   against a noise model once (flattened op stream + per-op fault
//!   probabilities + exact binomial fault-mask samplers) and then runs it
//!   many times through interchangeable [`engine::Backend`]s —
//!   [`engine::ScalarBackend`] (per-lane reference),
//!   [`engine::BatchBackend`] (64 lanes per machine word, branch-free
//!   plane kernels) and [`engine::PlannedFaultBackend`] (deterministic
//!   fault injection). Monte-Carlo runs take typed
//!   [`engine::McOptions`] (`trials`/`seed`/`threads`, auto backend
//!   routing above a trial threshold, optional adaptive early stopping at
//!   a target relative error, and an [`engine::Estimator`] policy whose
//!   fault-count-stratified mode makes deep-sub-threshold rare-event
//!   rates tractable by eliding fault-free words analytically); both
//!   Monte-Carlo backends share one RNG schedule, so a seed reproduces
//!   bit-identical lanes on either;
//! - scalar executors ([`exec`]) for ideal runs and the geometric
//!   fast path, plus the low-level batch substrate ([`batch`]): wire-major
//!   bit planes and kernels the engine executes on;
//! - exhaustive fault enumeration ([`fault`]) used to *prove* (not sample)
//!   the single-fault tolerance of recovery circuits.
//!
//! # Examples
//!
//! Verify on all eight inputs that MAJ's first output bit is the majority:
//!
//! ```
//! use rft_revsim::prelude::*;
//!
//! let mut c = Circuit::new(3);
//! c.maj(w(0), w(1), w(2));
//!
//! for input in 0..8u64 {
//!     let mut s = BitState::from_u64(input, 3);
//!     c.run(&mut s);
//!     assert_eq!(s.get(w(0)), input.count_ones() >= 2);
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod circuit;
pub mod diagram;
pub mod engine;
mod error;
pub mod exec;
pub mod fault;
pub mod gate;
pub mod microop;
pub mod noise;
pub mod op;
pub mod permutation;
pub mod state;
pub mod wire;

pub use error::{Error, Result};

// The instrumentation layer, re-exported so downstream crates name the
// exact `Collector` the engine entry points accept.
pub use rft_obs as obs;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::batch::{run_ideal_batch, BatchExecReport, BatchState};
    pub use crate::circuit::{Circuit, CircuitStats};
    pub use crate::diagram::render;
    pub use crate::engine::{
        Backend, BackendKind, BatchBackend, Engine, Estimator, McOptions, McOutcome,
        PlannedFaultBackend, ScalarBackend, Simulation, StratumOutcome, WordTrial, WordWidth,
        DEFAULT_BATCH_THRESHOLD, DEFAULT_STRATA_CAP, STRATIFIED_ROUTING_THRESHOLD,
    };
    pub use crate::exec::{run_ideal, run_noisy_geometric, ExecObserver, ExecReport};
    pub use crate::fault::{double_fault_plans, single_fault_plans, FaultPlan, PlannedFault};
    pub use crate::gate::{Gate, OpKind};
    pub use crate::microop::CompileStats;
    pub use crate::noise::{fault_free_probability, NoNoise, NoiseModel, SplitNoise, UniformNoise};
    pub use crate::op::Op;
    pub use crate::state::BitState;
    pub use crate::wire::{w, Support, Wire};
    pub use crate::{Error, Result};
}
