//! # rft-revsim — a noisy reversible-logic simulator
//!
//! This crate is the substrate for the reproduction of *“Reversible
//! Fault-Tolerant Logic”* (Boykin & Roychowdhury, DSN 2005): a gate-array
//! model of classical reversible computing in which bits sit at fixed
//! positions and reversible gates of up to three bits are applied in
//! sequence.
//!
//! It provides:
//!
//! - the paper's gate set ([`gate::Gate`]): NOT, CNOT, Toffoli, SWAP, the
//!   SWAP3 of Figure 5, Fredkin, and the reversible majority gate MAJ of
//!   Table 1 with its inverse;
//! - ancilla resets ([`op::Op::Init`]) — the one irreversible primitive,
//!   through which all of §4's entropy leaves the machine;
//! - validated circuits ([`circuit::Circuit`]) with composition, embedding,
//!   inversion, op statistics and depth;
//! - exhaustive permutation extraction ([`permutation::Permutation`]);
//! - the paper's error model ([`noise`]): each operation independently
//!   randomizes its support with probability *g*;
//! - executors ([`exec`]) for ideal, Monte-Carlo and planned-fault runs,
//!   including a geometric fast path for small *g*;
//! - a bit-parallel batch engine ([`batch`]) running 64 independent trials
//!   per machine word with branch-free gate kernels and exact batched
//!   fault sampling — the substrate of the Monte-Carlo measurement layer;
//! - exhaustive fault enumeration ([`fault`]) used to *prove* (not sample)
//!   the single-fault tolerance of recovery circuits.
//!
//! # Examples
//!
//! Verify on all eight inputs that MAJ's first output bit is the majority:
//!
//! ```
//! use rft_revsim::prelude::*;
//!
//! let mut c = Circuit::new(3);
//! c.maj(w(0), w(1), w(2));
//!
//! for input in 0..8u64 {
//!     let mut s = BitState::from_u64(input, 3);
//!     c.run(&mut s);
//!     assert_eq!(s.get(w(0)), input.count_ones() >= 2);
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod circuit;
pub mod diagram;
mod error;
pub mod exec;
pub mod fault;
pub mod gate;
pub mod noise;
pub mod op;
pub mod permutation;
pub mod state;
pub mod wire;

pub use error::{Error, Result};

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::batch::{
        run_ideal_batch, run_noisy_batch, run_noisy_batch_with, BatchExecReport, BatchState,
        CompiledNoise,
    };
    pub use crate::circuit::{Circuit, CircuitStats};
    pub use crate::diagram::render;
    pub use crate::exec::{
        run_ideal, run_noisy, run_noisy_geometric, run_noisy_observed, run_with_plan, ExecObserver,
        ExecReport,
    };
    pub use crate::fault::{double_fault_plans, single_fault_plans, FaultPlan, PlannedFault};
    pub use crate::gate::{Gate, OpKind};
    pub use crate::noise::{NoNoise, NoiseModel, SplitNoise, UniformNoise};
    pub use crate::op::Op;
    pub use crate::state::BitState;
    pub use crate::wire::{w, Support, Wire};
    pub use crate::{Error, Result};
}
