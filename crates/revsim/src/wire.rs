//! Wire identifiers.
//!
//! A [`Wire`] names one bit position in a reversible gate array. In the
//! paper's model (Boykin & Roychowdhury, DSN 2005, §2) bits sit at fixed
//! locations and gates are applied to them over time, so a wire is simply an
//! index into a [`BitState`](crate::state::BitState).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a single bit position in a circuit.
///
/// `Wire` is a cheap `Copy` newtype over `u32` used everywhere a gate needs
/// to say *which* bits it acts on.
///
/// # Examples
///
/// ```
/// use rft_revsim::wire::Wire;
///
/// let w = Wire::new(3);
/// assert_eq!(w.index(), 3);
/// assert_eq!(Wire::from(3u32), w);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Wire(u32);

impl Wire {
    /// Creates a wire with the given index.
    ///
    /// # Examples
    ///
    /// ```
    /// # use rft_revsim::wire::Wire;
    /// assert_eq!(Wire::new(7).index(), 7);
    /// ```
    #[inline]
    pub const fn new(index: u32) -> Self {
        Wire(index)
    }

    /// Returns the index as a `usize`, suitable for indexing a state.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` index.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns a wire shifted by `offset` positions (used when embedding a
    /// sub-circuit into a larger register).
    ///
    /// # Panics
    ///
    /// Panics on `u32` overflow.
    #[inline]
    pub fn offset(self, offset: u32) -> Self {
        Wire(self.0.checked_add(offset).expect("wire index overflow"))
    }
}

impl fmt::Display for Wire {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for Wire {
    fn from(index: u32) -> Self {
        Wire(index)
    }
}

impl From<Wire> for u32 {
    fn from(wire: Wire) -> Self {
        wire.0
    }
}

impl From<Wire> for usize {
    fn from(wire: Wire) -> Self {
        wire.index()
    }
}

/// Convenience constructor used heavily in tests and examples.
///
/// # Examples
///
/// ```
/// use rft_revsim::wire::{w, Wire};
/// assert_eq!(w(2), Wire::new(2));
/// ```
#[inline]
pub const fn w(index: u32) -> Wire {
    Wire::new(index)
}

/// A fixed-capacity set of up to four wires: the support of a gate.
///
/// The paper's primitives touch at most three bits (the error model charges
/// a three-bit operation with failure probability *g*); the parity-preserving
/// gate library (IG) adds one four-bit permutation, so supports hold up to
/// four wires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Support {
    wires: [Wire; 4],
    len: u8,
}

impl Support {
    /// Support of a single-wire operation.
    #[inline]
    pub const fn one(a: Wire) -> Self {
        Support {
            wires: [a, a, a, a],
            len: 1,
        }
    }

    /// Support of a two-wire operation.
    #[inline]
    pub const fn two(a: Wire, b: Wire) -> Self {
        Support {
            wires: [a, b, b, b],
            len: 2,
        }
    }

    /// Support of a three-wire operation.
    #[inline]
    pub const fn three(a: Wire, b: Wire, c: Wire) -> Self {
        Support {
            wires: [a, b, c, c],
            len: 3,
        }
    }

    /// Support of a four-wire operation.
    #[inline]
    pub const fn four(a: Wire, b: Wire, c: Wire, d: Wire) -> Self {
        Support {
            wires: [a, b, c, d],
            len: 4,
        }
    }

    /// Builds a support from a slice of 1..=4 wires.
    ///
    /// # Panics
    ///
    /// Panics if `wires` is empty or has more than four elements.
    pub fn from_slice(wires: &[Wire]) -> Self {
        match *wires {
            [a] => Support::one(a),
            [a, b] => Support::two(a, b),
            [a, b, c] => Support::three(a, b, c),
            [a, b, c, d] => Support::four(a, b, c, d),
            _ => panic!("support must contain 1..=4 wires, got {}", wires.len()),
        }
    }

    /// The wires in this support, in gate-argument order.
    #[inline]
    pub fn as_slice(&self) -> &[Wire] {
        &self.wires[..self.len as usize]
    }

    /// Number of wires in the support.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the support is empty (never true for valid operations).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the given wire is part of this support.
    #[inline]
    pub fn contains(&self, wire: Wire) -> bool {
        self.as_slice().contains(&wire)
    }

    /// Whether all wires in the support are distinct.
    pub fn is_distinct(&self) -> bool {
        let s = self.as_slice();
        for i in 0..s.len() {
            for j in (i + 1)..s.len() {
                if s[i] == s[j] {
                    return false;
                }
            }
        }
        true
    }

    /// Largest wire index in the support.
    pub fn max_index(&self) -> usize {
        self.as_slice().iter().map(|w| w.index()).max().unwrap_or(0)
    }
}

impl<'a> IntoIterator for &'a Support {
    type Item = Wire;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Wire>>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrips_index() {
        let wire = Wire::new(42);
        assert_eq!(wire.index(), 42);
        assert_eq!(wire.raw(), 42);
        assert_eq!(u32::from(wire), 42);
        assert_eq!(usize::from(wire), 42);
    }

    #[test]
    fn wire_display_uses_paper_notation() {
        assert_eq!(Wire::new(5).to_string(), "q5");
    }

    #[test]
    fn wire_offset_shifts() {
        assert_eq!(w(3).offset(9), w(12));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn wire_offset_overflow_panics() {
        let _ = w(u32::MAX).offset(1);
    }

    #[test]
    fn support_slices_match_arity() {
        assert_eq!(Support::one(w(1)).as_slice(), &[w(1)]);
        assert_eq!(Support::two(w(1), w(2)).as_slice(), &[w(1), w(2)]);
        assert_eq!(
            Support::three(w(1), w(2), w(3)).as_slice(),
            &[w(1), w(2), w(3)]
        );
    }

    #[test]
    fn support_distinctness() {
        assert!(Support::three(w(0), w(1), w(2)).is_distinct());
        assert!(!Support::three(w(0), w(1), w(0)).is_distinct());
        assert!(!Support::two(w(4), w(4)).is_distinct());
        assert!(Support::one(w(9)).is_distinct());
    }

    #[test]
    fn support_contains_and_max() {
        let s = Support::three(w(2), w(9), w(4));
        assert!(s.contains(w(9)));
        assert!(!s.contains(w(3)));
        assert_eq!(s.max_index(), 9);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn support_from_slice_all_arities() {
        assert_eq!(Support::from_slice(&[w(1)]).len(), 1);
        assert_eq!(Support::from_slice(&[w(1), w(2)]).len(), 2);
        assert_eq!(Support::from_slice(&[w(1), w(2), w(3)]).len(), 3);
        assert_eq!(Support::from_slice(&[w(1), w(2), w(3), w(4)]).len(), 4);
    }

    #[test]
    fn support_four_slices_and_distinctness() {
        let s = Support::four(w(1), w(2), w(3), w(4));
        assert_eq!(s.as_slice(), &[w(1), w(2), w(3), w(4)]);
        assert!(s.is_distinct());
        assert!(!Support::four(w(1), w(2), w(3), w(1)).is_distinct());
        assert_eq!(s.max_index(), 4);
    }

    #[test]
    #[should_panic(expected = "1..=4")]
    fn support_from_slice_rejects_five() {
        let _ = Support::from_slice(&[w(1), w(2), w(3), w(4), w(5)]);
    }

    #[test]
    fn support_iterates() {
        let s = Support::three(w(1), w(2), w(3));
        let collected: Vec<Wire> = (&s).into_iter().collect();
        assert_eq!(collected, vec![w(1), w(2), w(3)]);
    }
}
