//! Circuit operations: reversible gates plus ancilla resets.
//!
//! The paper's fault-tolerant scheme needs exactly one non-reversible
//! primitive: *initialization*, which resets up to three bits to zero in one
//! operation ("we assume that we can reset three bits with one
//! initialization operation", §2.2). All of the entropy accounting of §4
//! flows through these resets, so they are first-class operations here.

use crate::gate::{Gate, OpKind};
use crate::state::BitState;
use crate::wire::{Support, Wire};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One step of a circuit: either a reversible [`Gate`] or an ancilla reset.
///
/// # Examples
///
/// ```
/// use rft_revsim::prelude::*;
///
/// let init = Op::init(&[w(3), w(4), w(5)]);
/// assert_eq!(init.kind(), OpKind::Init);
/// assert!(!init.is_reversible());
///
/// let gate = Op::from(Gate::Maj(w(0), w(1), w(2)));
/// assert!(gate.is_reversible());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// A reversible gate.
    Gate(Gate),
    /// Resets 1–3 wires to zero — the only irreversible operation.
    ///
    /// In the paper's accounting a three-bit initialization counts as one
    /// operation with the same failure probability *g* as any other
    /// three-bit gate.
    Init(InitOp),
}

/// An ancilla-reset operation on up to three wires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InitOp {
    wires: [Wire; 3],
    len: u8,
}

impl InitOp {
    /// Creates a reset of the given wires.
    ///
    /// # Panics
    ///
    /// Panics if `wires` is empty or longer than three.
    pub fn new(wires: &[Wire]) -> Self {
        assert!(
            (1..=3).contains(&wires.len()),
            "init must reset 1..=3 wires, got {}",
            wires.len()
        );
        let mut arr = [wires[0]; 3];
        arr[..wires.len()].copy_from_slice(wires);
        InitOp {
            wires: arr,
            len: wires.len() as u8,
        }
    }

    /// The wires that are reset.
    #[inline]
    pub fn wires(&self) -> &[Wire] {
        &self.wires[..self.len as usize]
    }
}

impl Op {
    /// Convenience constructor for an ancilla reset.
    ///
    /// # Panics
    ///
    /// Panics if `wires` is empty or longer than three.
    pub fn init(wires: &[Wire]) -> Self {
        Op::Init(InitOp::new(wires))
    }

    /// Applies the operation to `state` (gates permute, inits zero).
    #[inline]
    pub fn apply(&self, state: &mut BitState) {
        match self {
            Op::Gate(g) => g.apply(state),
            Op::Init(init) => {
                for &w in init.wires() {
                    state.set(w, false);
                }
            }
        }
    }

    /// The wires this operation touches.
    #[inline]
    pub fn support(&self) -> Support {
        match self {
            Op::Gate(g) => g.support(),
            Op::Init(init) => Support::from_slice(init.wires()),
        }
    }

    /// Number of wires touched.
    #[inline]
    pub fn arity(&self) -> usize {
        self.support().len()
    }

    /// The operation's kind, for accounting.
    pub fn kind(&self) -> OpKind {
        match self {
            Op::Gate(g) => g.kind(),
            Op::Init(_) => OpKind::Init,
        }
    }

    /// Whether the operation is a reversible gate (i.e. not a reset).
    pub fn is_reversible(&self) -> bool {
        matches!(self, Op::Gate(_))
    }

    /// The inner gate, if this is a gate.
    pub fn as_gate(&self) -> Option<&Gate> {
        match self {
            Op::Gate(g) => Some(g),
            Op::Init(_) => None,
        }
    }

    /// Returns the operation with every wire shifted by `offset`.
    pub fn offset(&self, offset: u32) -> Op {
        match self {
            Op::Gate(g) => Op::Gate(g.offset(offset)),
            Op::Init(init) => {
                let shifted: Vec<Wire> = init.wires().iter().map(|w| w.offset(offset)).collect();
                Op::init(&shifted)
            }
        }
    }

    /// Returns the operation with wires remapped through `map`
    /// (`map[old.index()] = new`).
    ///
    /// # Panics
    ///
    /// Panics if a wire index is outside `map`.
    pub fn remap(&self, map: &[Wire]) -> Op {
        match self {
            Op::Gate(g) => Op::Gate(g.remap(map)),
            Op::Init(init) => {
                let mapped: Vec<Wire> = init.wires().iter().map(|w| map[w.index()]).collect();
                Op::init(&mapped)
            }
        }
    }
}

impl From<Gate> for Op {
    fn from(gate: Gate) -> Self {
        Op::Gate(gate)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Gate(g) => g.fmt(f),
            Op::Init(init) => {
                write!(f, "INIT(")?;
                for (i, w) in init.wires().iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{w}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::w;

    #[test]
    fn init_zeroes_its_wires_only() {
        let mut s = BitState::from_u64(0b11111, 5);
        Op::init(&[w(1), w(3)]).apply(&mut s);
        assert_eq!(s.to_u64(), 0b10101);
    }

    #[test]
    fn init_arities() {
        assert_eq!(Op::init(&[w(0)]).arity(), 1);
        assert_eq!(Op::init(&[w(0), w(1)]).arity(), 2);
        assert_eq!(Op::init(&[w(0), w(1), w(2)]).arity(), 3);
    }

    #[test]
    #[should_panic(expected = "1..=3")]
    fn init_rejects_empty() {
        let _ = Op::init(&[]);
    }

    #[test]
    fn gate_op_delegates() {
        let op = Op::from(Gate::Cnot {
            control: w(0),
            target: w(1),
        });
        assert_eq!(op.kind(), OpKind::Cnot);
        assert!(op.is_reversible());
        assert!(op.as_gate().is_some());
        let mut s = BitState::from_u64(0b01, 2);
        op.apply(&mut s);
        assert_eq!(s.to_u64(), 0b11);
    }

    #[test]
    fn init_is_not_reversible() {
        let op = Op::init(&[w(0), w(1), w(2)]);
        assert!(!op.is_reversible());
        assert!(op.as_gate().is_none());
        assert_eq!(op.kind(), OpKind::Init);
    }

    #[test]
    fn offset_and_remap_inits() {
        let op = Op::init(&[w(0), w(2)]);
        assert_eq!(op.offset(5).support().as_slice(), &[w(5), w(7)]);
        let remapped = op.remap(&[w(9), w(8), w(7)]);
        assert_eq!(remapped.support().as_slice(), &[w(9), w(7)]);
    }

    #[test]
    fn display_renders_init() {
        assert_eq!(Op::init(&[w(3), w(4), w(5)]).to_string(), "INIT(q3,q4,q5)");
    }
}
