//! Circuits: ordered sequences of operations on a fixed set of wires.
//!
//! This is the paper's "gate array" picture (§2): space on the y-axis, time
//! on the x-axis, gates applied one after another to bits at fixed
//! positions. A [`Circuit`] validates that every operation touches distinct,
//! in-range wires, tracks per-kind operation counts (the quantities `E` and
//! `G` of the threshold analysis), and supports composition, embedding and
//! inversion.

use crate::error::{Error, Result};
use crate::gate::{Gate, OpKind};
use crate::op::Op;
use crate::state::BitState;
use crate::wire::Wire;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An ordered list of operations on `n_wires` wires.
///
/// # Examples
///
/// Build and run the three-gate decomposition of the majority gate
/// (Figure 1 of the paper):
///
/// ```
/// use rft_revsim::prelude::*;
///
/// let mut c = Circuit::new(3);
/// c.cnot(w(0), w(1)).cnot(w(0), w(2)).toffoli(w(1), w(2), w(0));
///
/// let mut s = BitState::from_u64(0b011, 3); // q0=1, q1=1, q2=0
/// c.run(&mut s);
/// assert_eq!(s.to_u64() & 1, 1); // q0 now holds the majority
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Circuit {
    n_wires: usize,
    ops: Vec<Op>,
}

impl Circuit {
    /// Creates an empty circuit on `n_wires` wires.
    pub fn new(n_wires: usize) -> Self {
        Circuit {
            n_wires,
            ops: Vec::new(),
        }
    }

    /// Creates an empty circuit with pre-allocated op capacity.
    pub fn with_capacity(n_wires: usize, capacity: usize) -> Self {
        Circuit {
            n_wires,
            ops: Vec::with_capacity(capacity),
        }
    }

    /// Number of wires.
    #[inline]
    pub fn n_wires(&self) -> usize {
        self.n_wires
    }

    /// Number of operations.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the circuit has no operations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations in order.
    #[inline]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Validates an operation against this circuit's width.
    fn validate(&self, op: &Op) -> Result<()> {
        let support = op.support();
        for wire in support.as_slice() {
            if wire.index() >= self.n_wires {
                return Err(Error::WireOutOfRange {
                    wire: *wire,
                    n_wires: self.n_wires,
                });
            }
        }
        if !support.is_distinct() {
            let s = support.as_slice();
            for i in 0..s.len() {
                for j in (i + 1)..s.len() {
                    if s[i] == s[j] {
                        return Err(Error::DuplicateWire { wire: s[i] });
                    }
                }
            }
        }
        Ok(())
    }

    /// Appends an operation after validating it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WireOutOfRange`] or [`Error::DuplicateWire`] if the
    /// operation is malformed for this circuit.
    pub fn try_push(&mut self, op: Op) -> Result<()> {
        self.validate(&op)?;
        self.ops.push(op);
        Ok(())
    }

    /// Appends an operation.
    ///
    /// # Panics
    ///
    /// Panics if the operation references an out-of-range wire or touches a
    /// wire twice. Use [`Circuit::try_push`] for fallible insertion.
    pub fn push(&mut self, op: Op) -> &mut Self {
        if let Err(e) = self.try_push(op) {
            panic!("invalid operation: {e}");
        }
        self
    }

    /// Appends a NOT gate. See [`Circuit::push`] for panics.
    pub fn not(&mut self, a: Wire) -> &mut Self {
        self.push(Op::Gate(Gate::Not(a)))
    }

    /// Appends a CNOT gate (`control`, `target`). See [`Circuit::push`] for panics.
    pub fn cnot(&mut self, control: Wire, target: Wire) -> &mut Self {
        self.push(Op::Gate(Gate::Cnot { control, target }))
    }

    /// Appends a Toffoli gate (`c0`, `c1` controls). See [`Circuit::push`] for panics.
    pub fn toffoli(&mut self, c0: Wire, c1: Wire, target: Wire) -> &mut Self {
        self.push(Op::Gate(Gate::Toffoli {
            controls: [c0, c1],
            target,
        }))
    }

    /// Appends a SWAP gate. See [`Circuit::push`] for panics.
    pub fn swap(&mut self, a: Wire, b: Wire) -> &mut Self {
        self.push(Op::Gate(Gate::Swap(a, b)))
    }

    /// Appends a SWAP3 gate (Figure 5). See [`Circuit::push`] for panics.
    pub fn swap3(&mut self, a: Wire, b: Wire, c: Wire) -> &mut Self {
        self.push(Op::Gate(Gate::Swap3(a, b, c)))
    }

    /// Appends a Fredkin (controlled-swap) gate. See [`Circuit::push`] for panics.
    pub fn fredkin(&mut self, control: Wire, t0: Wire, t1: Wire) -> &mut Self {
        self.push(Op::Gate(Gate::Fredkin {
            control,
            targets: [t0, t1],
        }))
    }

    /// Appends the reversible majority gate MAJ (Table 1). See [`Circuit::push`] for panics.
    pub fn maj(&mut self, a: Wire, b: Wire, c: Wire) -> &mut Self {
        self.push(Op::Gate(Gate::Maj(a, b, c)))
    }

    /// Appends the inverse majority gate MAJ⁻¹. See [`Circuit::push`] for panics.
    pub fn maj_inv(&mut self, a: Wire, b: Wire, c: Wire) -> &mut Self {
        self.push(Op::Gate(Gate::MajInv(a, b, c)))
    }

    /// Appends a double Feynman gate F2G. See [`Circuit::push`] for panics.
    pub fn f2g(&mut self, a: Wire, b: Wire, c: Wire) -> &mut Self {
        self.push(Op::Gate(Gate::F2g(a, b, c)))
    }

    /// Appends an NFT gate. See [`Circuit::push`] for panics.
    pub fn nft(&mut self, a: Wire, b: Wire, c: Wire) -> &mut Self {
        self.push(Op::Gate(Gate::Nft(a, b, c)))
    }

    /// Appends an inverse NFT gate. See [`Circuit::push`] for panics.
    pub fn nft_inv(&mut self, a: Wire, b: Wire, c: Wire) -> &mut Self {
        self.push(Op::Gate(Gate::NftInv(a, b, c)))
    }

    /// Appends a four-wire IG gate. See [`Circuit::push`] for panics.
    pub fn ig(&mut self, a: Wire, b: Wire, c: Wire, d: Wire) -> &mut Self {
        self.push(Op::Gate(Gate::Ig(a, b, c, d)))
    }

    /// Appends an inverse IG gate. See [`Circuit::push`] for panics.
    pub fn ig_inv(&mut self, a: Wire, b: Wire, c: Wire, d: Wire) -> &mut Self {
        self.push(Op::Gate(Gate::IgInv(a, b, c, d)))
    }

    /// Appends an ancilla reset of 1–3 wires. See [`Circuit::push`] for panics.
    pub fn init(&mut self, wires: &[Wire]) -> &mut Self {
        self.push(Op::init(wires))
    }

    /// Appends all operations of `other` (same width).
    ///
    /// # Errors
    ///
    /// Returns [`Error::WidthMismatch`] if widths differ.
    pub fn try_extend_from(&mut self, other: &Circuit) -> Result<()> {
        if other.n_wires != self.n_wires {
            return Err(Error::WidthMismatch {
                expected: self.n_wires,
                found: other.n_wires,
            });
        }
        self.ops.extend_from_slice(&other.ops);
        Ok(())
    }

    /// Appends all operations of `other`, remapping wire `i` of `other` to
    /// `map[i]` of `self`.
    ///
    /// This embeds a sub-circuit (e.g. a 9-wire recovery tile) into a larger
    /// register.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WidthMismatch`] if `map` does not cover `other`'s
    /// wires, and propagates validation errors for remapped operations.
    pub fn try_append_mapped(&mut self, other: &Circuit, map: &[Wire]) -> Result<()> {
        if map.len() < other.n_wires {
            return Err(Error::WidthMismatch {
                expected: other.n_wires,
                found: map.len(),
            });
        }
        for op in &other.ops {
            self.try_push(op.remap(map))?;
        }
        Ok(())
    }

    /// Infallible [`Circuit::try_append_mapped`].
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or invalid remapped operations.
    pub fn append_mapped(&mut self, other: &Circuit, map: &[Wire]) -> &mut Self {
        if let Err(e) = self.try_append_mapped(other, map) {
            panic!("append_mapped failed: {e}");
        }
        self
    }

    /// Runs the circuit on `state` without noise.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != self.n_wires()`.
    pub fn run(&self, state: &mut BitState) {
        assert_eq!(
            state.len(),
            self.n_wires,
            "state width must match circuit width"
        );
        for op in &self.ops {
            op.apply(state);
        }
    }

    /// Whether the circuit is purely reversible (contains no `Init`).
    pub fn is_reversible(&self) -> bool {
        self.ops.iter().all(Op::is_reversible)
    }

    /// Returns the inverse circuit (ops reversed, each gate inverted).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Irreversible`] if the circuit contains an `Init`.
    pub fn inverted(&self) -> Result<Circuit> {
        let mut inv = Circuit::with_capacity(self.n_wires, self.ops.len());
        for op in self.ops.iter().rev() {
            match op {
                Op::Gate(g) => inv.ops.push(Op::Gate(g.inverse())),
                Op::Init(_) => return Err(Error::Irreversible),
            }
        }
        Ok(inv)
    }

    /// Per-kind operation counts.
    pub fn stats(&self) -> CircuitStats {
        let mut counts = BTreeMap::new();
        for op in &self.ops {
            *counts.entry(op.kind()).or_insert(0usize) += 1;
        }
        CircuitStats {
            counts,
            total: self.ops.len(),
        }
    }

    /// Number of operations whose support includes `wire`.
    ///
    /// This is the paper's per-bit operation count `G` when applied to a
    /// fault-tolerant cycle: "there are G = 3 + E operations acting on each
    /// encoded bit" (§2.2).
    pub fn ops_touching(&self, wire: Wire) -> usize {
        self.ops
            .iter()
            .filter(|op| op.support().contains(wire))
            .count()
    }

    /// Number of operations touching *any* of `wires`.
    pub fn ops_touching_any(&self, wires: &[Wire]) -> usize {
        self.ops
            .iter()
            .filter(|op| op.support().as_slice().iter().any(|w| wires.contains(w)))
            .count()
    }

    /// Circuit depth under greedy ASAP scheduling (ops on disjoint wires run
    /// in the same time step).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.n_wires];
        let mut depth = 0;
        for op in &self.ops {
            let start = op
                .support()
                .as_slice()
                .iter()
                .map(|w| level[w.index()])
                .max()
                .unwrap_or(0);
            let end = start + 1;
            for w in op.support().as_slice() {
                level[w.index()] = end;
            }
            depth = depth.max(end);
        }
        depth
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit on {} wires, {} ops:",
            self.n_wires,
            self.ops.len()
        )?;
        for (i, op) in self.ops.iter().enumerate() {
            writeln!(f, "  {i:4}: {op}")?;
        }
        Ok(())
    }
}

impl Extend<Op> for Circuit {
    /// Extends the circuit, panicking on invalid operations (mirrors
    /// [`Circuit::push`]).
    fn extend<T: IntoIterator<Item = Op>>(&mut self, iter: T) {
        for op in iter {
            self.push(op);
        }
    }
}

/// Per-kind operation counts of a circuit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitStats {
    counts: BTreeMap<OpKind, usize>,
    total: usize,
}

impl CircuitStats {
    /// Count of operations of the given kind.
    pub fn count(&self, kind: OpKind) -> usize {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Total operation count.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Count of reversible gates (everything but `Init`).
    pub fn gate_ops(&self) -> usize {
        self.total - self.count(OpKind::Init)
    }

    /// Count of `Init` operations.
    pub fn init_ops(&self) -> usize {
        self.count(OpKind::Init)
    }

    /// Count of SWAP-family operations (SWAP + SWAP3).
    pub fn swap_family(&self) -> usize {
        self.count(OpKind::Swap) + self.count(OpKind::Swap3)
    }

    /// Count of MAJ-family operations (MAJ + MAJ⁻¹).
    pub fn maj_family(&self) -> usize {
        self.count(OpKind::Maj) + self.count(OpKind::MajInv)
    }

    /// Iterates over `(kind, count)` pairs in stable order.
    pub fn iter(&self) -> impl Iterator<Item = (OpKind, usize)> + '_ {
        self.counts.iter().map(|(k, v)| (*k, *v))
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ops (", self.total)?;
        for (i, (kind, count)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{kind}×{count}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::w;

    fn maj_decomposition() -> Circuit {
        let mut c = Circuit::new(3);
        c.cnot(w(0), w(1))
            .cnot(w(0), w(2))
            .toffoli(w(1), w(2), w(0));
        c
    }

    #[test]
    fn builder_chains_and_runs() {
        let c = maj_decomposition();
        assert_eq!(c.len(), 3);
        let mut s = BitState::from_u64(0b110, 3); // q0=0,q1=1,q2=1 -> "011" row
        c.run(&mut s);
        assert_eq!(s.to_u64(), 0b111);
    }

    #[test]
    fn try_push_rejects_out_of_range() {
        let mut c = Circuit::new(2);
        let err = c.try_push(Op::Gate(Gate::Not(w(2)))).unwrap_err();
        assert_eq!(
            err,
            Error::WireOutOfRange {
                wire: w(2),
                n_wires: 2
            }
        );
    }

    #[test]
    fn try_push_rejects_duplicate_wires() {
        let mut c = Circuit::new(3);
        let err = c
            .try_push(Op::Gate(Gate::Cnot {
                control: w(1),
                target: w(1),
            }))
            .unwrap_err();
        assert_eq!(err, Error::DuplicateWire { wire: w(1) });
    }

    #[test]
    #[should_panic(expected = "invalid operation")]
    fn push_panics_on_invalid() {
        let mut c = Circuit::new(1);
        c.swap(w(0), w(0));
    }

    #[test]
    fn inverted_undoes_everything() {
        let c = maj_decomposition();
        let inv = c.inverted().unwrap();
        for input in 0..8u64 {
            let mut s = BitState::from_u64(input, 3);
            c.run(&mut s);
            inv.run(&mut s);
            assert_eq!(s.to_u64(), input);
        }
    }

    #[test]
    fn inverted_fails_with_init() {
        let mut c = Circuit::new(3);
        c.init(&[w(0), w(1), w(2)]);
        assert_eq!(c.inverted().unwrap_err(), Error::Irreversible);
        assert!(!c.is_reversible());
    }

    #[test]
    fn stats_count_kinds() {
        let mut c = Circuit::new(9);
        c.init(&[w(3), w(4), w(5)])
            .init(&[w(6), w(7), w(8)])
            .maj_inv(w(0), w(3), w(6))
            .maj_inv(w(1), w(4), w(7))
            .maj_inv(w(2), w(5), w(8))
            .maj(w(0), w(1), w(2))
            .maj(w(3), w(4), w(5))
            .maj(w(6), w(7), w(8));
        let stats = c.stats();
        assert_eq!(stats.total(), 8);
        assert_eq!(stats.init_ops(), 2);
        assert_eq!(stats.gate_ops(), 6);
        assert_eq!(stats.count(OpKind::Maj), 3);
        assert_eq!(stats.count(OpKind::MajInv), 3);
        assert_eq!(stats.maj_family(), 6);
        assert_eq!(stats.swap_family(), 0);
    }

    #[test]
    fn ops_touching_counts_support_membership() {
        let mut c = Circuit::new(4);
        c.cnot(w(0), w(1))
            .cnot(w(1), w(2))
            .swap(w(2), w(3))
            .not(w(0));
        assert_eq!(c.ops_touching(w(0)), 2);
        assert_eq!(c.ops_touching(w(1)), 2);
        assert_eq!(c.ops_touching(w(2)), 2);
        assert_eq!(c.ops_touching(w(3)), 1);
        assert_eq!(c.ops_touching_any(&[w(0), w(3)]), 3);
    }

    #[test]
    fn depth_parallelizes_disjoint_ops() {
        let mut c = Circuit::new(6);
        // Three disjoint CNOTs: depth 1.
        c.cnot(w(0), w(1)).cnot(w(2), w(3)).cnot(w(4), w(5));
        assert_eq!(c.depth(), 1);
        // A gate overlapping the first forces depth 2.
        c.cnot(w(1), w(2));
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn append_mapped_embeds_subcircuit() {
        let inner = maj_decomposition();
        let mut outer = Circuit::new(10);
        outer.append_mapped(&inner, &[w(7), w(8), w(9)]);
        assert_eq!(outer.len(), 3);
        assert_eq!(outer.ops()[0].support().as_slice(), &[w(7), w(8)]);
        // Semantics preserved under the embedding.
        let mut s = BitState::zeros(10);
        s.set(w(7), true);
        s.set(w(8), true);
        outer.run(&mut s);
        assert!(s.get(w(7)), "majority of (1,1,0) lands on mapped q0");
    }

    #[test]
    fn try_extend_from_checks_width() {
        let mut a = Circuit::new(3);
        let b = Circuit::new(4);
        assert_eq!(
            a.try_extend_from(&b).unwrap_err(),
            Error::WidthMismatch {
                expected: 3,
                found: 4
            }
        );
        let c = maj_decomposition();
        a.try_extend_from(&c).unwrap();
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn display_lists_ops() {
        let c = maj_decomposition();
        let text = c.to_string();
        assert!(text.contains("circuit on 3 wires"));
        assert!(text.contains("CNOT(q0,q1)"));
        assert!(text.contains("TOFFOLI(q1,q2,q0)"));
    }

    #[test]
    fn parity_gate_builders_and_inversion() {
        let mut c = Circuit::new(4);
        c.f2g(w(0), w(1), w(2))
            .nft(w(1), w(2), w(3))
            .ig(w(0), w(1), w(2), w(3))
            .ig_inv(w(0), w(1), w(2), w(3))
            .nft_inv(w(1), w(2), w(3));
        assert_eq!(c.stats().count(OpKind::Ig), 1);
        assert_eq!(c.stats().count(OpKind::IgInv), 1);
        let inv = c.inverted().unwrap();
        for input in 0..16u64 {
            let mut s = BitState::from_u64(input, 4);
            c.run(&mut s);
            inv.run(&mut s);
            assert_eq!(s.to_u64(), input);
        }
    }

    #[test]
    fn extend_accepts_ops() {
        let mut c = Circuit::new(2);
        c.extend([Op::Gate(Gate::Not(w(0))), Op::Gate(Gate::Swap(w(0), w(1)))]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn stats_display_readable() {
        let mut c = Circuit::new(3);
        c.maj(w(0), w(1), w(2));
        let text = c.stats().to_string();
        assert!(text.contains("MAJ×1"), "{text}");
    }
}
