//! Compiled micro-op IR: linear-segment fusion with exact GF(2) fault
//! propagation, and the wide-word batch runners built on it.
//!
//! The engine's word loops used to execute the *raw* flattened [`Op`]
//! stream one gate at a time — one enum dispatch, one support lookup and
//! one plane read-modify-write bundle per operation per 64-lane word.
//! This module lowers the stream once, at compile time, into a micro-op
//! program:
//!
//! - **Native micro-ops** — nonlinear gates (Toffoli, Fredkin, MAJ,
//!   MAJ⁻¹) and unfused linear ops, executed by the branch-free plane
//!   kernels, now over *wide words* (`[u64; W]`, `W ∈ {1, 2, 4}`: `W`
//!   consecutive 64-lane logical words in the flat wire-major layout, so
//!   the element-wise logic autovectorizes).
//! - **Affine segments** — maximal runs of ops that act *affinely over
//!   GF(2)* fused into a single transform: per touched wire one
//!   XOR-of-inputs mask plus a constant bit, applied in one pass however
//!   many original ops the run covers. Two kinds of op qualify:
//!   - gates that are affine for **all** inputs — NOT, CNOT, SWAP, SWAP3
//!     (any wire permutation) and ancilla INIT (the constant-zero map);
//!   - gates that become affine **on the segment's ideal trajectory** —
//!     a MAJ⁻¹ whose `b`/`c` inputs are known constants at that point
//!     (e.g. freshly initialized ancillas, where `MAJ⁻¹(a,0,0)` is the
//!     repetition-code fan-out `b ← a, c ← a`), and the mirror-image
//!     constant-input MAJ. This is the invariant-preserving
//!     specialization of reversible-circuit transformation: the compile
//!     pass tracks each wire's symbolic affine value and specializes
//!     where it proves the inputs constant.
//!
//! # Exact fault semantics inside a fused segment
//!
//! Fusion must not change fault behaviour *bit for bit*: every original
//! op inside a segment keeps its fault site, its position in the RNG
//! draw order, and its action (the op does not execute; its support is
//! replaced by uniform random bits). Segments restore exactness under
//! faults in one of two ways, chosen at compile time:
//!
//! **Patch segments** (every op affine for all inputs). The segment
//! carries, per site, a precomputed propagation pair derived from the
//! suffix transform `Suf_t` (the composition of the segment ops after
//! `t`): a *gather row* per support wire — the row of `Suf_t⁻¹`,
//! expressing the would-be ideal post-op value as an XOR of **boundary**
//! values (+ constant) — and a *scatter mask* per support wire — the
//! column of `Suf_t`, i.e. which boundary wires an injected flip
//! reaches. Execution maintains the *projected boundary* `B`: the planes
//! the segment would end with given the faults processed so far. `B`
//! starts as the fused ideal transform of the inputs and is invariant
//! under ideal evolution, so it only changes at fault sites. At a site
//! with fault mask `f` and random planes `r`, the would-be ideal post-op
//! support values are `v = Suf_t⁻¹(B)` (gather — exact even under
//! earlier faults in the same word, because `B` already reflects them),
//! the injected XOR difference is `d = (r ⊕ v) & f`, and the update is
//! `B ⊕= Suf_t · d` (scatter). Replaying sites in op order lands every
//! fault at the segment boundary bit-identically to unfused execution.
//! Gather rows require an invertible suffix; INIT is not invertible, but
//! a fault *at* an INIT needs no gather (the would-be output is the
//! constant 0, so `d = r & f`), and a fault *before* an INIT whose
//! gather would need a destroyed value is detected at compile time,
//! truncating the segment there.
//!
//! **Replay segments** (at least one constant-specialized MAJ/MAJ⁻¹).
//! The specialization holds only on the ideal trajectory, which a fault
//! leaves — so a logical word with any fault in the segment restores the
//! touched planes from the input snapshot and re-executes the original
//! ops natively with the already-drawn masks, which *is* unfused
//! execution. Fault-free words (the common case deep below threshold)
//! still take the one-pass affine transform.
//!
//! Both modes are pinned lane-for-lane against the raw loop by the
//! property tests in `tests/microop_fusion.rs`. Fusion also falls back
//! to native execution when the fused rows would cost more XORs than
//! the raw ops, so fusing never loses throughput.
//!
//! The compile pass reports what it did via [`CompileStats`] (op counts
//! before/after, fused-segment histogram), exposed as
//! [`Engine::compile_stats`](crate::engine::Engine::compile_stats) — CI
//! asserts on it so fusion cannot silently regress to the raw stream.

use crate::batch::{kernels, BatchState};
use crate::circuit::Circuit;
use crate::engine::{fill_fault_planes, FaultTable, NEVER};
use crate::gate::Gate;
use crate::op::Op;
use crate::wire::Wire;
use rand::rngs::SmallRng;
use rand::Rng;

/// Compact in-IR encoding of [`NEVER`] (micro-ops store sampler indices
/// as `u32` to keep the op stream dense).
const NEVER_U32: u32 = u32::MAX;

/// Narrows an engine sampler index into the IR encoding.
fn sampler_u32(sampler: usize) -> u32 {
    if sampler == NEVER {
        NEVER_U32
    } else {
        u32::try_from(sampler).expect("sampler index fits u32")
    }
}

/// Largest wire count a single affine segment may touch (row, gather and
/// scatter masks are single `u64` bit sets over the segment's wires).
const MAX_SEGMENT_WIRES: usize = 64;

/// A fused segment is kept only when its fast-path XOR/store cost does
/// not exceed `FUSE_COST_FACTOR ×` the raw per-op plane-op cost.
const FUSE_COST_FACTOR: usize = 2;

/// Constant-specialized (replay-mode) segments are only worth it when a
/// 64-lane word clears the whole segment fault-free often enough for the
/// one-pass affine fast path to pay for the occasional native replay.
/// Above this per-word fault probability the sampled path would replay
/// almost always, so the scan retries without specialization.
const REPLAY_MAX_WORD_FAULT: f64 = 0.5;

// ---------------------------------------------------------------------------
// IR
// ---------------------------------------------------------------------------

/// One step of the compiled program.
#[derive(Debug, Clone)]
pub(crate) enum MicroOp {
    /// An op executed by its native kernel (nonlinear in context, or not
    /// worth fusing).
    Native(NativeOp),
    /// A fused run of (contextually) affine ops, by index into the
    /// segment pool ([`CompiledOps::segments`] — contiguous storage, no
    /// per-segment pointer chase).
    Affine(u32),
}

/// A native micro-op: the original op plus its precomputed fault lookup.
#[derive(Debug, Clone)]
pub(crate) struct NativeOp {
    /// The original operation (drives the shared plane kernels).
    pub op: Op,
    /// Index of the op in the original stream (its fault site).
    pub op_index: u32,
    /// Sampler index in the fault table ([`NEVER_U32`] = never faults).
    pub sampler: u32,
    /// Precomputed support size.
    pub arity: u8,
}

/// One output row of a fused segment: `out = XOR(inputs in mask) ⊕ konst`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Row {
    /// Bit set over the segment's wire positions (pre-segment values).
    pub mask: u64,
    /// Affine constant (NOT gates fold in here).
    pub konst: bool,
    /// Row is the identity on its own wire — the fast path skips it.
    pub identity: bool,
}

/// A gather row: a value expressed over the segment's *boundary* planes.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Gather {
    /// Bit set over the segment's wire positions (boundary values).
    pub mask: u64,
    /// Affine constant.
    pub konst: bool,
}

/// The fault bookkeeping of one original op inside a fused segment.
#[derive(Debug, Clone)]
pub(crate) struct FaultSite {
    /// Index of the op in the original stream.
    pub op_index: u32,
    /// Sampler index ([`NEVER_U32`] = never faults; the site still
    /// exists so externally supplied mask schedules keep their
    /// semantics).
    pub sampler: u32,
    /// Support size (how many random planes a fault consumes).
    pub arity: u8,
    /// Per support wire: the would-be ideal post-op value as a function
    /// of the boundary (`Suf_t⁻¹` rows; patch mode only).
    pub gathers: [Gather; 4],
    /// Per support wire: boundary wires an injected flip reaches
    /// (`Suf_t` columns; patch mode only).
    pub scatters: [u64; 4],
}

/// How a segment restores exact fault semantics (see the module docs).
#[derive(Debug, Clone)]
pub(crate) enum FaultMode {
    /// Every op is affine for all inputs: faults are pushed to the
    /// boundary through the per-site gather/scatter pairs.
    Patch,
    /// Contains constant-specialized MAJ/MAJ⁻¹ ops: a faulted word
    /// restores its input snapshot and replays these original ops
    /// natively.
    Replay(Vec<Op>),
}

/// A fused run of (contextually) affine ops.
#[derive(Debug, Clone)]
pub(crate) struct AffineSegment {
    /// First original op covered (the segment covers `start ..
    /// start + sites.len()` — fused runs are contiguous in the stream).
    pub start: u32,
    /// Wires the segment touches, in first-touch order (≤ 64).
    pub wires: Vec<u32>,
    /// One output row per touched wire (same order as `wires`).
    pub rows: Vec<Row>,
    /// Positions whose input planes the fast path must snapshot: the
    /// union of the non-identity row masks (everything else stays
    /// readable from the batch — identity rows are never written, and a
    /// faulted replay word never takes the fast path at all).
    pub snap_mask: u64,
    /// One fault site per original op in the run, in op order.
    pub sites: Vec<FaultSite>,
    /// Fault strategy.
    pub mode: FaultMode,
}

/// The compiled program: the micro-op stream plus its compile-pass stats.
#[derive(Debug, Clone)]
pub(crate) struct CompiledOps {
    pub micro: Vec<MicroOp>,
    /// Fused segments, in stream order ([`MicroOp::Affine`] indexes).
    pub segments: Vec<AffineSegment>,
    pub stats: CompileStats,
}

impl CompiledOps {
    /// Approximate heap footprint (size input of cache eviction).
    pub(crate) fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = size_of::<CompiledOps>() + self.micro.len() * size_of::<MicroOp>();
        for seg in &self.segments {
            bytes += size_of::<AffineSegment>()
                + seg.wires.len() * size_of::<u32>()
                + seg.rows.len() * size_of::<Row>()
                + seg.sites.len() * size_of::<FaultSite>();
        }
        bytes
    }
}

/// What the fusion pass did to one op stream — exposed on the compiled
/// artifact via
/// [`Engine::compile_stats`](crate::engine::Engine::compile_stats).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Operations in the original flattened stream.
    pub ops: usize,
    /// Micro-ops after fusion (native ops + fused segments).
    pub micro_ops: usize,
    /// Fused segments emitted (each covering ≥ 2 original ops).
    pub fused_segments: usize,
    /// Original ops covered by fused segments.
    pub fused_ops: usize,
    /// MAJ/MAJ⁻¹ ops specialized to affine form by the known-constant
    /// invariant (a subset of `fused_ops`).
    pub specialized_ops: usize,
    /// Length (in original ops) of the longest fused segment.
    pub max_segment_len: usize,
    /// Histogram of fused-segment lengths: `(length, count)`, ascending.
    pub segment_len_hist: Vec<(usize, usize)>,
}

impl CompileStats {
    fn record_segment(&mut self, len: usize, specialized: usize) {
        self.fused_segments += 1;
        self.fused_ops += len;
        self.specialized_ops += specialized;
        self.max_segment_len = self.max_segment_len.max(len);
        match self
            .segment_len_hist
            .binary_search_by_key(&len, |&(l, _)| l)
        {
            Ok(i) => self.segment_len_hist[i].1 += 1,
            Err(i) => self.segment_len_hist.insert(i, (len, 1)),
        }
    }
}

// ---------------------------------------------------------------------------
// Compile pass
// ---------------------------------------------------------------------------

/// Whether `op` is affine over GF(2) for **all** inputs.
fn is_always_affine(op: &Op) -> bool {
    match op {
        Op::Init(_) => true,
        Op::Gate(g) => matches!(
            g,
            Gate::Not(_) | Gate::Cnot { .. } | Gate::Swap(..) | Gate::Swap3(..) | Gate::F2g(..)
        ),
    }
}

/// Lowers the flattened op stream into the micro-op program.
pub(crate) fn compile(circuit: &Circuit, table: &FaultTable) -> CompiledOps {
    let ops = circuit.ops();
    let mut stats = CompileStats {
        ops: ops.len(),
        ..CompileStats::default()
    };
    let mut micro = Vec::with_capacity(ops.len());
    let mut segments = Vec::new();
    let mut pos_of = vec![u8::MAX; circuit.n_wires()];
    let mut i = 0usize;
    while i < ops.len() {
        match scan_segment(ops, table, i, &mut pos_of) {
            Some((seg, end, specialized)) => {
                stats.record_segment(end - i, specialized);
                micro.push(MicroOp::Affine(segments.len() as u32));
                segments.push(seg);
                i = end;
            }
            None => {
                micro.push(native(ops, table, i));
                i += 1;
            }
        }
    }
    stats.micro_ops = micro.len();
    CompiledOps {
        micro,
        segments,
        stats,
    }
}

fn native(ops: &[Op], table: &FaultTable, i: usize) -> MicroOp {
    MicroOp::Native(NativeOp {
        op: ops[i],
        op_index: i as u32,
        sampler: sampler_u32(table.sampler_of[i]),
        arity: ops[i].arity() as u8,
    })
}

/// A symbolic affine value: XOR of wire positions plus a constant.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct Sym {
    mask: u64,
    konst: bool,
}

impl Sym {
    fn unit(pos: usize) -> Sym {
        Sym {
            mask: 1u64 << pos,
            konst: false,
        }
    }

    fn konst(value: bool) -> Sym {
        Sym {
            mask: 0,
            konst: value,
        }
    }

    fn is_const(&self) -> bool {
        self.mask == 0
    }

    fn xor_in(&mut self, other: Sym) {
        self.mask ^= other.mask;
        self.konst ^= other.konst;
    }
}

/// One forward symbolic scan: the segment state while growing a run.
struct Scan {
    wires: Vec<u32>,
    /// Symbolic value per position, over the pre-segment values.
    s: Vec<Sym>,
    /// Whether any op was constant-specialized (forces replay mode).
    specialized: usize,
    /// Whether MAJ/MAJ⁻¹ specialization is allowed on this attempt.
    allow_spec: bool,
}

impl Scan {
    fn new(allow_spec: bool) -> Scan {
        Scan {
            wires: Vec::new(),
            s: Vec::new(),
            specialized: 0,
            allow_spec,
        }
    }

    /// Position of `w`, allocating it if unseen. `None` when the segment
    /// is full.
    fn pos(&mut self, pos_of: &mut [u8], w: Wire) -> Option<usize> {
        let wi = w.index();
        if pos_of[wi] != u8::MAX {
            return Some(pos_of[wi] as usize);
        }
        if self.wires.len() == MAX_SEGMENT_WIRES {
            return None;
        }
        pos_of[wi] = self.wires.len() as u8;
        self.wires.push(wi as u32);
        self.s.push(Sym::unit(self.s.len()));
        Some(self.s.len() - 1)
    }

    /// Tries to absorb `op`; `false` leaves the scan state *possibly
    /// extended by fresh wire slots* but symbolically untouched, and the
    /// op outside the segment.
    fn absorb(&mut self, pos_of: &mut [u8], op: &Op) -> bool {
        match op {
            Op::Init(init) => {
                let mut ps = [0usize; 3];
                for (k, &w) in init.wires().iter().enumerate() {
                    match self.pos(pos_of, w) {
                        Some(p) => ps[k] = p,
                        None => return false,
                    }
                }
                for &p in ps.iter().take(init.wires().len()) {
                    self.s[p] = Sym::default();
                }
                true
            }
            Op::Gate(g) => match *g {
                Gate::Not(a) => {
                    let Some(pa) = self.pos(pos_of, a) else {
                        return false;
                    };
                    self.s[pa].konst = !self.s[pa].konst;
                    true
                }
                Gate::Cnot { control, target } => {
                    let (Some(pc), Some(pt)) =
                        (self.pos(pos_of, control), self.pos(pos_of, target))
                    else {
                        return false;
                    };
                    let c = self.s[pc];
                    self.s[pt].xor_in(c);
                    true
                }
                Gate::F2g(a, b, c) => {
                    // Two CNOTs sharing control `a`: b ^= a, c ^= a.
                    let (Some(pa), Some(pb), Some(pc)) = (
                        self.pos(pos_of, a),
                        self.pos(pos_of, b),
                        self.pos(pos_of, c),
                    ) else {
                        return false;
                    };
                    let va = self.s[pa];
                    self.s[pb].xor_in(va);
                    self.s[pc].xor_in(va);
                    true
                }
                Gate::Swap(a, b) => {
                    let (Some(pa), Some(pb)) = (self.pos(pos_of, a), self.pos(pos_of, b)) else {
                        return false;
                    };
                    self.s.swap(pa, pb);
                    true
                }
                Gate::Swap3(a, b, c) => {
                    let (Some(pa), Some(pb), Some(pc)) = (
                        self.pos(pos_of, a),
                        self.pos(pos_of, b),
                        self.pos(pos_of, c),
                    ) else {
                        return false;
                    };
                    // a ← b, b ← c, c ← a.
                    let va = self.s[pa];
                    self.s[pa] = self.s[pb];
                    self.s[pb] = self.s[pc];
                    self.s[pc] = va;
                    true
                }
                Gate::MajInv(a, b, c) => {
                    // MAJ⁻¹: a ^= b & c; b ^= a; c ^= a. Affine on the
                    // ideal trajectory iff b and c are known constants
                    // here (the fan-out `MAJ⁻¹(a, 0, 0) = (a, a, a)` of
                    // freshly initialized ancillas is the common case).
                    if !self.allow_spec {
                        return false;
                    }
                    let (Some(pa), Some(pb), Some(pc)) = (
                        self.pos(pos_of, a),
                        self.pos(pos_of, b),
                        self.pos(pos_of, c),
                    ) else {
                        return false;
                    };
                    if !(self.s[pb].is_const() && self.s[pc].is_const()) {
                        return false;
                    }
                    let and = self.s[pb].konst && self.s[pc].konst;
                    self.s[pa].xor_in(Sym::konst(and));
                    let va = self.s[pa];
                    self.s[pb].xor_in(va);
                    self.s[pc].xor_in(va);
                    self.specialized += 1;
                    true
                }
                Gate::Maj(a, b, c) => {
                    // MAJ: b ^= a; c ^= a; a ^= b & c. Affine on the
                    // ideal trajectory iff the post-XOR b and c are
                    // known constants, i.e. b and c equal a up to a
                    // constant (a clean repetition codeword).
                    if !self.allow_spec {
                        return false;
                    }
                    let (Some(pa), Some(pb), Some(pc)) = (
                        self.pos(pos_of, a),
                        self.pos(pos_of, b),
                        self.pos(pos_of, c),
                    ) else {
                        return false;
                    };
                    let va = self.s[pa];
                    let mut nb = self.s[pb];
                    nb.xor_in(va);
                    let mut nc = self.s[pc];
                    nc.xor_in(va);
                    if !(nb.is_const() && nc.is_const()) {
                        return false;
                    }
                    self.s[pb] = nb;
                    self.s[pc] = nc;
                    self.s[pa].xor_in(Sym::konst(nb.konst && nc.konst));
                    self.specialized += 1;
                    true
                }
                _ => false,
            },
        }
    }
}

/// Scans for a fused segment starting at `start`. Returns the segment,
/// its end (exclusive) and the number of specialized ops, or `None` when
/// no profitable segment of ≥ 2 ops starts here.
///
/// `pos_of` is caller-owned scratch (`u8::MAX`-filled, restored before
/// returning).
fn scan_segment(
    ops: &[Op],
    table: &FaultTable,
    start: usize,
    pos_of: &mut [u8],
) -> Option<(AffineSegment, usize, usize)> {
    // The first op must be a fusion candidate at all.
    if !is_always_affine(&ops[start])
        && !matches!(ops[start], Op::Gate(Gate::Maj(..) | Gate::MajInv(..)))
    {
        return None;
    }
    let mut end = ops.len();
    let mut allow_spec = true;
    // Every exit carries the scan's touched wires out so only those (at
    // most 64) scratch entries need restoring.
    let (touched, result) = loop {
        // Forward symbolic scan over [start, end), shrinking `end` to the
        // first op that cannot join.
        let mut scan = Scan::new(allow_spec);
        let mut k = start;
        while k < end {
            if !scan.absorb(pos_of, &ops[k]) {
                break;
            }
            k += 1;
        }
        end = k;
        if end - start < 2 {
            break (scan.wires, None);
        }
        if scan.specialized > 0 {
            // Specialization only pays when a word usually clears the
            // segment fault-free (the replay slow path is full native
            // re-execution); otherwise retry as a pure-affine scan.
            let p_clean: f64 = ops[start..end]
                .iter()
                .enumerate()
                .map(|(i, _)| (1.0 - table.probs[start + i]).powi(64))
                .product();
            if 1.0 - p_clean > REPLAY_MAX_WORD_FAULT {
                for &w in &scan.wires {
                    pos_of[w as usize] = u8::MAX;
                }
                allow_spec = false;
                end = ops.len();
                continue;
            }
        }
        let rows: Vec<Row> = scan
            .s
            .iter()
            .enumerate()
            .map(|(i, sym)| Row {
                mask: sym.mask,
                konst: sym.konst,
                identity: sym.mask == 1u64 << i && !sym.konst,
            })
            .collect();

        // Cost heuristic: the fused fast path must not out-cost the raw
        // kernels (dense parity rows can).
        let fused_cost: usize = rows
            .iter()
            .filter(|r| !r.identity)
            .map(|r| r.mask.count_ones() as usize + 1)
            .sum();
        let native_cost: usize = ops[start..end].iter().map(|op| 2 * op.arity()).sum();
        if fused_cost > FUSE_COST_FACTOR * native_cost {
            break (scan.wires, None);
        }

        let mut sites: Vec<FaultSite> = ops[start..end]
            .iter()
            .enumerate()
            .map(|(i, op)| FaultSite {
                op_index: (start + i) as u32,
                sampler: sampler_u32(table.sampler_of[start + i]),
                arity: op.arity() as u8,
                gathers: [Gather::default(); 4],
                scatters: [0u64; 4],
            })
            .collect();

        // The fast path reads exactly the union of the non-identity row
        // masks; everything else stays readable from the batch (identity
        // rows are never written, and replay words defer their writes).
        let snap_mask = rows
            .iter()
            .filter(|r| !r.identity)
            .fold(0u64, |m, r| m | r.mask);

        if scan.specialized > 0 {
            // Replay mode: faulted words re-execute the original ops.
            let seg = AffineSegment {
                start: start as u32,
                wires: scan.wires.clone(),
                rows,
                snap_mask,
                sites,
                mode: FaultMode::Replay(ops[start..end].to_vec()),
            };
            break (scan.wires, Some((seg, end, scan.specialized)));
        }

        // Patch mode: backward pass for the per-site gather rows
        // (`Suf_t⁻¹`) and scatter columns (`Suf_t`). `v[p] = None` marks
        // a value a later INIT destroyed; hitting one at a site
        // truncates the segment right before that INIT and rescans.
        match backward_pass(ops, start, end, scan.wires.len(), pos_of, &mut sites) {
            Ok(()) => {
                let seg = AffineSegment {
                    start: start as u32,
                    wires: scan.wires.clone(),
                    rows,
                    snap_mask,
                    sites,
                    mode: FaultMode::Patch,
                };
                break (scan.wires, Some((seg, end, 0)));
            }
            Err(truncate_at) => {
                debug_assert!(start < truncate_at && truncate_at < end);
                for &w in &scan.wires {
                    pos_of[w as usize] = u8::MAX;
                }
                end = truncate_at;
                continue;
            }
        }
    };
    // Restore exactly the scratch entries this scan allocated.
    for &w in &touched {
        pos_of[w as usize] = u8::MAX;
    }
    result
}

/// Fills the gather/scatter pairs of `sites` by walking `[start, end)`
/// backwards. Returns `Err(u)` when a fault site's gather row needs a
/// value the INIT at op `u` destroys (caller truncates the run at `u`).
fn backward_pass(
    ops: &[Op],
    start: usize,
    end: usize,
    npos: usize,
    pos_of: &mut [u8],
    sites: &mut [FaultSite],
) -> Result<(), usize> {
    let mut v: Vec<Option<Sym>> = (0..npos).map(|p| Some(Sym::unit(p))).collect();
    let mut c: Vec<u64> = (0..npos).map(|p| 1u64 << p).collect();
    let mut none_src: Vec<usize> = vec![usize::MAX; npos];
    let pos = |pos_of: &[u8], w: Wire| pos_of[w.index()] as usize;
    for t in (start..end).rev() {
        let op = &ops[t];
        let support = op.support();
        let sup = support.as_slice();
        let site = &mut sites[t - start];
        for (k, &w) in sup.iter().enumerate() {
            let p = pos(pos_of, w);
            site.scatters[k] = c[p];
            if matches!(op, Op::Init(_)) {
                // The would-be ideal output of a faulted INIT is the
                // constant 0 — no boundary dependence, no gather needed.
                site.gathers[k] = Gather::default();
            } else {
                match v[p] {
                    Some(sym) => {
                        site.gathers[k] = Gather {
                            mask: sym.mask,
                            konst: sym.konst,
                        }
                    }
                    None => return Err(none_src[p]),
                }
            }
        }
        // Un-apply op t: V ← A_t⁻¹ ∘ V, C ← C ∘ A_t.
        match op {
            Op::Init(init) => {
                for &w in init.wires() {
                    let p = pos(pos_of, w);
                    v[p] = None;
                    none_src[p] = t;
                    c[p] = 0;
                }
            }
            Op::Gate(g) => match *g {
                Gate::Not(a) => {
                    if let Some(sym) = v[pos(pos_of, a)].as_mut() {
                        sym.konst = !sym.konst;
                    }
                }
                Gate::Cnot { control, target } => {
                    let (pc, pt) = (pos(pos_of, control), pos(pos_of, target));
                    v[pt] = match (v[pt], v[pc]) {
                        (Some(mut vt), Some(vc)) => {
                            vt.xor_in(vc);
                            Some(vt)
                        }
                        _ => {
                            if v[pt].is_some() {
                                none_src[pt] = none_src[pc];
                            }
                            None
                        }
                    };
                    c[pc] ^= c[pt];
                }
                Gate::F2g(a, b, c3) => {
                    // Un-apply b ^= a and c ^= a (self-inverse): two CNOT
                    // inversions sharing the control column.
                    let pa = pos(pos_of, a);
                    for pt in [pos(pos_of, b), pos(pos_of, c3)] {
                        v[pt] = match (v[pt], v[pa]) {
                            (Some(mut vt), Some(vc)) => {
                                vt.xor_in(vc);
                                Some(vt)
                            }
                            _ => {
                                if v[pt].is_some() {
                                    none_src[pt] = none_src[pa];
                                }
                                None
                            }
                        };
                        c[pa] ^= c[pt];
                    }
                }
                Gate::Swap(a, b) => {
                    let (pa, pb) = (pos(pos_of, a), pos(pos_of, b));
                    v.swap(pa, pb);
                    c.swap(pa, pb);
                    none_src.swap(pa, pb);
                }
                Gate::Swap3(a, b, c3) => {
                    // Forward: a ← b, b ← c, c ← a. Inverse: old_a =
                    // new_c, old_b = new_a, old_c = new_b.
                    let (pa, pb, pc) = (pos(pos_of, a), pos(pos_of, b), pos(pos_of, c3));
                    let va = v[pa];
                    v[pa] = v[pc];
                    let vb = v[pb];
                    v[pb] = va;
                    v[pc] = vb;
                    let ca = c[pa];
                    c[pa] = c[pc];
                    let cb = c[pb];
                    c[pb] = ca;
                    c[pc] = cb;
                    let na = none_src[pa];
                    none_src[pa] = none_src[pc];
                    let nb = none_src[pb];
                    none_src[pb] = na;
                    none_src[pc] = nb;
                }
                _ => unreachable!("non-affine gate in patch-mode segment"),
            },
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Wide runners
// ---------------------------------------------------------------------------

/// One pending fault inside the segment currently being executed.
#[derive(Debug, Clone, Copy)]
struct FaultEvent {
    /// Which of the `W` logical words the fault belongs to.
    word: u8,
    /// Index into the segment's `sites`.
    site: u32,
    /// 64-lane fault mask.
    mask: u64,
    /// Random planes (one per support wire).
    planes: [u64; 4],
}

/// Reusable buffers for the wide runners (allocated once per word range).
#[derive(Debug, Default)]
pub(crate) struct ExecScratch {
    /// Snapshot of the segment's input planes (flat: `position * W + w`).
    inp: Vec<u64>,
    /// Projected boundary planes (flat, same layout).
    boundary: Vec<u64>,
    /// Faults collected while sampling the current segment.
    events: Vec<FaultEvent>,
    /// Per-site `(mask, planes)` of the word being replayed.
    replay: Vec<(u64, [u64; 4])>,
}

/// Per-word outcome of a wide run.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WideOutcome<const W: usize> {
    /// Per logical word: lanes that experienced at least one fault.
    pub faulted: [u64; W],
    /// Total `(op, lane)` fault events across all `W` words.
    pub fault_events: u64,
    /// Segment executions that stayed on the affine fast path (clean
    /// one-pass transform or exact-propagation patch). Plain tallies —
    /// the engine folds them into its instrumentation outside the loop.
    pub fused_segments: u64,
    /// Segment executions that fell back to native replay of the
    /// original ops.
    pub replayed_segments: u64,
}

/// Runs the compiled program over a `W`-word wide batch, **sampling**
/// faults exactly like the raw word loop: per original op (in stream
/// order), per logical word, one mask draw from that word's own RNG,
/// then one full random plane per support wire when the mask is
/// nonzero. Word `w` therefore consumes `rngs[w]` in the identical
/// order to a `W = 1` raw run of that word — estimates stay
/// byte-identical for a fixed seed at any width.
pub(crate) fn run_sampled_wide<const W: usize>(
    compiled: &CompiledOps,
    table: &FaultTable,
    batch: &mut BatchState,
    rngs: &mut [SmallRng; W],
    scratch: &mut ExecScratch,
) -> WideOutcome<W> {
    let mut out = WideOutcome {
        faulted: [0u64; W],
        fault_events: 0,
        fused_segments: 0,
        replayed_segments: 0,
    };
    for mop in &compiled.micro {
        match mop {
            MicroOp::Native(nat) => {
                if nat.sampler == NEVER_U32 {
                    kernels::apply_wide::<W>(batch, &nat.op);
                    continue;
                }
                let sampler = &table.samplers[nat.sampler as usize];
                let mut masks = [0u64; W];
                let mut any = false;
                for (w, rng) in rngs.iter_mut().enumerate() {
                    masks[w] = sampler.sample(rng);
                    any |= masks[w] != 0;
                }
                // One vectorized ideal kernel for every word; faulted
                // words then pay only the per-lane blend.
                kernels::apply_wide::<W>(batch, &nat.op);
                if !any {
                    continue;
                }
                let arity = nat.arity as usize;
                for (w, rng) in rngs.iter_mut().enumerate() {
                    if masks[w] != 0 {
                        let mut rand_planes = [0u64; 4];
                        for plane in rand_planes.iter_mut().take(arity) {
                            *plane = rng.random::<u64>();
                        }
                        kernels::blend_faulted(batch, &nat.op, w, masks[w], &rand_planes);
                        out.fault_events += masks[w].count_ones() as u64;
                        out.faulted[w] |= masks[w];
                    }
                }
            }
            MicroOp::Affine(seg) => {
                let seg = &compiled.segments[*seg as usize];
                scratch.events.clear();
                for (si, site) in seg.sites.iter().enumerate() {
                    if site.sampler == NEVER_U32 {
                        continue;
                    }
                    let sampler = &table.samplers[site.sampler as usize];
                    let arity = site.arity as usize;
                    for (w, rng) in rngs.iter_mut().enumerate() {
                        let mask = sampler.sample(rng);
                        if mask == 0 {
                            continue;
                        }
                        let mut planes = [0u64; 4];
                        for plane in planes.iter_mut().take(arity) {
                            *plane = rng.random::<u64>();
                        }
                        scratch.events.push(FaultEvent {
                            word: w as u8,
                            site: si as u32,
                            mask,
                            planes,
                        });
                    }
                }
                apply_segment::<W>(seg, batch, scratch, &mut out);
            }
        }
    }
    out
}

/// Runs the compiled program over a `W`-word wide batch under a
/// **precomputed** fault-mask schedule in the flat wide layout:
/// `masks[i * W + w]` = lanes in which op `i` faults in logical word `w`
/// (one contiguous load per op) — the stratified estimator's conditional
/// execution path. Random planes are drawn from each word's RNG in op
/// order via the shared sparse
/// [`fill_fault_planes`](crate::engine::fill_fault_planes) schedule, so
/// the result is bit-identical to `W` single-word
/// [`Backend::run_masked`](crate::engine::Backend::run_masked) runs.
pub(crate) fn run_masked_wide<const W: usize>(
    compiled: &CompiledOps,
    batch: &mut BatchState,
    masks: &[u64],
    rngs: &mut [SmallRng; W],
    scratch: &mut ExecScratch,
) -> WideOutcome<W> {
    let mut out = WideOutcome {
        faulted: [0u64; W],
        fault_events: 0,
        fused_segments: 0,
        replayed_segments: 0,
    };
    for mop in &compiled.micro {
        match mop {
            MicroOp::Native(nat) => {
                masked_native::<W>(
                    &nat.op,
                    nat.op_index,
                    nat.arity,
                    batch,
                    masks,
                    rngs,
                    &mut out,
                );
            }
            MicroOp::Affine(seg) => {
                let seg = &compiled.segments[*seg as usize];
                // Pre-scan the schedule in one contiguous pass (fused
                // runs cover consecutive ops): a clean segment collapses
                // to the one-pass affine transform.
                let lo = seg.start as usize * W;
                let hi = lo + seg.sites.len() * W;
                let clean = masks[lo..hi].iter().fold(0u64, |a, &m| a | m) == 0;
                if clean {
                    scratch.events.clear();
                    apply_segment::<W>(seg, batch, scratch, &mut out);
                    continue;
                }
                match &seg.mode {
                    FaultMode::Replay(ops) => {
                        // A schedule left the ideal trajectory: run the
                        // original ops natively (wide kernel + blend) —
                        // plane draws stay in op order per word.
                        out.replayed_segments += 1;
                        for (site, op) in seg.sites.iter().zip(ops) {
                            masked_native::<W>(
                                op,
                                site.op_index,
                                site.arity,
                                batch,
                                masks,
                                rngs,
                                &mut out,
                            );
                        }
                    }
                    FaultMode::Patch => {
                        scratch.events.clear();
                        for (si, site) in seg.sites.iter().enumerate() {
                            let i = site.op_index as usize;
                            let arity = site.arity as usize;
                            for (w, rng) in rngs.iter_mut().enumerate() {
                                let mask = masks[i * W + w];
                                if mask == 0 {
                                    continue;
                                }
                                let mut planes = [0u64; 4];
                                fill_fault_planes(arity, mask, rng, &mut planes);
                                scratch.events.push(FaultEvent {
                                    word: w as u8,
                                    site: si as u32,
                                    mask,
                                    planes,
                                });
                            }
                        }
                        apply_segment::<W>(seg, batch, scratch, &mut out);
                    }
                }
            }
        }
    }
    out
}

/// One op of the masked runner: vectorized ideal kernel for all words,
/// then the per-lane fault blend on scheduled words (planes drawn from
/// each word's RNG in op order via the shared sparse schedule).
#[inline]
fn masked_native<const W: usize>(
    op: &Op,
    op_index: u32,
    arity: u8,
    batch: &mut BatchState,
    masks: &[u64],
    rngs: &mut [SmallRng; W],
    out: &mut WideOutcome<W>,
) {
    let i = op_index as usize;
    let mut fmasks = [0u64; W];
    fmasks.copy_from_slice(&masks[i * W..i * W + W]);
    let mut any = 0u64;
    for &m in &fmasks {
        any |= m;
    }
    kernels::apply_wide::<W>(batch, op);
    if any == 0 {
        return;
    }
    let arity = arity as usize;
    for (w, rng) in rngs.iter_mut().enumerate() {
        if fmasks[w] != 0 {
            let mut rand_planes = [0u64; 4];
            fill_fault_planes(arity, fmasks[w], rng, &mut rand_planes);
            kernels::blend_faulted(batch, op, w, fmasks[w], &rand_planes);
            out.fault_events += fmasks[w].count_ones() as u64;
            out.faulted[w] |= fmasks[w];
        }
    }
}

/// Applies one fused segment to the wide batch: the one-pass affine
/// transform, then — per collected fault event, in op order per word
/// (`scratch.events` is pushed site-major, which preserves that order
/// within each word) — either the gather → inject → scatter patch or the
/// native replay of the faulted words.
fn apply_segment<const W: usize>(
    seg: &AffineSegment,
    batch: &mut BatchState,
    scratch: &mut ExecScratch,
    out: &mut WideOutcome<W>,
) {
    let n = seg.wires.len();
    if scratch.events.is_empty() {
        // Fast path: snapshot the planes the rows read (rows may
        // overwrite wires they read), then emit the non-identity rows
        // straight into the batch.
        out.fused_segments += 1;
        snapshot::<W>(seg, batch, scratch);
        for (p, row) in seg.rows.iter().enumerate() {
            if row.identity {
                continue;
            }
            let acc = eval_row::<W>(row.mask, row.konst, &scratch.inp);
            batch.set_wide(Wire::new(seg.wires[p]), acc);
        }
        return;
    }
    match &seg.mode {
        FaultMode::Patch => {
            // Materialize the projected boundary for every wire, patch it
            // per event, then store it back. Identity rows read their
            // (still unwritten) planes directly.
            out.fused_segments += 1;
            snapshot::<W>(seg, batch, scratch);
            scratch.boundary.resize(n * W, 0);
            for (p, row) in seg.rows.iter().enumerate() {
                let acc = if row.identity {
                    batch.wide::<W>(Wire::new(seg.wires[p]))
                } else {
                    eval_row::<W>(row.mask, row.konst, &scratch.inp)
                };
                scratch.boundary[p * W..(p + 1) * W].copy_from_slice(&acc);
            }
            for e in &scratch.events {
                let site = &seg.sites[e.site as usize];
                let w = e.word as usize;
                let arity = site.arity as usize;
                let mut d = [0u64; 4];
                // Gather all would-be ideal values before scattering any
                // delta: within one site they are all defined pre-fault.
                for (k, dk) in d.iter_mut().enumerate().take(arity) {
                    let g = &site.gathers[k];
                    let mut val = if g.konst { u64::MAX } else { 0u64 };
                    let mut gm = g.mask;
                    while gm != 0 {
                        let p = gm.trailing_zeros() as usize;
                        gm &= gm - 1;
                        val ^= scratch.boundary[p * W + w];
                    }
                    *dk = (e.planes[k] ^ val) & e.mask;
                }
                for (k, &dk) in d.iter().enumerate().take(arity) {
                    let mut sm = site.scatters[k];
                    while sm != 0 {
                        let p = sm.trailing_zeros() as usize;
                        sm &= sm - 1;
                        scratch.boundary[p * W + w] ^= dk;
                    }
                }
                out.fault_events += e.mask.count_ones() as u64;
                out.faulted[w] |= e.mask;
            }
            for (p, &wi) in seg.wires.iter().enumerate() {
                let mut v = [0u64; W];
                v.copy_from_slice(&scratch.boundary[p * W..(p + 1) * W]);
                batch.set_wide(Wire::new(wi), v);
            }
        }
        FaultMode::Replay(ops) => {
            // A faulted word leaves the ideal trajectory the
            // specialization assumed, so re-execute the whole segment
            // natively (that *is* the unfused execution, masks and
            // planes already drawn): one wide ideal kernel per op, then
            // the per-lane fault blend on its scheduled words. The batch
            // still holds the pre-segment planes — the fast path never
            // ran — so no snapshot or restore is needed.
            out.replayed_segments += 1;
            scratch.replay.clear();
            scratch
                .replay
                .resize(seg.sites.len() * W, (0u64, [0u64; 4]));
            for e in &scratch.events {
                scratch.replay[e.site as usize * W + e.word as usize] = (e.mask, e.planes);
            }
            for (si, op) in ops.iter().enumerate() {
                kernels::apply_wide::<W>(batch, op);
                for w in 0..W {
                    let (mask, planes) = scratch.replay[si * W + w];
                    if mask != 0 {
                        kernels::blend_faulted(batch, op, w, mask, &planes);
                        out.fault_events += mask.count_ones() as u64;
                        out.faulted[w] |= mask;
                    }
                }
            }
        }
    }
}

/// Snapshots the input planes in `seg.snap_mask` (the union of the
/// non-identity row masks) into `scratch.inp`.
#[inline]
fn snapshot<const W: usize>(seg: &AffineSegment, batch: &BatchState, scratch: &mut ExecScratch) {
    scratch.inp.resize(seg.wires.len() * W, 0);
    let mut m = seg.snap_mask;
    while m != 0 {
        let p = m.trailing_zeros() as usize;
        m &= m - 1;
        let v = batch.wide::<W>(Wire::new(seg.wires[p]));
        scratch.inp[p * W..(p + 1) * W].copy_from_slice(&v);
    }
}

/// Evaluates one affine row over the flat input snapshot.
#[inline]
fn eval_row<const W: usize>(mask: u64, konst: bool, inp: &[u64]) -> [u64; W] {
    let mut acc = if konst { [u64::MAX; W] } else { [0u64; W] };
    let mut m = mask;
    while m != 0 {
        let p = m.trailing_zeros() as usize;
        m &= m - 1;
        for (a, &x) in acc.iter_mut().zip(&inp[p * W..(p + 1) * W]) {
            *a ^= x;
        }
    }
    acc
}
