//! ASCII rendering of circuits in the paper's gate-array notation.
//!
//! "Space is on the y-axis and time is on the x-axis, and operations are
//! boxes or symbols that connect the bits they are applied to" (§2).
//! [`render`] draws exactly that: one row per wire, one column per
//! time-step (ASAP-scheduled), `●` for controls, `⊕` for targets, `×` for
//! swapped wires, labelled boxes for the MAJ family and `|0>` for resets.
//!
//! # Examples
//!
//! Figure 1 — the majority gate from two CNOTs and a Toffoli:
//!
//! ```
//! use rft_revsim::diagram::render;
//! use rft_revsim::prelude::*;
//!
//! let mut c = Circuit::new(3);
//! c.cnot(w(0), w(1)).cnot(w(0), w(2)).toffoli(w(1), w(2), w(0));
//! print!("{}", render(&c));
//! // q0: ──●──●──⊕──
//! // q1: ──⊕──┼──●──
//! // q2: ─────⊕──●──
//! ```

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::op::Op;
use crate::wire::Wire;

/// The symbol one operation places on one wire.
fn symbol(op: &Op, wire: Wire) -> Option<String> {
    let sym = match op {
        Op::Gate(g) => match *g {
            Gate::Not(a) if a == wire => "⊕",
            Gate::Cnot { control, .. } if control == wire => "●",
            Gate::Cnot { target, .. } if target == wire => "⊕",
            Gate::Toffoli { controls, .. } if controls.contains(&wire) => "●",
            Gate::Toffoli { target, .. } if target == wire => "⊕",
            Gate::Swap(a, b) if a == wire || b == wire => "×",
            Gate::Swap3(a, b, c) if a == wire || b == wire || c == wire => "×",
            Gate::Fredkin { control, .. } if control == wire => "●",
            Gate::Fredkin { targets, .. } if targets.contains(&wire) => "×",
            Gate::Maj(a, ..) if a == wire => "MAJ",
            Gate::Maj(_, b, c) if b == wire || c == wire => "●",
            Gate::MajInv(a, ..) if a == wire => "MAJ'",
            Gate::MajInv(_, b, c) if b == wire || c == wire => "●",
            _ => return None,
        },
        Op::Init(init) => {
            if init.wires().contains(&wire) {
                "|0>"
            } else {
                return None;
            }
        }
    };
    Some(sym.to_string())
}

/// Renders a circuit as a multi-line gate-array diagram.
///
/// Operations on disjoint wires share a column; vertical connectors mark
/// the span of each multi-wire gate (resets draw no connector — they act
/// per cell).
pub fn render(circuit: &Circuit) -> String {
    // ASAP layering over each op's full *span* (min..max wire), so gates
    // sharing a column never overlap visually — stricter than
    // Circuit::depth, which only tracks the touched wires.
    let n = circuit.n_wires();
    let mut level = vec![0usize; n];
    let mut layers: Vec<Vec<&Op>> = Vec::new();
    for op in circuit.ops() {
        let support = op.support();
        let lo = support
            .as_slice()
            .iter()
            .map(|w| w.index())
            .min()
            .unwrap_or(0);
        let hi = support
            .as_slice()
            .iter()
            .map(|w| w.index())
            .max()
            .unwrap_or(0);
        // Resets act per cell: they only block their own wires.
        let span: Vec<usize> = if matches!(op, Op::Gate(_)) {
            (lo..=hi).collect()
        } else {
            support.as_slice().iter().map(|w| w.index()).collect()
        };
        let start = span.iter().map(|&i| level[i]).max().unwrap_or(0);
        for &i in &span {
            level[i] = start + 1;
        }
        if layers.len() <= start {
            layers.resize_with(start + 1, Vec::new);
        }
        layers[start].push(op);
    }

    // Per layer: symbol (or connector) for each wire, then column width.
    let mut cells: Vec<Vec<CellKind>> = vec![Vec::with_capacity(layers.len()); n];
    for layer in &layers {
        let mut column: Vec<CellKind> = vec![CellKind::Empty; n];
        for op in layer {
            let support = op.support();
            let lo = support
                .as_slice()
                .iter()
                .map(|w| w.index())
                .min()
                .unwrap_or(0);
            let hi = support
                .as_slice()
                .iter()
                .map(|w| w.index())
                .max()
                .unwrap_or(0);
            let connected = matches!(op, Op::Gate(_));
            #[allow(clippy::needless_range_loop)] // indexes two structures
            for wire_idx in lo..=hi {
                let wire = Wire::new(wire_idx as u32);
                if let Some(s) = symbol(op, wire) {
                    column[wire_idx] = CellKind::Symbol(s);
                } else if connected && wire_idx > lo && wire_idx < hi {
                    column[wire_idx] = CellKind::Crossing;
                }
            }
        }
        for (wire_idx, cell) in column.into_iter().enumerate() {
            cells[wire_idx].push(cell);
        }
    }
    let widths: Vec<usize> = (0..layers.len())
        .map(|l| {
            (0..n)
                .map(|q| match &cells[q][l] {
                    CellKind::Symbol(s) => s.chars().count(),
                    _ => 1,
                })
                .max()
                .unwrap_or(1)
        })
        .collect();

    let label_width = format!("q{}", n.saturating_sub(1)).len();
    let mut out = String::new();
    #[allow(clippy::needless_range_loop)] // q is also the wire label
    for q in 0..n {
        let label = format!("q{q}");
        out.push_str(&format!("{label:>label_width$}: ─"));
        for (l, width) in widths.iter().enumerate() {
            let (text, filler) = match &cells[q][l] {
                CellKind::Symbol(s) => (s.clone(), '─'),
                CellKind::Crossing => ("┼".to_string(), '─'),
                CellKind::Empty => (String::new(), '─'),
            };
            let pad = width + 2 - text.chars().count();
            let left = pad / 2;
            for _ in 0..left {
                out.push(filler);
            }
            out.push_str(&text);
            for _ in 0..(pad - left) {
                out.push(filler);
            }
        }
        out.push('─');
        out.push('\n');
    }
    out
}

#[derive(Clone, PartialEq)]
enum CellKind {
    Empty,
    Symbol(String),
    Crossing,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::w;

    #[test]
    fn figure_1_renders_exactly() {
        let mut c = Circuit::new(3);
        c.cnot(w(0), w(1))
            .cnot(w(0), w(2))
            .toffoli(w(1), w(2), w(0));
        let expected = "\
q0: ──●──●──⊕──
q1: ──⊕──┼──●──
q2: ─────⊕──●──
";
        assert_eq!(render(&c), expected);
    }

    #[test]
    fn swap3_renders_three_crosses() {
        let mut c = Circuit::new(3);
        c.swap3(w(0), w(1), w(2));
        let expected = "\
q0: ──×──
q1: ──×──
q2: ──×──
";
        assert_eq!(render(&c), expected);
    }

    #[test]
    fn maj_renders_with_label_and_controls() {
        let mut c = Circuit::new(3);
        c.maj(w(0), w(1), w(2));
        let text = render(&c);
        assert!(text.contains("MAJ"));
        assert!(text.lines().nth(1).unwrap().contains('●'));
        assert!(text.lines().nth(2).unwrap().contains('●'));
    }

    #[test]
    fn init_renders_kets_without_connector() {
        let mut c = Circuit::new(4);
        c.init(&[w(0), w(2), w(3)]);
        let text = render(&c);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("|0>"));
        assert!(
            !lines[1].contains('┼'),
            "resets draw no connector: {}",
            lines[1]
        );
        assert!(lines[2].contains("|0>"));
    }

    #[test]
    fn disjoint_gates_share_a_column() {
        let mut c = Circuit::new(4);
        c.cnot(w(0), w(1)).cnot(w(2), w(3));
        let text = render(&c);
        // Depth 1 ⇒ a single narrow column: every line equally short.
        let lens: Vec<usize> = text.lines().map(|l| l.chars().count()).collect();
        assert!(lens.iter().all(|&l| l == lens[0]));
        assert_eq!(c.depth(), 1);
    }

    #[test]
    fn recovery_circuit_renders_all_nine_wires() {
        use crate::op::Op;
        let mut c = Circuit::new(9);
        c.push(Op::init(&[w(3), w(4), w(5)]))
            .push(Op::init(&[w(6), w(7), w(8)]))
            .maj_inv(w(0), w(3), w(6))
            .maj_inv(w(1), w(4), w(7))
            .maj_inv(w(2), w(5), w(8))
            .maj(w(0), w(1), w(2))
            .maj(w(3), w(4), w(5))
            .maj(w(6), w(7), w(8));
        let text = render(&c);
        assert_eq!(text.lines().count(), 9);
        assert!(text.contains("MAJ'"));
        assert!(text.contains("|0>"));
    }

    #[test]
    fn wide_labels_align() {
        let mut c = Circuit::new(11);
        c.not(w(10));
        let text = render(&c);
        assert!(text.starts_with(" q0:"));
        assert!(text.contains("q10:"));
    }
}
