//! Bit-parallel batch simulation: 64 independent trials per machine word.
//!
//! The Monte-Carlo inner loop of the reproduction executes the same circuit
//! over and over on independent random inputs. Because every gate in the
//! paper's set is a boolean function of at most three wires, sixty-four
//! trials can share one CPU word per wire: [`BatchState`] stores the state
//! *wire-major* as bit planes — bit `l` of plane word `w` of wire `i` is
//! wire `i`'s value in trial (lane) `64·w + l` — and every gate becomes a
//! handful of branch-free bitwise operations ([`kernels`]).
//!
//! Noisy execution ([`exec`]) keeps the paper's fault semantics exactly: a
//! faulting operation skips execution and replaces its support bits by
//! uniform random bits, independently per lane. Faults are sampled per
//! operation per word as a 64-lane Bernoulli mask (via an exact binomial
//! draw), so the expected RNG cost is one `f64` per operation per 64 trials
//! instead of one per operation per trial.
//!
//! ```
//! use rft_revsim::prelude::*;
//!
//! // MAJ⁻¹ encodes a repetition codeword — in all 64 lanes at once.
//! let mut c = Circuit::new(3);
//! c.maj_inv(w(0), w(1), w(2));
//!
//! let mut batch = BatchState::zeros(3, 1);
//! batch.set_word(w(0), 0, 0xDEAD_BEEF_0123_4567);
//! run_ideal_batch(&c, &mut batch);
//! assert_eq!(batch.word(w(1), 0), 0xDEAD_BEEF_0123_4567);
//! assert_eq!(batch.word(w(2), 0), 0xDEAD_BEEF_0123_4567);
//! ```

pub mod exec;
pub mod kernels;

pub use exec::{run_ideal_batch, BatchExecReport};

use crate::state::BitState;
use crate::wire::Wire;
use std::fmt;

/// The values of every wire across `64 × words_per_wire` concurrent trials,
/// stored as per-wire bit planes.
///
/// Lane `l` (a trial index) lives in bit `l % 64` of plane word `l / 64`.
#[derive(Clone, PartialEq, Eq)]
pub struct BatchState {
    n_wires: usize,
    words: usize,
    planes: Vec<u64>,
}

impl BatchState {
    /// Creates an all-zero batch of `n_wires` wires × `words` plane words
    /// (`64 × words` lanes).
    ///
    /// # Panics
    ///
    /// Panics if `words == 0`.
    pub fn zeros(n_wires: usize, words: usize) -> Self {
        assert!(words > 0, "need at least one plane word");
        BatchState {
            n_wires,
            words,
            planes: vec![0; n_wires * words],
        }
    }

    /// Builds a batch whose lanes are the given scalar states (lane `i` =
    /// `states[i]`); remaining lanes stay zero.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty, the widths disagree, or there are more
    /// than `64 × words` states for the chosen word count
    /// (`words = states.len().div_ceil(64)`).
    pub fn from_states(states: &[BitState]) -> Self {
        assert!(!states.is_empty(), "need at least one lane state");
        let n_wires = states[0].len();
        let words = states.len().div_ceil(64);
        let mut batch = BatchState::zeros(n_wires, words);
        for (lane, state) in states.iter().enumerate() {
            batch.set_lane(lane, state);
        }
        batch
    }

    /// Number of wires.
    #[inline]
    pub fn n_wires(&self) -> usize {
        self.n_wires
    }

    /// Plane words per wire.
    #[inline]
    pub fn words_per_wire(&self) -> usize {
        self.words
    }

    /// Number of lanes (concurrent trials): `64 × words_per_wire`.
    #[inline]
    pub fn lanes(&self) -> usize {
        64 * self.words
    }

    /// Index of plane word `word` of `wire` in the backing vector.
    #[inline]
    fn idx(&self, wire: Wire, word: usize) -> usize {
        debug_assert!(wire.index() < self.n_wires && word < self.words);
        wire.index() * self.words + word
    }

    /// Reads one plane word: bit `l` is wire `wire`'s value in lane
    /// `64·word + l`.
    ///
    /// # Panics
    ///
    /// Panics if `wire` or `word` is out of range.
    #[inline]
    pub fn word(&self, wire: Wire, word: usize) -> u64 {
        assert!(wire.index() < self.n_wires, "wire {wire} out of range");
        assert!(word < self.words, "plane word {word} out of range");
        self.planes[self.idx(wire, word)]
    }

    /// Writes one plane word.
    ///
    /// # Panics
    ///
    /// Panics if `wire` or `word` is out of range.
    #[inline]
    pub fn set_word(&mut self, wire: Wire, word: usize, value: u64) {
        assert!(wire.index() < self.n_wires, "wire {wire} out of range");
        assert!(word < self.words, "plane word {word} out of range");
        let i = self.idx(wire, word);
        self.planes[i] = value;
    }

    /// The full bit plane of one wire.
    #[inline]
    pub fn plane(&self, wire: Wire) -> &[u64] {
        assert!(wire.index() < self.n_wires, "wire {wire} out of range");
        &self.planes[wire.index() * self.words..(wire.index() + 1) * self.words]
    }

    /// Reads a single lane bit.
    ///
    /// # Panics
    ///
    /// Panics if `wire` or `lane` is out of range.
    #[inline]
    pub fn get(&self, wire: Wire, lane: usize) -> bool {
        assert!(lane < self.lanes(), "lane {lane} out of range");
        (self.word(wire, lane / 64) >> (lane % 64)) & 1 == 1
    }

    /// Writes a single lane bit.
    ///
    /// # Panics
    ///
    /// Panics if `wire` or `lane` is out of range.
    #[inline]
    pub fn set(&mut self, wire: Wire, lane: usize, value: bool) {
        assert!(lane < self.lanes(), "lane {lane} out of range");
        let i = self.idx(wire, lane / 64);
        let mask = 1u64 << (lane % 64);
        if value {
            self.planes[i] |= mask;
        } else {
            self.planes[i] &= !mask;
        }
    }

    /// Extracts one lane as a scalar [`BitState`].
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane(&self, lane: usize) -> BitState {
        assert!(lane < self.lanes(), "lane {lane} out of range");
        let mut state = BitState::zeros(self.n_wires);
        for i in 0..self.n_wires {
            let wire = Wire::new(i as u32);
            state.set(wire, self.get(wire, lane));
        }
        state
    }

    /// Overwrites one lane with a scalar [`BitState`].
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or the widths disagree.
    pub fn set_lane(&mut self, lane: usize, state: &BitState) {
        assert_eq!(state.len(), self.n_wires, "lane width mismatch");
        for i in 0..self.n_wires {
            let wire = Wire::new(i as u32);
            self.set(wire, lane, state.get(wire));
        }
    }

    /// Extracts the first `count` lanes as scalar states.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds [`BatchState::lanes`].
    pub fn to_states(&self, count: usize) -> Vec<BitState> {
        (0..count).map(|l| self.lane(l)).collect()
    }

    /// Sets every plane to zero.
    pub fn clear(&mut self) {
        self.planes.fill(0);
    }

    /// Total number of set bits across all planes and lanes.
    pub fn count_ones(&self) -> u64 {
        self.planes.iter().map(|w| w.count_ones() as u64).sum()
    }

    // -- internal accessors used by the kernels ---------------------------

    /// Reads a plane word without the public asserts (kernel path; the
    /// kernels validate the circuit/batch widths once per run).
    #[inline]
    pub(crate) fn w(&self, wire: Wire, word: usize) -> u64 {
        self.planes[wire.index() * self.words + word]
    }

    /// Writes a plane word without the public asserts (kernel path).
    #[inline]
    pub(crate) fn set_w(&mut self, wire: Wire, word: usize, value: u64) {
        self.planes[wire.index() * self.words + word] = value;
    }

    /// XORs into a plane word without the public asserts (kernel path).
    #[inline]
    pub(crate) fn xor_w(&mut self, wire: Wire, word: usize, value: u64) {
        self.planes[wire.index() * self.words + word] ^= value;
    }

    // -- wide-word accessors (compiled micro-op path) ----------------------
    //
    // A *wide word* is `W` consecutive 64-lane plane words of one wire,
    // loaded and stored as a `[u64; W]` value. Because the layout is
    // wire-major and contiguous (`planes[wire * words + word]`), these
    // compile to straight vector loads/stores and the element-wise logic
    // in the wide kernels autovectorizes (W ∈ {1, 2, 4}).

    /// Loads the wide word of `wire`. Requires `words_per_wire() == W`
    /// (checked once per run by the callers, debug-asserted here).
    #[inline]
    pub(crate) fn wide<const W: usize>(&self, wire: Wire) -> [u64; W] {
        debug_assert_eq!(self.words, W);
        let base = wire.index() * W;
        let mut out = [0u64; W];
        out.copy_from_slice(&self.planes[base..base + W]);
        out
    }

    /// Stores the wide word of `wire`.
    #[inline]
    pub(crate) fn set_wide<const W: usize>(&mut self, wire: Wire, value: [u64; W]) {
        debug_assert_eq!(self.words, W);
        let base = wire.index() * W;
        self.planes[base..base + W].copy_from_slice(&value);
    }

    /// XORs into the wide word of `wire`.
    #[inline]
    pub(crate) fn xor_wide<const W: usize>(&mut self, wire: Wire, value: [u64; W]) {
        debug_assert_eq!(self.words, W);
        let base = wire.index() * W;
        for (p, v) in self.planes[base..base + W].iter_mut().zip(value) {
            *p ^= v;
        }
    }

    /// Copies plane word 0 of every wire of single-word `src` into plane
    /// word `word` of `self` (the wide word loops stage per-word trial
    /// inputs this way).
    pub(crate) fn load_column(&mut self, word: usize, src: &BatchState) {
        debug_assert_eq!(src.words, 1);
        debug_assert_eq!(src.n_wires, self.n_wires);
        debug_assert!(word < self.words);
        for wire in 0..self.n_wires {
            self.planes[wire * self.words + word] = src.planes[wire];
        }
    }

    /// Copies plane word `word` of every wire of `self` into plane word 0
    /// of single-word `dst` (staging a finished column for judging).
    pub(crate) fn store_column(&self, word: usize, dst: &mut BatchState) {
        debug_assert_eq!(dst.words, 1);
        debug_assert_eq!(dst.n_wires, self.n_wires);
        debug_assert!(word < self.words);
        for wire in 0..self.n_wires {
            dst.planes[wire] = self.planes[wire * self.words + word];
        }
    }
}

impl fmt::Debug for BatchState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BatchState({} wires × {} lanes)",
            self.n_wires,
            self.lanes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::w;

    #[test]
    fn zeros_shape() {
        let b = BatchState::zeros(5, 2);
        assert_eq!(b.n_wires(), 5);
        assert_eq!(b.words_per_wire(), 2);
        assert_eq!(b.lanes(), 128);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn lane_bits_roundtrip() {
        let mut b = BatchState::zeros(3, 2);
        b.set(w(1), 70, true);
        assert!(b.get(w(1), 70));
        assert!(!b.get(w(1), 69));
        assert!(!b.get(w(0), 70));
        assert_eq!(b.word(w(1), 1), 1 << 6);
        b.set(w(1), 70, false);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn from_states_transposes() {
        let states: Vec<BitState> = (0..10u64).map(|v| BitState::from_u64(v % 8, 3)).collect();
        let b = BatchState::from_states(&states);
        assert_eq!(b.words_per_wire(), 1);
        for (lane, s) in states.iter().enumerate() {
            assert_eq!(&b.lane(lane), s, "lane {lane}");
        }
        // Unfilled lanes are zero.
        assert_eq!(b.lane(63).count_ones(), 0);
        let back = b.to_states(10);
        assert_eq!(back, states);
    }

    #[test]
    fn set_word_matches_lane_view() {
        let mut b = BatchState::zeros(2, 1);
        b.set_word(w(0), 0, 0b1010);
        assert!(!b.get(w(0), 0));
        assert!(b.get(w(0), 1));
        assert!(b.get(w(0), 3));
        assert_eq!(b.plane(w(0)), &[0b1010]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn word_out_of_range_panics() {
        let b = BatchState::zeros(2, 1);
        let _ = b.word(w(2), 0);
    }

    #[test]
    #[should_panic(expected = "lane width mismatch")]
    fn set_lane_rejects_width_mismatch() {
        let mut b = BatchState::zeros(2, 1);
        b.set_lane(0, &BitState::zeros(3));
    }
}
