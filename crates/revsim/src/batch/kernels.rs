//! Branch-free bit-plane gate kernels.
//!
//! Each kernel updates one plane word of every wire an operation touches,
//! using only bitwise logic — no per-lane branches. Truth tables follow the
//! scalar implementations in [`crate::gate::Gate::apply`] exactly; the
//! equivalence is pinned down by the lane-by-lane property tests in
//! `tests/batch_equivalence.rs`.
//!
//! The masked variants implement the paper's fault action per lane: where
//! the 64-lane `fault` mask is set, the operation does *not* execute and
//! every support bit is replaced by an independent uniform random bit
//! (`rand[k]` supplies the random plane for the k-th support wire).

use super::BatchState;
use crate::gate::Gate;
use crate::op::Op;

/// Applies `op` to plane word `word` of all lanes at once.
#[inline]
pub fn apply_word(state: &mut BatchState, op: &Op, word: usize) {
    match op {
        Op::Gate(g) => apply_gate_word(state, g, word),
        Op::Init(init) => {
            for &wire in init.wires() {
                state.set_w(wire, word, 0);
            }
        }
    }
}

/// Applies a reversible gate to plane word `word` of all lanes at once.
#[inline]
pub fn apply_gate_word(state: &mut BatchState, gate: &Gate, word: usize) {
    match *gate {
        Gate::Not(a) => {
            let va = state.w(a, word);
            state.set_w(a, word, !va);
        }
        Gate::Cnot { control, target } => {
            let c = state.w(control, word);
            state.xor_w(target, word, c);
        }
        Gate::Toffoli {
            controls: [c0, c1],
            target,
        } => {
            let c = state.w(c0, word) & state.w(c1, word);
            state.xor_w(target, word, c);
        }
        Gate::Swap(a, b) => {
            let (va, vb) = (state.w(a, word), state.w(b, word));
            state.set_w(a, word, vb);
            state.set_w(b, word, va);
        }
        Gate::Swap3(a, b, c) => {
            // swap(a,b) then swap(b,c): a←b, b←c, c←a.
            let (va, vb, vc) = (state.w(a, word), state.w(b, word), state.w(c, word));
            state.set_w(a, word, vb);
            state.set_w(b, word, vc);
            state.set_w(c, word, va);
        }
        Gate::Fredkin {
            control,
            targets: [t0, t1],
        } => {
            let d = (state.w(t0, word) ^ state.w(t1, word)) & state.w(control, word);
            state.xor_w(t0, word, d);
            state.xor_w(t1, word, d);
        }
        Gate::Maj(a, b, c) => {
            let va = state.w(a, word);
            let vb = state.w(b, word) ^ va;
            let vc = state.w(c, word) ^ va;
            state.set_w(b, word, vb);
            state.set_w(c, word, vc);
            state.set_w(a, word, va ^ (vb & vc));
        }
        Gate::MajInv(a, b, c) => {
            let vb = state.w(b, word);
            let vc = state.w(c, word);
            let va = state.w(a, word) ^ (vb & vc);
            state.set_w(a, word, va);
            state.set_w(b, word, vb ^ va);
            state.set_w(c, word, vc ^ va);
        }
        Gate::F2g(a, b, c) => {
            let va = state.w(a, word);
            state.xor_w(b, word, va);
            state.xor_w(c, word, va);
        }
        Gate::Nft(a, b, c) => {
            let (va, vb, vc) = (state.w(a, word), state.w(b, word), state.w(c, word));
            state.set_w(a, word, va ^ vb);
            state.set_w(b, word, (!vb & vc) ^ (va & !vc));
            state.set_w(c, word, (vb & vc) ^ (va & !vc));
        }
        Gate::NftInv(a, b, c) => {
            let (p, q, r) = (state.w(a, word), state.w(b, word), state.w(c, word));
            let vc = q ^ r;
            let vb = (vc & !q) | (!vc & (p ^ q));
            state.set_w(a, word, p ^ vb);
            state.set_w(b, word, vb);
            state.set_w(c, word, vc);
        }
        Gate::Ig(a, b, c, d) => {
            let (va, vb) = (state.w(a, word), state.w(b, word));
            state.set_w(b, word, va ^ vb);
            state.xor_w(c, word, va & vb);
            state.xor_w(d, word, va & !vb);
        }
        Gate::IgInv(a, b, c, d) => {
            let (p, q) = (state.w(a, word), state.w(b, word));
            state.set_w(b, word, p ^ q);
            state.xor_w(c, word, p & !q);
            state.xor_w(d, word, p & q);
        }
    }
}

/// Applies `op` to plane word `word` with per-lane faults: lanes in `fault`
/// skip the operation and take the random bits `rand[k]` on the k-th
/// support wire (support order matches [`crate::op::Op::support`]).
///
/// Driven both by the engine's sampled fault masks and by the stratified
/// estimator's precomputed conditional schedules.
#[inline]
pub fn apply_word_masked(
    state: &mut BatchState,
    op: &Op,
    word: usize,
    fault: u64,
    rand: &[u64; 4],
) {
    if fault == 0 {
        apply_word(state, op, word);
        return;
    }
    let support = op.support();
    let wires = support.as_slice();
    if fault == u64::MAX {
        // Every lane faults: the ideal kernel's output would be fully
        // discarded, so skip it and write the random planes directly.
        for (k, &wire) in wires.iter().enumerate() {
            state.set_w(wire, word, rand[k]);
        }
        return;
    }
    // Save pre-op values, run the ideal kernel, then blend per lane:
    // healthy lanes keep the kernel output, faulted lanes take the random
    // plane (the op "does not execute" there, so its old value is simply
    // discarded).
    apply_word(state, op, word);
    for (k, &wire) in wires.iter().enumerate() {
        let out = state.w(wire, word);
        state.set_w(wire, word, (out & !fault) | (rand[k] & fault));
    }
}

/// Applies `op` to the full `W`-word wide word of every wire it touches —
/// the [`crate::microop`] fast path. Requires `state.words_per_wire() ==
/// W`; the element-wise `[u64; W]` logic autovectorizes (a wide word is
/// `W` consecutive 64-lane logical words).
#[inline]
pub(crate) fn apply_wide<const W: usize>(state: &mut BatchState, op: &Op) {
    if W == 1 {
        // The single-word kernels index planes directly — slightly
        // better codegen than the degenerate `[u64; 1]` slice ops.
        apply_word(state, op, 0);
        return;
    }
    #[inline]
    fn xor<const W: usize>(mut a: [u64; W], b: [u64; W]) -> [u64; W] {
        for (x, y) in a.iter_mut().zip(b) {
            *x ^= y;
        }
        a
    }
    #[inline]
    fn and<const W: usize>(mut a: [u64; W], b: [u64; W]) -> [u64; W] {
        for (x, y) in a.iter_mut().zip(b) {
            *x &= y;
        }
        a
    }
    let gate = match op {
        Op::Gate(g) => g,
        Op::Init(init) => {
            for &wire in init.wires() {
                state.set_wide(wire, [0u64; W]);
            }
            return;
        }
    };
    match *gate {
        Gate::Not(a) => {
            let mut va = state.wide::<W>(a);
            for x in va.iter_mut() {
                *x = !*x;
            }
            state.set_wide(a, va);
        }
        Gate::Cnot { control, target } => {
            let c = state.wide::<W>(control);
            state.xor_wide(target, c);
        }
        Gate::Toffoli {
            controls: [c0, c1],
            target,
        } => {
            let c = and(state.wide::<W>(c0), state.wide::<W>(c1));
            state.xor_wide(target, c);
        }
        Gate::Swap(a, b) => {
            let (va, vb) = (state.wide::<W>(a), state.wide::<W>(b));
            state.set_wide(a, vb);
            state.set_wide(b, va);
        }
        Gate::Swap3(a, b, c) => {
            let (va, vb, vc) = (state.wide::<W>(a), state.wide::<W>(b), state.wide::<W>(c));
            state.set_wide(a, vb);
            state.set_wide(b, vc);
            state.set_wide(c, va);
        }
        Gate::Fredkin {
            control,
            targets: [t0, t1],
        } => {
            let d = and(
                xor(state.wide::<W>(t0), state.wide::<W>(t1)),
                state.wide::<W>(control),
            );
            state.xor_wide(t0, d);
            state.xor_wide(t1, d);
        }
        Gate::Maj(a, b, c) => {
            let va = state.wide::<W>(a);
            let vb = xor(state.wide::<W>(b), va);
            let vc = xor(state.wide::<W>(c), va);
            state.set_wide(b, vb);
            state.set_wide(c, vc);
            state.set_wide(a, xor(va, and(vb, vc)));
        }
        Gate::MajInv(a, b, c) => {
            let vb = state.wide::<W>(b);
            let vc = state.wide::<W>(c);
            let va = xor(state.wide::<W>(a), and(vb, vc));
            state.set_wide(a, va);
            state.set_wide(b, xor(vb, va));
            state.set_wide(c, xor(vc, va));
        }
        Gate::F2g(a, b, c) => {
            let va = state.wide::<W>(a);
            state.xor_wide(b, va);
            state.xor_wide(c, va);
        }
        Gate::Nft(a, b, c) => {
            let (va, vb, vc) = (state.wide::<W>(a), state.wide::<W>(b), state.wide::<W>(c));
            let mut nb = va;
            let mut nc = vb;
            for k in 0..W {
                nb[k] = (!vb[k] & vc[k]) ^ (va[k] & !vc[k]);
                nc[k] = (vb[k] & vc[k]) ^ (va[k] & !vc[k]);
            }
            state.set_wide(a, xor(va, vb));
            state.set_wide(b, nb);
            state.set_wide(c, nc);
        }
        Gate::NftInv(a, b, c) => {
            let (p, q, r) = (state.wide::<W>(a), state.wide::<W>(b), state.wide::<W>(c));
            let mut na = p;
            let mut nb = p;
            let nc = xor(q, r);
            for k in 0..W {
                nb[k] = (nc[k] & !q[k]) | (!nc[k] & (p[k] ^ q[k]));
                na[k] = p[k] ^ nb[k];
            }
            state.set_wide(a, na);
            state.set_wide(b, nb);
            state.set_wide(c, nc);
        }
        Gate::Ig(a, b, c, d) => {
            let (va, vb) = (state.wide::<W>(a), state.wide::<W>(b));
            let mut rc = va;
            let mut rd = va;
            for k in 0..W {
                rc[k] = va[k] & vb[k];
                rd[k] = va[k] & !vb[k];
            }
            state.set_wide(b, xor(va, vb));
            state.xor_wide(c, rc);
            state.xor_wide(d, rd);
        }
        Gate::IgInv(a, b, c, d) => {
            let (p, q) = (state.wide::<W>(a), state.wide::<W>(b));
            let mut rc = p;
            let mut rd = p;
            for k in 0..W {
                rc[k] = p[k] & !q[k];
                rd[k] = p[k] & q[k];
            }
            state.set_wide(b, xor(p, q));
            state.xor_wide(c, rc);
            state.xor_wide(d, rd);
        }
    }
}

/// Blends the fault action of `op` into plane word `word`, assuming the
/// *ideal* kernel has already been applied there: lanes in `fault` take
/// the random bits `rand[k]` on the k-th support wire, other lanes keep
/// the kernel output. Exactly [`apply_word_masked`]'s lane action,
/// factored out so the wide runners can apply one vectorized ideal
/// kernel across all words and pay the blend only on faulted words.
#[inline]
pub(crate) fn blend_faulted(
    state: &mut BatchState,
    op: &Op,
    word: usize,
    fault: u64,
    rand: &[u64; 4],
) {
    let support = op.support();
    for (k, &wire) in support.as_slice().iter().enumerate() {
        let out = state.w(wire, word);
        state.set_w(wire, word, (out & !fault) | (rand[k] & fault));
    }
}

/// Applies `op` across every plane word (convenience for full-batch use).
#[inline]
pub fn apply(state: &mut BatchState, op: &Op) {
    for word in 0..state.words_per_wire() {
        apply_word(state, op, word);
    }
}

/// Lane-wise three-way majority vote: bit `l` of the result is the
/// majority of bit `l` of `a`, `b` and `c` — the bitwise form of the
/// repetition-code decoder used by every batch decode path.
#[inline]
pub const fn majority3(a: u64, b: u64, c: u64) -> u64 {
    (a & b) | (a & c) | (b & c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::BitState;
    use crate::wire::w;

    /// Exhaustive lane-by-lane comparison of one gate against the scalar
    /// implementation, over all inputs of an `n`-bit register packed into
    /// the first `2^n` lanes.
    fn check_gate(gate: Gate, n: usize) {
        let states: Vec<BitState> = (0..(1u64 << n)).map(|v| BitState::from_u64(v, n)).collect();
        let mut batch = BatchState::from_states(&states);
        apply(&mut batch, &Op::Gate(gate));
        for (lane, state) in states.iter().enumerate() {
            let mut expect = state.clone();
            gate.apply(&mut expect);
            assert_eq!(batch.lane(lane), expect, "{gate} lane {lane}");
        }
    }

    #[test]
    fn kernels_match_scalar_gates_exhaustively() {
        check_gate(Gate::Not(w(0)), 1);
        check_gate(
            Gate::Cnot {
                control: w(0),
                target: w(1),
            },
            2,
        );
        check_gate(
            Gate::Cnot {
                control: w(1),
                target: w(0),
            },
            2,
        );
        check_gate(
            Gate::Toffoli {
                controls: [w(0), w(1)],
                target: w(2),
            },
            3,
        );
        check_gate(Gate::Swap(w(0), w(1)), 2);
        check_gate(Gate::Swap3(w(0), w(1), w(2)), 3);
        check_gate(Gate::Swap3(w(2), w(0), w(1)), 3);
        check_gate(
            Gate::Fredkin {
                control: w(0),
                targets: [w(1), w(2)],
            },
            3,
        );
        check_gate(Gate::Maj(w(0), w(1), w(2)), 3);
        check_gate(Gate::Maj(w(2), w(0), w(1)), 3);
        check_gate(Gate::MajInv(w(0), w(1), w(2)), 3);
        check_gate(Gate::MajInv(w(1), w(2), w(0)), 3);
        check_gate(Gate::F2g(w(0), w(1), w(2)), 3);
        check_gate(Gate::F2g(w(1), w(2), w(0)), 3);
        check_gate(Gate::Nft(w(0), w(1), w(2)), 3);
        check_gate(Gate::Nft(w(2), w(0), w(1)), 3);
        check_gate(Gate::NftInv(w(0), w(1), w(2)), 3);
        check_gate(Gate::NftInv(w(2), w(0), w(1)), 3);
        check_gate(Gate::Ig(w(0), w(1), w(2), w(3)), 4);
        check_gate(Gate::Ig(w(3), w(1), w(0), w(2)), 4);
        check_gate(Gate::IgInv(w(0), w(1), w(2), w(3)), 4);
        check_gate(Gate::IgInv(w(3), w(1), w(0), w(2)), 4);
    }

    #[test]
    fn init_zeroes_planes() {
        let mut batch = BatchState::zeros(3, 1);
        batch.set_word(w(0), 0, u64::MAX);
        batch.set_word(w(1), 0, 0xF0F0);
        batch.set_word(w(2), 0, 0x1234);
        apply(&mut batch, &Op::init(&[w(0), w(2)]));
        assert_eq!(batch.word(w(0), 0), 0);
        assert_eq!(batch.word(w(1), 0), 0xF0F0);
        assert_eq!(batch.word(w(2), 0), 0);
    }

    #[test]
    fn masked_apply_blends_random_lanes() {
        // Lane 0 healthy, lane 1 faulted.
        let mut batch = BatchState::zeros(2, 1);
        batch.set_word(w(0), 0, 0b11); // control on in both lanes
        let op = Op::Gate(Gate::Cnot {
            control: w(0),
            target: w(1),
        });
        let rand = [0b00, 0b00, 0b00, 0b00]; // fault writes zeros
        apply_word_masked(&mut batch, &op, 0, 0b10, &rand);
        // Lane 0: CNOT fired (target 1). Lane 1: fault replaced both
        // support bits with the random bits (0).
        assert!(batch.get(w(1), 0));
        assert!(!batch.get(w(0), 1));
        assert!(!batch.get(w(1), 1));
        assert!(batch.get(w(0), 0));
    }

    #[test]
    fn masked_apply_with_zero_mask_is_ideal() {
        let mut a = BatchState::zeros(3, 1);
        let mut b = BatchState::zeros(3, 1);
        a.set_word(w(0), 0, 0xABCD);
        b.set_word(w(0), 0, 0xABCD);
        let op = Op::Gate(Gate::Maj(w(0), w(1), w(2)));
        apply_word(&mut a, &op, 0);
        apply_word_masked(&mut b, &op, 0, 0, &[u64::MAX; 4]);
        assert_eq!(a, b);
    }
}
