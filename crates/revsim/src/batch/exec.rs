//! Batch executors: ideal bit-parallel runs, plus deprecated shims for
//! the noisy free-function API that predates [`crate::engine`].
//!
//! Fault semantics match the scalar executors lane-for-lane: every
//! operation fails independently with its [`NoiseModel`] probability in
//! each lane; a failing operation skips execution and replaces its support
//! bits with independent uniform random bits. The implementation lives in
//! [`crate::engine`] — compile an [`Engine`] and
//! call [`Engine::run_batch`](crate::engine::Engine::run_batch) instead of
//! the deprecated functions here.

use super::BatchState;
use crate::circuit::Circuit;
use crate::engine::{self, Engine, FaultTable};
use crate::noise::NoiseModel;
use rand::Rng;

/// What happened during one noisy batch run (sampled faults via
/// [`Engine::run_batch`] or a precomputed conditional schedule via
/// [`Backend::run_masked`](crate::engine::Backend::run_masked)).
///
/// The `faulted_lanes` masks drive two elisions in the engine's hot
/// loops: elision-eligible trials judge only faulted lanes, and the
/// stratified rare-event estimator skips fault-free words entirely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchExecReport {
    /// Total `(operation, lane)` fault events across the whole run.
    pub fault_events: u64,
    /// Per plane word: mask of lanes that experienced at least one fault.
    pub faulted_lanes: Vec<u64>,
}

impl BatchExecReport {
    /// Lanes (within plane word `word`) that executed the entire circuit
    /// fault-free.
    #[must_use]
    pub fn clean_lanes(&self, word: usize) -> u64 {
        !self.faulted_lanes[word]
    }
}

/// Runs `circuit` on every lane of `batch` without noise.
///
/// # Panics
///
/// Panics if the batch width does not match the circuit width.
pub fn run_ideal_batch(circuit: &Circuit, batch: &mut BatchState) {
    assert_eq!(
        batch.n_wires(),
        circuit.n_wires(),
        "batch width must match circuit width"
    );
    for op in circuit.ops() {
        for word in 0..batch.words_per_wire() {
            super::kernels::apply_word(batch, op, word);
        }
    }
}

/// A [`NoiseModel`] pre-compiled against one circuit for batch execution.
///
/// Subsumed by [`Engine`], which owns the same fault table *and* the
/// circuit, so it cannot go stale against the wrong op stream.
#[deprecated(
    since = "0.2.0",
    note = "use rft_revsim::engine::Engine::compile, which owns the fault table"
)]
#[derive(Debug, Clone)]
pub struct CompiledNoise {
    pub(crate) table: FaultTable,
}

#[allow(deprecated)]
impl CompiledNoise {
    /// Compiles `noise` for `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if the model reports a probability outside `[0, 1]`.
    pub fn compile<N: NoiseModel + ?Sized>(circuit: &Circuit, noise: &N) -> Self {
        CompiledNoise {
            table: FaultTable::compile(circuit, noise),
        }
    }

    /// Number of operations this noise was compiled for.
    pub fn n_ops(&self) -> usize {
        self.table.n_ops()
    }
}

/// Runs `circuit` on every lane of `batch` under pre-compiled noise.
///
/// # Panics
///
/// Panics if the batch width, circuit width or compiled-noise op count
/// disagree.
#[deprecated(
    since = "0.2.0",
    note = "use rft_revsim::engine::Engine::{compile, run_batch}"
)]
#[allow(deprecated)]
pub fn run_noisy_batch_with<R>(
    circuit: &Circuit,
    batch: &mut BatchState,
    noise: &CompiledNoise,
    rng: &mut R,
) -> BatchExecReport
where
    R: Rng + ?Sized,
{
    engine::run_batch_words(circuit, &noise.table, batch, rng)
}

/// Runs `circuit` on every lane of `batch`, failing each operation
/// independently per `noise` (compiles the noise on the fly).
///
/// # Panics
///
/// Panics if the batch width does not match the circuit width.
#[deprecated(
    since = "0.2.0",
    note = "use rft_revsim::engine::Engine::{compile, run_batch}"
)]
pub fn run_noisy_batch<N, R>(
    circuit: &Circuit,
    batch: &mut BatchState,
    noise: &N,
    rng: &mut R,
) -> BatchExecReport
where
    N: NoiseModel + ?Sized,
    R: Rng + ?Sized,
{
    Engine::compile(circuit, noise).run_batch(batch, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::{NoNoise, UniformNoise};
    use crate::state::BitState;
    use crate::wire::w;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn recovery_like_circuit() -> Circuit {
        let mut c = Circuit::new(9);
        c.init(&[w(3), w(4), w(5)])
            .init(&[w(6), w(7), w(8)])
            .maj_inv(w(0), w(3), w(6))
            .maj_inv(w(1), w(4), w(7))
            .maj_inv(w(2), w(5), w(8))
            .maj(w(0), w(1), w(2))
            .maj(w(3), w(4), w(5))
            .maj(w(6), w(7), w(8));
        c
    }

    #[test]
    fn ideal_batch_matches_scalar_lanes() {
        let c = recovery_like_circuit();
        let states: Vec<BitState> = (0..64u64).map(|v| BitState::from_u64(v % 8, 9)).collect();
        let mut batch = BatchState::from_states(&states);
        run_ideal_batch(&c, &mut batch);
        for (lane, state) in states.iter().enumerate() {
            let mut expect = state.clone();
            c.run(&mut expect);
            assert_eq!(batch.lane(lane), expect, "lane {lane}");
        }
    }

    #[test]
    fn clean_lanes_match_the_ideal_run() {
        let c = recovery_like_circuit();
        let states: Vec<BitState> = (0..64u64)
            .map(|v| BitState::from_u64((v * 3) % 8, 9))
            .collect();
        let mut noisy = BatchState::from_states(&states);
        let mut ideal = BatchState::from_states(&states);
        run_ideal_batch(&c, &mut ideal);
        let mut rng = SmallRng::seed_from_u64(3);
        let engine = Engine::compile(&c, &UniformNoise::new(0.05));
        let report = engine.run_batch(&mut noisy, &mut rng);
        let clean = report.clean_lanes(0);
        assert_ne!(clean, 0, "some lane should be fault-free at g=0.05");
        for lane in 0..64 {
            if (clean >> lane) & 1 == 1 {
                assert_eq!(noisy.lane(lane), ideal.lane(lane), "clean lane {lane}");
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_the_engine() {
        // The legacy free functions and the engine must share one
        // implementation: identical streams, identical results.
        let c = recovery_like_circuit();
        let noise = UniformNoise::new(0.1);
        let engine = Engine::compile(&c, &noise);
        let compiled = CompiledNoise::compile(&c, &noise);
        assert_eq!(compiled.n_ops(), c.len());

        let mut via_engine = BatchState::zeros(9, 2);
        let mut via_shim = BatchState::zeros(9, 2);
        let mut via_oneshot = BatchState::zeros(9, 2);
        let mut rng_a = SmallRng::seed_from_u64(11);
        let mut rng_b = SmallRng::seed_from_u64(11);
        let mut rng_c = SmallRng::seed_from_u64(11);
        let a = engine.run_batch(&mut via_engine, &mut rng_a);
        let b = run_noisy_batch_with(&c, &mut via_shim, &compiled, &mut rng_b);
        let d = run_noisy_batch(&c, &mut via_oneshot, &noise, &mut rng_c);
        assert_eq!(a, b);
        assert_eq!(a, d);
        assert_eq!(via_engine, via_shim);
        assert_eq!(via_engine, via_oneshot);
    }

    #[test]
    #[should_panic(expected = "batch width")]
    fn width_mismatch_panics() {
        let c = Circuit::new(3);
        let mut batch = BatchState::zeros(4, 1);
        run_ideal_batch(&c, &mut batch);
    }

    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "compiled noise")]
    fn stale_compiled_noise_panics() {
        let mut c = Circuit::new(2);
        c.not(w(0));
        let compiled = CompiledNoise::compile(&c, &NoNoise);
        c.not(w(1));
        let mut batch = BatchState::zeros(2, 1);
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = run_noisy_batch_with(&c, &mut batch, &compiled, &mut rng);
    }
}
