//! Batch executors: ideal and noisy bit-parallel runs.
//!
//! Fault semantics match [`crate::exec::run_noisy`] lane-for-lane: every
//! operation fails independently with its [`NoiseModel`] probability in
//! each lane; a failing operation skips execution and replaces its support
//! bits with independent uniform random bits.
//!
//! Fault masks are sampled exactly: the number of faulting lanes in a
//! 64-lane word is drawn from `Binomial(64, p)` via the precomputed CDF in
//! [`CompiledNoise`], and the faulting lane positions are then chosen
//! uniformly — which together reproduce 64 i.i.d. Bernoulli(p) draws at the
//! cost of one `f64` sample in the (overwhelmingly common) zero-fault case.

use super::kernels;
use super::BatchState;
use crate::circuit::Circuit;
use crate::noise::NoiseModel;
use rand::Rng;

/// What happened during one noisy batch run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchExecReport {
    /// Total `(operation, lane)` fault events across the whole run.
    pub fault_events: u64,
    /// Per plane word: mask of lanes that experienced at least one fault.
    pub faulted_lanes: Vec<u64>,
}

impl BatchExecReport {
    /// Lanes (within plane word `word`) that executed the entire circuit
    /// fault-free.
    pub fn clean_lanes(&self, word: usize) -> u64 {
        !self.faulted_lanes[word]
    }
}

/// Runs `circuit` on every lane of `batch` without noise.
///
/// # Panics
///
/// Panics if the batch width does not match the circuit width.
pub fn run_ideal_batch(circuit: &Circuit, batch: &mut BatchState) {
    assert_eq!(
        batch.n_wires(),
        circuit.n_wires(),
        "batch width must match circuit width"
    );
    for op in circuit.ops() {
        for word in 0..batch.words_per_wire() {
            kernels::apply_word(batch, op, word);
        }
    }
}

/// Per-operation fault-mask sampler: the CDF of `Binomial(64, p)`.
#[derive(Debug, Clone)]
struct MaskSampler {
    /// `cdf[k]` = P(number of faulting lanes ≤ k); `cdf[64] = 1`.
    cdf: Vec<f64>,
}

impl MaskSampler {
    fn new(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "fault probability must be in [0,1], got {p}"
        );
        let mut cdf = vec![1.0; 65];
        if p == 0.0 {
            return MaskSampler { cdf };
        }
        if p == 1.0 {
            for c in cdf.iter_mut().take(64) {
                *c = 0.0;
            }
            return MaskSampler { cdf };
        }
        let ratio = p / (1.0 - p);
        let mut pmf = (1.0 - p).powi(64);
        let mut acc = 0.0;
        for (k, c) in cdf.iter_mut().enumerate().take(64) {
            acc += pmf;
            *c = acc.min(1.0);
            pmf *= ratio * (64 - k) as f64 / (k + 1) as f64;
        }
        MaskSampler { cdf }
    }

    /// Draws a 64-lane fault mask distributed as 64 i.i.d. Bernoulli(p)
    /// bits.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        // Fast path: no faults in this word.
        if u < self.cdf[0] {
            return 0;
        }
        let mut k = 1usize;
        while k < 64 && u >= self.cdf[k] {
            k += 1;
        }
        // Choose k distinct lane positions uniformly. For k > 32 place the
        // complement instead (fewer rejections).
        let (count, invert) = if k <= 32 { (k, false) } else { (64 - k, true) };
        let mut mask = 0u64;
        let mut placed = 0usize;
        while placed < count {
            let bit = 1u64 << rng.random_range(0..64u32);
            if mask & bit == 0 {
                mask |= bit;
                placed += 1;
            }
        }
        if invert {
            !mask
        } else {
            mask
        }
    }
}

/// A [`NoiseModel`] pre-compiled against one circuit for batch execution:
/// one binomial-CDF sampler per distinct per-op fault probability.
///
/// Compile once and reuse across runs (it is cheap to build but sits on the
/// hot path of every word).
#[derive(Debug, Clone)]
pub struct CompiledNoise {
    /// Sampler index per operation (`usize::MAX` = never faults).
    per_op: Vec<usize>,
    samplers: Vec<MaskSampler>,
}

/// Marker for operations with zero fault probability.
const NEVER: usize = usize::MAX;

impl CompiledNoise {
    /// Compiles `noise` for `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if the model reports a probability outside `[0, 1]`.
    pub fn compile<N: NoiseModel + ?Sized>(circuit: &Circuit, noise: &N) -> Self {
        let mut rates: Vec<u64> = Vec::new();
        let mut samplers = Vec::new();
        let per_op = circuit
            .ops()
            .iter()
            .map(|op| {
                let p = noise.fault_probability(op);
                if p <= 0.0 {
                    return NEVER;
                }
                let bits = p.to_bits();
                match rates.iter().position(|&r| r == bits) {
                    Some(i) => i,
                    None => {
                        rates.push(bits);
                        samplers.push(MaskSampler::new(p));
                        samplers.len() - 1
                    }
                }
            })
            .collect();
        CompiledNoise { per_op, samplers }
    }

    /// Number of operations this noise was compiled for.
    pub fn n_ops(&self) -> usize {
        self.per_op.len()
    }
}

/// Runs `circuit` on every lane of `batch` under pre-compiled noise.
///
/// Statistically identical, lane for lane, to running
/// [`crate::exec::run_noisy`] on each lane with independent RNGs (the
/// actual random streams differ).
///
/// # Panics
///
/// Panics if the batch width, circuit width or compiled-noise op count
/// disagree.
pub fn run_noisy_batch_with<R>(
    circuit: &Circuit,
    batch: &mut BatchState,
    noise: &CompiledNoise,
    rng: &mut R,
) -> BatchExecReport
where
    R: Rng + ?Sized,
{
    assert_eq!(
        batch.n_wires(),
        circuit.n_wires(),
        "batch width must match circuit width"
    );
    assert_eq!(
        noise.n_ops(),
        circuit.len(),
        "compiled noise does not match this circuit"
    );
    let words = batch.words_per_wire();
    let mut report = BatchExecReport {
        fault_events: 0,
        faulted_lanes: vec![0; words],
    };
    for (op, &sampler_idx) in circuit.ops().iter().zip(&noise.per_op) {
        if sampler_idx == NEVER {
            for word in 0..words {
                kernels::apply_word(batch, op, word);
            }
            continue;
        }
        let sampler = &noise.samplers[sampler_idx];
        for word in 0..words {
            let fault = sampler.sample(rng);
            if fault == 0 {
                kernels::apply_word(batch, op, word);
            } else {
                let mut rand_planes = [0u64; 3];
                for plane in rand_planes.iter_mut().take(op.arity()) {
                    *plane = rng.random::<u64>();
                }
                kernels::apply_word_masked(batch, op, word, fault, &rand_planes);
                report.fault_events += fault.count_ones() as u64;
                report.faulted_lanes[word] |= fault;
            }
        }
    }
    report
}

/// Runs `circuit` on every lane of `batch`, failing each operation
/// independently per `noise` (compiles the noise on the fly; prefer
/// [`CompiledNoise`] + [`run_noisy_batch_with`] in loops).
///
/// # Panics
///
/// Panics if the batch width does not match the circuit width.
pub fn run_noisy_batch<N, R>(
    circuit: &Circuit,
    batch: &mut BatchState,
    noise: &N,
    rng: &mut R,
) -> BatchExecReport
where
    N: NoiseModel + ?Sized,
    R: Rng + ?Sized,
{
    let compiled = CompiledNoise::compile(circuit, noise);
    run_noisy_batch_with(circuit, batch, &compiled, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::{NoNoise, SplitNoise, UniformNoise};
    use crate::state::BitState;
    use crate::wire::w;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn recovery_like_circuit() -> Circuit {
        let mut c = Circuit::new(9);
        c.init(&[w(3), w(4), w(5)])
            .init(&[w(6), w(7), w(8)])
            .maj_inv(w(0), w(3), w(6))
            .maj_inv(w(1), w(4), w(7))
            .maj_inv(w(2), w(5), w(8))
            .maj(w(0), w(1), w(2))
            .maj(w(3), w(4), w(5))
            .maj(w(6), w(7), w(8));
        c
    }

    #[test]
    fn ideal_batch_matches_scalar_lanes() {
        let c = recovery_like_circuit();
        let states: Vec<BitState> = (0..64u64).map(|v| BitState::from_u64(v % 8, 9)).collect();
        let mut batch = BatchState::from_states(&states);
        run_ideal_batch(&c, &mut batch);
        for (lane, state) in states.iter().enumerate() {
            let mut expect = state.clone();
            c.run(&mut expect);
            assert_eq!(batch.lane(lane), expect, "lane {lane}");
        }
    }

    #[test]
    fn no_noise_reports_no_faults() {
        let c = recovery_like_circuit();
        let mut batch = BatchState::zeros(9, 2);
        let mut rng = SmallRng::seed_from_u64(0);
        let report = run_noisy_batch(&c, &mut batch, &NoNoise, &mut rng);
        assert_eq!(report.fault_events, 0);
        assert_eq!(report.faulted_lanes, vec![0, 0]);
        assert_eq!(batch.count_ones(), 0);
    }

    #[test]
    fn always_fail_faults_every_op_in_every_lane() {
        let c = recovery_like_circuit();
        let mut batch = BatchState::zeros(9, 1);
        let mut rng = SmallRng::seed_from_u64(1);
        let report = run_noisy_batch(&c, &mut batch, &UniformNoise::new(1.0), &mut rng);
        assert_eq!(report.fault_events, (c.len() * 64) as u64);
        assert_eq!(report.faulted_lanes, vec![u64::MAX]);
    }

    #[test]
    fn split_noise_spares_inits() {
        let c = recovery_like_circuit();
        let mut batch = BatchState::zeros(9, 1);
        let mut rng = SmallRng::seed_from_u64(2);
        let report = run_noisy_batch(&c, &mut batch, &SplitNoise::new(1.0, 0.0), &mut rng);
        // 6 gates fail in all 64 lanes; the 2 inits never fail.
        assert_eq!(report.fault_events, 6 * 64);
    }

    #[test]
    fn clean_lanes_match_the_ideal_run() {
        let c = recovery_like_circuit();
        let states: Vec<BitState> = (0..64u64)
            .map(|v| BitState::from_u64((v * 3) % 8, 9))
            .collect();
        let mut noisy = BatchState::from_states(&states);
        let mut ideal = BatchState::from_states(&states);
        run_ideal_batch(&c, &mut ideal);
        let mut rng = SmallRng::seed_from_u64(3);
        let report = run_noisy_batch(&c, &mut noisy, &UniformNoise::new(0.05), &mut rng);
        let clean = report.clean_lanes(0);
        assert_ne!(clean, 0, "some lane should be fault-free at g=0.05");
        for lane in 0..64 {
            if (clean >> lane) & 1 == 1 {
                assert_eq!(noisy.lane(lane), ideal.lane(lane), "clean lane {lane}");
            }
        }
    }

    #[test]
    fn fault_rate_matches_noise_model() {
        // Mean fault count over many words ≈ ops × lanes × g, within 5σ.
        let c = recovery_like_circuit();
        let g = 0.03;
        let compiled = CompiledNoise::compile(&c, &UniformNoise::new(g));
        let mut rng = SmallRng::seed_from_u64(42);
        let words = 200usize;
        let mut events = 0u64;
        for _ in 0..words {
            let mut batch = BatchState::zeros(9, 1);
            events += run_noisy_batch_with(&c, &mut batch, &compiled, &mut rng).fault_events;
        }
        let n = (c.len() * 64 * words) as f64;
        let expected = g * n;
        let sd = (n * g * (1.0 - g)).sqrt();
        assert!(
            ((events as f64) - expected).abs() < 5.0 * sd,
            "events {events} vs expected {expected} ± {sd}"
        );
    }

    #[test]
    fn mask_sampler_is_binomial() {
        // Lane-occupancy check: each of the 64 lanes faults with the same
        // marginal probability.
        let sampler = MaskSampler::new(0.2);
        let mut rng = SmallRng::seed_from_u64(9);
        let draws = 20_000usize;
        let mut per_lane = [0u32; 64];
        for _ in 0..draws {
            let mask = sampler.sample(&mut rng);
            for (lane, count) in per_lane.iter_mut().enumerate() {
                *count += ((mask >> lane) & 1) as u32;
            }
        }
        let expected = 0.2 * draws as f64;
        let sd = (draws as f64 * 0.2 * 0.8).sqrt();
        for (lane, &count) in per_lane.iter().enumerate() {
            assert!(
                ((count as f64) - expected).abs() < 6.0 * sd,
                "lane {lane}: {count} vs {expected} ± {sd}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "batch width")]
    fn width_mismatch_panics() {
        let c = Circuit::new(3);
        let mut batch = BatchState::zeros(4, 1);
        run_ideal_batch(&c, &mut batch);
    }

    #[test]
    #[should_panic(expected = "compiled noise")]
    fn stale_compiled_noise_panics() {
        let mut c = Circuit::new(2);
        c.not(w(0));
        let compiled = CompiledNoise::compile(&c, &NoNoise);
        c.not(w(1));
        let mut batch = BatchState::zeros(2, 1);
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = run_noisy_batch_with(&c, &mut batch, &compiled, &mut rng);
    }
}
