//! Batch executors: ideal bit-parallel runs and the [`BatchExecReport`]
//! shared with the engine's noisy word loops.
//!
//! Fault semantics match the scalar executors lane-for-lane: every
//! operation fails independently with its
//! [`NoiseModel`](crate::noise::NoiseModel) probability in each lane; a
//! failing operation skips execution and replaces its support bits with
//! independent uniform random bits. The noisy implementation lives in
//! [`crate::engine`] — compile an [`Engine`](crate::engine::Engine) and
//! call [`Engine::run_batch`](crate::engine::Engine::run_batch).

use super::BatchState;
use crate::circuit::Circuit;

/// What happened during one noisy batch run (sampled faults via
/// [`Engine::run_batch`](crate::engine::Engine::run_batch) or a
/// precomputed conditional schedule via
/// [`Backend::run_masked`](crate::engine::Backend::run_masked)).
///
/// The `faulted_lanes` masks drive two elisions in the engine's hot
/// loops: elision-eligible trials judge only faulted lanes, and the
/// stratified rare-event estimator skips fault-free words entirely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchExecReport {
    /// Total `(operation, lane)` fault events across the whole run.
    pub fault_events: u64,
    /// Per plane word: mask of lanes that experienced at least one fault.
    pub faulted_lanes: Vec<u64>,
}

impl BatchExecReport {
    /// Lanes (within plane word `word`) that executed the entire circuit
    /// fault-free.
    #[must_use]
    pub fn clean_lanes(&self, word: usize) -> u64 {
        !self.faulted_lanes[word]
    }
}

/// Runs `circuit` on every lane of `batch` without noise.
///
/// # Panics
///
/// Panics if the batch width does not match the circuit width.
pub fn run_ideal_batch(circuit: &Circuit, batch: &mut BatchState) {
    assert_eq!(
        batch.n_wires(),
        circuit.n_wires(),
        "batch width must match circuit width"
    );
    for op in circuit.ops() {
        for word in 0..batch.words_per_wire() {
            super::kernels::apply_word(batch, op, word);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::noise::UniformNoise;
    use crate::state::BitState;
    use crate::wire::w;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn recovery_like_circuit() -> Circuit {
        let mut c = Circuit::new(9);
        c.init(&[w(3), w(4), w(5)])
            .init(&[w(6), w(7), w(8)])
            .maj_inv(w(0), w(3), w(6))
            .maj_inv(w(1), w(4), w(7))
            .maj_inv(w(2), w(5), w(8))
            .maj(w(0), w(1), w(2))
            .maj(w(3), w(4), w(5))
            .maj(w(6), w(7), w(8));
        c
    }

    #[test]
    fn ideal_batch_matches_scalar_lanes() {
        let c = recovery_like_circuit();
        let states: Vec<BitState> = (0..64u64).map(|v| BitState::from_u64(v % 8, 9)).collect();
        let mut batch = BatchState::from_states(&states);
        run_ideal_batch(&c, &mut batch);
        for (lane, state) in states.iter().enumerate() {
            let mut expect = state.clone();
            c.run(&mut expect);
            assert_eq!(batch.lane(lane), expect, "lane {lane}");
        }
    }

    #[test]
    fn clean_lanes_match_the_ideal_run() {
        let c = recovery_like_circuit();
        let states: Vec<BitState> = (0..64u64)
            .map(|v| BitState::from_u64((v * 3) % 8, 9))
            .collect();
        let mut noisy = BatchState::from_states(&states);
        let mut ideal = BatchState::from_states(&states);
        run_ideal_batch(&c, &mut ideal);
        let mut rng = SmallRng::seed_from_u64(3);
        let engine = Engine::compile(&c, &UniformNoise::new(0.05));
        let report = engine.run_batch(&mut noisy, &mut rng);
        let clean = report.clean_lanes(0);
        assert_ne!(clean, 0, "some lane should be fault-free at g=0.05");
        for lane in 0..64 {
            if (clean >> lane) & 1 == 1 {
                assert_eq!(noisy.lane(lane), ideal.lane(lane), "clean lane {lane}");
            }
        }
    }

    #[test]
    fn engine_batch_run_is_seed_deterministic() {
        // One shared implementation behind the engine: identical seeds,
        // identical streams, identical results.
        let c = recovery_like_circuit();
        let noise = UniformNoise::new(0.1);
        let engine = Engine::compile(&c, &noise);
        let mut batch_a = BatchState::zeros(9, 2);
        let mut batch_b = BatchState::zeros(9, 2);
        let mut rng_a = SmallRng::seed_from_u64(11);
        let mut rng_b = SmallRng::seed_from_u64(11);
        let a = engine.run_batch(&mut batch_a, &mut rng_a);
        let b = engine.run_batch(&mut batch_b, &mut rng_b);
        assert_eq!(a, b);
        assert_eq!(batch_a, batch_b);
        assert!(a.fault_events > 0, "g = 0.1 over 2 words should fault");
    }

    #[test]
    #[should_panic(expected = "batch width")]
    fn width_mismatch_panics() {
        let c = Circuit::new(3);
        let mut batch = BatchState::zeros(4, 1);
        run_ideal_batch(&c, &mut batch);
    }
}
