//! Scalar circuit executors: ideal runs, the geometric fast path, and the
//! observer hooks shared with [`crate::engine`].
//!
//! Fault semantics follow the paper exactly: a failing operation does not
//! execute; instead every bit in its support is replaced by an independent
//! uniformly random bit ("the output is one of eight equally likely
//! outputs", §4). A failing initialization likewise leaves random bits
//! instead of zeros.
//!
//! Noisy and planned-fault execution live on the [`Engine`] facade
//! ([`Engine::run_scalar`], [`Engine::run_scalar_observed`],
//! [`PlannedFaultBackend`](crate::engine::PlannedFaultBackend)): compile
//! once and reuse across runs instead of re-deriving fault probabilities
//! per call.
//!
//! [`Engine`]: crate::engine::Engine
//! [`Engine::run_scalar`]: crate::engine::Engine::run_scalar
//! [`Engine::run_scalar_observed`]: crate::engine::Engine::run_scalar_observed

use crate::circuit::Circuit;
use crate::state::BitState;
use crate::wire::Wire;
use rand::Rng;

/// What happened during one noisy run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Indices of operations that faulted, in execution order.
    pub faults: Vec<usize>,
}

impl ExecReport {
    /// Number of faults that occurred.
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }
}

/// Observer hooks for instrumented execution.
///
/// The entropy measurements of §4 are implemented as an observer that
/// inspects ancilla values at the moment they are reset — the precise point
/// where the scheme ejects entropy.
pub trait ExecObserver {
    /// Called before an `Init` executes, with the values currently on its
    /// wires packed as a pattern (bit `j` → wire `j` of the init's support).
    fn before_init(&mut self, op_index: usize, wires: &[Wire], values: u8) {
        let _ = (op_index, wires, values);
    }

    /// Called when an operation faults.
    fn on_fault(&mut self, op_index: usize) {
        let _ = op_index;
    }
}

/// An observer that does nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl ExecObserver for NullObserver {}

/// Runs `circuit` on `state` without noise.
///
/// # Panics
///
/// Panics if the state width does not match the circuit width.
pub fn run_ideal(circuit: &Circuit, state: &mut BitState) {
    circuit.run(state);
}

/// Runs `circuit` with a uniform fault rate `g`, skipping fault-free
/// stretches geometrically. Statistically identical to
/// [`Engine::run_scalar`](crate::engine::Engine::run_scalar) under
/// [`UniformNoise`](crate::noise::UniformNoise) but much faster when `g`
/// is small (the common regime: the paper's thresholds are `1/108` and
/// below).
///
/// # Panics
///
/// Panics if `g` is not in `[0, 1)` or the widths mismatch.
pub fn run_noisy_geometric<R>(
    circuit: &Circuit,
    state: &mut BitState,
    g: f64,
    rng: &mut R,
) -> ExecReport
where
    R: Rng + ?Sized,
{
    assert!(
        (0.0..1.0).contains(&g),
        "geometric execution requires g in [0,1), got {g}"
    );
    assert_eq!(
        state.len(),
        circuit.n_wires(),
        "state width must match circuit width"
    );
    let mut report = ExecReport::default();
    let ops = circuit.ops();
    if g == 0.0 {
        for op in ops {
            op.apply(state);
        }
        return report;
    }
    let log1m = (-g).ln_1p(); // ln(1 - g) < 0
    let mut next_fault = sample_gap(rng, log1m);
    let mut i = 0usize;
    while i < ops.len() {
        if next_fault == 0 {
            let support = ops[i].support();
            state.randomize(support.as_slice(), rng);
            report.faults.push(i);
            next_fault = sample_gap(rng, log1m);
        } else {
            ops[i].apply(state);
            next_fault -= 1;
        }
        i += 1;
    }
    report
}

/// Samples the number of successes before the next failure:
/// `floor(ln(U) / ln(1-g))`.
#[inline]
fn sample_gap<R: Rng + ?Sized>(rng: &mut R, log1m: f64) -> u64 {
    let u: f64 = rng.random::<f64>();
    // Guard against u == 0 (ln -> -inf) by resampling the smallest positive.
    let u = if u > 0.0 { u } else { f64::MIN_POSITIVE };
    (u.ln() / log1m) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, PlannedFaultBackend};
    use crate::fault::FaultPlan;
    use crate::noise::{NoNoise, UniformNoise};
    use crate::wire::w;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn recovery_like_circuit() -> Circuit {
        let mut c = Circuit::new(9);
        c.init(&[w(3), w(4), w(5)])
            .init(&[w(6), w(7), w(8)])
            .maj_inv(w(0), w(3), w(6))
            .maj_inv(w(1), w(4), w(7))
            .maj_inv(w(2), w(5), w(8))
            .maj(w(0), w(1), w(2))
            .maj(w(3), w(4), w(5))
            .maj(w(6), w(7), w(8));
        c
    }

    #[test]
    fn engine_scalar_run_is_seed_deterministic() {
        // Same seed ⇒ identical fault sequences and final states.
        let c = recovery_like_circuit();
        let noise = UniformNoise::new(0.2);
        let engine = Engine::compile(&c, &noise);
        let mut s_a = BitState::zeros(9);
        let mut s_b = BitState::zeros(9);
        let mut rng_a = SmallRng::seed_from_u64(17);
        let mut rng_b = SmallRng::seed_from_u64(17);
        let a = engine.run_scalar(&mut s_a, &mut rng_a);
        let b = engine.run_scalar(&mut s_b, &mut rng_b);
        assert_eq!(a, b);
        assert_eq!(s_a, s_b);
    }

    #[test]
    fn planned_fault_overrides_one_op() {
        let mut c = Circuit::new(3);
        c.not(w(0)).not(w(1));
        let mut s = BitState::zeros(3);
        // op 0 "fails" leaving 0 on its support; op 1 runs normally.
        PlannedFaultBackend::new(&FaultPlan::single(0, 0)).run_state(&c, &mut s);
        assert!(!s.get(w(0)));
        assert!(s.get(w(1)));
    }

    #[test]
    fn planned_fault_pattern_maps_to_support_order() {
        let mut c = Circuit::new(3);
        c.maj(w(2), w(0), w(1)); // support order: q2, q0, q1
        let mut s = BitState::zeros(3);
        PlannedFaultBackend::new(&FaultPlan::single(0, 0b011)).run_state(&c, &mut s);
        // bit0 of pattern -> q2, bit1 -> q0, bit2 -> q1
        assert!(s.get(w(2)));
        assert!(s.get(w(0)));
        assert!(!s.get(w(1)));
    }

    #[test]
    fn observer_sees_pre_init_values() {
        struct Recorder(Vec<(usize, u8)>);
        impl ExecObserver for Recorder {
            fn before_init(&mut self, op_index: usize, _wires: &[Wire], values: u8) {
                self.0.push((op_index, values));
            }
        }
        let mut c = Circuit::new(3);
        c.not(w(0)).not(w(2)).init(&[w(0), w(1), w(2)]);
        let mut s = BitState::zeros(3);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut rec = Recorder(Vec::new());
        Engine::compile(&c, &NoNoise).run_scalar_observed(&mut s, &mut rng, &mut rec);
        // Before the init, wires held (1,0,1) -> pattern 0b101.
        assert_eq!(rec.0, vec![(2, 0b101)]);
        assert_eq!(s.count_ones(), 0);
    }

    #[test]
    fn geometric_matches_bernoulli_statistically() {
        // Mean number of faults over many runs should agree within a few
        // standard errors for both executors.
        let c = recovery_like_circuit();
        let g = 0.05;
        let trials = 4000;
        let mut rng = SmallRng::seed_from_u64(42);
        let engine = Engine::compile(&c, &UniformNoise::new(g));
        let mut bernoulli_total = 0usize;
        let mut geometric_total = 0usize;
        for _ in 0..trials {
            let mut s = BitState::zeros(9);
            bernoulli_total += engine.run_scalar(&mut s, &mut rng).fault_count();
            let mut s = BitState::zeros(9);
            geometric_total += run_noisy_geometric(&c, &mut s, g, &mut rng).fault_count();
        }
        let expected = g * c.len() as f64 * trials as f64;
        let sd = (trials as f64 * c.len() as f64 * g * (1.0 - g)).sqrt();
        let tol = 5.0 * sd;
        assert!(
            ((bernoulli_total as f64) - expected).abs() < tol,
            "bernoulli {bernoulli_total} vs expected {expected}"
        );
        assert!(
            ((geometric_total as f64) - expected).abs() < tol,
            "geometric {geometric_total} vs expected {expected}"
        );
    }

    #[test]
    fn geometric_zero_noise_is_ideal() {
        let c = recovery_like_circuit();
        let mut s = BitState::from_u64(0b111, 9);
        let mut rng = SmallRng::seed_from_u64(5);
        let report = run_noisy_geometric(&c, &mut s, 0.0, &mut rng);
        assert!(report.faults.is_empty());
        let mut s2 = BitState::from_u64(0b111, 9);
        run_ideal(&c, &mut s2);
        assert_eq!(s, s2);
    }

    #[test]
    #[should_panic(expected = "state width")]
    fn width_mismatch_panics() {
        let c = Circuit::new(3);
        let mut s = BitState::zeros(4);
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = Engine::compile(&c, &NoNoise).run_scalar(&mut s, &mut rng);
    }
}
