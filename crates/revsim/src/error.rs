//! Crate error type.

use crate::wire::Wire;
use std::fmt;

/// Errors produced when constructing or transforming circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// An operation references a wire at or beyond the circuit width.
    WireOutOfRange {
        /// The offending wire.
        wire: Wire,
        /// The circuit width.
        n_wires: usize,
    },
    /// An operation touches the same wire more than once.
    DuplicateWire {
        /// The duplicated wire.
        wire: Wire,
    },
    /// The circuit contains an `Init` and therefore has no inverse.
    Irreversible,
    /// Too many wires for an exhaustive truth-table/permutation extraction.
    TooManyWires {
        /// Requested width.
        n_wires: usize,
        /// Supported maximum.
        max: usize,
    },
    /// Two circuits of different widths were combined.
    WidthMismatch {
        /// Width of the receiving circuit.
        expected: usize,
        /// Width of the other circuit.
        found: usize,
    },
    /// A permutation table was not a bijection.
    NotBijective,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::WireOutOfRange { wire, n_wires } => {
                write!(f, "wire {wire} out of range for a {n_wires}-wire circuit")
            }
            Error::DuplicateWire { wire } => {
                write!(f, "operation touches wire {wire} more than once")
            }
            Error::Irreversible => {
                write!(
                    f,
                    "circuit contains an init operation and cannot be inverted"
                )
            }
            Error::TooManyWires { n_wires, max } => {
                write!(
                    f,
                    "exhaustive analysis supports at most {max} wires, got {n_wires}"
                )
            }
            Error::WidthMismatch { expected, found } => {
                write!(
                    f,
                    "circuit width mismatch: expected {expected} wires, found {found}"
                )
            }
            Error::NotBijective => write!(f, "permutation table is not a bijection"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::w;

    #[test]
    fn errors_display_lowercase_messages() {
        let e = Error::WireOutOfRange {
            wire: w(9),
            n_wires: 4,
        };
        assert_eq!(e.to_string(), "wire q9 out of range for a 4-wire circuit");
        assert!(Error::Irreversible
            .to_string()
            .contains("cannot be inverted"));
        assert!(Error::NotBijective.to_string().contains("bijection"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<Error>();
    }
}
