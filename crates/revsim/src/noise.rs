//! Noise models.
//!
//! The paper's error model (§2): "at each application, a gate will randomize
//! all the bits it is applied to with probability g". Initializations are
//! operations too; §2.2 computes thresholds both with initialization errors
//! (every op fails at rate `g`) and without (perfect resets), so the models
//! here let the two rates differ.

use crate::op::Op;
use serde::{Deserialize, Serialize};

/// Assigns a failure probability to each operation.
///
/// Implementors must return probabilities in `[0, 1]`.
pub trait NoiseModel {
    /// Probability that `op` fails (randomizing its support).
    fn fault_probability(&self, op: &Op) -> f64;

    /// Whether every operation has the same failure probability.
    ///
    /// When uniform, executors may use geometric fault-skipping for speed.
    fn uniform_rate(&self) -> Option<f64> {
        None
    }
}

/// Every operation — gates and initializations alike — fails with the same
/// probability `g`. This is the paper's default model.
///
/// # Examples
///
/// ```
/// use rft_revsim::noise::{NoiseModel, UniformNoise};
/// use rft_revsim::prelude::*;
///
/// let noise = UniformNoise::new(1.0 / 108.0);
/// let op = Op::from(Gate::Maj(w(0), w(1), w(2)));
/// assert!((noise.fault_probability(&op) - 1.0 / 108.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformNoise {
    g: f64,
}

impl UniformNoise {
    /// Creates a uniform model with per-operation failure probability `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not in `[0, 1]`.
    pub fn new(g: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&g),
            "failure probability must be in [0,1], got {g}"
        );
        UniformNoise { g }
    }

    /// The per-operation failure probability.
    pub fn rate(&self) -> f64 {
        self.g
    }
}

impl NoiseModel for UniformNoise {
    fn fault_probability(&self, _op: &Op) -> f64 {
        self.g
    }

    fn uniform_rate(&self) -> Option<f64> {
        Some(self.g)
    }
}

/// Gates fail at rate `gate`, resets at rate `init`.
///
/// Setting `init = 0` reproduces the paper's "if initialization can be
/// assumed to be far more accurate than our gates" accounting (G = 9 instead
/// of 11, §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitNoise {
    gate: f64,
    init: f64,
}

impl SplitNoise {
    /// Creates a split model.
    ///
    /// # Panics
    ///
    /// Panics if either rate is not in `[0, 1]`.
    pub fn new(gate: f64, init: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&gate),
            "gate rate must be in [0,1], got {gate}"
        );
        assert!(
            (0.0..=1.0).contains(&init),
            "init rate must be in [0,1], got {init}"
        );
        SplitNoise { gate, init }
    }

    /// Gate failure rate.
    pub fn gate_rate(&self) -> f64 {
        self.gate
    }

    /// Initialization failure rate.
    pub fn init_rate(&self) -> f64 {
        self.init
    }

    /// A model with perfect initialization.
    pub fn perfect_init(gate: f64) -> Self {
        SplitNoise::new(gate, 0.0)
    }
}

impl NoiseModel for SplitNoise {
    fn fault_probability(&self, op: &Op) -> f64 {
        match op {
            Op::Gate(_) => self.gate,
            Op::Init(_) => self.init,
        }
    }

    fn uniform_rate(&self) -> Option<f64> {
        if self.gate == self.init {
            Some(self.gate)
        } else {
            None
        }
    }
}

/// Probability that one full pass of `circuit` executes fault-free under
/// `noise`: `Π (1 − pᵢ)` over the op stream.
///
/// This is the mass the engine's stratified rare-event estimator resolves
/// analytically (zero-fault elision); deep below threshold it approaches
/// 1 and quantifies how much of a plain Monte-Carlo budget is spent
/// confirming a foregone conclusion. The compiled equivalent is
/// [`Engine::fault_free_probability`](crate::engine::Engine::fault_free_probability).
///
/// # Panics
///
/// Panics if the model reports a probability outside `[0, 1]`.
pub fn fault_free_probability<N: NoiseModel + ?Sized>(
    circuit: &crate::circuit::Circuit,
    noise: &N,
) -> f64 {
    circuit
        .ops()
        .iter()
        .map(|op| {
            let p = noise.fault_probability(op);
            assert!(
                (0.0..=1.0).contains(&p),
                "noise model returned probability {p} outside [0,1]"
            );
            1.0 - p
        })
        .product()
}

/// The noiseless model (useful to share code paths in tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoNoise;

impl NoiseModel for NoNoise {
    fn fault_probability(&self, _op: &Op) -> f64 {
        0.0
    }

    fn uniform_rate(&self) -> Option<f64> {
        Some(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use crate::wire::w;

    #[test]
    fn uniform_noise_applies_to_all_ops() {
        let noise = UniformNoise::new(0.25);
        assert_eq!(noise.fault_probability(&Op::from(Gate::Not(w(0)))), 0.25);
        assert_eq!(noise.fault_probability(&Op::init(&[w(0)])), 0.25);
        assert_eq!(noise.uniform_rate(), Some(0.25));
        assert_eq!(noise.rate(), 0.25);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn uniform_noise_rejects_invalid() {
        let _ = UniformNoise::new(1.5);
    }

    #[test]
    fn split_noise_distinguishes_inits() {
        let noise = SplitNoise::new(0.1, 0.0);
        assert_eq!(noise.fault_probability(&Op::from(Gate::Not(w(0)))), 0.1);
        assert_eq!(noise.fault_probability(&Op::init(&[w(0)])), 0.0);
        assert_eq!(noise.uniform_rate(), None);
        assert_eq!(SplitNoise::perfect_init(0.1), noise);
    }

    #[test]
    fn split_noise_uniform_when_equal() {
        assert_eq!(SplitNoise::new(0.2, 0.2).uniform_rate(), Some(0.2));
    }

    #[test]
    fn no_noise_is_zero() {
        assert_eq!(NoNoise.fault_probability(&Op::init(&[w(0)])), 0.0);
        assert_eq!(NoNoise.uniform_rate(), Some(0.0));
    }

    #[test]
    fn fault_free_probability_is_the_product() {
        use crate::circuit::Circuit;
        let mut c = Circuit::new(3);
        c.not(w(0)).cnot(w(0), w(1)).init(&[w(2)]);
        let g = 0.01;
        let p0 = fault_free_probability(&c, &UniformNoise::new(g));
        assert!((p0 - (1.0 - g).powi(3)).abs() < 1e-15);
        let split = fault_free_probability(&c, &SplitNoise::perfect_init(g));
        assert!((split - (1.0 - g).powi(2)).abs() < 1e-15);
        assert_eq!(fault_free_probability(&c, &NoNoise), 1.0);
    }
}
