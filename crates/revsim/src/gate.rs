//! The reversible gate set.
//!
//! Every gate here is a bijection on the bits it touches. The set matches
//! the paper's inventory: NOT, CNOT and Toffoli (Figure 1 building blocks),
//! SWAP and the three-bit [`Swap3`](Gate::Swap3) of Figure 5, the Fredkin
//! (controlled-swap) gate of conservative logic, and the reversible majority
//! gate [`Maj`](Gate::Maj) of Table 1 together with its inverse
//! [`MajInv`](Gate::MajInv).
//!
//! The majority gate is the paper's workhorse: `MAJ(a,b,c)` flips `b` and
//! `c` when `a` is one, then flips `a` when both `b` and `c` are one — i.e.
//! `CNOT(a→b)`, `CNOT(a→c)`, `Toffoli(b,c→a)`. Its first output bit is the
//! majority of the three inputs, and `MAJ⁻¹(b,0,0) = (b,b,b)` encodes the
//! three-bit repetition code.
//!
//! The *parity-preserving* subset — [`F2g`](Gate::F2g) (double Feynman),
//! [`Nft`](Gate::Nft), the four-wire [`Ig`](Gate::Ig), and the conservative
//! Fredkin — satisfies `a⊕b⊕… = P⊕Q⊕…` on every input, the invariant the
//! online fault-detection constructions of Islam et al. (arXiv:1009.3819)
//! build on: any single bit-flip fault flips the input↔output parity and is
//! caught by a parity rail.

use crate::state::BitState;
use crate::wire::{Support, Wire};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A primitive reversible gate on one, two or three wires.
///
/// # Examples
///
/// ```
/// use rft_revsim::prelude::*;
///
/// // MAJ⁻¹ fans a bit out into a 3-bit repetition codeword.
/// let mut s = BitState::from_u64(0b001, 3); // q0 = 1, ancillas 0
/// Gate::MajInv(w(0), w(1), w(2)).apply(&mut s);
/// assert_eq!(s.to_u64(), 0b111);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gate {
    /// Inverts one wire.
    Not(Wire),
    /// Flips `target` when `control` is one.
    Cnot {
        /// Controlling wire (unchanged).
        control: Wire,
        /// Target wire (flipped when the control is one).
        target: Wire,
    },
    /// Flips `target` when both controls are one.
    Toffoli {
        /// Controlling wires (unchanged).
        controls: [Wire; 2],
        /// Target wire.
        target: Wire,
    },
    /// Exchanges two wires.
    Swap(Wire, Wire),
    /// Figure 5's three-bit double swap: `swap(a,b)` then `swap(b,c)`.
    ///
    /// Net effect is a cyclic rotation — the value at `a` ends on `c`, which
    /// is how a bit is moved two lattice sites in one three-bit operation.
    Swap3(Wire, Wire, Wire),
    /// Controlled swap (Fredkin): exchanges `targets` when `control` is one.
    Fredkin {
        /// Controlling wire (unchanged).
        control: Wire,
        /// Swapped pair.
        targets: [Wire; 2],
    },
    /// The reversible majority gate of Table 1.
    ///
    /// `Maj(a,b,c)`: `b ^= a; c ^= a; a ^= b & c`. The output on `a` is the
    /// majority of the inputs.
    Maj(Wire, Wire, Wire),
    /// Inverse of [`Gate::Maj`]: `a ^= b & c; b ^= a; c ^= a`.
    ///
    /// On `(b, 0, 0)` this produces `(b, b, b)` — the repetition-code
    /// encoder of Figure 2.
    MajInv(Wire, Wire, Wire),
    /// Double Feynman gate (F2G): `(a, b, c) → (a, a⊕b, a⊕c)`.
    ///
    /// Parity-preserving and GF(2)-linear (two CNOTs sharing a control),
    /// hence self-inverse and fusable into affine micro-op segments.
    F2g(Wire, Wire, Wire),
    /// New fault-tolerant gate (NFT): `(a, b, c) → (a⊕b, (¬b∧c)⊕(a∧¬c),
    /// (b∧c)⊕(a∧¬c))`.
    ///
    /// Parity-preserving (`Q⊕R = c`, so `P⊕Q⊕R = a⊕b⊕c`) but nonlinear
    /// and *not* self-inverse — see [`Gate::NftInv`].
    Nft(Wire, Wire, Wire),
    /// Inverse of [`Gate::Nft`]: `c = Q⊕R`, `b = c ? ¬Q : P⊕Q`, `a = P⊕b`.
    NftInv(Wire, Wire, Wire),
    /// Islam gate (IG), four wires: `(a, b, c, d) → (a, a⊕b, (a∧b)⊕c,
    /// (a∧¬b)⊕d)`.
    ///
    /// Parity-preserving; the first two outputs are affine but the last two
    /// are not, so IG splits affine micro-op segments. Not self-inverse —
    /// see [`Gate::IgInv`].
    Ig(Wire, Wire, Wire, Wire),
    /// Inverse of [`Gate::Ig`]: `a = P`, `b = P⊕Q`, `c = R⊕(P∧¬Q)`,
    /// `d = S⊕(P∧Q)`.
    IgInv(Wire, Wire, Wire, Wire),
}

/// Discriminant of a [`Gate`] (or ancilla reset), used for op accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpKind {
    /// Single-bit inversion.
    Not,
    /// Controlled NOT.
    Cnot,
    /// Doubly-controlled NOT.
    Toffoli,
    /// Two-bit exchange.
    Swap,
    /// Three-bit double swap (Figure 5).
    Swap3,
    /// Controlled swap.
    Fredkin,
    /// Reversible majority (Table 1).
    Maj,
    /// Inverse majority.
    MajInv,
    /// Double Feynman (parity-preserving, GF(2)-linear).
    F2g,
    /// New fault-tolerant gate (parity-preserving).
    Nft,
    /// Inverse NFT.
    NftInv,
    /// Islam gate (parity-preserving, four wires).
    Ig,
    /// Inverse IG.
    IgInv,
    /// Ancilla reset (the only irreversible operation).
    Init,
}

impl OpKind {
    /// All gate kinds plus `Init`, in a stable order.
    pub const ALL: [OpKind; 14] = [
        OpKind::Not,
        OpKind::Cnot,
        OpKind::Toffoli,
        OpKind::Swap,
        OpKind::Swap3,
        OpKind::Fredkin,
        OpKind::Maj,
        OpKind::MajInv,
        OpKind::F2g,
        OpKind::Nft,
        OpKind::NftInv,
        OpKind::Ig,
        OpKind::IgInv,
        OpKind::Init,
    ];
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OpKind::Not => "NOT",
            OpKind::Cnot => "CNOT",
            OpKind::Toffoli => "TOFFOLI",
            OpKind::Swap => "SWAP",
            OpKind::Swap3 => "SWAP3",
            OpKind::Fredkin => "FREDKIN",
            OpKind::Maj => "MAJ",
            OpKind::MajInv => "MAJ⁻¹",
            OpKind::F2g => "F2G",
            OpKind::Nft => "NFT",
            OpKind::NftInv => "NFT⁻¹",
            OpKind::Ig => "IG",
            OpKind::IgInv => "IG⁻¹",
            OpKind::Init => "INIT",
        };
        f.write_str(name)
    }
}

impl Gate {
    /// Applies the gate to `state` in place.
    ///
    /// # Panics
    ///
    /// Panics if any touched wire is out of range for `state`.
    #[inline]
    pub fn apply(&self, state: &mut BitState) {
        match *self {
            Gate::Not(a) => state.flip(a),
            Gate::Cnot { control, target } => {
                if state.get(control) {
                    state.flip(target);
                }
            }
            Gate::Toffoli {
                controls: [c0, c1],
                target,
            } => {
                if state.get(c0) && state.get(c1) {
                    state.flip(target);
                }
            }
            Gate::Swap(a, b) => state.swap_wires(a, b),
            Gate::Swap3(a, b, c) => {
                state.swap_wires(a, b);
                state.swap_wires(b, c);
            }
            Gate::Fredkin {
                control,
                targets: [t0, t1],
            } => {
                if state.get(control) {
                    state.swap_wires(t0, t1);
                }
            }
            Gate::Maj(a, b, c) => {
                if state.get(a) {
                    state.flip(b);
                    state.flip(c);
                }
                if state.get(b) && state.get(c) {
                    state.flip(a);
                }
            }
            Gate::MajInv(a, b, c) => {
                if state.get(b) && state.get(c) {
                    state.flip(a);
                }
                if state.get(a) {
                    state.flip(b);
                    state.flip(c);
                }
            }
            Gate::F2g(a, b, c) => {
                if state.get(a) {
                    state.flip(b);
                    state.flip(c);
                }
            }
            Gate::Nft(a, b, c) => {
                let (va, vb, vc) = (state.get(a), state.get(b), state.get(c));
                state.set(a, va ^ vb);
                state.set(b, (!vb & vc) ^ (va & !vc));
                state.set(c, (vb & vc) ^ (va & !vc));
            }
            Gate::NftInv(a, b, c) => {
                let (p, q, r) = (state.get(a), state.get(b), state.get(c));
                let vc = q ^ r;
                let vb = if vc { !q } else { p ^ q };
                state.set(a, p ^ vb);
                state.set(b, vb);
                state.set(c, vc);
            }
            Gate::Ig(a, b, c, d) => {
                let (va, vb) = (state.get(a), state.get(b));
                state.set(b, va ^ vb);
                if va & vb {
                    state.flip(c);
                }
                if va & !vb {
                    state.flip(d);
                }
            }
            Gate::IgInv(a, b, c, d) => {
                let (p, q) = (state.get(a), state.get(b));
                state.set(b, p ^ q);
                if p & !q {
                    state.flip(c);
                }
                if p & q {
                    state.flip(d);
                }
            }
        }
    }

    /// The wires this gate touches, in argument order.
    #[inline]
    pub fn support(&self) -> Support {
        match *self {
            Gate::Not(a) => Support::one(a),
            Gate::Cnot { control, target } => Support::two(control, target),
            Gate::Toffoli {
                controls: [c0, c1],
                target,
            } => Support::three(c0, c1, target),
            Gate::Swap(a, b) => Support::two(a, b),
            Gate::Swap3(a, b, c) => Support::three(a, b, c),
            Gate::Fredkin {
                control,
                targets: [t0, t1],
            } => Support::three(control, t0, t1),
            Gate::Maj(a, b, c) => Support::three(a, b, c),
            Gate::MajInv(a, b, c) => Support::three(a, b, c),
            Gate::F2g(a, b, c) => Support::three(a, b, c),
            Gate::Nft(a, b, c) => Support::three(a, b, c),
            Gate::NftInv(a, b, c) => Support::three(a, b, c),
            Gate::Ig(a, b, c, d) => Support::four(a, b, c, d),
            Gate::IgInv(a, b, c, d) => Support::four(a, b, c, d),
        }
    }

    /// Number of wires the gate touches.
    #[inline]
    pub fn arity(&self) -> usize {
        self.support().len()
    }

    /// Returns the inverse gate, such that `g.inverse()` undoes `g`.
    ///
    /// Most gates in the set are their own inverses; the exceptions are
    /// [`Gate::Swap3`] (inverted by reversing its arguments) and the
    /// MAJ, NFT and IG pairs (inverses of each other).
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::Swap3(a, b, c) => Gate::Swap3(c, b, a),
            Gate::Maj(a, b, c) => Gate::MajInv(a, b, c),
            Gate::MajInv(a, b, c) => Gate::Maj(a, b, c),
            Gate::Nft(a, b, c) => Gate::NftInv(a, b, c),
            Gate::NftInv(a, b, c) => Gate::Nft(a, b, c),
            Gate::Ig(a, b, c, d) => Gate::IgInv(a, b, c, d),
            Gate::IgInv(a, b, c, d) => Gate::Ig(a, b, c, d),
            g => g,
        }
    }

    /// The gate's kind, for accounting.
    pub fn kind(&self) -> OpKind {
        match self {
            Gate::Not(_) => OpKind::Not,
            Gate::Cnot { .. } => OpKind::Cnot,
            Gate::Toffoli { .. } => OpKind::Toffoli,
            Gate::Swap(..) => OpKind::Swap,
            Gate::Swap3(..) => OpKind::Swap3,
            Gate::Fredkin { .. } => OpKind::Fredkin,
            Gate::Maj(..) => OpKind::Maj,
            Gate::MajInv(..) => OpKind::MajInv,
            Gate::F2g(..) => OpKind::F2g,
            Gate::Nft(..) => OpKind::Nft,
            Gate::NftInv(..) => OpKind::NftInv,
            Gate::Ig(..) => OpKind::Ig,
            Gate::IgInv(..) => OpKind::IgInv,
        }
    }

    /// Returns the gate with every wire shifted by `offset` (sub-circuit
    /// embedding).
    pub fn offset(&self, offset: u32) -> Gate {
        let f = |w: Wire| w.offset(offset);
        match *self {
            Gate::Not(a) => Gate::Not(f(a)),
            Gate::Cnot { control, target } => Gate::Cnot {
                control: f(control),
                target: f(target),
            },
            Gate::Toffoli {
                controls: [c0, c1],
                target,
            } => Gate::Toffoli {
                controls: [f(c0), f(c1)],
                target: f(target),
            },
            Gate::Swap(a, b) => Gate::Swap(f(a), f(b)),
            Gate::Swap3(a, b, c) => Gate::Swap3(f(a), f(b), f(c)),
            Gate::Fredkin {
                control,
                targets: [t0, t1],
            } => Gate::Fredkin {
                control: f(control),
                targets: [f(t0), f(t1)],
            },
            Gate::Maj(a, b, c) => Gate::Maj(f(a), f(b), f(c)),
            Gate::MajInv(a, b, c) => Gate::MajInv(f(a), f(b), f(c)),
            Gate::F2g(a, b, c) => Gate::F2g(f(a), f(b), f(c)),
            Gate::Nft(a, b, c) => Gate::Nft(f(a), f(b), f(c)),
            Gate::NftInv(a, b, c) => Gate::NftInv(f(a), f(b), f(c)),
            Gate::Ig(a, b, c, d) => Gate::Ig(f(a), f(b), f(c), f(d)),
            Gate::IgInv(a, b, c, d) => Gate::IgInv(f(a), f(b), f(c), f(d)),
        }
    }

    /// Returns the gate with wires remapped through `map` (`map[old] = new`).
    ///
    /// # Panics
    ///
    /// Panics if a wire index is outside `map`.
    pub fn remap(&self, map: &[Wire]) -> Gate {
        let f = |w: Wire| map[w.index()];
        match *self {
            Gate::Not(a) => Gate::Not(f(a)),
            Gate::Cnot { control, target } => Gate::Cnot {
                control: f(control),
                target: f(target),
            },
            Gate::Toffoli {
                controls: [c0, c1],
                target,
            } => Gate::Toffoli {
                controls: [f(c0), f(c1)],
                target: f(target),
            },
            Gate::Swap(a, b) => Gate::Swap(f(a), f(b)),
            Gate::Swap3(a, b, c) => Gate::Swap3(f(a), f(b), f(c)),
            Gate::Fredkin {
                control,
                targets: [t0, t1],
            } => Gate::Fredkin {
                control: f(control),
                targets: [f(t0), f(t1)],
            },
            Gate::Maj(a, b, c) => Gate::Maj(f(a), f(b), f(c)),
            Gate::MajInv(a, b, c) => Gate::MajInv(f(a), f(b), f(c)),
            Gate::F2g(a, b, c) => Gate::F2g(f(a), f(b), f(c)),
            Gate::Nft(a, b, c) => Gate::Nft(f(a), f(b), f(c)),
            Gate::NftInv(a, b, c) => Gate::NftInv(f(a), f(b), f(c)),
            Gate::Ig(a, b, c, d) => Gate::Ig(f(a), f(b), f(c), f(d)),
            Gate::IgInv(a, b, c, d) => Gate::IgInv(f(a), f(b), f(c), f(d)),
        }
    }

    /// Whether the gate preserves the parity `⊕` of its support bits on
    /// every input — the invariant online fault detection checks.
    pub fn is_parity_preserving(&self) -> bool {
        matches!(
            self,
            Gate::Fredkin { .. }
                | Gate::Swap(..)
                | Gate::Swap3(..)
                | Gate::F2g(..)
                | Gate::Nft(..)
                | Gate::NftInv(..)
                | Gate::Ig(..)
                | Gate::IgInv(..)
        )
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let support = self.support();
        write!(f, "{}(", self.kind())?;
        for (i, w) in support.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{w}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::w;

    /// Applies `gate` to every input of an `n`-bit register and returns the
    /// output table.
    fn table(gate: Gate, n: usize) -> Vec<u64> {
        (0..(1u64 << n))
            .map(|input| {
                let mut s = BitState::from_u64(input, n);
                gate.apply(&mut s);
                s.to_u64()
            })
            .collect()
    }

    #[test]
    fn not_flips() {
        assert_eq!(table(Gate::Not(w(0)), 1), vec![1, 0]);
    }

    #[test]
    fn cnot_truth_table() {
        // wire0 = control, wire1 = target; index = q1 q0 little-endian.
        let t = table(
            Gate::Cnot {
                control: w(0),
                target: w(1),
            },
            2,
        );
        assert_eq!(t, vec![0b00, 0b11, 0b10, 0b01]);
    }

    #[test]
    fn toffoli_truth_table() {
        let gate = Gate::Toffoli {
            controls: [w(0), w(1)],
            target: w(2),
        };
        let t = table(gate, 3);
        // Only inputs with q0=q1=1 flip q2.
        assert_eq!(t[0b011], 0b111);
        assert_eq!(t[0b111], 0b011);
        for input in [0b000, 0b001, 0b010, 0b100, 0b101, 0b110] {
            assert_eq!(t[input], input as u64, "input {input:03b}");
        }
    }

    #[test]
    fn swap_exchanges_wires() {
        let t = table(Gate::Swap(w(0), w(1)), 2);
        assert_eq!(t, vec![0b00, 0b10, 0b01, 0b11]);
    }

    #[test]
    fn swap3_is_two_swaps() {
        // Figure 5: swap(q0,q1) then swap(q1,q2).
        let composed = |input: u64| {
            let mut s = BitState::from_u64(input, 3);
            Gate::Swap(w(0), w(1)).apply(&mut s);
            Gate::Swap(w(1), w(2)).apply(&mut s);
            s.to_u64()
        };
        let t = table(Gate::Swap3(w(0), w(1), w(2)), 3);
        for input in 0..8u64 {
            assert_eq!(t[input as usize], composed(input), "input {input:03b}");
        }
    }

    #[test]
    fn swap3_moves_first_wire_two_places() {
        // The value initially on q0 must end on q2.
        let mut s = BitState::from_u64(0b001, 3);
        Gate::Swap3(w(0), w(1), w(2)).apply(&mut s);
        assert_eq!(s.to_u64(), 0b100);
    }

    #[test]
    fn fredkin_swaps_only_when_control_set() {
        let gate = Gate::Fredkin {
            control: w(0),
            targets: [w(1), w(2)],
        };
        let t = table(gate, 3);
        assert_eq!(t[0b010], 0b010); // control 0: unchanged
        assert_eq!(t[0b011], 0b101); // control 1: targets swap
        assert_eq!(t[0b101], 0b011);
        assert_eq!(t[0b111], 0b111);
    }

    #[test]
    fn fredkin_conserves_ones() {
        // Conservative logic (Fredkin & Toffoli 1982): the number of 1s is
        // preserved.
        let gate = Gate::Fredkin {
            control: w(0),
            targets: [w(1), w(2)],
        };
        for (input, output) in table(gate, 3).into_iter().enumerate() {
            assert_eq!((input as u64).count_ones(), output.count_ones());
        }
    }

    #[test]
    fn maj_matches_paper_table_1() {
        // Table 1 lists rows as bit-strings q0 q1 q2. Our u64 packing is
        // little-endian (q0 = bit 0), so the string "011" is value 0b110.
        let string_to_u64 = |s: &str| {
            s.bytes()
                .enumerate()
                .fold(0u64, |acc, (i, b)| acc | (((b - b'0') as u64) << i))
        };
        let rows = [
            ("000", "000"),
            ("001", "001"),
            ("010", "010"),
            ("011", "111"),
            ("100", "011"),
            ("101", "110"),
            ("110", "101"),
            ("111", "100"),
        ];
        let t = table(Gate::Maj(w(0), w(1), w(2)), 3);
        for (input, output) in rows {
            let i = string_to_u64(input);
            let o = string_to_u64(output);
            assert_eq!(t[i as usize], o, "MAJ({input}) should be {output}");
        }
    }

    #[test]
    fn maj_first_output_is_majority() {
        let t = table(Gate::Maj(w(0), w(1), w(2)), 3);
        for input in 0..8u64 {
            let ones = input.count_ones();
            let majority = ones >= 2;
            let out_q0 = t[input as usize] & 1 == 1;
            assert_eq!(out_q0, majority, "input {input:03b}");
        }
    }

    #[test]
    fn maj_inv_encodes_repetition_code() {
        for b in [false, true] {
            let mut s = BitState::zeros(3);
            s.set(w(0), b);
            Gate::MajInv(w(0), w(1), w(2)).apply(&mut s);
            assert_eq!(s.get(w(0)), b);
            assert_eq!(s.get(w(1)), b);
            assert_eq!(s.get(w(2)), b);
        }
    }

    #[test]
    fn maj_decodes_clean_codeword_to_flag_bits() {
        // MAJ(b,b,b) = (b,0,0): majority on q0, syndrome cleared.
        for b in [0u64, 0b111] {
            let mut s = BitState::from_u64(b, 3);
            Gate::Maj(w(0), w(1), w(2)).apply(&mut s);
            assert_eq!(s.to_u64(), b & 1);
        }
    }

    /// One canonical instance of every gate kind, on dense wires.
    fn all_gate_instances() -> Vec<Gate> {
        vec![
            Gate::Not(w(0)),
            Gate::Cnot {
                control: w(0),
                target: w(1),
            },
            Gate::Toffoli {
                controls: [w(0), w(1)],
                target: w(2),
            },
            Gate::Swap(w(0), w(1)),
            Gate::Swap3(w(0), w(1), w(2)),
            Gate::Fredkin {
                control: w(0),
                targets: [w(1), w(2)],
            },
            Gate::Maj(w(0), w(1), w(2)),
            Gate::MajInv(w(0), w(1), w(2)),
            Gate::F2g(w(0), w(1), w(2)),
            Gate::Nft(w(0), w(1), w(2)),
            Gate::NftInv(w(0), w(1), w(2)),
            Gate::Ig(w(0), w(1), w(2), w(3)),
            Gate::IgInv(w(0), w(1), w(2), w(3)),
        ]
    }

    #[test]
    fn f2g_is_double_feynman() {
        // (a, b, c) → (a, a⊕b, a⊕c), little-endian packing.
        let t = table(Gate::F2g(w(0), w(1), w(2)), 3);
        for input in 0..8u64 {
            let a = input & 1;
            let b = (input >> 1) & 1;
            let c = (input >> 2) & 1;
            let expect = a | ((a ^ b) << 1) | ((a ^ c) << 2);
            assert_eq!(t[input as usize], expect, "input {input:03b}");
        }
    }

    #[test]
    fn nft_truth_table_matches_definition() {
        let t = table(Gate::Nft(w(0), w(1), w(2)), 3);
        for input in 0..8u64 {
            let a = input & 1 == 1;
            let b = (input >> 1) & 1 == 1;
            let c = (input >> 2) & 1 == 1;
            let p = a ^ b;
            let q = (!b & c) ^ (a & !c);
            let r = (b & c) ^ (a & !c);
            let expect = (p as u64) | ((q as u64) << 1) | ((r as u64) << 2);
            assert_eq!(t[input as usize], expect, "input {input:03b}");
        }
    }

    #[test]
    fn ig_truth_table_matches_definition() {
        let t = table(Gate::Ig(w(0), w(1), w(2), w(3)), 4);
        for input in 0..16u64 {
            let a = input & 1 == 1;
            let b = (input >> 1) & 1 == 1;
            let c = (input >> 2) & 1 == 1;
            let d = (input >> 3) & 1 == 1;
            let q = a ^ b;
            let r = (a & b) ^ c;
            let s = (a & !b) ^ d;
            let expect = (a as u64) | ((q as u64) << 1) | ((r as u64) << 2) | ((s as u64) << 3);
            assert_eq!(t[input as usize], expect, "input {input:04b}");
        }
    }

    #[test]
    fn parity_preserving_gates_preserve_parity_exhaustively() {
        for gate in all_gate_instances() {
            let n = gate.support().max_index() + 1;
            for (input, output) in table(gate, n).into_iter().enumerate() {
                let preserved = (input as u64).count_ones() % 2 == output.count_ones() % 2;
                if gate.is_parity_preserving() {
                    assert!(preserved, "{gate} breaks parity on {input:b}");
                }
            }
        }
        // And the flag is not vacuous: the new gates carry it.
        assert!(Gate::F2g(w(0), w(1), w(2)).is_parity_preserving());
        assert!(Gate::Nft(w(0), w(1), w(2)).is_parity_preserving());
        assert!(Gate::Ig(w(0), w(1), w(2), w(3)).is_parity_preserving());
        assert!(!Gate::Maj(w(0), w(1), w(2)).is_parity_preserving());
    }

    #[test]
    fn all_gates_are_bijections() {
        let gates = all_gate_instances();
        for gate in gates {
            let n = gate.support().max_index() + 1;
            let mut seen = vec![false; 1 << n];
            for output in table(gate, n) {
                assert!(!seen[output as usize], "{gate} maps two inputs to {output}");
                seen[output as usize] = true;
            }
        }
    }

    #[test]
    fn inverses_cancel() {
        for gate in all_gate_instances() {
            let n = gate.support().max_index() + 1;
            for input in 0..(1u64 << n) {
                let mut s = BitState::from_u64(input, n);
                gate.apply(&mut s);
                gate.inverse().apply(&mut s);
                assert_eq!(s.to_u64(), input, "{gate} then inverse on {input:b}");
            }
        }
    }

    #[test]
    fn inverse_is_involutive_on_kinds() {
        for gate in all_gate_instances() {
            assert_eq!(gate.inverse().inverse(), gate);
        }
    }

    #[test]
    fn support_orders_match_arguments() {
        let gate = Gate::Maj(w(5), w(2), w(9));
        assert_eq!(gate.support().as_slice(), &[w(5), w(2), w(9)]);
        assert_eq!(gate.arity(), 3);
    }

    #[test]
    fn offset_shifts_every_wire() {
        let gate = Gate::Toffoli {
            controls: [w(0), w(1)],
            target: w(2),
        };
        let shifted = gate.offset(10);
        assert_eq!(shifted.support().as_slice(), &[w(10), w(11), w(12)]);
        assert_eq!(shifted.kind(), OpKind::Toffoli);
    }

    #[test]
    fn remap_translates_wires() {
        let gate = Gate::Cnot {
            control: w(0),
            target: w(1),
        };
        let remapped = gate.remap(&[w(7), w(3)]);
        assert_eq!(remapped.support().as_slice(), &[w(7), w(3)]);
    }

    #[test]
    fn display_is_informative() {
        let gate = Gate::Maj(w(0), w(1), w(2));
        assert_eq!(gate.to_string(), "MAJ(q0,q1,q2)");
        assert_eq!(OpKind::MajInv.to_string(), "MAJ⁻¹");
        assert_eq!(
            Gate::Ig(w(0), w(1), w(2), w(3)).to_string(),
            "IG(q0,q1,q2,q3)"
        );
        assert_eq!(OpKind::F2g.to_string(), "F2G");
        assert_eq!(OpKind::NftInv.to_string(), "NFT⁻¹");
    }

    #[test]
    fn op_kind_all_is_complete_and_unique() {
        assert_eq!(OpKind::ALL.len(), 14);
        for (i, a) in OpKind::ALL.iter().enumerate() {
            for b in &OpKind::ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
        for gate in all_gate_instances() {
            assert!(OpKind::ALL.contains(&gate.kind()));
        }
    }
}
