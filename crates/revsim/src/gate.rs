//! The reversible gate set.
//!
//! Every gate here is a bijection on the bits it touches. The set matches
//! the paper's inventory: NOT, CNOT and Toffoli (Figure 1 building blocks),
//! SWAP and the three-bit [`Swap3`](Gate::Swap3) of Figure 5, the Fredkin
//! (controlled-swap) gate of conservative logic, and the reversible majority
//! gate [`Maj`](Gate::Maj) of Table 1 together with its inverse
//! [`MajInv`](Gate::MajInv).
//!
//! The majority gate is the paper's workhorse: `MAJ(a,b,c)` flips `b` and
//! `c` when `a` is one, then flips `a` when both `b` and `c` are one — i.e.
//! `CNOT(a→b)`, `CNOT(a→c)`, `Toffoli(b,c→a)`. Its first output bit is the
//! majority of the three inputs, and `MAJ⁻¹(b,0,0) = (b,b,b)` encodes the
//! three-bit repetition code.

use crate::state::BitState;
use crate::wire::{Support, Wire};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A primitive reversible gate on one, two or three wires.
///
/// # Examples
///
/// ```
/// use rft_revsim::prelude::*;
///
/// // MAJ⁻¹ fans a bit out into a 3-bit repetition codeword.
/// let mut s = BitState::from_u64(0b001, 3); // q0 = 1, ancillas 0
/// Gate::MajInv(w(0), w(1), w(2)).apply(&mut s);
/// assert_eq!(s.to_u64(), 0b111);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gate {
    /// Inverts one wire.
    Not(Wire),
    /// Flips `target` when `control` is one.
    Cnot {
        /// Controlling wire (unchanged).
        control: Wire,
        /// Target wire (flipped when the control is one).
        target: Wire,
    },
    /// Flips `target` when both controls are one.
    Toffoli {
        /// Controlling wires (unchanged).
        controls: [Wire; 2],
        /// Target wire.
        target: Wire,
    },
    /// Exchanges two wires.
    Swap(Wire, Wire),
    /// Figure 5's three-bit double swap: `swap(a,b)` then `swap(b,c)`.
    ///
    /// Net effect is a cyclic rotation — the value at `a` ends on `c`, which
    /// is how a bit is moved two lattice sites in one three-bit operation.
    Swap3(Wire, Wire, Wire),
    /// Controlled swap (Fredkin): exchanges `targets` when `control` is one.
    Fredkin {
        /// Controlling wire (unchanged).
        control: Wire,
        /// Swapped pair.
        targets: [Wire; 2],
    },
    /// The reversible majority gate of Table 1.
    ///
    /// `Maj(a,b,c)`: `b ^= a; c ^= a; a ^= b & c`. The output on `a` is the
    /// majority of the inputs.
    Maj(Wire, Wire, Wire),
    /// Inverse of [`Gate::Maj`]: `a ^= b & c; b ^= a; c ^= a`.
    ///
    /// On `(b, 0, 0)` this produces `(b, b, b)` — the repetition-code
    /// encoder of Figure 2.
    MajInv(Wire, Wire, Wire),
}

/// Discriminant of a [`Gate`] (or ancilla reset), used for op accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpKind {
    /// Single-bit inversion.
    Not,
    /// Controlled NOT.
    Cnot,
    /// Doubly-controlled NOT.
    Toffoli,
    /// Two-bit exchange.
    Swap,
    /// Three-bit double swap (Figure 5).
    Swap3,
    /// Controlled swap.
    Fredkin,
    /// Reversible majority (Table 1).
    Maj,
    /// Inverse majority.
    MajInv,
    /// Ancilla reset (the only irreversible operation).
    Init,
}

impl OpKind {
    /// All gate kinds plus `Init`, in a stable order.
    pub const ALL: [OpKind; 9] = [
        OpKind::Not,
        OpKind::Cnot,
        OpKind::Toffoli,
        OpKind::Swap,
        OpKind::Swap3,
        OpKind::Fredkin,
        OpKind::Maj,
        OpKind::MajInv,
        OpKind::Init,
    ];
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OpKind::Not => "NOT",
            OpKind::Cnot => "CNOT",
            OpKind::Toffoli => "TOFFOLI",
            OpKind::Swap => "SWAP",
            OpKind::Swap3 => "SWAP3",
            OpKind::Fredkin => "FREDKIN",
            OpKind::Maj => "MAJ",
            OpKind::MajInv => "MAJ⁻¹",
            OpKind::Init => "INIT",
        };
        f.write_str(name)
    }
}

impl Gate {
    /// Applies the gate to `state` in place.
    ///
    /// # Panics
    ///
    /// Panics if any touched wire is out of range for `state`.
    #[inline]
    pub fn apply(&self, state: &mut BitState) {
        match *self {
            Gate::Not(a) => state.flip(a),
            Gate::Cnot { control, target } => {
                if state.get(control) {
                    state.flip(target);
                }
            }
            Gate::Toffoli {
                controls: [c0, c1],
                target,
            } => {
                if state.get(c0) && state.get(c1) {
                    state.flip(target);
                }
            }
            Gate::Swap(a, b) => state.swap_wires(a, b),
            Gate::Swap3(a, b, c) => {
                state.swap_wires(a, b);
                state.swap_wires(b, c);
            }
            Gate::Fredkin {
                control,
                targets: [t0, t1],
            } => {
                if state.get(control) {
                    state.swap_wires(t0, t1);
                }
            }
            Gate::Maj(a, b, c) => {
                if state.get(a) {
                    state.flip(b);
                    state.flip(c);
                }
                if state.get(b) && state.get(c) {
                    state.flip(a);
                }
            }
            Gate::MajInv(a, b, c) => {
                if state.get(b) && state.get(c) {
                    state.flip(a);
                }
                if state.get(a) {
                    state.flip(b);
                    state.flip(c);
                }
            }
        }
    }

    /// The wires this gate touches, in argument order.
    #[inline]
    pub fn support(&self) -> Support {
        match *self {
            Gate::Not(a) => Support::one(a),
            Gate::Cnot { control, target } => Support::two(control, target),
            Gate::Toffoli {
                controls: [c0, c1],
                target,
            } => Support::three(c0, c1, target),
            Gate::Swap(a, b) => Support::two(a, b),
            Gate::Swap3(a, b, c) => Support::three(a, b, c),
            Gate::Fredkin {
                control,
                targets: [t0, t1],
            } => Support::three(control, t0, t1),
            Gate::Maj(a, b, c) => Support::three(a, b, c),
            Gate::MajInv(a, b, c) => Support::three(a, b, c),
        }
    }

    /// Number of wires the gate touches.
    #[inline]
    pub fn arity(&self) -> usize {
        self.support().len()
    }

    /// Returns the inverse gate, such that `g.inverse()` undoes `g`.
    ///
    /// Every gate in the set is its own inverse except [`Gate::Swap3`]
    /// (inverted by reversing its arguments) and the MAJ pair (inverses of
    /// each other).
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::Swap3(a, b, c) => Gate::Swap3(c, b, a),
            Gate::Maj(a, b, c) => Gate::MajInv(a, b, c),
            Gate::MajInv(a, b, c) => Gate::Maj(a, b, c),
            g => g,
        }
    }

    /// The gate's kind, for accounting.
    pub fn kind(&self) -> OpKind {
        match self {
            Gate::Not(_) => OpKind::Not,
            Gate::Cnot { .. } => OpKind::Cnot,
            Gate::Toffoli { .. } => OpKind::Toffoli,
            Gate::Swap(..) => OpKind::Swap,
            Gate::Swap3(..) => OpKind::Swap3,
            Gate::Fredkin { .. } => OpKind::Fredkin,
            Gate::Maj(..) => OpKind::Maj,
            Gate::MajInv(..) => OpKind::MajInv,
        }
    }

    /// Returns the gate with every wire shifted by `offset` (sub-circuit
    /// embedding).
    pub fn offset(&self, offset: u32) -> Gate {
        let f = |w: Wire| w.offset(offset);
        match *self {
            Gate::Not(a) => Gate::Not(f(a)),
            Gate::Cnot { control, target } => Gate::Cnot {
                control: f(control),
                target: f(target),
            },
            Gate::Toffoli {
                controls: [c0, c1],
                target,
            } => Gate::Toffoli {
                controls: [f(c0), f(c1)],
                target: f(target),
            },
            Gate::Swap(a, b) => Gate::Swap(f(a), f(b)),
            Gate::Swap3(a, b, c) => Gate::Swap3(f(a), f(b), f(c)),
            Gate::Fredkin {
                control,
                targets: [t0, t1],
            } => Gate::Fredkin {
                control: f(control),
                targets: [f(t0), f(t1)],
            },
            Gate::Maj(a, b, c) => Gate::Maj(f(a), f(b), f(c)),
            Gate::MajInv(a, b, c) => Gate::MajInv(f(a), f(b), f(c)),
        }
    }

    /// Returns the gate with wires remapped through `map` (`map[old] = new`).
    ///
    /// # Panics
    ///
    /// Panics if a wire index is outside `map`.
    pub fn remap(&self, map: &[Wire]) -> Gate {
        let f = |w: Wire| map[w.index()];
        match *self {
            Gate::Not(a) => Gate::Not(f(a)),
            Gate::Cnot { control, target } => Gate::Cnot {
                control: f(control),
                target: f(target),
            },
            Gate::Toffoli {
                controls: [c0, c1],
                target,
            } => Gate::Toffoli {
                controls: [f(c0), f(c1)],
                target: f(target),
            },
            Gate::Swap(a, b) => Gate::Swap(f(a), f(b)),
            Gate::Swap3(a, b, c) => Gate::Swap3(f(a), f(b), f(c)),
            Gate::Fredkin {
                control,
                targets: [t0, t1],
            } => Gate::Fredkin {
                control: f(control),
                targets: [f(t0), f(t1)],
            },
            Gate::Maj(a, b, c) => Gate::Maj(f(a), f(b), f(c)),
            Gate::MajInv(a, b, c) => Gate::MajInv(f(a), f(b), f(c)),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let support = self.support();
        write!(f, "{}(", self.kind())?;
        for (i, w) in support.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{w}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::w;

    /// Applies `gate` to every input of an `n`-bit register and returns the
    /// output table.
    fn table(gate: Gate, n: usize) -> Vec<u64> {
        (0..(1u64 << n))
            .map(|input| {
                let mut s = BitState::from_u64(input, n);
                gate.apply(&mut s);
                s.to_u64()
            })
            .collect()
    }

    #[test]
    fn not_flips() {
        assert_eq!(table(Gate::Not(w(0)), 1), vec![1, 0]);
    }

    #[test]
    fn cnot_truth_table() {
        // wire0 = control, wire1 = target; index = q1 q0 little-endian.
        let t = table(
            Gate::Cnot {
                control: w(0),
                target: w(1),
            },
            2,
        );
        assert_eq!(t, vec![0b00, 0b11, 0b10, 0b01]);
    }

    #[test]
    fn toffoli_truth_table() {
        let gate = Gate::Toffoli {
            controls: [w(0), w(1)],
            target: w(2),
        };
        let t = table(gate, 3);
        // Only inputs with q0=q1=1 flip q2.
        assert_eq!(t[0b011], 0b111);
        assert_eq!(t[0b111], 0b011);
        for input in [0b000, 0b001, 0b010, 0b100, 0b101, 0b110] {
            assert_eq!(t[input], input as u64, "input {input:03b}");
        }
    }

    #[test]
    fn swap_exchanges_wires() {
        let t = table(Gate::Swap(w(0), w(1)), 2);
        assert_eq!(t, vec![0b00, 0b10, 0b01, 0b11]);
    }

    #[test]
    fn swap3_is_two_swaps() {
        // Figure 5: swap(q0,q1) then swap(q1,q2).
        let composed = |input: u64| {
            let mut s = BitState::from_u64(input, 3);
            Gate::Swap(w(0), w(1)).apply(&mut s);
            Gate::Swap(w(1), w(2)).apply(&mut s);
            s.to_u64()
        };
        let t = table(Gate::Swap3(w(0), w(1), w(2)), 3);
        for input in 0..8u64 {
            assert_eq!(t[input as usize], composed(input), "input {input:03b}");
        }
    }

    #[test]
    fn swap3_moves_first_wire_two_places() {
        // The value initially on q0 must end on q2.
        let mut s = BitState::from_u64(0b001, 3);
        Gate::Swap3(w(0), w(1), w(2)).apply(&mut s);
        assert_eq!(s.to_u64(), 0b100);
    }

    #[test]
    fn fredkin_swaps_only_when_control_set() {
        let gate = Gate::Fredkin {
            control: w(0),
            targets: [w(1), w(2)],
        };
        let t = table(gate, 3);
        assert_eq!(t[0b010], 0b010); // control 0: unchanged
        assert_eq!(t[0b011], 0b101); // control 1: targets swap
        assert_eq!(t[0b101], 0b011);
        assert_eq!(t[0b111], 0b111);
    }

    #[test]
    fn fredkin_conserves_ones() {
        // Conservative logic (Fredkin & Toffoli 1982): the number of 1s is
        // preserved.
        let gate = Gate::Fredkin {
            control: w(0),
            targets: [w(1), w(2)],
        };
        for (input, output) in table(gate, 3).into_iter().enumerate() {
            assert_eq!((input as u64).count_ones(), output.count_ones());
        }
    }

    #[test]
    fn maj_matches_paper_table_1() {
        // Table 1 lists rows as bit-strings q0 q1 q2. Our u64 packing is
        // little-endian (q0 = bit 0), so the string "011" is value 0b110.
        let string_to_u64 = |s: &str| {
            s.bytes()
                .enumerate()
                .fold(0u64, |acc, (i, b)| acc | (((b - b'0') as u64) << i))
        };
        let rows = [
            ("000", "000"),
            ("001", "001"),
            ("010", "010"),
            ("011", "111"),
            ("100", "011"),
            ("101", "110"),
            ("110", "101"),
            ("111", "100"),
        ];
        let t = table(Gate::Maj(w(0), w(1), w(2)), 3);
        for (input, output) in rows {
            let i = string_to_u64(input);
            let o = string_to_u64(output);
            assert_eq!(t[i as usize], o, "MAJ({input}) should be {output}");
        }
    }

    #[test]
    fn maj_first_output_is_majority() {
        let t = table(Gate::Maj(w(0), w(1), w(2)), 3);
        for input in 0..8u64 {
            let ones = input.count_ones();
            let majority = ones >= 2;
            let out_q0 = t[input as usize] & 1 == 1;
            assert_eq!(out_q0, majority, "input {input:03b}");
        }
    }

    #[test]
    fn maj_inv_encodes_repetition_code() {
        for b in [false, true] {
            let mut s = BitState::zeros(3);
            s.set(w(0), b);
            Gate::MajInv(w(0), w(1), w(2)).apply(&mut s);
            assert_eq!(s.get(w(0)), b);
            assert_eq!(s.get(w(1)), b);
            assert_eq!(s.get(w(2)), b);
        }
    }

    #[test]
    fn maj_decodes_clean_codeword_to_flag_bits() {
        // MAJ(b,b,b) = (b,0,0): majority on q0, syndrome cleared.
        for b in [0u64, 0b111] {
            let mut s = BitState::from_u64(b, 3);
            Gate::Maj(w(0), w(1), w(2)).apply(&mut s);
            assert_eq!(s.to_u64(), b & 1);
        }
    }

    #[test]
    fn all_gates_are_bijections() {
        let gates = [
            Gate::Not(w(0)),
            Gate::Cnot {
                control: w(0),
                target: w(1),
            },
            Gate::Toffoli {
                controls: [w(0), w(1)],
                target: w(2),
            },
            Gate::Swap(w(0), w(1)),
            Gate::Swap3(w(0), w(1), w(2)),
            Gate::Fredkin {
                control: w(0),
                targets: [w(1), w(2)],
            },
            Gate::Maj(w(0), w(1), w(2)),
            Gate::MajInv(w(0), w(1), w(2)),
        ];
        for gate in gates {
            let n = gate.support().max_index() + 1;
            let mut seen = vec![false; 1 << n];
            for output in table(gate, n) {
                assert!(!seen[output as usize], "{gate} maps two inputs to {output}");
                seen[output as usize] = true;
            }
        }
    }

    #[test]
    fn inverses_cancel() {
        let gates = [
            Gate::Not(w(0)),
            Gate::Cnot {
                control: w(0),
                target: w(1),
            },
            Gate::Toffoli {
                controls: [w(0), w(1)],
                target: w(2),
            },
            Gate::Swap(w(0), w(1)),
            Gate::Swap3(w(0), w(1), w(2)),
            Gate::Fredkin {
                control: w(0),
                targets: [w(1), w(2)],
            },
            Gate::Maj(w(0), w(1), w(2)),
            Gate::MajInv(w(0), w(1), w(2)),
        ];
        for gate in gates {
            let n = gate.support().max_index() + 1;
            for input in 0..(1u64 << n) {
                let mut s = BitState::from_u64(input, n);
                gate.apply(&mut s);
                gate.inverse().apply(&mut s);
                assert_eq!(s.to_u64(), input, "{gate} then inverse on {input:b}");
            }
        }
    }

    #[test]
    fn support_orders_match_arguments() {
        let gate = Gate::Maj(w(5), w(2), w(9));
        assert_eq!(gate.support().as_slice(), &[w(5), w(2), w(9)]);
        assert_eq!(gate.arity(), 3);
    }

    #[test]
    fn offset_shifts_every_wire() {
        let gate = Gate::Toffoli {
            controls: [w(0), w(1)],
            target: w(2),
        };
        let shifted = gate.offset(10);
        assert_eq!(shifted.support().as_slice(), &[w(10), w(11), w(12)]);
        assert_eq!(shifted.kind(), OpKind::Toffoli);
    }

    #[test]
    fn remap_translates_wires() {
        let gate = Gate::Cnot {
            control: w(0),
            target: w(1),
        };
        let remapped = gate.remap(&[w(7), w(3)]);
        assert_eq!(remapped.support().as_slice(), &[w(7), w(3)]);
    }

    #[test]
    fn display_is_informative() {
        let gate = Gate::Maj(w(0), w(1), w(2));
        assert_eq!(gate.to_string(), "MAJ(q0,q1,q2)");
        assert_eq!(OpKind::MajInv.to_string(), "MAJ⁻¹");
    }
}
