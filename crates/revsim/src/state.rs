//! Bit-packed register state.
//!
//! [`BitState`] holds the values of all wires in a circuit, packed 64 bits
//! per word. All Monte-Carlo inner loops run on this type, so the accessors
//! are small and inlined.

use crate::wire::Wire;
use rand::Rng;
use std::fmt;

/// The value of every wire in a gate array at one instant.
///
/// Bit `i` of the state is the value of [`Wire::new(i)`](Wire::new).
///
/// # Examples
///
/// ```
/// use rft_revsim::prelude::*;
///
/// let mut s = BitState::zeros(9);
/// s.set(w(4), true);
/// assert!(s.get(w(4)));
/// assert_eq!(s.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitState {
    words: Vec<u64>,
    len: usize,
}

impl BitState {
    /// Creates an all-zero state of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitState {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a state from a slice of booleans (`bits[i]` → wire `i`).
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut state = BitState::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                state.words[i / 64] |= 1u64 << (i % 64);
            }
        }
        state
    }

    /// Creates a `len`-bit state from the low bits of `value`
    /// (bit `i` of `value` → wire `i`).
    ///
    /// # Panics
    ///
    /// Panics if `len > 64` or if `value` has bits set at or above `len`.
    pub fn from_u64(value: u64, len: usize) -> Self {
        assert!(len <= 64, "from_u64 supports at most 64 bits, got {len}");
        assert!(
            len == 64 || value < (1u64 << len),
            "value {value:#x} does not fit in {len} bits"
        );
        let mut state = BitState::zeros(len);
        if len > 0 {
            state.words[0] = value;
        }
        state
    }

    /// Number of bits in the state.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the state holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads the value of a wire.
    ///
    /// # Panics
    ///
    /// Panics if the wire index is out of range.
    #[inline]
    pub fn get(&self, wire: Wire) -> bool {
        let i = wire.index();
        assert!(
            i < self.len,
            "wire {wire} out of range for {}-bit state",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets the value of a wire.
    ///
    /// # Panics
    ///
    /// Panics if the wire index is out of range.
    #[inline]
    pub fn set(&mut self, wire: Wire, value: bool) {
        let i = wire.index();
        assert!(
            i < self.len,
            "wire {wire} out of range for {}-bit state",
            self.len
        );
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips the value of a wire.
    ///
    /// # Panics
    ///
    /// Panics if the wire index is out of range.
    #[inline]
    pub fn flip(&mut self, wire: Wire) {
        let i = wire.index();
        assert!(
            i < self.len,
            "wire {wire} out of range for {}-bit state",
            self.len
        );
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Exchanges the values of two wires.
    #[inline]
    pub fn swap_wires(&mut self, a: Wire, b: Wire) {
        let va = self.get(a);
        let vb = self.get(b);
        self.set(a, vb);
        self.set(b, va);
    }

    /// Sets each wire in `wires` to an independent uniformly random bit.
    ///
    /// This is the paper's fault action: a failed gate "randomizes all the
    /// bits it is applied to".
    #[inline]
    pub fn randomize<R: Rng + ?Sized>(&mut self, wires: &[Wire], rng: &mut R) {
        for &wire in wires {
            self.set(wire, rng.random::<bool>());
        }
    }

    /// Writes `pattern` onto `wires`: bit `j` of `pattern` → `wires[j]`.
    ///
    /// Used by deterministic fault plans to enumerate every possible
    /// corruption of an operation's support.
    #[inline]
    pub fn write_pattern(&mut self, wires: &[Wire], pattern: u8) {
        for (j, &wire) in wires.iter().enumerate() {
            self.set(wire, (pattern >> j) & 1 == 1);
        }
    }

    /// Reads the values of `wires` as a packed pattern: `wires[j]` → bit `j`.
    #[inline]
    pub fn read_pattern(&self, wires: &[Wire]) -> u8 {
        let mut pattern = 0u8;
        for (j, &wire) in wires.iter().enumerate() {
            if self.get(wire) {
                pattern |= 1 << j;
            }
        }
        pattern
    }

    /// Returns the state as a `u64` (bit `i` = wire `i`).
    ///
    /// # Panics
    ///
    /// Panics if the state is wider than 64 bits.
    pub fn to_u64(&self) -> u64 {
        assert!(self.len <= 64, "state too wide for u64: {} bits", self.len);
        if self.len == 0 {
            0
        } else {
            self.words[0]
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Hamming distance to another state of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming_distance(&self, other: &BitState) -> u32 {
        assert_eq!(
            self.len, other.len,
            "hamming distance requires equal lengths"
        );
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Iterates over all bit values, wire 0 first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| (self.words[i / 64] >> (i % 64)) & 1 == 1)
    }

    /// Sets every bit to zero.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

impl fmt::Debug for BitState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitState[")?;
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitState {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        BitState::from_bools(&bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::w;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_is_all_zero() {
        let s = BitState::zeros(130);
        assert_eq!(s.len(), 130);
        assert_eq!(s.count_ones(), 0);
        assert!(s.iter().all(|b| !b));
    }

    #[test]
    fn set_get_flip_across_word_boundary() {
        let mut s = BitState::zeros(130);
        for i in [0u32, 63, 64, 65, 127, 128, 129] {
            s.set(w(i), true);
            assert!(s.get(w(i)), "bit {i}");
            s.flip(w(i));
            assert!(!s.get(w(i)), "bit {i} after flip");
        }
    }

    #[test]
    fn from_bools_roundtrip() {
        let bits = [true, false, true, true, false];
        let s = BitState::from_bools(&bits);
        let back: Vec<bool> = s.iter().collect();
        assert_eq!(back, bits);
    }

    #[test]
    fn from_u64_little_endian() {
        let s = BitState::from_u64(0b1011, 4);
        assert!(s.get(w(0)));
        assert!(s.get(w(1)));
        assert!(!s.get(w(2)));
        assert!(s.get(w(3)));
        assert_eq!(s.to_u64(), 0b1011);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn from_u64_rejects_overflow_value() {
        let _ = BitState::from_u64(0b10000, 4);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn from_u64_rejects_wide() {
        let _ = BitState::from_u64(0, 65);
    }

    #[test]
    fn swap_wires_exchanges() {
        let mut s = BitState::from_u64(0b01, 2);
        s.swap_wires(w(0), w(1));
        assert_eq!(s.to_u64(), 0b10);
        s.swap_wires(w(0), w(1));
        assert_eq!(s.to_u64(), 0b01);
    }

    #[test]
    fn patterns_roundtrip() {
        let mut s = BitState::zeros(9);
        let wires = [w(2), w(5), w(7)];
        for pattern in 0u8..8 {
            s.write_pattern(&wires, pattern);
            assert_eq!(s.read_pattern(&wires), pattern);
        }
    }

    #[test]
    fn hamming_distance_counts_differences() {
        let a = BitState::from_u64(0b1100, 4);
        let b = BitState::from_u64(0b1010, 4);
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hamming_distance_length_mismatch_panics() {
        let a = BitState::zeros(4);
        let b = BitState::zeros(5);
        let _ = a.hamming_distance(&b);
    }

    #[test]
    fn randomize_touches_only_given_wires() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut s = BitState::zeros(16);
        s.randomize(&[w(3), w(8)], &mut rng);
        for i in 0..16u32 {
            if i != 3 && i != 8 {
                assert!(!s.get(w(i)), "wire {i} should be untouched");
            }
        }
    }

    #[test]
    fn randomize_is_eventually_nonzero() {
        // With 64 random draws, the probability all stay zero is 2^-64.
        let mut rng = SmallRng::seed_from_u64(1);
        let mut s = BitState::zeros(64);
        let wires: Vec<Wire> = (0..64).map(w).collect();
        s.randomize(&wires, &mut rng);
        assert!(s.count_ones() > 0);
    }

    #[test]
    fn display_and_debug_render_bits() {
        let s = BitState::from_bools(&[true, false, true]);
        assert_eq!(s.to_string(), "101");
        assert_eq!(format!("{s:?}"), "BitState[101]");
    }

    #[test]
    fn collect_from_iterator() {
        let s: BitState = [true, true, false].into_iter().collect();
        assert_eq!(s.to_string(), "110");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let s = BitState::zeros(3);
        let _ = s.get(w(3));
    }

    #[test]
    fn clear_resets() {
        let mut s = BitState::from_u64(0b111, 3);
        s.clear();
        assert_eq!(s.count_ones(), 0);
    }
}
