//! Deterministic fault injection.
//!
//! The paper's fault-tolerance argument for Figure 2 is combinatorial: "as
//! long as there is no more than one error in all of these operations, the
//! final result will not be an error". Rather than sampling that claim we
//! verify it exhaustively: a failed operation replaces the values on its
//! support with *any* of the `2^arity` patterns, so enumerating every
//! `(operation, pattern)` pair covers every possible single-fault outcome.

use crate::circuit::Circuit;
use crate::op::Op;
use serde::{Deserialize, Serialize};

/// One planned fault: operation `op_index` fails and leaves `pattern` on its
/// support (bit `j` of `pattern` → `support[j]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlannedFault {
    /// Index of the failing operation within the circuit.
    pub op_index: usize,
    /// Values written onto the operation's support instead of executing it.
    pub pattern: u8,
}

/// A set of planned faults for one deterministic run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// The empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with a single fault.
    pub fn single(op_index: usize, pattern: u8) -> Self {
        FaultPlan {
            faults: vec![PlannedFault { op_index, pattern }],
        }
    }

    /// A plan from explicit faults.
    ///
    /// # Panics
    ///
    /// Panics if two faults target the same operation.
    pub fn new(faults: Vec<PlannedFault>) -> Self {
        for i in 0..faults.len() {
            for j in (i + 1)..faults.len() {
                assert_ne!(
                    faults[i].op_index, faults[j].op_index,
                    "two faults target op {}",
                    faults[i].op_index
                );
            }
        }
        FaultPlan { faults }
    }

    /// The planned faults.
    pub fn faults(&self) -> &[PlannedFault] {
        &self.faults
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Pattern for `op_index`, if it is planned to fail.
    #[inline]
    pub fn pattern_for(&self, op_index: usize) -> Option<u8> {
        self.faults
            .iter()
            .find(|f| f.op_index == op_index)
            .map(|f| f.pattern)
    }
}

impl FromIterator<PlannedFault> for FaultPlan {
    fn from_iter<T: IntoIterator<Item = PlannedFault>>(iter: T) -> Self {
        FaultPlan::new(iter.into_iter().collect())
    }
}

/// Enumerates every possible single-fault plan for `circuit`: each operation
/// failing with each of its `2^arity` output patterns.
///
/// # Examples
///
/// ```
/// use rft_revsim::prelude::*;
/// use rft_revsim::fault::single_fault_plans;
///
/// let mut c = Circuit::new(3);
/// c.maj(w(0), w(1), w(2)); // arity 3 -> 8 patterns
/// c.swap(w(0), w(1));      // arity 2 -> 4 patterns
/// assert_eq!(single_fault_plans(&c).count(), 12);
/// ```
pub fn single_fault_plans(circuit: &Circuit) -> impl Iterator<Item = FaultPlan> + '_ {
    circuit.ops().iter().enumerate().flat_map(|(i, op)| {
        let patterns = 1u16 << op.arity();
        (0..patterns).map(move |p| FaultPlan::single(i, p as u8))
    })
}

/// Enumerates every two-fault plan (unordered pairs of distinct operations,
/// all pattern combinations). Used to show the single-fault guarantee is
/// tight: some pair of faults defeats the recovery circuit.
pub fn double_fault_plans(circuit: &Circuit) -> impl Iterator<Item = FaultPlan> + '_ {
    let ops: Vec<(usize, &Op)> = circuit.ops().iter().enumerate().collect();
    let n = ops.len();
    let arity = move |i: usize| circuit.ops()[i].arity();
    (0..n).flat_map(move |i| {
        (i + 1..n).flat_map(move |j| {
            let pi = 1u16 << arity(i);
            let pj = 1u16 << arity(j);
            (0..pi).flat_map(move |a| {
                (0..pj).map(move |b| {
                    FaultPlan::new(vec![
                        PlannedFault {
                            op_index: i,
                            pattern: a as u8,
                        },
                        PlannedFault {
                            op_index: j,
                            pattern: b as u8,
                        },
                    ])
                })
            })
        })
    })
}

/// Total number of single-fault plans for a circuit.
pub fn single_fault_plan_count(circuit: &Circuit) -> usize {
    circuit.ops().iter().map(|op| 1usize << op.arity()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::w;

    fn two_op_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.not(w(0)); // 2 patterns
        c.maj(w(0), w(1), w(2)); // 8 patterns
        c
    }

    #[test]
    fn single_plans_enumerate_all_patterns() {
        let c = two_op_circuit();
        let plans: Vec<FaultPlan> = single_fault_plans(&c).collect();
        assert_eq!(plans.len(), 2 + 8);
        assert_eq!(plans.len(), single_fault_plan_count(&c));
        assert!(plans.iter().all(|p| p.len() == 1));
        // first op: patterns 0..2 on op 0
        assert_eq!(plans[0], FaultPlan::single(0, 0));
        assert_eq!(plans[1], FaultPlan::single(0, 1));
        assert_eq!(plans[2], FaultPlan::single(1, 0));
    }

    #[test]
    fn double_plans_pair_distinct_ops() {
        let c = two_op_circuit();
        let plans: Vec<FaultPlan> = double_fault_plans(&c).collect();
        // one op pair (0,1): 2 * 8 pattern combinations
        assert_eq!(plans.len(), 16);
        for plan in &plans {
            assert_eq!(plan.len(), 2);
            assert_ne!(plan.faults()[0].op_index, plan.faults()[1].op_index);
        }
    }

    #[test]
    fn pattern_lookup() {
        let plan = FaultPlan::single(3, 0b101);
        assert_eq!(plan.pattern_for(3), Some(0b101));
        assert_eq!(plan.pattern_for(2), None);
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    #[should_panic(expected = "two faults target op")]
    fn plan_rejects_duplicate_targets() {
        let _ = FaultPlan::new(vec![
            PlannedFault {
                op_index: 1,
                pattern: 0,
            },
            PlannedFault {
                op_index: 1,
                pattern: 1,
            },
        ]);
    }

    #[test]
    fn collect_plan_from_iterator() {
        let plan: FaultPlan = [
            PlannedFault {
                op_index: 0,
                pattern: 1,
            },
            PlannedFault {
                op_index: 2,
                pattern: 3,
            },
        ]
        .into_iter()
        .collect();
        assert_eq!(plan.len(), 2);
    }
}
