//! Exhaustive truth tables for small reversible circuits.
//!
//! A reversible circuit on `n ≤ MAX_WIRES` wires is a permutation of
//! `2^n` states. [`Permutation`] extracts that table, verifies bijectivity,
//! and supports composition/inversion — the tool used to check Figure 1
//! (MAJ = 2 CNOT + Toffoli) and Table 1 of the paper.

use crate::circuit::Circuit;
use crate::error::{Error, Result};
use crate::state::BitState;
use serde::{Deserialize, Serialize};

/// Maximum circuit width for exhaustive permutation extraction (2^20 states).
pub const MAX_WIRES: usize = 20;

/// A bijection on `2^n`-state space, stored as a full lookup table.
///
/// # Examples
///
/// ```
/// use rft_revsim::prelude::*;
/// use rft_revsim::permutation::Permutation;
///
/// let mut c = Circuit::new(2);
/// c.cnot(w(0), w(1));
/// let p = Permutation::of_circuit(&c)?;
/// assert_eq!(p.apply(0b01), 0b11);
/// assert!(p.compose(&p.inverse()).is_identity());
/// # Ok::<(), rft_revsim::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Permutation {
    n_bits: usize,
    map: Vec<u64>,
}

impl Permutation {
    /// Extracts the permutation computed by a reversible circuit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyWires`] for circuits wider than
    /// [`MAX_WIRES`], and [`Error::Irreversible`] if the circuit contains an
    /// `Init` operation.
    pub fn of_circuit(circuit: &Circuit) -> Result<Permutation> {
        let n = circuit.n_wires();
        if n > MAX_WIRES {
            return Err(Error::TooManyWires {
                n_wires: n,
                max: MAX_WIRES,
            });
        }
        if !circuit.is_reversible() {
            return Err(Error::Irreversible);
        }
        let size = 1usize << n;
        let mut map = Vec::with_capacity(size);
        for input in 0..size as u64 {
            let mut state = BitState::from_u64(input, n);
            circuit.run(&mut state);
            map.push(state.to_u64());
        }
        Ok(Permutation { n_bits: n, map })
    }

    /// Builds a permutation from an explicit table.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotBijective`] if the table is not a bijection on
    /// `2^n_bits` states (including wrong length).
    pub fn from_map(n_bits: usize, map: Vec<u64>) -> Result<Permutation> {
        let size = 1usize << n_bits;
        if map.len() != size {
            return Err(Error::NotBijective);
        }
        let mut seen = vec![false; size];
        for &v in &map {
            if v as usize >= size || seen[v as usize] {
                return Err(Error::NotBijective);
            }
            seen[v as usize] = true;
        }
        Ok(Permutation { n_bits, map })
    }

    /// The identity permutation on `n_bits` bits.
    pub fn identity(n_bits: usize) -> Permutation {
        Permutation {
            n_bits,
            map: (0..(1u64 << n_bits)).collect(),
        }
    }

    /// Number of bits.
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// Applies the permutation to a packed state.
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    pub fn apply(&self, input: u64) -> u64 {
        self.map[input as usize]
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &v)| i as u64 == v)
    }

    /// Returns `other ∘ self` (apply `self` first).
    ///
    /// # Panics
    ///
    /// Panics if bit widths differ.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(
            self.n_bits, other.n_bits,
            "composing permutations of different widths"
        );
        let map = self.map.iter().map(|&v| other.map[v as usize]).collect();
        Permutation {
            n_bits: self.n_bits,
            map,
        }
    }

    /// Returns the inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut map = vec![0u64; self.map.len()];
        for (i, &v) in self.map.iter().enumerate() {
            map[v as usize] = i as u64;
        }
        Permutation {
            n_bits: self.n_bits,
            map,
        }
    }

    /// Iterates over `(input, output)` rows — a truth table.
    pub fn rows(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.map.iter().enumerate().map(|(i, &v)| (i as u64, v))
    }

    /// The number of fixed points.
    pub fn fixed_points(&self) -> usize {
        self.rows().filter(|(i, o)| i == o).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::w;

    fn maj_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.maj(w(0), w(1), w(2));
        c
    }

    #[test]
    fn of_circuit_is_bijective_and_matches_gate() {
        let p = Permutation::of_circuit(&maj_circuit()).unwrap();
        assert_eq!(p.n_bits(), 3);
        // spot-check Table 1 row "100" -> "011" (little-endian 0b001 -> 0b110)
        assert_eq!(p.apply(0b001), 0b110);
        // bijectivity via from_map validation
        assert!(Permutation::from_map(3, p.rows().map(|(_, o)| o).collect()).is_ok());
    }

    #[test]
    fn rejects_wide_circuits() {
        let c = Circuit::new(MAX_WIRES + 1);
        assert!(matches!(
            Permutation::of_circuit(&c),
            Err(Error::TooManyWires {
                n_wires: 21,
                max: MAX_WIRES
            })
        ));
    }

    #[test]
    fn rejects_irreversible_circuits() {
        let mut c = Circuit::new(3);
        c.init(&[w(0)]);
        assert_eq!(
            Permutation::of_circuit(&c).unwrap_err(),
            Error::Irreversible
        );
    }

    #[test]
    fn compose_with_inverse_is_identity() {
        let p = Permutation::of_circuit(&maj_circuit()).unwrap();
        assert!(p.compose(&p.inverse()).is_identity());
        assert!(p.inverse().compose(&p).is_identity());
    }

    #[test]
    fn circuit_inverse_matches_permutation_inverse() {
        let c = maj_circuit();
        let p = Permutation::of_circuit(&c).unwrap();
        let p_inv = Permutation::of_circuit(&c.inverted().unwrap()).unwrap();
        assert_eq!(p.inverse(), p_inv);
    }

    #[test]
    fn from_map_rejects_non_bijections() {
        assert_eq!(
            Permutation::from_map(2, vec![0, 0, 1, 2]).unwrap_err(),
            Error::NotBijective
        );
        assert_eq!(
            Permutation::from_map(2, vec![0, 1, 2]).unwrap_err(),
            Error::NotBijective
        );
        assert_eq!(
            Permutation::from_map(1, vec![0, 2]).unwrap_err(),
            Error::NotBijective
        );
    }

    #[test]
    fn identity_has_all_fixed_points() {
        let id = Permutation::identity(4);
        assert!(id.is_identity());
        assert_eq!(id.fixed_points(), 16);
    }

    #[test]
    fn maj_permutation_has_known_fixed_points() {
        // Table 1: rows 000, 001, 010 map to themselves.
        let p = Permutation::of_circuit(&maj_circuit()).unwrap();
        assert_eq!(p.fixed_points(), 3);
    }

    #[test]
    fn compose_applies_left_first() {
        // NOT then CNOT differs from CNOT then NOT on wire 0.
        let mut a = Circuit::new(2);
        a.not(w(0));
        let mut b = Circuit::new(2);
        b.cnot(w(0), w(1));
        let pa = Permutation::of_circuit(&a).unwrap();
        let pb = Permutation::of_circuit(&b).unwrap();
        let ab = pa.compose(&pb);
        // input 00 -> NOT -> 01(q0=1) -> CNOT -> q1 flips -> 11
        assert_eq!(ab.apply(0b00), 0b11);
        let ba = pb.compose(&pa);
        assert_eq!(ba.apply(0b00), 0b01);
    }
}
