//! The unified execution engine: compile once, run many.
//!
//! Every consumer of the simulator — the Monte-Carlo estimators, the
//! experiment harness, benches and examples — funnels through this module
//! instead of choosing between the scalar executors ([`crate::exec`]) and
//! the bit-parallel batch executors ([`crate::batch`]) by hand.
//!
//! The pieces:
//!
//! - [`Engine`] — the compile-once artifact: the flattened operation
//!   stream plus the per-operation fault probabilities and the exact
//!   binomial fault-mask samplers derived from a bound [`NoiseModel`].
//!   Compiling is one pass over the circuit; an `Engine` is then reused
//!   across as many runs as needed.
//! - [`Backend`] — an object-safe execution strategy over 64-lane words:
//!   [`ScalarBackend`] (the semantic reference: one [`BitState`] per lane,
//!   ops applied scalarly), [`BatchBackend`] (branch-free bit-plane
//!   kernels), and [`PlannedFaultBackend`] (deterministic fault injection
//!   from a [`FaultPlan`], the exhaustive-proof path).
//! - [`McOptions`] — the typed Monte-Carlo run configuration: `trials`,
//!   `seed`, `threads`, an explicit or [`BackendKind::Auto`] backend with
//!   a batch-routing threshold, and an optional target relative error
//!   that enables adaptive early stopping.
//! - [`WordTrial`] — how a caller prepares 64 trial inputs and judges 64
//!   outcomes; [`Engine::estimate`] drives it through the selected
//!   backend, threaded and deterministically seeded.
//! - [`Simulation`] — an `Engine` bound to its `McOptions`: the
//!   compile-once/run-many handle for repeated estimates.
//!
//! # Backend selection policy
//!
//! [`BackendKind::Auto`] routes a run to [`BatchBackend`] when the trial
//! budget reaches [`McOptions::batch_threshold`] (default
//! [`DEFAULT_BATCH_THRESHOLD`] = 256 trials: four 64-lane words, enough to
//! amortize plane packing) and to [`ScalarBackend`] below it.
//!
//! Both Monte-Carlo backends consume the *same* random stream in the same
//! order — one fault mask per operation per word, then one random plane
//! per support wire of faulting words — so for a given seed they produce
//! **bit-identical lanes**, not merely statistically equivalent ones. The
//! property tests in `tests/batch_equivalence.rs` pin this down.
//!
//! # Rare-event estimation
//!
//! Deep below threshold (`g ≪ ρ`) almost every trial executes fault-free,
//! and a fault-free trial of an encode → run → decode experiment cannot
//! fail: plain Monte-Carlo spends essentially its whole budget confirming
//! an outcome that is known analytically. The [`Estimator::Stratified`]
//! mode in [`McOptions`] instead *stratifies by the per-trial fault count*
//! `K` — a Poisson-binomial random variable whose distribution the engine
//! derives once from the compiled per-op fault probabilities
//! ([`Engine::fault_count_pmf`]).
//!
//! Writing `w_k = P(K = k)` and `q_k = P(trial fails | K = k)`, the
//! logical failure rate decomposes exactly as
//!
//! ```text
//! p  =  Σ_k w_k · q_k  =  Σ_{k ≥ m} w_k · q_k        (q_k = 0 for k < m)
//! ```
//!
//! where the *elided* strata `k < m` (`m =` `min_faults`, default 1)
//! contribute nothing: a fault-free word never fails, so the `k = 0`
//! stratum — weight `P(K = 0) =` [`Engine::fault_free_probability`] — is
//! resolved analytically with **zero variance and zero executed words**.
//! Each executed stratum conditions word generation on its fault count
//! (sample the count, then place the faults via the exact conditional
//! distribution), so the estimator
//!
//! ```text
//! p̂  =  Σ_{k ≥ m} w_k · q̂_k ,    q̂_k = failures_k / trials_k
//! ```
//!
//! is unbiased (`E q̂_k = q_k`), with variance
//! `Σ_k w_k² q_k (1 − q_k) / n_k` — smaller than plain MC's
//! `p(1 − p)/n` by roughly the fault-free mass, and far smaller once the
//! per-round Neyman reallocation concentrates trials in the strata that
//! actually produce failures. `rft_analysis::stats::stratified_estimate`
//! turns the per-stratum tallies into a Wilson-style confidence interval.
//!
//! **Worked level-2 example.** A level-2 concatenated Toffoli cycle has
//! ~1800 fallible ops; at `g = 10⁻³` its logical failure rate is ~10⁻⁶
//! (Equation 2 bound `ρ(g/ρ)⁴ ≈ 4.5·10⁻⁶`). Plain MC at 10⁶ trials
//! expects a handful of failures — an interval spanning a decade. The
//! stratified estimator elides the `K ≤ 1` mass (~46%; single faults are
//! provably corrected, so `min_faults = 2` is sound once the single-fault
//! sweep of `rft_core::ftcheck` has passed), spends its words on the
//! `K = 2, 3, …` strata in Neyman proportion, and resolves the same rate
//! to ~10% relative error in seconds — see `benches/rare_event.rs`.
//!
//! The scheme preserves the engine's determinism contract: strata
//! allocation is a pure function of the seed-deterministic tallies, every
//! word still derives its RNG stream from `(seed, global word index)`,
//! and both Monte-Carlo backends execute one shared conditional mask
//! schedule, so stratified results are bit-identical across backends and
//! thread counts for a given seed.
//!
//! # Examples
//!
//! ```
//! use rft_revsim::prelude::*;
//!
//! // The Figure-2-style recovery circuit under uniform noise.
//! let mut c = Circuit::new(9);
//! c.init(&[w(3), w(4), w(5)])
//!     .init(&[w(6), w(7), w(8)])
//!     .maj_inv(w(0), w(3), w(6))
//!     .maj_inv(w(1), w(4), w(7))
//!     .maj_inv(w(2), w(5), w(8))
//!     .maj(w(0), w(1), w(2))
//!     .maj(w(3), w(4), w(5))
//!     .maj(w(6), w(7), w(8));
//!
//! // Compile once...
//! let engine = Engine::compile(&c, &UniformNoise::new(0.01));
//!
//! // ...run many: scalar one-shot,
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! let mut rng = SmallRng::seed_from_u64(7);
//! let mut state = BitState::zeros(9);
//! let report = engine.run_scalar(&mut state, &mut rng);
//!
//! // ...or 64 lanes at a time on the batch backend.
//! let mut batch = BatchState::zeros(9, 1);
//! let batch_report = engine.run_batch(&mut batch, &mut rng);
//! assert_eq!(batch_report.faulted_lanes.len(), 1);
//! # let _ = report;
//! ```

use crate::batch::{kernels, BatchExecReport, BatchState};
use crate::circuit::Circuit;
use crate::exec::{ExecObserver, ExecReport, NullObserver};
use crate::fault::FaultPlan;
use crate::microop::{self, CompileStats, CompiledOps, ExecScratch};
use crate::noise::NoiseModel;
use crate::op::Op;
use crate::state::BitState;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use rft_obs::{Collector, Gauge, Hist, Metric};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, Mutex, OnceLock};

/// Trial count at which [`BackendKind::Auto`] switches from the scalar to
/// the batch backend (four 64-lane words).
pub const DEFAULT_BATCH_THRESHOLD: u64 = 256;

/// Default number of fault-count strata for [`Estimator::Stratified`]
/// (explicit counts `m, m+1, …` plus one unbounded tail stratum).
pub const DEFAULT_STRATA_CAP: u32 = 4;

/// Executable probability mass (`P(K ≥ min_failing_faults)`) below which
/// [`Estimator::Auto`] routes an eligible trial to the stratified
/// estimator: once ≥ 80% of plain-MC words would resolve analytically,
/// conditioning pays for its bookkeeping many times over.
pub const STRATIFIED_ROUTING_THRESHOLD: f64 = 0.2;

/// Tail mass below which the fault-count PMF is truncated. The stratified
/// estimator is exactly unbiased for the truncated distribution, which is
/// within this absolute mass of the true Poisson binomial.
const PMF_TAIL_EPS: f64 = 1e-12;

/// Upper bound on the doubling round size of the stratified word loop
/// (bounds thread-spawn overhead without starving reallocation).
const MAX_ROUND_WORDS: u64 = 8192;

/// Failures required before adaptive early stopping may trigger (below
/// this the relative-error estimate itself is too noisy to act on).
const MIN_FAILURES_FOR_STOP: u64 = 16;

/// Words per adaptive round (stopping checks happen at round boundaries).
/// Fixed — independent of the thread count — so an early-stopped result
/// is exactly as deterministic as a full run: a function of the seed
/// alone.
const ADAPTIVE_ROUND_WORDS: u64 = 32;

/// Per-word seed stride (golden-ratio odd constant, as in SplitMix64).
const WORD_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Marker for operations that never fault.
pub(crate) const NEVER: usize = usize::MAX;

// ---------------------------------------------------------------------------
// Fault table: per-op probabilities + exact binomial mask samplers
// ---------------------------------------------------------------------------

/// Per-operation fault-mask sampler: the CDF of `Binomial(64, p)`.
#[derive(Debug, Clone)]
pub(crate) struct MaskSampler {
    /// `cdf[k]` = P(number of faulting lanes ≤ k); `cdf[64] = 1`.
    cdf: Vec<f64>,
}

impl MaskSampler {
    pub(crate) fn new(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "fault probability must be in [0,1], got {p}"
        );
        let mut cdf = vec![1.0; 65];
        if p == 0.0 {
            return MaskSampler { cdf };
        }
        if p == 1.0 {
            for c in cdf.iter_mut().take(64) {
                *c = 0.0;
            }
            return MaskSampler { cdf };
        }
        let ratio = p / (1.0 - p);
        let mut pmf = (1.0 - p).powi(64);
        let mut acc = 0.0;
        for (k, c) in cdf.iter_mut().enumerate().take(64) {
            acc += pmf;
            *c = acc.min(1.0);
            pmf *= ratio * (64 - k) as f64 / (k + 1) as f64;
        }
        MaskSampler { cdf }
    }

    /// Draws a 64-lane fault mask distributed as 64 i.i.d. Bernoulli(p)
    /// bits: one exact binomial draw for the fault count, then uniform
    /// placement — one `f64` sample in the common zero-fault case.
    #[inline]
    pub(crate) fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        // Fast path: no faults in this word.
        if u < self.cdf[0] {
            return 0;
        }
        let mut k = 1usize;
        while k < 64 && u >= self.cdf[k] {
            k += 1;
        }
        // Choose k distinct lane positions uniformly. For k > 32 place the
        // complement instead (fewer rejections). The draw is the exact
        // `random_range(0..64)` stream — for a power-of-two span Lemire's
        // rejection zone is empty and the map is the top six bits — spelt
        // out to keep the hardware division out of this hot path.
        let (count, invert) = if k <= 32 { (k, false) } else { (64 - k, true) };
        let mut mask = 0u64;
        let mut placed = 0usize;
        while placed < count {
            let bit = 1u64 << (rng.random::<u64>() >> 58);
            if mask & bit == 0 {
                mask |= bit;
                placed += 1;
            }
        }
        if invert {
            !mask
        } else {
            mask
        }
    }
}

/// A [`NoiseModel`] lowered against one circuit: per-op fault
/// probabilities plus one mask sampler per distinct probability.
#[derive(Debug, Clone)]
pub(crate) struct FaultTable {
    /// Fault probability per operation.
    pub(crate) probs: Vec<f64>,
    /// Sampler index per operation ([`NEVER`] = never faults).
    pub(crate) sampler_of: Vec<usize>,
    pub(crate) samplers: Vec<MaskSampler>,
    /// Fault probability per sampler (one per distinct nonzero rate).
    sampler_rates: Vec<f64>,
    /// `Π (1 − p_i)`: probability that one trial executes fault-free.
    p_fault_free: f64,
}

impl FaultTable {
    pub(crate) fn compile<N: NoiseModel + ?Sized>(circuit: &Circuit, noise: &N) -> Self {
        let mut rates: Vec<u64> = Vec::new();
        let mut samplers = Vec::new();
        let mut sampler_rates = Vec::new();
        let mut probs = Vec::with_capacity(circuit.len());
        let mut p_fault_free = 1.0f64;
        let sampler_of = circuit
            .ops()
            .iter()
            .map(|op| {
                let p = noise.fault_probability(op);
                assert!(
                    (0.0..=1.0).contains(&p),
                    "noise model returned probability {p} outside [0,1]"
                );
                probs.push(p);
                p_fault_free *= 1.0 - p;
                if p <= 0.0 {
                    return NEVER;
                }
                let bits = p.to_bits();
                match rates.iter().position(|&r| r == bits) {
                    Some(i) => i,
                    None => {
                        rates.push(bits);
                        samplers.push(MaskSampler::new(p));
                        sampler_rates.push(p);
                        samplers.len() - 1
                    }
                }
            })
            .collect();
        FaultTable {
            probs,
            sampler_of,
            samplers,
            sampler_rates,
            p_fault_free,
        }
    }

    pub(crate) fn n_ops(&self) -> usize {
        self.sampler_of.len()
    }
}

// ---------------------------------------------------------------------------
// Fault-count distribution: Poisson binomial over the rate groups
// ---------------------------------------------------------------------------

/// The per-trial fault-count distribution of a compiled circuit — a
/// Poisson binomial over the per-op Bernoulli fault indicators, factored
/// through the engine's *rate groups* (ops sharing one probability, i.e.
/// one [`MaskSampler`]), so a group's contribution is an exact
/// `Binomial(n_j, p_j)`.
///
/// Built lazily (once per [`Engine`]) by [`Engine::fault_dist`]; powers
/// the [`Estimator::Stratified`] weights and the conditional fault
/// placement. PMFs are truncated where the remaining tail mass drops
/// below [`PMF_TAIL_EPS`]; the stratified estimator is exactly unbiased
/// for the truncated distribution.
#[derive(Debug, Clone)]
pub(crate) struct FaultCountDist {
    /// Rate groups in sampler order.
    groups: Vec<FaultGroup>,
    /// `suffix[j][k]` = P(groups `j..` contribute exactly `k` faults);
    /// `suffix[0]` is the full fault-count PMF. `suffix[m]` = `[1.0]`.
    suffix: Vec<Vec<f64>>,
    /// Mass beyond the PMF truncation point (`P(K ≥ pmf len)`), folded
    /// into the top bin when the tail stratum samples a count.
    tail_beyond: f64,
}

#[derive(Debug, Clone)]
struct FaultGroup {
    /// Global op indices sharing this rate (placement is uniform here).
    ops: Vec<u32>,
    /// `Binomial(ops.len(), rate)` PMF, truncated like the total PMF.
    pmf: Vec<f64>,
}

/// `Binomial(n, p)` PMF by the stable multiplicative recurrence, truncated
/// once the accumulated mass reaches `1 − PMF_TAIL_EPS / 4`.
fn binomial_pmf(n: usize, p: f64) -> Vec<f64> {
    if p >= 1.0 {
        let mut pmf = vec![0.0; n + 1];
        pmf[n] = 1.0;
        return pmf;
    }
    let ratio = p / (1.0 - p);
    let mut pmf = Vec::with_capacity(n + 1);
    let mut term = (1.0 - p).powi(n as i32);
    let mut acc = 0.0;
    for k in 0..=n {
        pmf.push(term);
        acc += term;
        if acc >= 1.0 - PMF_TAIL_EPS / 4.0 {
            break;
        }
        term *= ratio * (n - k) as f64 / (k + 1) as f64;
    }
    pmf
}

/// Convolution of two truncated PMFs, re-truncated at the same tail mass.
fn convolve_pmf(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    // Trim the tail once the retained mass is within tolerance.
    let mut acc = 0.0;
    let mut keep = out.len();
    for (k, &v) in out.iter().enumerate() {
        acc += v;
        if acc >= 1.0 - PMF_TAIL_EPS / 4.0 {
            keep = k + 1;
            break;
        }
    }
    out.truncate(keep);
    out
}

impl FaultCountDist {
    /// Approximate heap footprint (size input of cache eviction).
    fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let groups: usize = self
            .groups
            .iter()
            .map(|g| {
                size_of::<FaultGroup>()
                    + g.ops.len() * size_of::<u32>()
                    + g.pmf.len() * size_of::<f64>()
            })
            .sum();
        let suffix: usize = self
            .suffix
            .iter()
            .map(|row| size_of::<Vec<f64>>() + row.len() * size_of::<f64>())
            .sum();
        size_of::<FaultCountDist>() + groups + suffix
    }

    fn build(table: &FaultTable) -> Self {
        let mut groups: Vec<FaultGroup> = table
            .sampler_rates
            .iter()
            .map(|_| FaultGroup {
                ops: Vec::new(),
                pmf: Vec::new(),
            })
            .collect();
        for (i, &s) in table.sampler_of.iter().enumerate() {
            if s != NEVER {
                groups[s].ops.push(i as u32);
            }
        }
        for (group, &rate) in groups.iter_mut().zip(&table.sampler_rates) {
            group.pmf = binomial_pmf(group.ops.len(), rate);
        }
        let m = groups.len();
        let mut suffix = vec![Vec::new(); m + 1];
        suffix[m] = vec![1.0];
        for j in (0..m).rev() {
            suffix[j] = convolve_pmf(&groups[j].pmf, &suffix[j + 1]);
        }
        let tail_beyond = (1.0 - suffix[0].iter().sum::<f64>()).max(0.0);
        FaultCountDist {
            groups,
            suffix,
            tail_beyond,
        }
    }

    /// The (truncated) fault-count PMF.
    pub(crate) fn pmf(&self) -> &[f64] {
        &self.suffix[0]
    }

    /// `P(K = k)` (zero beyond the truncation point).
    pub(crate) fn pmf_at(&self, k: usize) -> f64 {
        self.pmf().get(k).copied().unwrap_or(0.0)
    }

    /// `P(K ≥ k)`, including the truncated tail mass.
    pub(crate) fn mass_at_least(&self, k: usize) -> f64 {
        let below: f64 = self.pmf().iter().take(k).sum();
        (1.0 - below).max(0.0)
    }

    /// Largest fault count the truncated PMF represents.
    pub(crate) fn max_k(&self) -> usize {
        self.pmf().len() - 1
    }

    /// Samples the fault set of one lane conditioned on **exactly** `k`
    /// faults, appending global op indices to `out` (cleared first).
    ///
    /// Sequential conditional sampling over the rate groups: group `j`
    /// takes `t` faults with probability `B_j[t] · S_{j+1}[rem − t] /
    /// S_j[rem]`, then `t` distinct ops are placed uniformly within the
    /// group (exact, since all its ops share one rate).
    fn sample_exact<R: Rng + ?Sized>(
        &self,
        k: usize,
        rng: &mut R,
        out: &mut Vec<u32>,
        scratch: &mut Vec<usize>,
    ) {
        out.clear();
        let mut rem = k;
        let m = self.groups.len();
        for j in 0..m {
            if rem == 0 {
                break;
            }
            let group = &self.groups[j];
            let t = if j + 1 == m {
                rem.min(group.ops.len())
            } else {
                let total = self.suffix[j].get(rem).copied().unwrap_or(0.0);
                let hi = rem.min(group.pmf.len() - 1);
                let mut chosen = hi.min(group.ops.len());
                if total > 0.0 {
                    let mut u = rng.random::<f64>() * total;
                    let next = &self.suffix[j + 1];
                    for t in 0..=hi {
                        let w = group.pmf[t] * next.get(rem - t).copied().unwrap_or(0.0);
                        if u < w {
                            chosen = t;
                            break;
                        }
                        u -= w;
                    }
                }
                chosen
            };
            place_uniform(&group.ops, t, rng, out, scratch);
            rem -= t;
        }
    }
}

/// Appends `t` distinct elements of `ops`, chosen uniformly, to `out`.
/// Rejection sampling on the smaller of the set and its complement;
/// `scratch` is a caller-owned buffer reused across calls.
fn place_uniform<R: Rng + ?Sized>(
    ops: &[u32],
    t: usize,
    rng: &mut R,
    out: &mut Vec<u32>,
    scratch: &mut Vec<usize>,
) {
    let n = ops.len();
    debug_assert!(t <= n);
    if t == 0 {
        return;
    }
    if t == n {
        out.extend_from_slice(ops);
        return;
    }
    let (count, invert) = if 2 * t <= n {
        (t, false)
    } else {
        (n - t, true)
    };
    // Inlined `random_range(0..n)` (Lemire widening multiply with a
    // rejection zone) with the threshold modulo hoisted out of the
    // placement loop — the draw stream and outputs are bit-identical to
    // the `rand` call, without one hardware division per placement.
    let span = n as u64;
    let threshold = span.wrapping_neg() % span;
    scratch.clear();
    while scratch.len() < count {
        let i = loop {
            let wide = (rng.random::<u64>() as u128) * (span as u128);
            if (wide as u64) >= threshold {
                break (wide >> 64) as usize;
            }
        };
        if !scratch.contains(&i) {
            scratch.push(i);
        }
    }
    if invert {
        out.extend(
            ops.iter()
                .enumerate()
                .filter(|(i, _)| !scratch.contains(i))
                .map(|(_, &op)| op),
        );
    } else {
        out.extend(scratch.iter().map(|&i| ops[i]));
    }
}

/// Executes the batch word loop for `circuit` under `table` — the single
/// implementation behind [`Engine::run_batch`] and [`BatchBackend`].
pub(crate) fn run_batch_words<R: Rng + ?Sized>(
    circuit: &Circuit,
    table: &FaultTable,
    batch: &mut BatchState,
    rng: &mut R,
) -> BatchExecReport {
    assert_eq!(
        batch.n_wires(),
        circuit.n_wires(),
        "batch width must match circuit width"
    );
    assert_eq!(
        table.n_ops(),
        circuit.len(),
        "compiled noise does not match this circuit"
    );
    let words = batch.words_per_wire();
    let mut report = BatchExecReport {
        fault_events: 0,
        faulted_lanes: vec![0; words],
    };
    for (op, &sampler_idx) in circuit.ops().iter().zip(&table.sampler_of) {
        if sampler_idx == NEVER {
            for word in 0..words {
                kernels::apply_word(batch, op, word);
            }
            continue;
        }
        let sampler = &table.samplers[sampler_idx];
        for word in 0..words {
            let fault = sampler.sample(rng);
            if fault == 0 {
                kernels::apply_word(batch, op, word);
            } else {
                let mut rand_planes = [0u64; 4];
                for plane in rand_planes.iter_mut().take(op.arity()) {
                    *plane = rng.random::<u64>();
                }
                kernels::apply_word_masked(batch, op, word, fault, &rand_planes);
                report.fault_events += fault.count_ones() as u64;
                report.faulted_lanes[word] |= fault;
            }
        }
    }
    report
}

/// Executes one 64-lane word under a **precomputed** per-op fault-mask
/// schedule on the bit-plane kernels — the stratified estimator's batch
/// execution path. Fault randomness is drawn from the **concrete**
/// `SmallRng` (one plane per support wire of each masked op, in op
/// order, fully inlinable — dynamic RNG dispatch costs ~30% here);
/// the draw order matches [`run_masked_word_scalar`] exactly, so the two
/// backends stay bit-identical under shared schedules.
pub(crate) fn run_masked_word_batch(
    circuit: &Circuit,
    batch: &mut BatchState,
    masks: &[u64],
    rng: &mut SmallRng,
) -> BatchExecReport {
    assert_eq!(
        batch.words_per_wire(),
        1,
        "masked execution drives single-word batches"
    );
    assert_eq!(
        batch.n_wires(),
        circuit.n_wires(),
        "batch width must match circuit width"
    );
    assert_eq!(
        masks.len(),
        circuit.len(),
        "mask schedule does not match this circuit"
    );
    let mut report = BatchExecReport {
        fault_events: 0,
        faulted_lanes: vec![0; 1],
    };
    for (op, &fault) in circuit.ops().iter().zip(masks) {
        if fault == 0 {
            kernels::apply_word(batch, op, 0);
            continue;
        }
        let mut rand_planes = [0u64; 4];
        fill_fault_planes(op.arity(), fault, rng, &mut rand_planes);
        kernels::apply_word_masked(batch, op, 0, fault, &rand_planes);
        report.fault_events += fault.count_ones() as u64;
        report.faulted_lanes[0] |= fault;
    }
    report
}

/// Fills the per-support-wire random planes a masked op consumes. In the
/// common sparse case — a single faulted lane — only `arity` random
/// *bits* are needed, so one `u64` draw covers them; otherwise one full
/// plane per support wire is drawn. Part of the shared backend schedule:
/// both masked runners call this in the same op order.
#[inline]
pub(crate) fn fill_fault_planes(
    arity: usize,
    fault: u64,
    rng: &mut SmallRng,
    rand_planes: &mut [u64; 4],
) {
    if fault.count_ones() == 1 {
        let lane = fault.trailing_zeros();
        let bits = rng.random::<u64>();
        for (k, plane) in rand_planes.iter_mut().enumerate().take(arity) {
            *plane = ((bits >> k) & 1) << lane;
        }
        return;
    }
    for plane in rand_planes.iter_mut().take(arity) {
        *plane = rng.random::<u64>();
    }
}

/// Scalar twin of [`run_masked_word_batch`]: unpacks every lane into a
/// [`BitState`] and replays the identical fault schedule and random-plane
/// stream one lane at a time.
pub(crate) fn run_masked_word_scalar(
    circuit: &Circuit,
    batch: &mut BatchState,
    masks: &[u64],
    rng: &mut SmallRng,
) -> BatchExecReport {
    assert_eq!(
        batch.words_per_wire(),
        1,
        "masked execution drives single-word batches"
    );
    assert_eq!(
        batch.n_wires(),
        circuit.n_wires(),
        "batch width must match circuit width"
    );
    assert_eq!(
        masks.len(),
        circuit.len(),
        "mask schedule does not match this circuit"
    );
    let mut lanes: Vec<BitState> = (0..64).map(|l| batch.lane(l)).collect();
    let mut report = BatchExecReport {
        fault_events: 0,
        faulted_lanes: vec![0; 1],
    };
    for (op, &fault) in circuit.ops().iter().zip(masks) {
        if fault == 0 {
            for state in &mut lanes {
                op.apply(state);
            }
            continue;
        }
        let mut rand_planes = [0u64; 4];
        fill_fault_planes(op.arity(), fault, rng, &mut rand_planes);
        let support = op.support();
        let wires = support.as_slice();
        for (lane, state) in lanes.iter_mut().enumerate() {
            if (fault >> lane) & 1 == 1 {
                let mut pattern = 0u8;
                for (k, _) in wires.iter().enumerate() {
                    pattern |= (((rand_planes[k] >> lane) & 1) as u8) << k;
                }
                state.write_pattern(wires, pattern);
            } else {
                op.apply(state);
            }
        }
        report.fault_events += fault.count_ones() as u64;
        report.faulted_lanes[0] |= fault;
    }
    for (lane, state) in lanes.iter().enumerate() {
        batch.set_lane(lane, state);
    }
    report
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// A circuit compiled against a noise model: the compile-once artifact
/// shared by every backend.
///
/// Owns the flattened op stream and the lowered fault table; build one
/// with [`Engine::compile`] and reuse it for any number of runs.
#[must_use = "an Engine does nothing until it runs"]
#[derive(Debug)]
pub struct Engine {
    circuit: Circuit,
    table: FaultTable,
    /// Fault-count distribution, built on first stratified use (compiling
    /// stays a single cheap pass for plain-only consumers).
    dist: OnceLock<FaultCountDist>,
    /// Micro-op program (linear-segment fusion + wide kernels), built on
    /// first word-loop use — [`Engine::compile`] itself stays a single
    /// cheap pass.
    compiled: OnceLock<CompiledOps>,
    /// Memoized stratified-estimator layouts, keyed by
    /// `(min_faults, strata_cap)` (derived from the fault-count PMF once
    /// instead of on every estimate call).
    plans: Mutex<Vec<Arc<StrataPlan>>>,
}

impl Clone for Engine {
    fn clone(&self) -> Self {
        let dist = OnceLock::new();
        if let Some(d) = self.dist.get() {
            let _ = dist.set(d.clone());
        }
        let compiled = OnceLock::new();
        if let Some(c) = self.compiled.get() {
            let _ = compiled.set(c.clone());
        }
        Engine {
            circuit: self.circuit.clone(),
            table: self.table.clone(),
            dist,
            compiled,
            plans: Mutex::new(self.plans.lock().map(|g| g.clone()).unwrap_or_default()),
        }
    }
}

impl Engine {
    /// Compiles `circuit` bound to `noise`.
    ///
    /// # Panics
    ///
    /// Panics if the model reports a probability outside `[0, 1]`.
    pub fn compile<N: NoiseModel + ?Sized>(circuit: &Circuit, noise: &N) -> Self {
        Engine {
            circuit: circuit.clone(),
            table: FaultTable::compile(circuit, noise),
            dist: OnceLock::new(),
            compiled: OnceLock::new(),
            plans: Mutex::new(Vec::new()),
        }
    }

    /// The lazily compiled micro-op program (see [`crate::microop`]).
    pub(crate) fn compiled(&self) -> &CompiledOps {
        self.compiled
            .get_or_init(|| microop::compile(&self.circuit, &self.table))
    }

    /// [`Engine::compiled`] with the lazy IR lowering instrumented: when
    /// this call performs the lowering, the time lands in
    /// `engine.lower_ns` under an `engine.lower` span. Subsequent calls
    /// hit the memoized program and record nothing.
    fn compiled_obs(&self, obs: &Collector) -> &CompiledOps {
        if let Some(compiled) = self.compiled.get() {
            return compiled;
        }
        let _span = obs.span_metric("engine.lower", Metric::LowerNanos);
        let compiled = self.compiled();
        obs.incr(Metric::IrLowerings);
        compiled
    }

    /// Statistics of the micro-op compile pass — ops before/after fusion
    /// and the fused-segment histogram. Forces the (lazy, memoized)
    /// micro-op compilation.
    pub fn compile_stats(&self) -> &CompileStats {
        &self.compiled().stats
    }

    /// Approximate resident size of this compiled engine in bytes: the
    /// op stream, the fault table, and whatever lazy artifacts (fault-
    /// count distribution, micro-op program) have been built so far.
    ///
    /// An estimate, not an allocator census — it is the size input of the
    /// compile cache's cost-based eviction policy, where only relative
    /// magnitudes matter (a level-2 engine weighs ~20× a level-1 one).
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = size_of::<Engine>();
        bytes += std::mem::size_of_val::<[Op]>(self.circuit.ops());
        bytes += self.table.probs.len() * size_of::<f64>();
        bytes += self.table.sampler_of.len() * size_of::<usize>();
        bytes += self.table.samplers.len() * 65 * size_of::<f64>();
        bytes += self.table.sampler_rates.len() * size_of::<f64>();
        if let Some(dist) = self.dist.get() {
            bytes += dist.approx_bytes();
        }
        if let Some(ops) = self.compiled.get() {
            bytes += ops.approx_bytes();
        }
        bytes
    }

    /// The compiled circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Number of operations in the compiled stream.
    pub fn n_ops(&self) -> usize {
        self.circuit.len()
    }

    /// Width of the compiled circuit in wires.
    pub fn n_wires(&self) -> usize {
        self.circuit.n_wires()
    }

    /// The precomputed fault probability of operation `op_index`.
    ///
    /// # Panics
    ///
    /// Panics if `op_index` is out of range.
    pub fn fault_probability(&self, op_index: usize) -> f64 {
        self.table.probs[op_index]
    }

    /// `P(K = 0)`: the probability that one trial executes entirely
    /// fault-free, `Π (1 − pᵢ)` over the compiled op stream — the mass the
    /// stratified estimator resolves analytically (zero-fault elision).
    pub fn fault_free_probability(&self) -> f64 {
        self.table.p_fault_free
    }

    /// The lazily built fault-count distribution.
    pub(crate) fn fault_dist(&self) -> &FaultCountDist {
        self.dist.get_or_init(|| FaultCountDist::build(&self.table))
    }

    /// The PMF of the per-trial fault count `K` — a Poisson binomial over
    /// the per-op fault probabilities, computed once per engine (entry `k`
    /// is `P(K = k)`; the vector is truncated where the remaining tail
    /// mass drops below ~10⁻¹²). These are the stratified estimator's
    /// stratum weights.
    pub fn fault_count_pmf(&self) -> &[f64] {
        self.fault_dist().pmf()
    }

    /// `P(K ≥ k)` under the compiled fault-count distribution.
    pub fn fault_count_at_least(&self, k: u32) -> f64 {
        self.fault_dist().mass_at_least(k as usize)
    }

    /// Binds Monte-Carlo options, producing the run-many [`Simulation`]
    /// handle.
    pub fn with_options(self, options: McOptions) -> Simulation {
        Simulation {
            engine: self,
            options,
        }
    }

    /// Runs one noisy scalar trial on `state` (classic per-trial
    /// semantics: one uniform draw per fallible operation; a faulting
    /// operation randomizes its support instead of executing).
    ///
    /// # Panics
    ///
    /// Panics if the state width does not match the circuit width.
    pub fn run_scalar<R: Rng + ?Sized>(&self, state: &mut BitState, rng: &mut R) -> ExecReport {
        let mut observer = NullObserver;
        self.run_scalar_observed(state, rng, &mut observer)
    }

    /// [`Engine::run_scalar`] with [`ExecObserver`] hooks (used by the
    /// entropy measurements of §4).
    ///
    /// # Panics
    ///
    /// Panics if the state width does not match the circuit width.
    pub fn run_scalar_observed<R: Rng + ?Sized>(
        &self,
        state: &mut BitState,
        rng: &mut R,
        observer: &mut dyn ExecObserver,
    ) -> ExecReport {
        assert_eq!(
            state.len(),
            self.circuit.n_wires(),
            "state width must match circuit width"
        );
        let mut report = ExecReport::default();
        for (i, op) in self.circuit.ops().iter().enumerate() {
            if let Op::Init(init) = op {
                let values = state.read_pattern(init.wires());
                observer.before_init(i, init.wires(), values);
            }
            let p = self.table.probs[i];
            let faulted = p > 0.0 && rng.random::<f64>() < p;
            if faulted {
                let support = op.support();
                state.randomize(support.as_slice(), rng);
                report.faults.push(i);
                observer.on_fault(i);
            } else {
                op.apply(state);
            }
        }
        report
    }

    /// Runs the compiled circuit over every lane of `batch` on the
    /// bit-parallel backend.
    ///
    /// # Panics
    ///
    /// Panics if the batch width does not match the circuit width.
    pub fn run_batch<R: Rng + ?Sized>(
        &self,
        batch: &mut BatchState,
        rng: &mut R,
    ) -> BatchExecReport {
        run_batch_words(&self.circuit, &self.table, batch, rng)
    }

    /// Runs the **compiled micro-op program** (linear-segment fusion +
    /// wide kernels) over a `W`-word wide batch, where `W =
    /// batch.words_per_wire() = rngs.len() ∈ {1, 2, 4}` and logical word
    /// `w` draws all of its randomness from `rngs[w]`.
    ///
    /// Per logical word the RNG stream is identical to [`Engine::run_batch`]
    /// on a single-word batch — one fault-mask draw per fallible op, then
    /// one random plane per support wire of faulting ops — so lanes are
    /// bit-identical to `W` independent raw runs at the same seeds. This
    /// is the word loop behind [`Engine::estimate`] on the batch backend;
    /// it is public so benches can compare it against the raw path.
    ///
    /// # Panics
    ///
    /// Panics if the widths disagree, `rngs.len() != words_per_wire()`,
    /// or the width is not 1, 2 or 4.
    pub fn run_batch_fused(
        &self,
        batch: &mut BatchState,
        rngs: &mut [SmallRng],
    ) -> BatchExecReport {
        assert_eq!(
            batch.n_wires(),
            self.circuit.n_wires(),
            "batch width must match circuit width"
        );
        assert_eq!(
            batch.words_per_wire(),
            rngs.len(),
            "need exactly one RNG per logical word"
        );
        let compiled = self.compiled();
        let mut scratch = ExecScratch::default();
        fn go<const W: usize>(
            compiled: &CompiledOps,
            table: &FaultTable,
            batch: &mut BatchState,
            rngs: &mut [SmallRng],
            scratch: &mut ExecScratch,
        ) -> BatchExecReport {
            let rngs: &mut [SmallRng; W] = rngs.try_into().expect("len checked");
            let out = microop::run_sampled_wide::<W>(compiled, table, batch, rngs, scratch);
            BatchExecReport {
                fault_events: out.fault_events,
                faulted_lanes: out.faulted.to_vec(),
            }
        }
        match rngs.len() {
            1 => go::<1>(compiled, &self.table, batch, rngs, &mut scratch),
            2 => go::<2>(compiled, &self.table, batch, rngs, &mut scratch),
            4 => go::<4>(compiled, &self.table, batch, rngs, &mut scratch),
            w => panic!("unsupported word width {w} (expected 1, 2 or 4)"),
        }
    }

    /// Runs one `W`-wide word under a **precomputed** fault-mask
    /// schedule through the compiled micro-op program — the stratified
    /// rare-event estimator's execution path, public so benches can
    /// measure it against [`Engine::run_batch_masked_raw`].
    ///
    /// `masks` uses the flat wide layout `masks[i * W + w]` = lanes in
    /// which op `i` faults in logical word `w` (for `W = 1` this is the
    /// plain per-op schedule of [`Backend::run_masked`]). Logical word
    /// `w` draws its fault planes from `rngs[w]` in op order via the
    /// shared sparse schedule, so results are bit-identical to `W`
    /// single-word [`Backend::run_masked`] calls.
    ///
    /// # Panics
    ///
    /// Panics if widths disagree, `rngs.len() != words_per_wire()`, the
    /// width is not 1, 2 or 4, or `masks.len() != n_ops × W`.
    pub fn run_batch_masked(
        &self,
        batch: &mut BatchState,
        masks: &[u64],
        rngs: &mut [SmallRng],
    ) -> BatchExecReport {
        assert_eq!(
            batch.n_wires(),
            self.circuit.n_wires(),
            "batch width must match circuit width"
        );
        let w = batch.words_per_wire();
        assert_eq!(w, rngs.len(), "need exactly one RNG per logical word");
        assert_eq!(
            masks.len(),
            self.circuit.len() * w,
            "mask schedule does not match this circuit (expected n_ops × width)"
        );
        let compiled = self.compiled();
        let mut scratch = ExecScratch::default();
        fn go<const W: usize>(
            compiled: &CompiledOps,
            batch: &mut BatchState,
            masks: &[u64],
            rngs: &mut [SmallRng],
            scratch: &mut ExecScratch,
        ) -> BatchExecReport {
            let rngs: &mut [SmallRng; W] = rngs.try_into().expect("len checked");
            let out = microop::run_masked_wide::<W>(compiled, batch, masks, rngs, scratch);
            BatchExecReport {
                fault_events: out.fault_events,
                faulted_lanes: out.faulted.to_vec(),
            }
        }
        match w {
            1 => go::<1>(compiled, batch, masks, rngs, &mut scratch),
            2 => go::<2>(compiled, batch, masks, rngs, &mut scratch),
            4 => go::<4>(compiled, batch, masks, rngs, &mut scratch),
            other => panic!("unsupported word width {other} (expected 1, 2 or 4)"),
        }
    }

    /// The retired op-at-a-time masked word loop, kept as the raw
    /// reference the compiled path is benchmarked and property-tested
    /// against (`fused_vs_raw`); not part of any estimator path.
    ///
    /// # Panics
    ///
    /// Panics as [`Backend::run_masked`] on width/schedule mismatches.
    #[doc(hidden)]
    pub fn run_batch_masked_raw(
        &self,
        batch: &mut BatchState,
        masks: &[u64],
        rng: &mut SmallRng,
    ) -> BatchExecReport {
        run_masked_word_batch(&self.circuit, batch, masks, rng)
    }

    /// Runs the compiled circuit injecting exactly the faults in `plan`
    /// (the noise binding is ignored; see [`PlannedFaultBackend`]).
    ///
    /// # Panics
    ///
    /// Panics if the widths mismatch or a planned index is out of range.
    pub fn run_planned(&self, state: &mut BitState, plan: &FaultPlan) {
        PlannedFaultBackend::new(plan).run_state(&self.circuit, state);
    }

    /// Monte-Carlo estimation: runs `opts.trials` independent trials of
    /// `trial` through the backend selected by `opts`, threaded across
    /// `opts.threads` workers, and counts failing lanes.
    ///
    /// Trials are packed 64 per word; each word derives its RNG from
    /// `opts.seed` and the word index, so results are **deterministic per
    /// seed and backend-independent** (scalar and batch consume identical
    /// streams). With [`McOptions::target_rel_error`] set, estimation
    /// stops early once the estimated relative standard error of the
    /// failure rate reaches the target; stopping happens at fixed
    /// thread-independent round boundaries, so even early-stopped results
    /// are a function of the seed alone.
    ///
    /// # Panics
    ///
    /// Panics if `opts.trials == 0` or the trial's width disagrees with
    /// the compiled circuit.
    pub fn estimate<T: WordTrial + ?Sized>(&self, trial: &T, opts: &McOptions) -> McOutcome {
        self.estimate_obs(trial, opts, &Collector::disabled())
    }

    /// [`Engine::estimate`] with instrumentation: counters, histograms
    /// and spans land in `obs` (see the `rft-obs` catalog for the metric
    /// names). Collection is strictly observational — it never touches an
    /// RNG stream or a scheduling decision, so the outcome is
    /// byte-identical to [`Engine::estimate`] for the same inputs. Word
    /// tallies are accumulated as plain integers inside the hot loops and
    /// flushed to the collector once per run, so the enabled path stays
    /// within noise of the disabled one (gated ≤ 2% by the
    /// `obs_overhead` bench group).
    ///
    /// # Panics
    ///
    /// Panics as [`Engine::estimate`].
    pub fn estimate_obs<T: WordTrial + ?Sized>(
        &self,
        trial: &T,
        opts: &McOptions,
        obs: &Collector,
    ) -> McOutcome {
        assert!(opts.trials > 0, "need at least one trial");
        assert_eq!(
            trial.n_wires(),
            self.circuit.n_wires(),
            "trial width must match circuit width"
        );
        let _span = obs.span_metric("engine.estimate", Metric::EstimateNanos);
        obs.incr(Metric::EstimateCalls);
        let kind = opts.backend.resolve(opts.trials, opts.batch_threshold);
        let path = match kind {
            BackendKind::Batch => ExecPath::Batch {
                width: opts.width.resolve(kind),
            },
            _ => ExecPath::Scalar,
        };
        if matches!(path, ExecPath::Batch { .. }) {
            // Force the lazy IR lowering here so its cost is attributed
            // to `engine.lower` instead of bleeding into the word loops.
            self.compiled_obs(obs);
        }
        let resolved = match opts.estimator {
            Estimator::Auto => {
                let m = trial.min_failing_faults();
                assert!(
                    m == 0 || !trial.fault_free_can_fail(),
                    "a trial whose fault-free lanes can fail must report \
                     min_failing_faults() == 0"
                );
                // P(K ≥ m): the cheap product for m ≤ 1, the lazily built
                // fault-count distribution beyond.
                let mass = match m {
                    0 => 1.0,
                    1 => 1.0 - self.fault_free_probability(),
                    _ => self.fault_dist().mass_at_least(m as usize),
                };
                Estimator::Auto.resolve(mass, m)
            }
            explicit => explicit,
        };
        match resolved {
            Estimator::Stratified {
                min_faults,
                strata_cap,
            } => {
                assert!(
                    min_faults == 0 || !trial.fault_free_can_fail(),
                    "the stratified estimator elides words with fewer than {min_faults} \
                     faults, but this trial reports that fault-free words can fail \
                     (WordTrial::fault_free_can_fail); use min_faults = 0 or Estimator::Plain"
                );
                self.estimate_stratified(path, trial, opts, min_faults, strata_cap, obs)
            }
            _ => self.estimate_plain(path, trial, opts, obs),
        }
    }

    /// The classic estimator: every requested trial is executed.
    fn estimate_plain<T: WordTrial + ?Sized>(
        &self,
        backend: ExecPath,
        trial: &T,
        opts: &McOptions,
        obs: &Collector,
    ) -> McOutcome {
        obs.incr(Metric::PlainRuns);
        let threads = opts.threads.max(1);
        let total_words = opts.trials.div_ceil(64);
        let round_words = match opts.target_rel_error {
            Some(_) => ADAPTIVE_ROUND_WORDS.min(total_words),
            None => total_words,
        };
        let mut done = 0u64;
        let mut failures = 0u64;
        let mut executed = 0u64;
        let mut extras = WordExtras::default();
        let mut early_stopped = false;
        while done < total_words {
            let n = round_words.min(total_words - done);
            let (f, e, x) = self.run_word_span(backend, trial, opts, done, done + n, threads, obs);
            failures += f;
            executed += e;
            extras.merge(x);
            done += n;
            if done >= total_words {
                break;
            }
            if let Some(target) = opts.target_rel_error {
                if converged(failures, executed, target) {
                    early_stopped = true;
                    break;
                }
            }
        }
        let outcome = McOutcome {
            failures,
            trials: executed,
            requested: opts.trials,
            early_stopped,
            backend: backend.name(),
            estimator: "plain",
            sample_weight: 1.0,
            executed_words: done,
            strata: Vec::new(),
        };
        flush_run(obs, &outcome, &extras);
        outcome
    }

    /// Runs words `[start, end)` split contiguously across `threads`,
    /// returning `(failures, executed_trials, extras)`. Each worker opens
    /// an `engine.words` span on its own thread so the trace attributes
    /// word-loop time to the thread that spent it; the split itself never
    /// consults the collector.
    #[allow(clippy::too_many_arguments)]
    fn run_word_span<T: WordTrial + ?Sized>(
        &self,
        backend: ExecPath,
        trial: &T,
        opts: &McOptions,
        start: u64,
        end: u64,
        threads: usize,
        obs: &Collector,
    ) -> (u64, u64, WordExtras) {
        let span = end - start;
        if threads <= 1 || span <= 1 {
            let _s = obs.span("engine.words");
            return self.run_word_range(backend, trial, opts, start, end);
        }
        let threads = (threads as u64).min(span);
        let per = span / threads;
        let extra = span % threads;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut first = start;
            for t in 0..threads {
                let n = per + u64::from(t < extra);
                let lo = first;
                first += n;
                handles.push(scope.spawn(move || {
                    let _s = obs.span("engine.words");
                    self.run_word_range(backend, trial, opts, lo, lo + n)
                }));
            }
            handles
                .into_iter()
                .fold((0, 0, WordExtras::default()), |(f, e, mut x), h| {
                    let (df, de, dx) = h.join().expect("trial thread panicked");
                    x.merge(dx);
                    (f + df, e + de, x)
                })
        })
    }

    /// Runs words `[start, end)` sequentially, dispatching to the legacy
    /// scalar reference loop or the compiled wide word loop.
    fn run_word_range<T: WordTrial + ?Sized>(
        &self,
        backend: ExecPath,
        trial: &T,
        opts: &McOptions,
        start: u64,
        end: u64,
    ) -> (u64, u64, WordExtras) {
        match backend {
            ExecPath::Scalar => self.run_word_range_scalar(trial, opts, start, end),
            ExecPath::Batch { width: 2 } => {
                self.run_word_range_wide::<T, 2>(trial, opts, start, end)
            }
            ExecPath::Batch { width: 4 } => {
                self.run_word_range_wide::<T, 4>(trial, opts, start, end)
            }
            ExecPath::Batch { .. } => self.run_word_range_wide::<T, 1>(trial, opts, start, end),
        }
    }

    /// The scalar reference word loop (one [`BitState`] per lane).
    fn run_word_range_scalar<T: WordTrial + ?Sized>(
        &self,
        trial: &T,
        opts: &McOptions,
        start: u64,
        end: u64,
    ) -> (u64, u64, WordExtras) {
        let n_wires = self.circuit.n_wires();
        let mut batch = BatchState::zeros(n_wires, 1);
        let mut inputs: Vec<u64> = Vec::new();
        // Fault-free lanes of an elision-eligible trial can never fail:
        // judging then only needs to decode the faulted lanes.
        let judge_faulted_only = !trial.fault_free_can_fail();
        let mut failures = 0u64;
        let mut executed = 0u64;
        let mut extras = WordExtras::default();
        for word in start..end {
            let mut rng =
                SmallRng::seed_from_u64(opts.seed ^ WORD_SEED_STRIDE.wrapping_mul(word + 1));
            batch.clear();
            trial.prepare_into(&mut batch, &mut rng, &mut inputs);
            let report = ScalarBackend.run(self, &mut batch, &mut rng);
            let valid = valid_lanes(opts.trials, word);
            extras.fault_events += report.fault_events;
            extras.faulted_lanes += (report.faulted_lanes[0] & valid).count_ones() as u64;
            let candidates = if judge_faulted_only {
                report.faulted_lanes[0] & valid
            } else {
                valid
            };
            failures += trial.judge_masked(&batch, &inputs, candidates).count_ones() as u64;
            executed += valid.count_ones() as u64;
        }
        (failures, executed, extras)
    }

    /// The compiled word loop: `W` logical words per iteration through
    /// the fused micro-op program, each word on its own seed-derived RNG
    /// stream (so results are bit-identical to the `W = 1` loop and to
    /// the scalar reference, at any width and thread count).
    fn run_word_range_wide<T: WordTrial + ?Sized, const W: usize>(
        &self,
        trial: &T,
        opts: &McOptions,
        start: u64,
        end: u64,
    ) -> (u64, u64, WordExtras) {
        let compiled = self.compiled();
        let n_wires = self.circuit.n_wires();
        let mut wide = BatchState::zeros(n_wires, W);
        let mut col = BatchState::zeros(n_wires, 1);
        let mut inputs: [Vec<u64>; W] = std::array::from_fn(|_| Vec::new());
        let mut scratch = ExecScratch::default();
        let judge_faulted_only = !trial.fault_free_can_fail();
        let mut failures = 0u64;
        let mut executed = 0u64;
        let mut extras = WordExtras::default();
        let mut word = start;
        while word < end {
            if (end - word) < W as u64 {
                // Remainder words run at width 1 — bit-identical, since
                // every word owns its RNG stream regardless of grouping.
                let (f, e, x) = self.run_word_range_wide::<T, 1>(trial, opts, word, end);
                extras.merge(x);
                return (failures + f, executed + e, extras);
            }
            let mut rngs: [SmallRng; W] = std::array::from_fn(|k| {
                SmallRng::seed_from_u64(
                    opts.seed ^ WORD_SEED_STRIDE.wrapping_mul(word + k as u64 + 1),
                )
            });
            for k in 0..W {
                col.clear();
                trial.prepare_into(&mut col, &mut rngs[k], &mut inputs[k]);
                wide.load_column(k, &col);
            }
            let outcome = microop::run_sampled_wide::<W>(
                compiled,
                &self.table,
                &mut wide,
                &mut rngs,
                &mut scratch,
            );
            extras.fault_events += outcome.fault_events;
            extras.fused_segments += outcome.fused_segments;
            extras.replayed_segments += outcome.replayed_segments;
            for (k, word_inputs) in inputs.iter().enumerate() {
                let valid = valid_lanes(opts.trials, word + k as u64);
                extras.faulted_lanes += (outcome.faulted[k] & valid).count_ones() as u64;
                let candidates = if judge_faulted_only {
                    outcome.faulted[k] & valid
                } else {
                    valid
                };
                if candidates != 0 {
                    wide.store_column(k, &mut col);
                    failures += trial
                        .judge_masked(&col, word_inputs, candidates)
                        .count_ones() as u64;
                }
                executed += valid.count_ones() as u64;
            }
            word += W as u64;
        }
        (failures, executed, extras)
    }

    /// The fault-count-stratified rare-event estimator (see the module
    /// docs for the derivation). Words are generated *conditioned on their
    /// stratum's fault count*; strata below `min_faults` contribute
    /// analytically as exact zeros.
    #[allow(clippy::too_many_arguments)]
    fn estimate_stratified<T: WordTrial + ?Sized>(
        &self,
        backend: ExecPath,
        trial: &T,
        opts: &McOptions,
        min_faults: u32,
        strata_cap: u32,
        obs: &Collector,
    ) -> McOutcome {
        obs.incr(Metric::StratifiedRuns);
        // Stratum layout + tail CDF are pure functions of the compiled
        // fault-count PMF — derived once per (min_faults, strata_cap)
        // and memoized on the engine.
        let plan = self.strata_plan(min_faults, strata_cap);
        let mut strata: Vec<StratumOutcome> = plan.strata.clone();
        let sample_weight = plan.sample_weight;
        obs.set_gauge(Gauge::ElidedMass, (1.0 - sample_weight).max(0.0));
        if plan.all_elided {
            // Everything below `min_faults`: the whole budget resolves
            // analytically (e.g. a noiseless model) — nothing to execute.
            let outcome = McOutcome {
                failures: 0,
                trials: opts.trials,
                requested: opts.trials,
                early_stopped: false,
                backend: backend.name(),
                estimator: "stratified",
                sample_weight,
                executed_words: 0,
                strata,
            };
            flush_run(obs, &outcome, &WordExtras::default());
            return outcome;
        }
        let tail_cdf = &plan.tail_cdf;
        let tail_lo = plan.tail_lo;

        let threads = opts.threads.max(1);
        let total_words = opts.trials.div_ceil(64);
        let mut next_word = 0u64;
        let mut round_size = ADAPTIVE_ROUND_WORDS;
        let mut early_stopped = false;
        let mut assignment: Vec<u32> = Vec::new();
        let mut extras = WordExtras::default();
        while next_word < total_words {
            let _round_span = obs.span("estimator.round");
            obs.incr(Metric::StratifiedRounds);
            let round = round_size.min(total_words - next_word);
            obs.add(Metric::AllocatedWords, round);
            // Neyman scores from the *observed* per-stratum variance
            // `wₖ·√(q̂ₖ(1−q̂ₖ))`. A stratum that has never failed is
            // scored by its rule-of-three uncertainty `wₖ·√(1.5/nₖ)` —
            // the term the stopping rule must drive down — capped at
            // twice the best failing score so it cannot starve failure
            // accumulation. Before any failure exists anywhere, all
            // scores are zero and the round splits uniformly (discovery).
            let max_failing = strata
                .iter()
                .filter(|s| s.weight > 0.0 && s.trials > 0 && s.failures > 0)
                .map(|s| {
                    let q = s.failures as f64 / s.trials as f64;
                    s.weight * (q * (1.0 - q)).sqrt()
                })
                .fold(0.0f64, f64::max);
            let scores: Vec<f64> = strata
                .iter()
                .map(|s| {
                    if s.weight <= 0.0 || s.trials == 0 || max_failing <= 0.0 {
                        return 0.0;
                    }
                    if s.failures == 0 {
                        let n = s.trials as f64;
                        return (s.weight * (1.5 / n).sqrt()).min(2.0 * max_failing);
                    }
                    let q = s.failures as f64 / s.trials as f64;
                    s.weight * (q * (1.0 - q)).sqrt()
                })
                .collect();
            let weights: Vec<f64> = strata.iter().map(|s| s.weight).collect();
            let alloc = apportion_words(&scores, &weights, round);
            assignment.clear();
            for (si, &n) in alloc.iter().enumerate() {
                if n > 0 {
                    obs.observe(Hist::RoundWords, n);
                }
                assignment.extend(std::iter::repeat_n(si as u32, n as usize));
            }
            let (tallies, round_extras) = self.run_stratified_span(
                backend,
                trial,
                opts,
                &strata,
                tail_cdf,
                tail_lo,
                next_word,
                &assignment,
                threads,
                obs,
            );
            extras.merge(round_extras);
            extras.masked_words += round;
            for (s, (f, n)) in strata.iter_mut().zip(&tallies) {
                s.failures += f;
                s.trials += n;
            }
            next_word += round;
            round_size = (round_size * 2).min(MAX_ROUND_WORDS);
            if next_word >= total_words {
                break;
            }
            if let Some(target) = opts.target_rel_error {
                if stratified_converged(&strata, target) {
                    early_stopped = true;
                    break;
                }
            }
        }

        let outcome = McOutcome {
            failures: strata.iter().map(|s| s.failures).sum(),
            trials: strata.iter().map(|s| s.trials).sum(),
            requested: opts.trials,
            early_stopped,
            backend: backend.name(),
            estimator: "stratified",
            sample_weight,
            executed_words: next_word,
            strata,
        };
        flush_run(obs, &outcome, &extras);
        outcome
    }

    /// Runs one stratified round: `assignment[i]` names the stratum of
    /// global word `base_word + i`; the slice is split contiguously across
    /// `threads`. Returns per-stratum `(failures, trials)`.
    #[allow(clippy::too_many_arguments)]
    fn run_stratified_span<T: WordTrial + ?Sized>(
        &self,
        backend: ExecPath,
        trial: &T,
        opts: &McOptions,
        strata: &[StratumOutcome],
        tail_cdf: &[f64],
        tail_lo: usize,
        base_word: u64,
        assignment: &[u32],
        threads: usize,
        obs: &Collector,
    ) -> (Vec<(u64, u64)>, WordExtras) {
        let span = assignment.len();
        if threads <= 1 || span <= 1 {
            let _s = obs.span("engine.words");
            return self.run_stratified_range(
                backend, trial, opts, strata, tail_cdf, tail_lo, base_word, assignment,
            );
        }
        let threads = threads.min(span);
        let per = span / threads;
        let extra = span % threads;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut first = 0usize;
            for t in 0..threads {
                let n = per + usize::from(t < extra);
                let lo = first;
                first += n;
                let slice = &assignment[lo..lo + n];
                handles.push(scope.spawn(move || {
                    let _s = obs.span("engine.words");
                    self.run_stratified_range(
                        backend,
                        trial,
                        opts,
                        strata,
                        tail_cdf,
                        tail_lo,
                        base_word + lo as u64,
                        slice,
                    )
                }));
            }
            handles.into_iter().fold(
                (vec![(0u64, 0u64); strata.len()], WordExtras::default()),
                |(mut acc, mut x), h| {
                    let (part, px) = h.join().expect("trial thread panicked");
                    for (a, p) in acc.iter_mut().zip(&part) {
                        a.0 += p.0;
                        a.1 += p.1;
                    }
                    x.merge(px);
                    (acc, x)
                },
            )
        })
    }

    /// Sequential stratified word loop with per-thread scratch buffers,
    /// dispatched by execution path.
    #[allow(clippy::too_many_arguments)]
    fn run_stratified_range<T: WordTrial + ?Sized>(
        &self,
        backend: ExecPath,
        trial: &T,
        opts: &McOptions,
        strata: &[StratumOutcome],
        tail_cdf: &[f64],
        tail_lo: usize,
        base_word: u64,
        assignment: &[u32],
    ) -> (Vec<(u64, u64)>, WordExtras) {
        match backend {
            ExecPath::Scalar => self.run_stratified_range_scalar(
                trial, opts, strata, tail_cdf, tail_lo, base_word, assignment,
            ),
            ExecPath::Batch { width: 2 } => self.run_stratified_range_wide::<T, 2>(
                trial, opts, strata, tail_cdf, tail_lo, base_word, assignment,
            ),
            ExecPath::Batch { width: 4 } => self.run_stratified_range_wide::<T, 4>(
                trial, opts, strata, tail_cdf, tail_lo, base_word, assignment,
            ),
            ExecPath::Batch { .. } => self.run_stratified_range_wide::<T, 1>(
                trial, opts, strata, tail_cdf, tail_lo, base_word, assignment,
            ),
        }
    }

    /// Scalar reference stratified loop (per-lane replay of the shared
    /// conditional mask schedule).
    #[allow(clippy::too_many_arguments)]
    fn run_stratified_range_scalar<T: WordTrial + ?Sized>(
        &self,
        trial: &T,
        opts: &McOptions,
        strata: &[StratumOutcome],
        tail_cdf: &[f64],
        tail_lo: usize,
        base_word: u64,
        assignment: &[u32],
    ) -> (Vec<(u64, u64)>, WordExtras) {
        let dist = self.fault_dist();
        let n_wires = self.circuit.n_wires();
        let mut batch = BatchState::zeros(n_wires, 1);
        let mut inputs: Vec<u64> = Vec::new();
        let mut masks: Vec<u64> = vec![0; self.circuit.len()];
        let mut touched: Vec<u32> = Vec::new();
        let mut chosen: Vec<u32> = Vec::new();
        let mut scratch: Vec<usize> = Vec::new();
        let mut tallies = vec![(0u64, 0u64); strata.len()];
        let mut extras = WordExtras::default();
        for (i, &si) in assignment.iter().enumerate() {
            let word = base_word + i as u64;
            let mut rng =
                SmallRng::seed_from_u64(opts.seed ^ WORD_SEED_STRIDE.wrapping_mul(word + 1));
            batch.clear();
            trial.prepare_into(&mut batch, &mut rng, &mut inputs);
            // Conditional mask schedule: per lane, draw the fault count
            // (fixed for explicit strata, CDF draw in the tail) and place
            // the faults via the exact conditional distribution.
            for &t in &touched {
                masks[t as usize] = 0;
            }
            touched.clear();
            let stratum = &strata[si as usize];
            for lane in 0..64u32 {
                let k = match stratum.k_hi {
                    Some(k) => k as usize,
                    None => {
                        let total = tail_cdf.last().copied().unwrap_or(0.0);
                        let u = rng.random::<f64>() * total;
                        let pos = tail_cdf.partition_point(|&c| c <= u);
                        tail_lo + pos.min(tail_cdf.len() - 1)
                    }
                };
                dist.sample_exact(k, &mut rng, &mut chosen, &mut scratch);
                for &op in &chosen {
                    if masks[op as usize] == 0 {
                        touched.push(op);
                    }
                    masks[op as usize] |= 1u64 << lane;
                }
            }
            let report = ScalarBackend.run_masked(self, &mut batch, &masks, &mut rng);
            let valid = valid_lanes(opts.trials, word);
            extras.fault_events += report.fault_events;
            extras.faulted_lanes += (report.faulted_lanes[0] & valid).count_ones() as u64;
            // With `min_faults = 0` on an elision-ineligible trial, clean
            // lanes can still fail and must be judged.
            let candidates = if trial.fault_free_can_fail() {
                valid
            } else {
                report.faulted_lanes[0] & valid
            };
            let failed = trial.judge_masked(&batch, &inputs, candidates);
            tallies[si as usize].0 += failed.count_ones() as u64;
            tallies[si as usize].1 += valid.count_ones() as u64;
        }
        (tallies, extras)
    }

    /// Compiled stratified word loop: `W` conditioned logical words per
    /// iteration through the fused micro-op program. Per word, the RNG
    /// stream (prepare → conditional count/placement draws → fault
    /// planes in op order) matches the scalar reference exactly.
    #[allow(clippy::too_many_arguments)]
    fn run_stratified_range_wide<T: WordTrial + ?Sized, const W: usize>(
        &self,
        trial: &T,
        opts: &McOptions,
        strata: &[StratumOutcome],
        tail_cdf: &[f64],
        tail_lo: usize,
        base_word: u64,
        assignment: &[u32],
    ) -> (Vec<(u64, u64)>, WordExtras) {
        let compiled = self.compiled();
        let dist = self.fault_dist();
        let n_ops = self.circuit.len();
        let n_wires = self.circuit.n_wires();
        let mut wide = BatchState::zeros(n_wires, W);
        let mut col = BatchState::zeros(n_wires, 1);
        let mut inputs: [Vec<u64>; W] = std::array::from_fn(|_| Vec::new());
        // Flat wide mask layout: masks[op * W + w].
        let mut masks: Vec<u64> = vec![0u64; n_ops * W];
        let mut touched: [Vec<u32>; W] = std::array::from_fn(|_| Vec::new());
        let mut scratch = ExecScratch::default();
        let mut chosen: Vec<u32> = Vec::new();
        let mut place_scratch: Vec<usize> = Vec::new();
        let mut tallies = vec![(0u64, 0u64); strata.len()];
        let mut extras = WordExtras::default();
        let mut i = 0usize;
        while i < assignment.len() {
            if assignment.len() - i < W {
                // Remainder words at width 1 (bit-identical per word).
                let (rest, rest_extras) = self.run_stratified_range_wide::<T, 1>(
                    trial,
                    opts,
                    strata,
                    tail_cdf,
                    tail_lo,
                    base_word + i as u64,
                    &assignment[i..],
                );
                for (t, r) in tallies.iter_mut().zip(&rest) {
                    t.0 += r.0;
                    t.1 += r.1;
                }
                extras.merge(rest_extras);
                return (tallies, extras);
            }
            let mut rngs: [SmallRng; W] = std::array::from_fn(|k| {
                SmallRng::seed_from_u64(
                    opts.seed ^ WORD_SEED_STRIDE.wrapping_mul(base_word + (i + k) as u64 + 1),
                )
            });
            for k in 0..W {
                col.clear();
                trial.prepare_into(&mut col, &mut rngs[k], &mut inputs[k]);
                wide.load_column(k, &col);
                // Conditional mask schedule for this word's stratum.
                for &t in &touched[k] {
                    masks[t as usize * W + k] = 0;
                }
                touched[k].clear();
                let stratum = &strata[assignment[i + k] as usize];
                for lane in 0..64u32 {
                    let count = match stratum.k_hi {
                        Some(kk) => kk as usize,
                        None => {
                            let total = tail_cdf.last().copied().unwrap_or(0.0);
                            let u = rngs[k].random::<f64>() * total;
                            let pos = tail_cdf.partition_point(|&c| c <= u);
                            tail_lo + pos.min(tail_cdf.len() - 1)
                        }
                    };
                    dist.sample_exact(count, &mut rngs[k], &mut chosen, &mut place_scratch);
                    for &op in &chosen {
                        let slot = op as usize * W + k;
                        if masks[slot] == 0 {
                            touched[k].push(op);
                        }
                        masks[slot] |= 1u64 << lane;
                    }
                }
            }
            let outcome =
                microop::run_masked_wide::<W>(compiled, &mut wide, &masks, &mut rngs, &mut scratch);
            extras.fault_events += outcome.fault_events;
            extras.fused_segments += outcome.fused_segments;
            extras.replayed_segments += outcome.replayed_segments;
            for k in 0..W {
                let word = base_word + (i + k) as u64;
                let valid = valid_lanes(opts.trials, word);
                extras.faulted_lanes += (outcome.faulted[k] & valid).count_ones() as u64;
                let candidates = if trial.fault_free_can_fail() {
                    valid
                } else {
                    outcome.faulted[k] & valid
                };
                let si = assignment[i + k] as usize;
                if candidates != 0 {
                    wide.store_column(k, &mut col);
                    tallies[si].0 += trial
                        .judge_masked(&col, &inputs[k], candidates)
                        .count_ones() as u64;
                }
                tallies[si].1 += valid.count_ones() as u64;
            }
            i += W;
        }
        (tallies, extras)
    }

    /// The memoized stratified-estimator layout for
    /// `(min_faults, strata_cap)`: stratum template (weights off the
    /// Poisson-binomial PMF) plus the tail stratum's conditional CDF.
    fn strata_plan(&self, min_faults: u32, strata_cap: u32) -> Arc<StrataPlan> {
        let mut plans = self.plans.lock().expect("strata plan cache poisoned");
        if let Some(plan) = plans
            .iter()
            .find(|p| p.min_faults == min_faults && p.strata_cap == strata_cap)
        {
            return Arc::clone(plan);
        }
        let cap = strata_cap.max(1) as usize;
        let min = min_faults as usize;
        let dist = self.fault_dist();
        let strata: Vec<StratumOutcome> = (0..cap)
            .map(|i| {
                let k = min + i;
                let (k_hi, weight) = if i + 1 == cap {
                    (None, dist.mass_at_least(k))
                } else {
                    (Some(k as u32), dist.pmf_at(k))
                };
                StratumOutcome {
                    k_lo: k as u32,
                    k_hi,
                    weight,
                    failures: 0,
                    trials: 0,
                }
            })
            .collect();
        let sample_weight: f64 = strata.iter().map(|s| s.weight).sum();
        let all_elided = strata.iter().all(|s| s.weight <= 0.0);
        // Conditional CDF of the tail stratum's fault count (top bin
        // absorbs the truncated mass).
        let tail_lo = min + cap - 1;
        let tail_cdf: Vec<f64> = {
            let mut acc = 0.0;
            let mut cdf: Vec<f64> = (tail_lo..=dist.max_k().max(tail_lo))
                .map(|k| {
                    acc += dist.pmf_at(k);
                    acc
                })
                .collect();
            if let Some(last) = cdf.last_mut() {
                *last += dist.tail_beyond;
            }
            cdf
        };
        let plan = Arc::new(StrataPlan {
            min_faults,
            strata_cap,
            strata,
            sample_weight,
            all_elided,
            tail_cdf,
            tail_lo,
        });
        plans.push(Arc::clone(&plan));
        plan
    }
}

/// A memoized stratified-estimator layout (see [`Engine::strata_plan`]).
#[derive(Debug)]
struct StrataPlan {
    min_faults: u32,
    strata_cap: u32,
    /// Zero-tally stratum template with exact weights.
    strata: Vec<StratumOutcome>,
    /// Total executable probability mass.
    sample_weight: f64,
    /// Every stratum weight is zero — the run resolves analytically.
    all_elided: bool,
    /// Conditional CDF of the tail stratum's fault count.
    tail_cdf: Vec<f64>,
    /// Smallest fault count in the tail stratum.
    tail_lo: usize,
}

/// Plain-integer tallies gathered inside the word loops and flushed to
/// the [`Collector`] exactly once per estimate — the hot loops never
/// touch an atomic, so fully-enabled instrumentation costs a handful of
/// register adds per word.
#[derive(Debug, Clone, Copy, Default)]
struct WordExtras {
    /// Lanes that saw ≥1 fault, summed over valid lanes of every word.
    faulted_lanes: u64,
    /// Individual fault injections across all lanes and ops.
    fault_events: u64,
    /// Segment executions that stayed on the fused fast path.
    fused_segments: u64,
    /// Segment executions that fell back to native replay.
    replayed_segments: u64,
    /// Words executed under a conditional (stratified) mask schedule.
    masked_words: u64,
}

impl WordExtras {
    fn merge(&mut self, o: WordExtras) {
        self.faulted_lanes += o.faulted_lanes;
        self.fault_events += o.fault_events;
        self.fused_segments += o.fused_segments;
        self.replayed_segments += o.replayed_segments;
        self.masked_words += o.masked_words;
    }
}

/// Folds one finished estimate's tallies into the collector.
fn flush_run(obs: &Collector, outcome: &McOutcome, extras: &WordExtras) {
    obs.add(Metric::ExecutedWords, outcome.executed_words);
    obs.add(Metric::ExecutedTrials, outcome.trials);
    obs.add(Metric::LaneFailures, outcome.failures);
    if outcome.early_stopped {
        obs.incr(Metric::EarlyStops);
    }
    obs.add(Metric::FaultedLanes, extras.faulted_lanes);
    obs.add(Metric::FaultEvents, extras.fault_events);
    obs.add(Metric::FusedSegments, extras.fused_segments);
    obs.add(Metric::ReplayedSegments, extras.replayed_segments);
    obs.add(Metric::MaskedWords, extras.masked_words);
}

/// Lanes of global word `word` that lie inside the trial budget (the
/// final word may cover fewer than 64 real trials).
#[inline]
fn valid_lanes(trials: u64, word: u64) -> u64 {
    let live = trials - word * 64;
    if live >= 64 {
        u64::MAX
    } else {
        (1u64 << live) - 1
    }
}

/// Splits `total` round words across strata by largest-remainder
/// apportionment over `scores` (deterministic; ties break toward lower
/// indices).
///
/// With no positive score anywhere (nothing has failed yet) the round is
/// split **uniformly** across live strata — uniform discovery finds the
/// failure-bearing strata orders of magnitude sooner than weight-
/// proportional splitting when the heavy strata provably never fail.
/// Every live stratum keeps a one-word floor so a mistakenly written-off
/// stratum can resurface.
fn apportion_words(scores: &[f64], weights: &[f64], total: u64) -> Vec<u64> {
    let n = scores.len();
    let mut alloc = vec![0u64; n];
    if total == 0 {
        return alloc;
    }
    let live: Vec<bool> = weights.iter().map(|&w| w > 0.0).collect();
    let sum: f64 = scores.iter().sum();
    if sum <= 0.0 {
        // Discovery mode: uniform over live strata; when there are fewer
        // words than strata, the heaviest strata are served first (a
        // one-word budget should probe where the mass is).
        let n_live = live.iter().filter(|&&l| l).count().max(1) as u64;
        let base = total / n_live;
        let mut extra = total % n_live;
        let mut order: Vec<usize> = (0..n).filter(|&i| live[i]).collect();
        order.sort_by(|&a, &b| weights[b].partial_cmp(&weights[a]).unwrap().then(a.cmp(&b)));
        let mut given = 0u64;
        for &i in &order {
            let take = base + u64::from(extra > 0);
            extra = extra.saturating_sub(1);
            alloc[i] += take;
            given += take;
        }
        if given < total {
            alloc[0] += total - given;
        }
        return alloc;
    }
    let mut assigned = 0u64;
    let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(n);
    for (i, &s) in scores.iter().enumerate() {
        let quota = total as f64 * s / sum;
        let floor = quota.floor() as u64;
        alloc[i] += floor;
        assigned += floor;
        fracs.push((quota - floor as f64, i));
    }
    fracs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    let mut rest = total.saturating_sub(assigned);
    for &(_, i) in &fracs {
        if rest == 0 {
            break;
        }
        alloc[i] += 1;
        rest -= 1;
    }
    // One-word floor for live strata, taken from the largest allocation.
    for i in 0..n {
        if live[i] && alloc[i] == 0 {
            if let Some(donor) = (0..n).filter(|&j| alloc[j] > 1).max_by_key(|&j| alloc[j]) {
                alloc[donor] -= 1;
                alloc[i] += 1;
            }
        }
    }
    alloc
}

/// Stratified analogue of [`converged`]: the estimated relative standard
/// error of `Σ w_k q̂_k` against the target, gated on enough pooled
/// failures for the check itself to be trustworthy.
///
/// A stratum that has never failed contributes nothing to the empirical
/// variance, yet its rate could still hide below the detection floor —
/// stopping must not be blind to that. Each zero-failure stratum adds an
/// uncertainty term from the rule of three (`q ≲ 3/n` at 95%, treated as
/// a ~`1.5/n` standard-error equivalent), so the run keeps sampling heavy
/// strata until their undetected mass is small against the estimate.
fn stratified_converged(strata: &[StratumOutcome], target: f64) -> bool {
    let failures: u64 = strata.iter().map(|s| s.failures).sum();
    if failures < MIN_FAILURES_FOR_STOP {
        return false;
    }
    let mut rate = 0.0;
    let mut var = 0.0;
    for s in strata {
        if s.weight <= 0.0 {
            continue;
        }
        if s.trials == 0 {
            return false;
        }
        let n = s.trials as f64;
        if s.failures == 0 {
            let u = s.weight * 1.5 / n;
            var += u * u;
            continue;
        }
        let q = s.failures as f64 / n;
        rate += s.weight * q;
        var += s.weight * s.weight * q * (1.0 - q) / n;
    }
    rate > 0.0 && var.sqrt() / rate <= target
}

/// Whether the failure-rate estimate has reached the target relative
/// standard error: `sqrt((1-p̂)/failures) ≤ target`, once enough failures
/// accumulated for the check itself to be trustworthy.
fn converged(failures: u64, executed: u64, target: f64) -> bool {
    if failures < MIN_FAILURES_FOR_STOP || executed == 0 {
        return false;
    }
    let p = failures as f64 / executed as f64;
    ((1.0 - p) / failures as f64).sqrt() <= target
}

// ---------------------------------------------------------------------------
// Backends
// ---------------------------------------------------------------------------

/// Resolved execution strategy of one estimation run: the scalar
/// reference loop, or the compiled micro-op word loop at a fixed wide
/// width. (The [`Backend`] trait remains the public, object-safe face;
/// the word loops dispatch on this enum so the batch path can use the
/// concrete fused runners.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecPath {
    /// The scalar reference backend.
    Scalar,
    /// The compiled batch backend at wide width `width ∈ {1, 2, 4}`.
    Batch { width: usize },
}

impl ExecPath {
    fn name(self) -> &'static str {
        match self {
            ExecPath::Scalar => "scalar",
            ExecPath::Batch { .. } => "batch",
        }
    }
}

/// An execution strategy over 64-lane words.
///
/// Implementations run the engine's compiled circuit over every lane of a
/// [`BatchState`] and report which lanes saw at least one fault. The two
/// Monte-Carlo backends draw from `rng` in an identical order, so a given
/// seed yields bit-identical lanes on either.
pub trait Backend: Sync {
    /// Short stable name (reported in [`McOutcome::backend`]).
    fn name(&self) -> &'static str;

    /// Runs `engine`'s circuit over every lane of `batch`.
    fn run(
        &self,
        engine: &Engine,
        batch: &mut BatchState,
        rng: &mut dyn RngCore,
    ) -> BatchExecReport;

    /// Runs `engine`'s circuit over the single plane word of `batch`
    /// under a **precomputed** per-op fault-mask schedule (`masks[i]` =
    /// lanes in which op `i` faults) — the stratified estimator's
    /// conditional execution path. Implementations draw exactly one
    /// random plane per support wire of each masked op, in op order, so
    /// the Monte-Carlo backends stay bit-identical under shared
    /// schedules. The RNG is the concrete [`SmallRng`]: this loop is hot
    /// enough that dynamic RNG dispatch costs ~30%.
    ///
    /// The default panics: backends that sample their own faults (e.g.
    /// [`PlannedFaultBackend`]) do not take external schedules.
    fn run_masked(
        &self,
        engine: &Engine,
        batch: &mut BatchState,
        masks: &[u64],
        rng: &mut SmallRng,
    ) -> BatchExecReport {
        let _ = (engine, batch, masks, rng);
        unimplemented!(
            "the {} backend does not support masked fault schedules",
            self.name()
        )
    }
}

/// The scalar reference backend: every lane is unpacked into its own
/// [`BitState`] and ops are applied one lane at a time, replaying the
/// batch backend's word-level fault schedule exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackend;

impl Backend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn run(
        &self,
        engine: &Engine,
        batch: &mut BatchState,
        rng: &mut dyn RngCore,
    ) -> BatchExecReport {
        let circuit = &engine.circuit;
        assert_eq!(
            batch.n_wires(),
            circuit.n_wires(),
            "batch width must match circuit width"
        );
        let words = batch.words_per_wire();
        let mut lanes: Vec<BitState> = (0..batch.lanes()).map(|l| batch.lane(l)).collect();
        let mut report = BatchExecReport {
            fault_events: 0,
            faulted_lanes: vec![0; words],
        };
        for (i, op) in circuit.ops().iter().enumerate() {
            let sampler_idx = engine.table.sampler_of[i];
            if sampler_idx == NEVER {
                for state in &mut lanes {
                    op.apply(state);
                }
                continue;
            }
            let sampler = &engine.table.samplers[sampler_idx];
            let support = op.support();
            let wires = support.as_slice();
            for word in 0..words {
                let fault = sampler.sample(rng);
                if fault == 0 {
                    for state in &mut lanes[word * 64..(word + 1) * 64] {
                        op.apply(state);
                    }
                    continue;
                }
                let mut rand_planes = [0u64; 4];
                for plane in rand_planes.iter_mut().take(op.arity()) {
                    *plane = rng.random::<u64>();
                }
                for (lane, state) in lanes[word * 64..(word + 1) * 64].iter_mut().enumerate() {
                    if (fault >> lane) & 1 == 1 {
                        let mut pattern = 0u8;
                        for (k, _) in wires.iter().enumerate() {
                            pattern |= (((rand_planes[k] >> lane) & 1) as u8) << k;
                        }
                        state.write_pattern(wires, pattern);
                    } else {
                        op.apply(state);
                    }
                }
                report.fault_events += fault.count_ones() as u64;
                report.faulted_lanes[word] |= fault;
            }
        }
        for (lane, state) in lanes.iter().enumerate() {
            batch.set_lane(lane, state);
        }
        report
    }

    fn run_masked(
        &self,
        engine: &Engine,
        batch: &mut BatchState,
        masks: &[u64],
        rng: &mut SmallRng,
    ) -> BatchExecReport {
        run_masked_word_scalar(&engine.circuit, batch, masks, rng)
    }
}

/// The bit-parallel backend: branch-free plane kernels, 64 lanes per
/// machine word — the fast path for large trial budgets.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchBackend;

impl Backend for BatchBackend {
    fn name(&self) -> &'static str {
        "batch"
    }

    fn run(
        &self,
        engine: &Engine,
        batch: &mut BatchState,
        rng: &mut dyn RngCore,
    ) -> BatchExecReport {
        run_batch_words(&engine.circuit, &engine.table, batch, rng)
    }

    fn run_masked(
        &self,
        engine: &Engine,
        batch: &mut BatchState,
        masks: &[u64],
        rng: &mut SmallRng,
    ) -> BatchExecReport {
        // Routed through the compiled micro-op program: fused linear
        // segments skip their kernels entirely when the schedule leaves
        // them clean, and faults are pushed to the segment boundary by
        // the precomputed propagation pairs — bit-identical to the raw
        // op-at-a-time loop (see `tests/microop_fusion.rs`).
        assert_eq!(
            batch.words_per_wire(),
            1,
            "masked execution drives single-word batches"
        );
        assert_eq!(
            batch.n_wires(),
            engine.circuit.n_wires(),
            "batch width must match circuit width"
        );
        assert_eq!(
            masks.len(),
            engine.circuit.len(),
            "mask schedule does not match this circuit"
        );
        let mut scratch = ExecScratch::default();
        let rngs: &mut [SmallRng; 1] = std::slice::from_mut(rng)
            .try_into()
            .expect("one RNG for one word");
        let out =
            microop::run_masked_wide::<1>(engine.compiled(), batch, masks, rngs, &mut scratch);
        BatchExecReport {
            fault_events: out.fault_events,
            faulted_lanes: out.faulted.to_vec(),
        }
    }
}

/// Deterministic fault injection: every lane takes exactly the faults of
/// one [`FaultPlan`] (a planned fault writes its pattern onto the
/// operation's support instead of executing it). Randomness is never
/// consumed; the exhaustive single/double-fault proofs are built on this.
#[derive(Debug, Clone, Copy)]
pub struct PlannedFaultBackend<'p> {
    plan: &'p FaultPlan,
}

impl<'p> PlannedFaultBackend<'p> {
    /// A backend injecting exactly `plan`.
    pub fn new(plan: &'p FaultPlan) -> Self {
        PlannedFaultBackend { plan }
    }

    /// The bound plan.
    pub fn plan(&self) -> &FaultPlan {
        self.plan
    }

    /// Runs `circuit` on a single scalar `state` with the planned faults —
    /// the workhorse of the exhaustive fault sweeps, where one `(input,
    /// plan)` pair is one run.
    ///
    /// # Panics
    ///
    /// Panics if the widths mismatch or a planned index is out of range.
    pub fn run_state(&self, circuit: &Circuit, state: &mut BitState) {
        assert_eq!(
            state.len(),
            circuit.n_wires(),
            "state width must match circuit width"
        );
        self.check_plan(circuit);
        for (i, op) in circuit.ops().iter().enumerate() {
            match self.plan.pattern_for(i) {
                Some(pattern) => {
                    let support = op.support();
                    state.write_pattern(support.as_slice(), pattern);
                }
                None => op.apply(state),
            }
        }
    }

    fn check_plan(&self, circuit: &Circuit) {
        for fault in self.plan.faults() {
            assert!(
                fault.op_index < circuit.len(),
                "planned fault targets op {} but circuit has {} ops",
                fault.op_index,
                circuit.len()
            );
        }
    }
}

impl Backend for PlannedFaultBackend<'_> {
    fn name(&self) -> &'static str {
        "planned"
    }

    fn run(
        &self,
        engine: &Engine,
        batch: &mut BatchState,
        _rng: &mut dyn RngCore,
    ) -> BatchExecReport {
        let circuit = &engine.circuit;
        assert_eq!(
            batch.n_wires(),
            circuit.n_wires(),
            "batch width must match circuit width"
        );
        self.check_plan(circuit);
        let words = batch.words_per_wire();
        let mut report = BatchExecReport {
            fault_events: 0,
            faulted_lanes: vec![0; words],
        };
        for (i, op) in circuit.ops().iter().enumerate() {
            match self.plan.pattern_for(i) {
                Some(pattern) => {
                    let support = op.support();
                    for (k, &wire) in support.as_slice().iter().enumerate() {
                        let plane = if (pattern >> k) & 1 == 1 { u64::MAX } else { 0 };
                        for word in 0..words {
                            batch.set_word(wire, word, plane);
                        }
                    }
                    report.fault_events += batch.lanes() as u64;
                    for mask in report.faulted_lanes.iter_mut() {
                        *mask = u64::MAX;
                    }
                }
                None => {
                    for word in 0..words {
                        kernels::apply_word(batch, op, word);
                    }
                }
            }
        }
        report
    }
}

// ---------------------------------------------------------------------------
// Options / outcome
// ---------------------------------------------------------------------------

/// Which Monte-Carlo estimator an estimation run should use (see the
/// module-level *Rare-event estimation* section for the derivation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Estimator {
    /// Execute every requested trial (the classic estimator).
    Plain,
    /// Fault-count-stratified sampling with analytic elision of
    /// low-fault-count words.
    Stratified {
        /// Words with fewer than this many faults contribute exactly zero
        /// failures analytically and are never executed. `1` (the
        /// default) is sound whenever a fault-free run cannot fail
        /// ([`WordTrial::fault_free_can_fail`] is `false`); larger values
        /// assert that the circuit provably corrects `min_faults − 1`
        /// faults (e.g. `2` once `rft_core::ftcheck`'s exhaustive
        /// single-fault sweep has passed). `0` disables elision and
        /// stratifies only.
        min_faults: u32,
        /// Number of fault-count strata: explicit counts `min_faults,
        /// min_faults+1, …` plus one unbounded tail stratum (so the
        /// explicit strata number `strata_cap − 1`). Clamped to ≥ 1.
        strata_cap: u32,
    },
    /// Choose per run: stratified — with the trial's declared
    /// [`WordTrial::min_failing_faults`] elision — when the executable
    /// mass `P(K ≥ min_failing_faults)` is below
    /// [`STRATIFIED_ROUTING_THRESHOLD`], plain otherwise.
    #[default]
    Auto,
}

impl Estimator {
    /// The stratified estimator with default parameters (zero-fault
    /// elision, [`DEFAULT_STRATA_CAP`] strata).
    pub const DEFAULT_STRATIFIED: Estimator = Estimator::Stratified {
        min_faults: 1,
        strata_cap: DEFAULT_STRATA_CAP,
    };

    /// Resolves `Auto` against the probability mass the stratified
    /// estimator would have to execute (`P(K ≥ min_failing_faults)` under
    /// the compiled fault-count distribution) and the trial's declared
    /// minimum failing fault count; explicit choices pass through.
    ///
    /// `Auto` picks the stratified estimator — with the trial's declared
    /// elision — whenever the executable mass is below
    /// [`STRATIFIED_ROUTING_THRESHOLD`], i.e. when most plain-MC words
    /// would be spent on outcomes that are known analytically.
    pub fn resolve(self, executable_mass: f64, min_failing_faults: u32) -> Estimator {
        match self {
            Estimator::Auto => {
                if min_failing_faults > 0 && executable_mass < STRATIFIED_ROUTING_THRESHOLD {
                    Estimator::Stratified {
                        min_faults: min_failing_faults,
                        strata_cap: DEFAULT_STRATA_CAP,
                    }
                } else {
                    Estimator::Plain
                }
            }
            explicit => explicit,
        }
    }
}

impl fmt::Display for Estimator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Estimator::Plain => f.write_str("plain"),
            Estimator::Auto => f.write_str("auto"),
            Estimator::Stratified {
                min_faults,
                strata_cap,
            } => write!(f, "stratified:{min_faults}:{strata_cap}"),
        }
    }
}

impl FromStr for Estimator {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "plain" => return Ok(Estimator::Plain),
            "auto" => return Ok(Estimator::Auto),
            "stratified" => return Ok(Estimator::DEFAULT_STRATIFIED),
            _ => {}
        }
        if let Some(rest) = s.strip_prefix("stratified:") {
            let mut parts = rest.splitn(2, ':');
            let min: u32 = parts
                .next()
                .unwrap_or_default()
                .parse()
                .map_err(|_| format!("bad min_faults in estimator {s:?}"))?;
            let cap: u32 = match parts.next() {
                Some(c) => c
                    .parse()
                    .map_err(|_| format!("bad strata_cap in estimator {s:?}"))?,
                None => DEFAULT_STRATA_CAP,
            };
            return Ok(Estimator::Stratified {
                min_faults: min,
                strata_cap: cap.max(1),
            });
        }
        Err(format!(
            "unknown estimator {s:?} (expected plain, auto, stratified, \
             stratified:<min_faults> or stratified:<min_faults>:<strata_cap>)"
        ))
    }
}

/// Which backend an estimation run should use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendKind {
    /// Route by trial count: batch at or above the threshold, scalar
    /// below it.
    #[default]
    Auto,
    /// Always the scalar reference backend.
    Scalar,
    /// Always the bit-parallel batch backend.
    Batch,
}

impl BackendKind {
    /// Resolves `Auto` against a trial budget; explicit kinds pass
    /// through.
    pub fn resolve(self, trials: u64, batch_threshold: u64) -> BackendKind {
        match self {
            BackendKind::Auto => {
                if trials >= batch_threshold {
                    BackendKind::Batch
                } else {
                    BackendKind::Scalar
                }
            }
            explicit => explicit,
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BackendKind::Auto => "auto",
            BackendKind::Scalar => "scalar",
            BackendKind::Batch => "batch",
        })
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(BackendKind::Auto),
            "scalar" => Ok(BackendKind::Scalar),
            "batch" => Ok(BackendKind::Batch),
            other => Err(format!(
                "unknown backend {other:?} (expected auto, scalar or batch)"
            )),
        }
    }
}

/// Wide-word width of the batch word loops: how many consecutive 64-lane
/// logical words one pass of the compiled micro-op program executes
/// (`[u64; W]` planes, autovectorization-friendly).
///
/// Width never changes results: every logical word derives its RNG
/// stream from `(seed, global word index)` alone, so estimates are
/// **bit-identical at any width** (pinned by tests) — this knob trades
/// nothing but throughput.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum WordWidth {
    /// Full width (4) on the batch backend, 1 on the scalar reference.
    #[default]
    Auto,
    /// One 64-lane word per pass.
    W1,
    /// Two 64-lane words per pass.
    W2,
    /// Four 64-lane words per pass.
    W4,
}

impl WordWidth {
    /// Resolves to a concrete width for `backend` (the scalar reference
    /// always runs one word at a time).
    pub fn resolve(self, backend: BackendKind) -> usize {
        if !matches!(backend, BackendKind::Batch) {
            return 1;
        }
        match self {
            WordWidth::Auto | WordWidth::W4 => 4,
            WordWidth::W1 => 1,
            WordWidth::W2 => 2,
        }
    }
}

impl fmt::Display for WordWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WordWidth::Auto => "auto",
            WordWidth::W1 => "1",
            WordWidth::W2 => "2",
            WordWidth::W4 => "4",
        })
    }
}

impl FromStr for WordWidth {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(WordWidth::Auto),
            "1" => Ok(WordWidth::W1),
            "2" => Ok(WordWidth::W2),
            "4" => Ok(WordWidth::W4),
            other => Err(format!(
                "unknown word width {other:?} (expected auto, 1, 2 or 4)"
            )),
        }
    }
}

/// Typed Monte-Carlo run options for [`Engine::estimate`].
///
/// Fields are public for direct construction; the consuming builder
/// methods read better in call sites:
///
/// ```
/// use rft_revsim::engine::{BackendKind, McOptions};
///
/// let opts = McOptions::new(10_000)
///     .seed(2005)
///     .threads(4)
///     .backend(BackendKind::Auto)
///     .target_rel_error(0.1);
/// assert_eq!(opts.trials, 10_000);
/// ```
#[must_use = "McOptions configure a run but do not start one"]
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McOptions {
    /// Trial budget (an upper bound when early stopping is enabled).
    pub trials: u64,
    /// Base RNG seed; every 64-trial word derives its own stream from it.
    pub seed: u64,
    /// Worker threads (`0` is treated as `1`).
    pub threads: usize,
    /// Backend selection policy.
    pub backend: BackendKind,
    /// Trial count at which [`BackendKind::Auto`] routes to the batch
    /// backend.
    pub batch_threshold: u64,
    /// Estimator selection policy ([`Estimator::Auto`] routes eligible
    /// deep-sub-threshold runs to the stratified rare-event estimator).
    pub estimator: Estimator,
    /// Wide-word width of the batch word loops (never changes results;
    /// see [`WordWidth`]).
    pub width: WordWidth,
    /// Target relative standard error of the failure-rate estimate; when
    /// set, estimation stops early once reached (adaptive sampling).
    pub target_rel_error: Option<f64>,
}

impl McOptions {
    /// Options for `trials` trials with defaults: seed 0, one thread,
    /// auto backend at [`DEFAULT_BATCH_THRESHOLD`], auto estimator, no
    /// early stopping.
    pub fn new(trials: u64) -> Self {
        McOptions {
            trials,
            seed: 0,
            threads: 1,
            backend: BackendKind::Auto,
            batch_threshold: DEFAULT_BATCH_THRESHOLD,
            estimator: Estimator::Auto,
            width: WordWidth::Auto,
            target_rel_error: None,
        }
    }

    /// Sets the trial budget.
    pub fn trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// XORs `salt` into the seed (for deriving per-point sub-seeds in
    /// sweeps).
    pub fn salt(mut self, salt: u64) -> Self {
        self.seed ^= salt;
        self
    }

    /// Sets the worker thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the backend selection policy.
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the auto-routing threshold.
    pub fn batch_threshold(mut self, threshold: u64) -> Self {
        self.batch_threshold = threshold;
        self
    }

    /// Sets the estimator selection policy.
    pub fn estimator(mut self, estimator: Estimator) -> Self {
        self.estimator = estimator;
        self
    }

    /// Sets the wide-word width policy.
    pub fn width(mut self, width: WordWidth) -> Self {
        self.width = width;
        self
    }

    /// Shorthand for [`Estimator::Stratified`] with explicit parameters.
    pub fn stratified(self, min_faults: u32, strata_cap: u32) -> Self {
        self.estimator(Estimator::Stratified {
            min_faults,
            strata_cap,
        })
    }

    /// Enables adaptive early stopping at the given target relative
    /// standard error.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not positive and finite.
    pub fn target_rel_error(mut self, target: f64) -> Self {
        assert!(
            target > 0.0 && target.is_finite(),
            "target relative error must be positive and finite, got {target}"
        );
        self.target_rel_error = Some(target);
        self
    }
}

impl Default for McOptions {
    fn default() -> Self {
        McOptions::new(4096)
    }
}

/// Raw result of an [`Engine::estimate`] run.
#[must_use = "an estimation outcome should be inspected or converted"]
#[derive(Debug, Clone, PartialEq)]
pub struct McOutcome {
    /// Failing trials observed. For the stratified estimator these are
    /// *conditional* failures (pooled over strata); weight them via
    /// [`McOutcome::rate`] or the per-stratum tallies in
    /// [`McOutcome::strata`].
    pub failures: u64,
    /// Trials actually executed (less than requested after an early stop;
    /// for a fully analytic stratified run — zero executable mass — the
    /// requested count, since every trial was resolved exactly).
    pub trials: u64,
    /// Trials requested.
    pub requested: u64,
    /// Whether adaptive early stopping cut the run short.
    pub early_stopped: bool,
    /// Name of the backend that executed the run.
    pub backend: &'static str,
    /// Name of the estimator that produced the run (`"plain"` or
    /// `"stratified"`; [`Estimator::Auto`] reports its resolution).
    pub estimator: &'static str,
    /// Total probability mass of the executed strata (`1.0` for plain;
    /// `P(K ≥ min_faults)` for stratified — the complement was elided
    /// analytically).
    pub sample_weight: f64,
    /// 64-lane circuit words actually executed — the cost metric the
    /// rare-event benches compare across estimators.
    pub executed_words: u64,
    /// Per-stratum tallies (empty for the plain estimator).
    pub strata: Vec<StratumOutcome>,
}

/// One fault-count stratum's tally in a stratified [`McOutcome`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StratumOutcome {
    /// Smallest fault count in the stratum.
    pub k_lo: u32,
    /// Largest fault count (`None` = unbounded tail).
    pub k_hi: Option<u32>,
    /// `P(K ∈ stratum)` — the stratum's exact weight.
    pub weight: f64,
    /// Conditional failures observed in the stratum.
    pub failures: u64,
    /// Conditional trials executed in the stratum.
    pub trials: u64,
}

impl McOutcome {
    /// Point estimate of the failure rate: `failures / trials` for the
    /// plain estimator, the exactly weighted `Σ wₖ · q̂ₖ` for the
    /// stratified one.
    pub fn rate(&self) -> f64 {
        if self.strata.is_empty() {
            if self.trials == 0 {
                return 0.0;
            }
            return self.failures as f64 / self.trials as f64;
        }
        self.strata
            .iter()
            .filter(|s| s.trials > 0)
            .map(|s| s.weight * s.failures as f64 / s.trials as f64)
            .sum()
    }
}

// ---------------------------------------------------------------------------
// Word trials
// ---------------------------------------------------------------------------

/// One 64-lane word of Monte-Carlo trials: how to prepare inputs and
/// judge failures. [`Engine::estimate`] supplies a single-word
/// [`BatchState`] (64 lanes) zeroed before `prepare`.
pub trait WordTrial: Sync {
    /// Physical width the trial expects (must match the engine's
    /// circuit).
    fn n_wires(&self) -> usize;

    /// Draws per-lane inputs from `rng`, encodes them into plane word 0
    /// of `batch`, and returns them (one plane per logical wire, bit `l`
    /// = lane `l`'s value) for [`WordTrial::judge`].
    fn prepare(&self, batch: &mut BatchState, rng: &mut dyn RngCore) -> Vec<u64>;

    /// Buffer-reusing variant of [`WordTrial::prepare`]: writes the lane
    /// inputs into `inputs` (cleared first) instead of allocating. The
    /// hot word loops call this; override it alongside `prepare` to keep
    /// the per-word cost allocation-free.
    fn prepare_into(&self, batch: &mut BatchState, rng: &mut dyn RngCore, inputs: &mut Vec<u64>) {
        inputs.clear();
        inputs.extend(self.prepare(batch, rng));
    }

    /// Mask of lanes whose final state counts as a logical failure.
    fn judge(&self, batch: &BatchState, inputs: &[u64]) -> u64;

    /// [`WordTrial::judge`] restricted to `candidates`: only lanes in the
    /// mask can be flagged (the result is implicitly ANDed with it). The
    /// word loops call this with the mask of *faulted* lanes whenever the
    /// trial declares fault-free lanes safe — skipping the per-lane
    /// decode of the (often vast) clean majority. Override together with
    /// `judge` to exploit the restriction.
    fn judge_masked(&self, batch: &BatchState, inputs: &[u64], candidates: u64) -> u64 {
        if candidates == 0 {
            return 0;
        }
        self.judge(batch, inputs) & candidates
    }

    /// Whether a lane that experienced **zero** faults can still be
    /// judged a failure. The stratified estimator's zero-fault elision is
    /// only sound when this is `false`; the conservative default keeps
    /// arbitrary trials on the plain estimator under [`Estimator::Auto`].
    /// Encode → run → decode trials (whose ideal execution is exact by
    /// construction) should override this to return `false`.
    fn fault_free_can_fail(&self) -> bool {
        true
    }

    /// Smallest number of faults that can possibly fail this trial — the
    /// `min_faults` elision [`Estimator::Auto`] may apply. `0` (required
    /// when [`WordTrial::fault_free_can_fail`] is `true`) disables
    /// elision; the default `1` for elision-eligible trials claims only
    /// the always-sound zero-fault elision. Trials with a *proven* fault
    /// distance may return more — e.g. a level-`L` concatenated program
    /// returns `2^L` (each level-1 block corrects any single fault and
    /// each outer level any single corrupted block).
    fn min_failing_faults(&self) -> u32 {
        u32::from(!self.fault_free_can_fail())
    }
}

/// Reads lane `lane`'s value out of per-wire plane words (bit `i` of the
/// result = bit `lane` of `planes[i]`).
#[inline]
pub fn lane_value(planes: &[u64], lane: usize) -> u64 {
    planes
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &plane)| acc | (((plane >> lane) & 1) << i))
}

/// Mask of lanes where `ideal(input) != output`, comparing per-lane
/// values assembled from input and output plane words.
pub fn failure_mask(inputs: &[u64], outputs: &[u64], ideal: impl Fn(u64) -> u64) -> u64 {
    failure_mask_in(u64::MAX, inputs, outputs, ideal)
}

/// [`failure_mask`] restricted to the lanes of `candidates`: only those
/// lanes are assembled and compared (the hot loops pass the mask of
/// faulted lanes — deep below threshold almost every lane is clean and
/// skipped). For ≤ 4 logical wires the comparison is done bitwise across
/// all 64 lanes at once by enumerating the (at most 16) input patterns —
/// no per-lane assembly at all.
pub fn failure_mask_in(
    candidates: u64,
    inputs: &[u64],
    outputs: &[u64],
    ideal: impl Fn(u64) -> u64,
) -> u64 {
    if candidates == 0 {
        return 0;
    }
    let n = inputs.len();
    debug_assert_eq!(n, outputs.len());
    if n <= 4 {
        // Truth-table evaluation: build each ideal output plane from the
        // input planes, then diff whole planes.
        let mut diff = 0u64;
        for (k, &out_plane) in outputs.iter().enumerate() {
            let mut ideal_plane = 0u64;
            for pattern in 0..(1u64 << n) {
                if (ideal(pattern) >> k) & 1 == 1 {
                    let mut sel = u64::MAX;
                    for (i, &in_plane) in inputs.iter().enumerate() {
                        sel &= if (pattern >> i) & 1 == 1 {
                            in_plane
                        } else {
                            !in_plane
                        };
                    }
                    ideal_plane |= sel;
                }
            }
            diff |= ideal_plane ^ out_plane;
        }
        return diff & candidates;
    }
    let mut failed = 0u64;
    let mut rest = candidates;
    while rest != 0 {
        let lane = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        let input = lane_value(inputs, lane);
        let output = lane_value(outputs, lane);
        if ideal(input) != output {
            failed |= 1u64 << lane;
        }
    }
    failed
}

// ---------------------------------------------------------------------------
// Simulation: engine + options
// ---------------------------------------------------------------------------

/// An [`Engine`] bound to its [`McOptions`]: the compile-once/run-many
/// handle. Build with [`Engine::with_options`], then call
/// [`Simulation::run`] as often as needed.
#[must_use = "a Simulation does nothing until run"]
#[derive(Debug, Clone)]
pub struct Simulation {
    engine: Engine,
    options: McOptions,
}

impl Simulation {
    /// The compiled engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The bound options.
    pub fn options(&self) -> &McOptions {
        &self.options
    }

    /// Replaces the bound options.
    pub fn reconfigure(mut self, options: McOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs one estimation with the bound options.
    pub fn run<T: WordTrial + ?Sized>(&self, trial: &T) -> McOutcome {
        self.engine.estimate(trial, &self.options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::{NoNoise, SplitNoise, UniformNoise};
    use crate::wire::w;

    fn recovery_like_circuit() -> Circuit {
        let mut c = Circuit::new(9);
        c.init(&[w(3), w(4), w(5)])
            .init(&[w(6), w(7), w(8)])
            .maj_inv(w(0), w(3), w(6))
            .maj_inv(w(1), w(4), w(7))
            .maj_inv(w(2), w(5), w(8))
            .maj(w(0), w(1), w(2))
            .maj(w(3), w(4), w(5))
            .maj(w(6), w(7), w(8));
        c
    }

    /// A trivial trial: lanes fail when wire 0 ends up set.
    struct Wire0Trial {
        n_wires: usize,
    }

    impl WordTrial for Wire0Trial {
        fn n_wires(&self) -> usize {
            self.n_wires
        }

        fn prepare(&self, _batch: &mut BatchState, _rng: &mut dyn RngCore) -> Vec<u64> {
            Vec::new()
        }

        fn judge(&self, batch: &BatchState, _inputs: &[u64]) -> u64 {
            batch.word(w(0), 0)
        }
    }

    #[test]
    fn noiseless_scalar_run_reports_no_faults() {
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &NoNoise);
        let mut s = BitState::zeros(9);
        let mut rng = SmallRng::seed_from_u64(0);
        let report = engine.run_scalar(&mut s, &mut rng);
        assert_eq!(report.fault_count(), 0);
        assert_eq!(s.count_ones(), 0);
    }

    #[test]
    fn always_fail_randomizes_every_op() {
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &UniformNoise::new(1.0));
        let mut s = BitState::zeros(9);
        let mut rng = SmallRng::seed_from_u64(1);
        let report = engine.run_scalar(&mut s, &mut rng);
        assert_eq!(report.fault_count(), c.len());
    }

    #[test]
    fn split_noise_spares_inits() {
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &SplitNoise::new(1.0, 0.0));
        let mut s = BitState::zeros(9);
        let mut rng = SmallRng::seed_from_u64(2);
        let report = engine.run_scalar(&mut s, &mut rng);
        // 6 gates fail, 2 inits never fail.
        assert_eq!(report.fault_count(), 6);
        assert!(report.faults.iter().all(|&i| i >= 2));
        assert_eq!(engine.fault_probability(0), 0.0);
        assert_eq!(engine.fault_probability(2), 1.0);
    }

    #[test]
    fn batch_always_fail_faults_every_lane() {
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &UniformNoise::new(1.0));
        let mut batch = BatchState::zeros(9, 1);
        let mut rng = SmallRng::seed_from_u64(1);
        let report = engine.run_batch(&mut batch, &mut rng);
        assert_eq!(report.fault_events, (c.len() * 64) as u64);
        assert_eq!(report.faulted_lanes, vec![u64::MAX]);
    }

    #[test]
    fn scalar_and_batch_backends_agree_lane_by_lane() {
        // Identical seeds ⇒ bit-identical final states *and* reports —
        // the backends share one fault schedule by construction.
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &UniformNoise::new(0.07));
        for seed in 0..20u64 {
            let mut scalar = BatchState::zeros(9, 2);
            let mut batch = BatchState::zeros(9, 2);
            let mut rng_s = SmallRng::seed_from_u64(seed);
            let mut rng_b = SmallRng::seed_from_u64(seed);
            let rs = ScalarBackend.run(&engine, &mut scalar, &mut rng_s);
            let rb = BatchBackend.run(&engine, &mut batch, &mut rng_b);
            assert_eq!(rs, rb, "seed {seed}: reports differ");
            assert_eq!(scalar, batch, "seed {seed}: states differ");
        }
    }

    #[test]
    fn planned_backend_matches_scalar_plan_run() {
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &NoNoise);
        let plan = FaultPlan::single(3, 0b101);
        let backend = PlannedFaultBackend::new(&plan);
        // Scalar reference.
        let mut state = BitState::zeros(9);
        backend.run_state(&c, &mut state);
        // Batch run on zeroed lanes.
        let mut batch = BatchState::zeros(9, 1);
        let mut rng = SmallRng::seed_from_u64(0);
        let report = backend.run(&engine, &mut batch, &mut rng);
        assert_eq!(report.faulted_lanes, vec![u64::MAX]);
        for lane in [0usize, 17, 63] {
            assert_eq!(batch.lane(lane), state, "lane {lane}");
        }
    }

    #[test]
    #[should_panic(expected = "planned fault targets op")]
    fn planned_out_of_range_panics() {
        let c = Circuit::new(1);
        let mut s = BitState::zeros(1);
        let plan = FaultPlan::single(0, 0);
        PlannedFaultBackend::new(&plan).run_state(&c, &mut s);
    }

    #[test]
    fn estimate_is_deterministic_and_backend_independent() {
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &UniformNoise::new(0.2));
        let trial = Wire0Trial { n_wires: 9 };
        let base = McOptions::new(1000).seed(42);
        let scalar = engine.estimate(&trial, &base.backend(BackendKind::Scalar).threads(3));
        let batch = engine.estimate(&trial, &base.backend(BackendKind::Batch).threads(1));
        let auto = engine.estimate(&trial, &base.backend(BackendKind::Auto).threads(2));
        assert_eq!(scalar.failures, batch.failures);
        assert_eq!(batch.failures, auto.failures);
        assert_eq!(batch.trials, 1000);
        assert_eq!(auto.backend, "batch");
        assert_eq!(scalar.backend, "scalar");
        assert!(batch.failures > 0, "heavy noise must produce failures");
    }

    #[test]
    fn instrumentation_never_perturbs_an_estimate() {
        // The hard invariant of the obs layer: a live collector observes
        // the run without touching any RNG stream or scheduling decision,
        // so the outcome is identical to the uninstrumented call — plain
        // and stratified, across thread counts.
        let c = permutation_circuit();
        let engine = Engine::compile(&c, &UniformNoise::new(0.05));
        let trial = PermTrial::new(&c);
        let plain = McOptions::new(5_000).seed(7).threads(3);
        let strat = plain.estimator(Estimator::Stratified {
            min_faults: 1,
            strata_cap: 4,
        });
        for opts in [&plain, &strat] {
            let bare = engine.estimate(&trial, opts);
            let obs = Collector::new();
            let watched = engine.estimate_obs(&trial, opts, &obs);
            assert_eq!(bare, watched);
            let snap = obs.snapshot();
            assert_eq!(snap.counter(Metric::EstimateCalls), 1);
            assert_eq!(snap.counter(Metric::ExecutedTrials), watched.trials);
            assert_eq!(snap.counter(Metric::ExecutedWords), watched.executed_words);
            assert_eq!(snap.counter(Metric::LaneFailures), watched.failures);
            assert!(snap.counter(Metric::FaultedLanes) > 0);
        }
        // Stratified bookkeeping: rounds ran, every executed word was
        // masked, and the elided mass gauge reflects the plan.
        let obs = Collector::new();
        let out = engine.estimate_obs(&trial, &strat, &obs);
        let snap = obs.snapshot();
        assert_eq!(snap.counter(Metric::StratifiedRuns), 1);
        assert!(snap.counter(Metric::StratifiedRounds) >= 1);
        assert_eq!(snap.counter(Metric::MaskedWords), out.executed_words);
        assert_eq!(snap.counter(Metric::AllocatedWords), out.executed_words);
        assert!(snap.gauge(Gauge::ElidedMass) > 0.0);
        // The trace saw the estimate span plus at least one round and one
        // per-worker word-loop span.
        let events = obs.span_events();
        assert!(events.iter().any(|e| e.name == "engine.estimate"));
        assert!(events.iter().any(|e| e.name == "estimator.round"));
        assert!(events.iter().any(|e| e.name == "engine.words"));
    }

    #[test]
    fn estimate_counts_partial_final_word() {
        struct AllFail;
        impl WordTrial for AllFail {
            fn n_wires(&self) -> usize {
                9
            }
            fn prepare(&self, _batch: &mut BatchState, _rng: &mut dyn RngCore) -> Vec<u64> {
                Vec::new()
            }
            fn judge(&self, _batch: &BatchState, _inputs: &[u64]) -> u64 {
                u64::MAX
            }
        }
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &NoNoise);
        for trials in [1u64, 64, 65, 100, 130] {
            let out = engine.estimate(&AllFail, &McOptions::new(trials).threads(2));
            assert_eq!(out.failures, trials);
            assert_eq!(out.trials, trials);
        }
    }

    #[test]
    fn adaptive_early_stopping_cuts_the_budget() {
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &UniformNoise::new(0.3));
        let trial = Wire0Trial { n_wires: 9 };
        // Rate ≈ 0.5: a loose 20% relative error needs only a few dozen
        // failures, far below the 200k budget.
        let opts = McOptions::new(200_000)
            .seed(9)
            .threads(2)
            .target_rel_error(0.2);
        let out = engine.estimate(&trial, &opts);
        assert!(out.early_stopped, "should stop early: {out:?}");
        assert!(out.trials < out.requested);
        assert!(out.failures >= MIN_FAILURES_FOR_STOP);
        // Even the early-stopped result is a function of the seed alone:
        // rounds are fixed-size, so the thread count cannot move the
        // stopping point.
        let again = engine.estimate(&trial, &opts);
        assert_eq!(out, again);
        let single_threaded = engine.estimate(&trial, &opts.threads(1));
        assert_eq!(out, single_threaded);
    }

    #[test]
    fn adaptive_runs_to_completion_when_target_unreachable() {
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &NoNoise);
        let trial = Wire0Trial { n_wires: 9 };
        // No failures ever: the run must exhaust its budget.
        let out = engine.estimate(&trial, &McOptions::new(500).target_rel_error(0.1));
        assert!(!out.early_stopped);
        assert_eq!(out.trials, 500);
        assert_eq!(out.failures, 0);
    }

    #[test]
    fn backend_kind_parses_and_resolves() {
        assert_eq!("auto".parse::<BackendKind>().unwrap(), BackendKind::Auto);
        assert_eq!(
            "scalar".parse::<BackendKind>().unwrap(),
            BackendKind::Scalar
        );
        assert_eq!("batch".parse::<BackendKind>().unwrap(), BackendKind::Batch);
        assert!("simd".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::Auto.resolve(256, 256), BackendKind::Batch);
        assert_eq!(BackendKind::Auto.resolve(255, 256), BackendKind::Scalar);
        assert_eq!(
            BackendKind::Scalar.resolve(1 << 20, 256),
            BackendKind::Scalar
        );
        assert_eq!(BackendKind::Batch.resolve(1, 256), BackendKind::Batch);
    }

    #[test]
    fn simulation_binds_options() {
        let c = recovery_like_circuit();
        let sim =
            Engine::compile(&c, &UniformNoise::new(0.25)).with_options(McOptions::new(640).seed(5));
        let trial = Wire0Trial { n_wires: 9 };
        let a = sim.run(&trial);
        let b = sim.run(&trial);
        assert_eq!(a, b);
        assert_eq!(sim.options().trials, 640);
        let sim = sim.reconfigure(McOptions::new(64).seed(5));
        assert_eq!(sim.run(&trial).trials, 64);
    }

    /// A sound stratified trial: random full-width inputs, failure = the
    /// final state differs from the ideal permutation of the input. A
    /// fault-free lane computes the permutation exactly, so elision is
    /// valid.
    struct PermTrial {
        circuit: Circuit,
        ideal: crate::permutation::Permutation,
    }

    impl PermTrial {
        fn new(circuit: &Circuit) -> Self {
            PermTrial {
                circuit: circuit.clone(),
                ideal: crate::permutation::Permutation::of_circuit(circuit)
                    .expect("small test circuit"),
            }
        }
    }

    impl WordTrial for PermTrial {
        fn n_wires(&self) -> usize {
            self.circuit.n_wires()
        }

        fn prepare(&self, batch: &mut BatchState, rng: &mut dyn RngCore) -> Vec<u64> {
            let planes: Vec<u64> = (0..self.circuit.n_wires()).map(|_| rng.random()).collect();
            for (i, &plane) in planes.iter().enumerate() {
                batch.set_word(crate::wire::w(i as u32), 0, plane);
            }
            planes
        }

        fn judge(&self, batch: &BatchState, inputs: &[u64]) -> u64 {
            let outputs: Vec<u64> = (0..self.circuit.n_wires())
                .map(|i| batch.word(crate::wire::w(i as u32), 0))
                .collect();
            failure_mask(inputs, &outputs, |x| self.ideal.apply(x))
        }

        fn fault_free_can_fail(&self) -> bool {
            false
        }
    }

    /// A MAJ-encode/decode circuit with no inits (a permutation, so
    /// `PermTrial` applies).
    fn permutation_circuit() -> Circuit {
        let mut c = Circuit::new(6);
        c.maj_inv(w(0), w(1), w(2))
            .maj_inv(w(3), w(4), w(5))
            .maj(w(0), w(1), w(2))
            .maj(w(3), w(4), w(5));
        c
    }

    #[test]
    fn fault_count_pmf_matches_brute_force_enumeration() {
        // Exactness check: enumerate all 2^n fault subsets of a small
        // mixed-rate circuit and compare the Poisson-binomial PMF.
        let c = recovery_like_circuit();
        let noise = SplitNoise::new(0.3, 0.1);
        let engine = Engine::compile(&c, &noise);
        let probs: Vec<f64> = (0..c.len()).map(|i| engine.fault_probability(i)).collect();
        let n = probs.len();
        let mut expect = vec![0.0f64; n + 1];
        for subset in 0..(1u64 << n) {
            let mut p = 1.0;
            for (i, &pi) in probs.iter().enumerate() {
                p *= if (subset >> i) & 1 == 1 { pi } else { 1.0 - pi };
            }
            expect[subset.count_ones() as usize] += p;
        }
        let pmf = engine.fault_count_pmf();
        for (k, &e) in expect.iter().enumerate() {
            let got = pmf.get(k).copied().unwrap_or(0.0);
            assert!(
                (got - e).abs() < 1e-12,
                "k={k}: pmf {got} vs brute force {e}"
            );
        }
        assert!((engine.fault_free_probability() - expect[0]).abs() < 1e-15);
        assert!((engine.fault_count_at_least(1) - (1.0 - expect[0])).abs() < 1e-12);
    }

    #[test]
    fn fault_count_pmf_uniform_is_binomial() {
        let c = recovery_like_circuit();
        let g = 0.01;
        let engine = Engine::compile(&c, &UniformNoise::new(g));
        let n = c.len();
        let pmf = engine.fault_count_pmf();
        let mut binom = 1.0f64 * (1.0 - g).powi(n as i32);
        let ratio = g / (1.0 - g);
        for (k, &v) in pmf.iter().enumerate() {
            assert!((v - binom).abs() < 1e-12, "k={k}: {v} vs {binom}");
            binom *= ratio * (n - k) as f64 / (k + 1) as f64;
        }
    }

    #[test]
    fn stratified_matches_plain_within_wilson() {
        // Statistical equivalence at a moderate rate where both
        // estimators resolve comfortably: disjoint seeds, overlapping
        // nominal ±3σ intervals.
        let c = permutation_circuit();
        let engine = Engine::compile(&c, &UniformNoise::new(0.02));
        let trial = PermTrial::new(&c);
        let trials = 60_000u64;
        let plain = engine.estimate(
            &trial,
            &McOptions::new(trials).seed(1).estimator(Estimator::Plain),
        );
        let strat = engine.estimate(
            &trial,
            &McOptions::new(trials)
                .seed(2)
                .estimator(Estimator::DEFAULT_STRATIFIED),
        );
        assert_eq!(strat.estimator, "stratified");
        let p = plain.rate();
        let s = strat.rate();
        assert!(p > 0.0 && s > 0.0);
        // Combined-σ band (conservative: plain σ on both).
        let sd = (p * (1.0 - p) / trials as f64).sqrt();
        assert!(
            (p - s).abs() < 6.0 * sd,
            "plain {p} vs stratified {s} (sd {sd})"
        );
        assert!(strat.sample_weight < 0.2);

        // At a common precision *target*, elision pays in executed words:
        // conditional failures arrive ~1/P(any fault) times faster. Use a
        // deep rate so plain actually needs many 32-word rounds.
        let deep = Engine::compile(&c, &UniformNoise::new(0.002));
        let target = McOptions::new(4_000_000).target_rel_error(0.1).threads(2);
        let plain_t = deep.estimate(&trial, &target.seed(3).estimator(Estimator::Plain));
        let strat_t = deep.estimate(
            &trial,
            &target.seed(4).estimator(Estimator::DEFAULT_STRATIFIED),
        );
        assert!(plain_t.early_stopped && strat_t.early_stopped);
        assert!(
            strat_t.executed_words * 4 < plain_t.executed_words,
            "stratified {} words vs plain {} words to the same target",
            strat_t.executed_words,
            plain_t.executed_words
        );
    }

    #[test]
    fn stratified_min_faults_two_matches_plain_when_singles_cannot_fail() {
        // In this circuit a single fault *can* fail a lane, so rather
        // than elide k=1 we pin the opposite: min_faults = 2 must
        // under-count exactly by the single-fault stratum. Compare
        // min_faults = 1 (sound) against plain instead, and check the
        // k = 1 stratum carries most of the mass.
        let c = permutation_circuit();
        let engine = Engine::compile(&c, &UniformNoise::new(0.005));
        let trial = PermTrial::new(&c);
        let strat = engine.estimate(&trial, &McOptions::new(40_000).seed(7).stratified(1, 4));
        let k1 = &strat.strata[0];
        assert_eq!(k1.k_lo, 1);
        assert!(k1.weight > strat.strata[1].weight * 10.0);
        assert!(k1.trials > 0);
    }

    #[test]
    fn stratified_is_seed_deterministic_and_backend_identical() {
        let c = permutation_circuit();
        let engine = Engine::compile(&c, &UniformNoise::new(0.01));
        let trial = PermTrial::new(&c);
        let base = McOptions::new(8_000)
            .seed(11)
            .estimator(Estimator::DEFAULT_STRATIFIED);
        let a = engine.estimate(&trial, &base.threads(4));
        let b = engine.estimate(&trial, &base.threads(1));
        assert_eq!(a, b, "thread-count independent");
        let scalar = engine.estimate(&trial, &base.backend(BackendKind::Scalar).threads(2));
        assert_eq!(a.failures, scalar.failures, "backend identical");
        assert_eq!(a.strata, scalar.strata);
    }

    #[test]
    fn stratified_elides_noiseless_runs_entirely() {
        let c = permutation_circuit();
        let engine = Engine::compile(&c, &NoNoise);
        let trial = PermTrial::new(&c);
        let out = engine.estimate(
            &trial,
            &McOptions::new(10_000).estimator(Estimator::DEFAULT_STRATIFIED),
        );
        assert_eq!(out.failures, 0);
        assert_eq!(out.trials, 10_000);
        assert_eq!(out.executed_words, 0, "nothing to execute");
        assert_eq!(out.rate(), 0.0);
        // Auto reaches the same analytic shortcut.
        let auto = engine.estimate(&trial, &McOptions::new(10_000));
        assert_eq!(auto.estimator, "stratified");
        assert_eq!(auto.executed_words, 0);
    }

    #[test]
    fn stratified_counts_partial_final_word() {
        let c = permutation_circuit();
        let engine = Engine::compile(&c, &UniformNoise::new(0.02));
        let trial = PermTrial::new(&c);
        for trials in [65u64, 100, 130] {
            let out = engine.estimate(
                &trial,
                &McOptions::new(trials).estimator(Estimator::DEFAULT_STRATIFIED),
            );
            assert_eq!(out.trials, trials, "stratified respects the budget");
        }
    }

    #[test]
    #[should_panic(expected = "fault_free_can_fail")]
    fn stratified_rejects_ineligible_trials() {
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &UniformNoise::new(0.01));
        let trial = Wire0Trial { n_wires: 9 };
        let _ = engine.estimate(
            &trial,
            &McOptions::new(1000).estimator(Estimator::DEFAULT_STRATIFIED),
        );
    }

    #[test]
    fn auto_estimator_routes_by_executable_mass_and_eligibility() {
        assert_eq!(
            Estimator::Auto.resolve(0.05, 1),
            Estimator::DEFAULT_STRATIFIED
        );
        // A declared fault distance flows into the elision.
        assert_eq!(
            Estimator::Auto.resolve(0.01, 4),
            Estimator::Stratified {
                min_faults: 4,
                strata_cap: DEFAULT_STRATA_CAP
            }
        );
        // Ineligible trials (min 0) and heavy executable mass stay plain.
        assert_eq!(Estimator::Auto.resolve(0.05, 0), Estimator::Plain);
        assert_eq!(Estimator::Auto.resolve(0.5, 1), Estimator::Plain);
        assert_eq!(Estimator::Plain.resolve(0.0, 1), Estimator::Plain);
        let explicit = Estimator::Stratified {
            min_faults: 2,
            strata_cap: 3,
        };
        assert_eq!(explicit.resolve(0.1, 0), explicit);
    }

    #[test]
    fn estimator_parses_and_displays() {
        assert_eq!("plain".parse::<Estimator>().unwrap(), Estimator::Plain);
        assert_eq!("auto".parse::<Estimator>().unwrap(), Estimator::Auto);
        assert_eq!(
            "stratified".parse::<Estimator>().unwrap(),
            Estimator::DEFAULT_STRATIFIED
        );
        assert_eq!(
            "stratified:2".parse::<Estimator>().unwrap(),
            Estimator::Stratified {
                min_faults: 2,
                strata_cap: DEFAULT_STRATA_CAP
            }
        );
        assert_eq!(
            "stratified:2:6".parse::<Estimator>().unwrap(),
            Estimator::Stratified {
                min_faults: 2,
                strata_cap: 6
            }
        );
        assert!("nope".parse::<Estimator>().is_err());
        assert!("stratified:x".parse::<Estimator>().is_err());
        for e in [
            Estimator::Plain,
            Estimator::Auto,
            Estimator::DEFAULT_STRATIFIED,
        ] {
            assert_eq!(e.to_string().parse::<Estimator>().unwrap(), e);
        }
    }

    #[test]
    fn stratified_weights_account_for_all_mass() {
        let c = permutation_circuit();
        let engine = Engine::compile(&c, &UniformNoise::new(0.01));
        let trial = PermTrial::new(&c);
        let out = engine.estimate(&trial, &McOptions::new(1000).stratified(1, 4));
        let elided = engine.fault_free_probability();
        assert!(
            (out.sample_weight + elided - 1.0).abs() < 1e-9,
            "weights {} + elided {} should cover all mass",
            out.sample_weight,
            elided
        );
        let strata_sum: f64 = out.strata.iter().map(|s| s.weight).sum();
        assert!((strata_sum - out.sample_weight).abs() < 1e-12);
    }

    #[test]
    fn apportion_words_is_proportional_and_covering() {
        assert_eq!(apportion_words(&[3.0, 1.0], &[0.5, 0.5], 4), vec![3, 1]);
        // One-word floor: a zero-score live stratum still gets seeded.
        assert_eq!(apportion_words(&[1.0, 0.0], &[0.5, 0.5], 8), vec![7, 1]);
        // Discovery with fewer words than strata: heaviest strata first.
        assert_eq!(
            apportion_words(&[0.0, 0.0, 0.0], &[0.1, 0.02, 0.8], 1),
            vec![0, 0, 1]
        );
        // Discovery mode: no failures anywhere → uniform over live strata.
        assert_eq!(
            apportion_words(&[0.0, 0.0, 0.0], &[0.5, 0.0, 0.5], 5),
            vec![3, 0, 2]
        );
        // Dead strata get nothing.
        assert_eq!(apportion_words(&[1.0, 0.0], &[1.0, 0.0], 7), vec![7, 0]);
    }

    #[test]
    fn fused_masked_run_matches_raw_masked_reference() {
        // `BatchBackend::run_masked` routes through the compiled
        // micro-op program; the retired op-at-a-time loop stays as the
        // raw reference it must match bit for bit.
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &UniformNoise::new(0.05));
        for seed in 0..10u64 {
            let mut masks = vec![0u64; c.len()];
            let mut seeder = SmallRng::seed_from_u64(seed.wrapping_mul(31));
            for m in masks.iter_mut() {
                *m = seeder.random::<u64>() & seeder.random::<u64>() & seeder.random::<u64>();
            }
            let mut raw = BatchState::zeros(9, 1);
            let mut fused = BatchState::zeros(9, 1);
            let mut rng_r = SmallRng::seed_from_u64(seed);
            let mut rng_f = SmallRng::seed_from_u64(seed);
            let rr = run_masked_word_batch(&c, &mut raw, &masks, &mut rng_r);
            let rf = BatchBackend.run_masked(&engine, &mut fused, &masks, &mut rng_f);
            assert_eq!(rr, rf, "seed {seed}: reports differ");
            assert_eq!(raw, fused, "seed {seed}: states differ");
        }
    }

    #[test]
    fn masked_backends_agree_on_shared_schedules() {
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &UniformNoise::new(0.05));
        for seed in 0..10u64 {
            let mut masks = vec![0u64; c.len()];
            let mut seeder = SmallRng::seed_from_u64(seed.wrapping_mul(77));
            for m in masks.iter_mut() {
                // Sparse random schedule.
                *m = seeder.random::<u64>() & seeder.random::<u64>() & seeder.random::<u64>();
            }
            let mut scalar = BatchState::zeros(9, 1);
            let mut batch = BatchState::zeros(9, 1);
            let mut rng_s = SmallRng::seed_from_u64(seed);
            let mut rng_b = SmallRng::seed_from_u64(seed);
            let rs = ScalarBackend.run_masked(&engine, &mut scalar, &masks, &mut rng_s);
            let rb = BatchBackend.run_masked(&engine, &mut batch, &masks, &mut rng_b);
            assert_eq!(rs, rb, "seed {seed}: reports differ");
            assert_eq!(scalar, batch, "seed {seed}: states differ");
        }
    }

    #[test]
    fn mask_sampler_is_binomial() {
        // Lane-occupancy check: each of the 64 lanes faults with the same
        // marginal probability.
        let sampler = MaskSampler::new(0.2);
        let mut rng = SmallRng::seed_from_u64(9);
        let draws = 20_000usize;
        let mut per_lane = [0u32; 64];
        for _ in 0..draws {
            let mask = sampler.sample(&mut rng);
            for (lane, count) in per_lane.iter_mut().enumerate() {
                *count += ((mask >> lane) & 1) as u32;
            }
        }
        let expected = 0.2 * draws as f64;
        let sd = (draws as f64 * 0.2 * 0.8).sqrt();
        for (lane, &count) in per_lane.iter().enumerate() {
            assert!(
                ((count as f64) - expected).abs() < 6.0 * sd,
                "lane {lane}: {count} vs {expected} ± {sd}"
            );
        }
    }

    #[test]
    fn fault_rate_matches_noise_model() {
        // Mean fault count over many words ≈ ops × lanes × g, within 5σ.
        let c = recovery_like_circuit();
        let g = 0.03;
        let engine = Engine::compile(&c, &UniformNoise::new(g));
        let mut rng = SmallRng::seed_from_u64(42);
        let words = 200usize;
        let mut events = 0u64;
        for _ in 0..words {
            let mut batch = BatchState::zeros(9, 1);
            events += engine.run_batch(&mut batch, &mut rng).fault_events;
        }
        let n = (c.len() * 64 * words) as f64;
        let expected = g * n;
        let sd = (n * g * (1.0 - g)).sqrt();
        assert!(
            ((events as f64) - expected).abs() < 5.0 * sd,
            "events {events} vs expected {expected} ± {sd}"
        );
    }

    #[test]
    fn lane_value_assembles_bits() {
        let planes = [0b1u64 << 5, 0b0, 0b1 << 5];
        assert_eq!(lane_value(&planes, 5), 0b101);
        assert_eq!(lane_value(&planes, 4), 0);
    }

    #[test]
    fn failure_mask_flags_mismatched_lanes() {
        // One logical wire; ideal = identity. Output differs on lane 3.
        let inputs = [0b1000u64];
        let outputs = [0b0000u64];
        assert_eq!(failure_mask(&inputs, &outputs, |x| x), 0b1000);
        assert_eq!(failure_mask(&inputs, &inputs, |x| x), 0);
    }

    #[test]
    #[should_panic(expected = "state width")]
    fn scalar_width_mismatch_panics() {
        let c = Circuit::new(3);
        let engine = Engine::compile(&c, &NoNoise);
        let mut s = BitState::zeros(4);
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = engine.run_scalar(&mut s, &mut rng);
    }

    #[test]
    #[should_panic(expected = "batch width")]
    fn batch_width_mismatch_panics() {
        let c = Circuit::new(3);
        let engine = Engine::compile(&c, &NoNoise);
        let mut batch = BatchState::zeros(4, 1);
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = engine.run_batch(&mut batch, &mut rng);
    }
}
