//! The unified execution engine: compile once, run many.
//!
//! Every consumer of the simulator — the Monte-Carlo estimators, the
//! experiment harness, benches and examples — funnels through this module
//! instead of choosing between the scalar executors ([`crate::exec`]) and
//! the bit-parallel batch executors ([`crate::batch`]) by hand.
//!
//! The pieces:
//!
//! - [`Engine`] — the compile-once artifact: the flattened operation
//!   stream plus the per-operation fault probabilities and the exact
//!   binomial fault-mask samplers derived from a bound [`NoiseModel`].
//!   Compiling is one pass over the circuit; an `Engine` is then reused
//!   across as many runs as needed.
//! - [`Backend`] — an object-safe execution strategy over 64-lane words:
//!   [`ScalarBackend`] (the semantic reference: one [`BitState`] per lane,
//!   ops applied scalarly), [`BatchBackend`] (branch-free bit-plane
//!   kernels), and [`PlannedFaultBackend`] (deterministic fault injection
//!   from a [`FaultPlan`], the exhaustive-proof path).
//! - [`McOptions`] — the typed Monte-Carlo run configuration: `trials`,
//!   `seed`, `threads`, an explicit or [`BackendKind::Auto`] backend with
//!   a batch-routing threshold, and an optional target relative error
//!   that enables adaptive early stopping.
//! - [`WordTrial`] — how a caller prepares 64 trial inputs and judges 64
//!   outcomes; [`Engine::estimate`] drives it through the selected
//!   backend, threaded and deterministically seeded.
//! - [`Simulation`] — an `Engine` bound to its `McOptions`: the
//!   compile-once/run-many handle for repeated estimates.
//!
//! # Backend selection policy
//!
//! [`BackendKind::Auto`] routes a run to [`BatchBackend`] when the trial
//! budget reaches [`McOptions::batch_threshold`] (default
//! [`DEFAULT_BATCH_THRESHOLD`] = 256 trials: four 64-lane words, enough to
//! amortize plane packing) and to [`ScalarBackend`] below it.
//!
//! Both Monte-Carlo backends consume the *same* random stream in the same
//! order — one fault mask per operation per word, then one random plane
//! per support wire of faulting words — so for a given seed they produce
//! **bit-identical lanes**, not merely statistically equivalent ones. The
//! property tests in `tests/batch_equivalence.rs` pin this down.
//!
//! # Examples
//!
//! ```
//! use rft_revsim::prelude::*;
//!
//! // The Figure-2-style recovery circuit under uniform noise.
//! let mut c = Circuit::new(9);
//! c.init(&[w(3), w(4), w(5)])
//!     .init(&[w(6), w(7), w(8)])
//!     .maj_inv(w(0), w(3), w(6))
//!     .maj_inv(w(1), w(4), w(7))
//!     .maj_inv(w(2), w(5), w(8))
//!     .maj(w(0), w(1), w(2))
//!     .maj(w(3), w(4), w(5))
//!     .maj(w(6), w(7), w(8));
//!
//! // Compile once...
//! let engine = Engine::compile(&c, &UniformNoise::new(0.01));
//!
//! // ...run many: scalar one-shot,
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! let mut rng = SmallRng::seed_from_u64(7);
//! let mut state = BitState::zeros(9);
//! let report = engine.run_scalar(&mut state, &mut rng);
//!
//! // ...or 64 lanes at a time on the batch backend.
//! let mut batch = BatchState::zeros(9, 1);
//! let batch_report = engine.run_batch(&mut batch, &mut rng);
//! assert_eq!(batch_report.faulted_lanes.len(), 1);
//! # let _ = report;
//! ```

use crate::batch::{kernels, BatchExecReport, BatchState};
use crate::circuit::Circuit;
use crate::exec::{ExecObserver, ExecReport, NullObserver};
use crate::fault::FaultPlan;
use crate::noise::NoiseModel;
use crate::op::Op;
use crate::state::BitState;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Trial count at which [`BackendKind::Auto`] switches from the scalar to
/// the batch backend (four 64-lane words).
pub const DEFAULT_BATCH_THRESHOLD: u64 = 256;

/// Failures required before adaptive early stopping may trigger (below
/// this the relative-error estimate itself is too noisy to act on).
const MIN_FAILURES_FOR_STOP: u64 = 16;

/// Words per adaptive round (stopping checks happen at round boundaries).
/// Fixed — independent of the thread count — so an early-stopped result
/// is exactly as deterministic as a full run: a function of the seed
/// alone.
const ADAPTIVE_ROUND_WORDS: u64 = 32;

/// Per-word seed stride (golden-ratio odd constant, as in SplitMix64).
const WORD_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Marker for operations that never fault.
const NEVER: usize = usize::MAX;

// ---------------------------------------------------------------------------
// Fault table: per-op probabilities + exact binomial mask samplers
// ---------------------------------------------------------------------------

/// Per-operation fault-mask sampler: the CDF of `Binomial(64, p)`.
#[derive(Debug, Clone)]
pub(crate) struct MaskSampler {
    /// `cdf[k]` = P(number of faulting lanes ≤ k); `cdf[64] = 1`.
    cdf: Vec<f64>,
}

impl MaskSampler {
    pub(crate) fn new(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "fault probability must be in [0,1], got {p}"
        );
        let mut cdf = vec![1.0; 65];
        if p == 0.0 {
            return MaskSampler { cdf };
        }
        if p == 1.0 {
            for c in cdf.iter_mut().take(64) {
                *c = 0.0;
            }
            return MaskSampler { cdf };
        }
        let ratio = p / (1.0 - p);
        let mut pmf = (1.0 - p).powi(64);
        let mut acc = 0.0;
        for (k, c) in cdf.iter_mut().enumerate().take(64) {
            acc += pmf;
            *c = acc.min(1.0);
            pmf *= ratio * (64 - k) as f64 / (k + 1) as f64;
        }
        MaskSampler { cdf }
    }

    /// Draws a 64-lane fault mask distributed as 64 i.i.d. Bernoulli(p)
    /// bits: one exact binomial draw for the fault count, then uniform
    /// placement — one `f64` sample in the common zero-fault case.
    #[inline]
    pub(crate) fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        // Fast path: no faults in this word.
        if u < self.cdf[0] {
            return 0;
        }
        let mut k = 1usize;
        while k < 64 && u >= self.cdf[k] {
            k += 1;
        }
        // Choose k distinct lane positions uniformly. For k > 32 place the
        // complement instead (fewer rejections).
        let (count, invert) = if k <= 32 { (k, false) } else { (64 - k, true) };
        let mut mask = 0u64;
        let mut placed = 0usize;
        while placed < count {
            let bit = 1u64 << rng.random_range(0..64u32);
            if mask & bit == 0 {
                mask |= bit;
                placed += 1;
            }
        }
        if invert {
            !mask
        } else {
            mask
        }
    }
}

/// A [`NoiseModel`] lowered against one circuit: per-op fault
/// probabilities plus one mask sampler per distinct probability.
#[derive(Debug, Clone)]
pub(crate) struct FaultTable {
    /// Fault probability per operation.
    probs: Vec<f64>,
    /// Sampler index per operation ([`NEVER`] = never faults).
    sampler_of: Vec<usize>,
    samplers: Vec<MaskSampler>,
}

impl FaultTable {
    pub(crate) fn compile<N: NoiseModel + ?Sized>(circuit: &Circuit, noise: &N) -> Self {
        let mut rates: Vec<u64> = Vec::new();
        let mut samplers = Vec::new();
        let mut probs = Vec::with_capacity(circuit.len());
        let sampler_of = circuit
            .ops()
            .iter()
            .map(|op| {
                let p = noise.fault_probability(op);
                assert!(
                    (0.0..=1.0).contains(&p),
                    "noise model returned probability {p} outside [0,1]"
                );
                probs.push(p);
                if p <= 0.0 {
                    return NEVER;
                }
                let bits = p.to_bits();
                match rates.iter().position(|&r| r == bits) {
                    Some(i) => i,
                    None => {
                        rates.push(bits);
                        samplers.push(MaskSampler::new(p));
                        samplers.len() - 1
                    }
                }
            })
            .collect();
        FaultTable {
            probs,
            sampler_of,
            samplers,
        }
    }

    pub(crate) fn n_ops(&self) -> usize {
        self.sampler_of.len()
    }
}

/// Executes the batch word loop for `circuit` under `table` — the single
/// implementation behind [`Engine::run_batch`], [`BatchBackend`] and the
/// deprecated [`crate::batch::run_noisy_batch_with`] shim.
pub(crate) fn run_batch_words<R: Rng + ?Sized>(
    circuit: &Circuit,
    table: &FaultTable,
    batch: &mut BatchState,
    rng: &mut R,
) -> BatchExecReport {
    assert_eq!(
        batch.n_wires(),
        circuit.n_wires(),
        "batch width must match circuit width"
    );
    assert_eq!(
        table.n_ops(),
        circuit.len(),
        "compiled noise does not match this circuit"
    );
    let words = batch.words_per_wire();
    let mut report = BatchExecReport {
        fault_events: 0,
        faulted_lanes: vec![0; words],
    };
    for (op, &sampler_idx) in circuit.ops().iter().zip(&table.sampler_of) {
        if sampler_idx == NEVER {
            for word in 0..words {
                kernels::apply_word(batch, op, word);
            }
            continue;
        }
        let sampler = &table.samplers[sampler_idx];
        for word in 0..words {
            let fault = sampler.sample(rng);
            if fault == 0 {
                kernels::apply_word(batch, op, word);
            } else {
                let mut rand_planes = [0u64; 3];
                for plane in rand_planes.iter_mut().take(op.arity()) {
                    *plane = rng.random::<u64>();
                }
                kernels::apply_word_masked(batch, op, word, fault, &rand_planes);
                report.fault_events += fault.count_ones() as u64;
                report.faulted_lanes[word] |= fault;
            }
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// A circuit compiled against a noise model: the compile-once artifact
/// shared by every backend.
///
/// Owns the flattened op stream and the lowered fault table; build one
/// with [`Engine::compile`] and reuse it for any number of runs.
#[must_use = "an Engine does nothing until it runs"]
#[derive(Debug, Clone)]
pub struct Engine {
    circuit: Circuit,
    table: FaultTable,
}

impl Engine {
    /// Compiles `circuit` bound to `noise`.
    ///
    /// # Panics
    ///
    /// Panics if the model reports a probability outside `[0, 1]`.
    pub fn compile<N: NoiseModel + ?Sized>(circuit: &Circuit, noise: &N) -> Self {
        Engine {
            circuit: circuit.clone(),
            table: FaultTable::compile(circuit, noise),
        }
    }

    /// The compiled circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Number of operations in the compiled stream.
    pub fn n_ops(&self) -> usize {
        self.circuit.len()
    }

    /// Width of the compiled circuit in wires.
    pub fn n_wires(&self) -> usize {
        self.circuit.n_wires()
    }

    /// The precomputed fault probability of operation `op_index`.
    ///
    /// # Panics
    ///
    /// Panics if `op_index` is out of range.
    pub fn fault_probability(&self, op_index: usize) -> f64 {
        self.table.probs[op_index]
    }

    /// Binds Monte-Carlo options, producing the run-many [`Simulation`]
    /// handle.
    pub fn with_options(self, options: McOptions) -> Simulation {
        Simulation {
            engine: self,
            options,
        }
    }

    /// Runs one noisy scalar trial on `state` (classic per-trial
    /// semantics: one uniform draw per fallible operation; a faulting
    /// operation randomizes its support instead of executing).
    ///
    /// # Panics
    ///
    /// Panics if the state width does not match the circuit width.
    pub fn run_scalar<R: Rng + ?Sized>(&self, state: &mut BitState, rng: &mut R) -> ExecReport {
        let mut observer = NullObserver;
        self.run_scalar_observed(state, rng, &mut observer)
    }

    /// [`Engine::run_scalar`] with [`ExecObserver`] hooks (used by the
    /// entropy measurements of §4).
    ///
    /// # Panics
    ///
    /// Panics if the state width does not match the circuit width.
    pub fn run_scalar_observed<R: Rng + ?Sized>(
        &self,
        state: &mut BitState,
        rng: &mut R,
        observer: &mut dyn ExecObserver,
    ) -> ExecReport {
        assert_eq!(
            state.len(),
            self.circuit.n_wires(),
            "state width must match circuit width"
        );
        let mut report = ExecReport::default();
        for (i, op) in self.circuit.ops().iter().enumerate() {
            if let Op::Init(init) = op {
                let values = state.read_pattern(init.wires());
                observer.before_init(i, init.wires(), values);
            }
            let p = self.table.probs[i];
            let faulted = p > 0.0 && rng.random::<f64>() < p;
            if faulted {
                let support = op.support();
                state.randomize(support.as_slice(), rng);
                report.faults.push(i);
                observer.on_fault(i);
            } else {
                op.apply(state);
            }
        }
        report
    }

    /// Runs the compiled circuit over every lane of `batch` on the
    /// bit-parallel backend.
    ///
    /// # Panics
    ///
    /// Panics if the batch width does not match the circuit width.
    pub fn run_batch<R: Rng + ?Sized>(
        &self,
        batch: &mut BatchState,
        rng: &mut R,
    ) -> BatchExecReport {
        run_batch_words(&self.circuit, &self.table, batch, rng)
    }

    /// Runs the compiled circuit injecting exactly the faults in `plan`
    /// (the noise binding is ignored; see [`PlannedFaultBackend`]).
    ///
    /// # Panics
    ///
    /// Panics if the widths mismatch or a planned index is out of range.
    pub fn run_planned(&self, state: &mut BitState, plan: &FaultPlan) {
        PlannedFaultBackend::new(plan).run_state(&self.circuit, state);
    }

    /// Monte-Carlo estimation: runs `opts.trials` independent trials of
    /// `trial` through the backend selected by `opts`, threaded across
    /// `opts.threads` workers, and counts failing lanes.
    ///
    /// Trials are packed 64 per word; each word derives its RNG from
    /// `opts.seed` and the word index, so results are **deterministic per
    /// seed and backend-independent** (scalar and batch consume identical
    /// streams). With [`McOptions::target_rel_error`] set, estimation
    /// stops early once the estimated relative standard error of the
    /// failure rate reaches the target; stopping happens at fixed
    /// thread-independent round boundaries, so even early-stopped results
    /// are a function of the seed alone.
    ///
    /// # Panics
    ///
    /// Panics if `opts.trials == 0` or the trial's width disagrees with
    /// the compiled circuit.
    pub fn estimate<T: WordTrial + ?Sized>(&self, trial: &T, opts: &McOptions) -> McOutcome {
        assert!(opts.trials > 0, "need at least one trial");
        assert_eq!(
            trial.n_wires(),
            self.circuit.n_wires(),
            "trial width must match circuit width"
        );
        let kind = opts.backend.resolve(opts.trials, opts.batch_threshold);
        let backend: &dyn Backend = match kind {
            BackendKind::Batch => &BatchBackend,
            _ => &ScalarBackend,
        };
        let threads = opts.threads.max(1);
        let total_words = opts.trials.div_ceil(64);
        let round_words = match opts.target_rel_error {
            Some(_) => ADAPTIVE_ROUND_WORDS.min(total_words),
            None => total_words,
        };
        let mut done = 0u64;
        let mut failures = 0u64;
        let mut executed = 0u64;
        let mut early_stopped = false;
        while done < total_words {
            let n = round_words.min(total_words - done);
            let (f, e) = self.run_word_span(backend, trial, opts, done, done + n, threads);
            failures += f;
            executed += e;
            done += n;
            if done >= total_words {
                break;
            }
            if let Some(target) = opts.target_rel_error {
                if converged(failures, executed, target) {
                    early_stopped = true;
                    break;
                }
            }
        }
        McOutcome {
            failures,
            trials: executed,
            requested: opts.trials,
            early_stopped,
            backend: backend.name(),
        }
    }

    /// Runs words `[start, end)` split contiguously across `threads`,
    /// returning `(failures, executed_trials)`.
    fn run_word_span<T: WordTrial + ?Sized>(
        &self,
        backend: &dyn Backend,
        trial: &T,
        opts: &McOptions,
        start: u64,
        end: u64,
        threads: usize,
    ) -> (u64, u64) {
        let span = end - start;
        if threads <= 1 || span <= 1 {
            return self.run_word_range(backend, trial, opts, start, end);
        }
        let threads = (threads as u64).min(span);
        let per = span / threads;
        let extra = span % threads;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut first = start;
            for t in 0..threads {
                let n = per + u64::from(t < extra);
                let lo = first;
                first += n;
                handles.push(
                    scope.spawn(move || self.run_word_range(backend, trial, opts, lo, lo + n)),
                );
            }
            handles.into_iter().fold((0, 0), |(f, e), h| {
                let (df, de) = h.join().expect("trial thread panicked");
                (f + df, e + de)
            })
        })
    }

    /// Runs words `[start, end)` sequentially.
    fn run_word_range<T: WordTrial + ?Sized>(
        &self,
        backend: &dyn Backend,
        trial: &T,
        opts: &McOptions,
        start: u64,
        end: u64,
    ) -> (u64, u64) {
        let n_wires = self.circuit.n_wires();
        let mut failures = 0u64;
        let mut executed = 0u64;
        for word in start..end {
            let mut rng =
                SmallRng::seed_from_u64(opts.seed ^ WORD_SEED_STRIDE.wrapping_mul(word + 1));
            let mut batch = BatchState::zeros(n_wires, 1);
            let inputs = trial.prepare(&mut batch, &mut rng);
            backend.run(self, &mut batch, &mut rng);
            let failed = trial.judge(&batch, &inputs);
            // The final word may cover fewer than 64 real trials.
            let live = opts.trials - word * 64;
            let valid = if live >= 64 {
                u64::MAX
            } else {
                (1u64 << live) - 1
            };
            failures += (failed & valid).count_ones() as u64;
            executed += valid.count_ones() as u64;
        }
        (failures, executed)
    }
}

/// Whether the failure-rate estimate has reached the target relative
/// standard error: `sqrt((1-p̂)/failures) ≤ target`, once enough failures
/// accumulated for the check itself to be trustworthy.
fn converged(failures: u64, executed: u64, target: f64) -> bool {
    if failures < MIN_FAILURES_FOR_STOP || executed == 0 {
        return false;
    }
    let p = failures as f64 / executed as f64;
    ((1.0 - p) / failures as f64).sqrt() <= target
}

// ---------------------------------------------------------------------------
// Backends
// ---------------------------------------------------------------------------

/// An execution strategy over 64-lane words.
///
/// Implementations run the engine's compiled circuit over every lane of a
/// [`BatchState`] and report which lanes saw at least one fault. The two
/// Monte-Carlo backends draw from `rng` in an identical order, so a given
/// seed yields bit-identical lanes on either.
pub trait Backend: Sync {
    /// Short stable name (reported in [`McOutcome::backend`]).
    fn name(&self) -> &'static str;

    /// Runs `engine`'s circuit over every lane of `batch`.
    fn run(
        &self,
        engine: &Engine,
        batch: &mut BatchState,
        rng: &mut dyn RngCore,
    ) -> BatchExecReport;
}

/// The scalar reference backend: every lane is unpacked into its own
/// [`BitState`] and ops are applied one lane at a time, replaying the
/// batch backend's word-level fault schedule exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackend;

impl Backend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn run(
        &self,
        engine: &Engine,
        batch: &mut BatchState,
        rng: &mut dyn RngCore,
    ) -> BatchExecReport {
        let circuit = &engine.circuit;
        assert_eq!(
            batch.n_wires(),
            circuit.n_wires(),
            "batch width must match circuit width"
        );
        let words = batch.words_per_wire();
        let mut lanes: Vec<BitState> = (0..batch.lanes()).map(|l| batch.lane(l)).collect();
        let mut report = BatchExecReport {
            fault_events: 0,
            faulted_lanes: vec![0; words],
        };
        for (i, op) in circuit.ops().iter().enumerate() {
            let sampler_idx = engine.table.sampler_of[i];
            if sampler_idx == NEVER {
                for state in &mut lanes {
                    op.apply(state);
                }
                continue;
            }
            let sampler = &engine.table.samplers[sampler_idx];
            let support = op.support();
            let wires = support.as_slice();
            for word in 0..words {
                let fault = sampler.sample(rng);
                if fault == 0 {
                    for state in &mut lanes[word * 64..(word + 1) * 64] {
                        op.apply(state);
                    }
                    continue;
                }
                let mut rand_planes = [0u64; 3];
                for plane in rand_planes.iter_mut().take(op.arity()) {
                    *plane = rng.random::<u64>();
                }
                for (lane, state) in lanes[word * 64..(word + 1) * 64].iter_mut().enumerate() {
                    if (fault >> lane) & 1 == 1 {
                        let mut pattern = 0u8;
                        for (k, _) in wires.iter().enumerate() {
                            pattern |= (((rand_planes[k] >> lane) & 1) as u8) << k;
                        }
                        state.write_pattern(wires, pattern);
                    } else {
                        op.apply(state);
                    }
                }
                report.fault_events += fault.count_ones() as u64;
                report.faulted_lanes[word] |= fault;
            }
        }
        for (lane, state) in lanes.iter().enumerate() {
            batch.set_lane(lane, state);
        }
        report
    }
}

/// The bit-parallel backend: branch-free plane kernels, 64 lanes per
/// machine word — the fast path for large trial budgets.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchBackend;

impl Backend for BatchBackend {
    fn name(&self) -> &'static str {
        "batch"
    }

    fn run(
        &self,
        engine: &Engine,
        batch: &mut BatchState,
        rng: &mut dyn RngCore,
    ) -> BatchExecReport {
        run_batch_words(&engine.circuit, &engine.table, batch, rng)
    }
}

/// Deterministic fault injection: every lane takes exactly the faults of
/// one [`FaultPlan`] (a planned fault writes its pattern onto the
/// operation's support instead of executing it). Randomness is never
/// consumed; the exhaustive single/double-fault proofs are built on this.
#[derive(Debug, Clone, Copy)]
pub struct PlannedFaultBackend<'p> {
    plan: &'p FaultPlan,
}

impl<'p> PlannedFaultBackend<'p> {
    /// A backend injecting exactly `plan`.
    pub fn new(plan: &'p FaultPlan) -> Self {
        PlannedFaultBackend { plan }
    }

    /// The bound plan.
    pub fn plan(&self) -> &FaultPlan {
        self.plan
    }

    /// Runs `circuit` on a single scalar `state` with the planned faults —
    /// the workhorse of the exhaustive fault sweeps, where one `(input,
    /// plan)` pair is one run.
    ///
    /// # Panics
    ///
    /// Panics if the widths mismatch or a planned index is out of range.
    pub fn run_state(&self, circuit: &Circuit, state: &mut BitState) {
        assert_eq!(
            state.len(),
            circuit.n_wires(),
            "state width must match circuit width"
        );
        self.check_plan(circuit);
        for (i, op) in circuit.ops().iter().enumerate() {
            match self.plan.pattern_for(i) {
                Some(pattern) => {
                    let support = op.support();
                    state.write_pattern(support.as_slice(), pattern);
                }
                None => op.apply(state),
            }
        }
    }

    fn check_plan(&self, circuit: &Circuit) {
        for fault in self.plan.faults() {
            assert!(
                fault.op_index < circuit.len(),
                "planned fault targets op {} but circuit has {} ops",
                fault.op_index,
                circuit.len()
            );
        }
    }
}

impl Backend for PlannedFaultBackend<'_> {
    fn name(&self) -> &'static str {
        "planned"
    }

    fn run(
        &self,
        engine: &Engine,
        batch: &mut BatchState,
        _rng: &mut dyn RngCore,
    ) -> BatchExecReport {
        let circuit = &engine.circuit;
        assert_eq!(
            batch.n_wires(),
            circuit.n_wires(),
            "batch width must match circuit width"
        );
        self.check_plan(circuit);
        let words = batch.words_per_wire();
        let mut report = BatchExecReport {
            fault_events: 0,
            faulted_lanes: vec![0; words],
        };
        for (i, op) in circuit.ops().iter().enumerate() {
            match self.plan.pattern_for(i) {
                Some(pattern) => {
                    let support = op.support();
                    for (k, &wire) in support.as_slice().iter().enumerate() {
                        let plane = if (pattern >> k) & 1 == 1 { u64::MAX } else { 0 };
                        for word in 0..words {
                            batch.set_word(wire, word, plane);
                        }
                    }
                    report.fault_events += batch.lanes() as u64;
                    for mask in report.faulted_lanes.iter_mut() {
                        *mask = u64::MAX;
                    }
                }
                None => {
                    for word in 0..words {
                        kernels::apply_word(batch, op, word);
                    }
                }
            }
        }
        report
    }
}

// ---------------------------------------------------------------------------
// Options / outcome
// ---------------------------------------------------------------------------

/// Which backend an estimation run should use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendKind {
    /// Route by trial count: batch at or above the threshold, scalar
    /// below it.
    #[default]
    Auto,
    /// Always the scalar reference backend.
    Scalar,
    /// Always the bit-parallel batch backend.
    Batch,
}

impl BackendKind {
    /// Resolves `Auto` against a trial budget; explicit kinds pass
    /// through.
    pub fn resolve(self, trials: u64, batch_threshold: u64) -> BackendKind {
        match self {
            BackendKind::Auto => {
                if trials >= batch_threshold {
                    BackendKind::Batch
                } else {
                    BackendKind::Scalar
                }
            }
            explicit => explicit,
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BackendKind::Auto => "auto",
            BackendKind::Scalar => "scalar",
            BackendKind::Batch => "batch",
        })
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(BackendKind::Auto),
            "scalar" => Ok(BackendKind::Scalar),
            "batch" => Ok(BackendKind::Batch),
            other => Err(format!(
                "unknown backend {other:?} (expected auto, scalar or batch)"
            )),
        }
    }
}

/// Typed Monte-Carlo run options for [`Engine::estimate`].
///
/// Fields are public for direct construction; the consuming builder
/// methods read better in call sites:
///
/// ```
/// use rft_revsim::engine::{BackendKind, McOptions};
///
/// let opts = McOptions::new(10_000)
///     .seed(2005)
///     .threads(4)
///     .backend(BackendKind::Auto)
///     .target_rel_error(0.1);
/// assert_eq!(opts.trials, 10_000);
/// ```
#[must_use = "McOptions configure a run but do not start one"]
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McOptions {
    /// Trial budget (an upper bound when early stopping is enabled).
    pub trials: u64,
    /// Base RNG seed; every 64-trial word derives its own stream from it.
    pub seed: u64,
    /// Worker threads (`0` is treated as `1`).
    pub threads: usize,
    /// Backend selection policy.
    pub backend: BackendKind,
    /// Trial count at which [`BackendKind::Auto`] routes to the batch
    /// backend.
    pub batch_threshold: u64,
    /// Target relative standard error of the failure-rate estimate; when
    /// set, estimation stops early once reached (adaptive sampling).
    pub target_rel_error: Option<f64>,
}

impl McOptions {
    /// Options for `trials` trials with defaults: seed 0, one thread,
    /// auto backend at [`DEFAULT_BATCH_THRESHOLD`], no early stopping.
    pub fn new(trials: u64) -> Self {
        McOptions {
            trials,
            seed: 0,
            threads: 1,
            backend: BackendKind::Auto,
            batch_threshold: DEFAULT_BATCH_THRESHOLD,
            target_rel_error: None,
        }
    }

    /// Sets the trial budget.
    pub fn trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// XORs `salt` into the seed (for deriving per-point sub-seeds in
    /// sweeps).
    pub fn salt(mut self, salt: u64) -> Self {
        self.seed ^= salt;
        self
    }

    /// Sets the worker thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the backend selection policy.
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the auto-routing threshold.
    pub fn batch_threshold(mut self, threshold: u64) -> Self {
        self.batch_threshold = threshold;
        self
    }

    /// Enables adaptive early stopping at the given target relative
    /// standard error.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not positive and finite.
    pub fn target_rel_error(mut self, target: f64) -> Self {
        assert!(
            target > 0.0 && target.is_finite(),
            "target relative error must be positive and finite, got {target}"
        );
        self.target_rel_error = Some(target);
        self
    }
}

impl Default for McOptions {
    fn default() -> Self {
        McOptions::new(4096)
    }
}

/// Raw result of an [`Engine::estimate`] run.
#[must_use = "an estimation outcome should be inspected or converted"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McOutcome {
    /// Failing trials observed.
    pub failures: u64,
    /// Trials actually executed (less than requested after an early
    /// stop).
    pub trials: u64,
    /// Trials requested.
    pub requested: u64,
    /// Whether adaptive early stopping cut the run short.
    pub early_stopped: bool,
    /// Name of the backend that executed the run.
    pub backend: &'static str,
}

impl McOutcome {
    /// Point estimate `failures / trials`.
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.failures as f64 / self.trials as f64
    }
}

// ---------------------------------------------------------------------------
// Word trials
// ---------------------------------------------------------------------------

/// One 64-lane word of Monte-Carlo trials: how to prepare inputs and
/// judge failures. [`Engine::estimate`] supplies a single-word
/// [`BatchState`] (64 lanes) zeroed before `prepare`.
pub trait WordTrial: Sync {
    /// Physical width the trial expects (must match the engine's
    /// circuit).
    fn n_wires(&self) -> usize;

    /// Draws per-lane inputs from `rng`, encodes them into plane word 0
    /// of `batch`, and returns them (one plane per logical wire, bit `l`
    /// = lane `l`'s value) for [`WordTrial::judge`].
    fn prepare(&self, batch: &mut BatchState, rng: &mut dyn RngCore) -> Vec<u64>;

    /// Mask of lanes whose final state counts as a logical failure.
    fn judge(&self, batch: &BatchState, inputs: &[u64]) -> u64;
}

/// Reads lane `lane`'s value out of per-wire plane words (bit `i` of the
/// result = bit `lane` of `planes[i]`).
#[inline]
pub fn lane_value(planes: &[u64], lane: usize) -> u64 {
    planes
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &plane)| acc | (((plane >> lane) & 1) << i))
}

/// Mask of lanes where `ideal(input) != output`, comparing per-lane
/// values assembled from input and output plane words.
pub fn failure_mask(inputs: &[u64], outputs: &[u64], ideal: impl Fn(u64) -> u64) -> u64 {
    let mut failed = 0u64;
    for lane in 0..64 {
        let input = lane_value(inputs, lane);
        let output = lane_value(outputs, lane);
        if ideal(input) != output {
            failed |= 1u64 << lane;
        }
    }
    failed
}

// ---------------------------------------------------------------------------
// Simulation: engine + options
// ---------------------------------------------------------------------------

/// An [`Engine`] bound to its [`McOptions`]: the compile-once/run-many
/// handle. Build with [`Engine::with_options`], then call
/// [`Simulation::run`] as often as needed.
#[must_use = "a Simulation does nothing until run"]
#[derive(Debug, Clone)]
pub struct Simulation {
    engine: Engine,
    options: McOptions,
}

impl Simulation {
    /// The compiled engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The bound options.
    pub fn options(&self) -> &McOptions {
        &self.options
    }

    /// Replaces the bound options.
    pub fn reconfigure(mut self, options: McOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs one estimation with the bound options.
    pub fn run<T: WordTrial + ?Sized>(&self, trial: &T) -> McOutcome {
        self.engine.estimate(trial, &self.options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::{NoNoise, SplitNoise, UniformNoise};
    use crate::wire::w;

    fn recovery_like_circuit() -> Circuit {
        let mut c = Circuit::new(9);
        c.init(&[w(3), w(4), w(5)])
            .init(&[w(6), w(7), w(8)])
            .maj_inv(w(0), w(3), w(6))
            .maj_inv(w(1), w(4), w(7))
            .maj_inv(w(2), w(5), w(8))
            .maj(w(0), w(1), w(2))
            .maj(w(3), w(4), w(5))
            .maj(w(6), w(7), w(8));
        c
    }

    /// A trivial trial: lanes fail when wire 0 ends up set.
    struct Wire0Trial {
        n_wires: usize,
    }

    impl WordTrial for Wire0Trial {
        fn n_wires(&self) -> usize {
            self.n_wires
        }

        fn prepare(&self, _batch: &mut BatchState, _rng: &mut dyn RngCore) -> Vec<u64> {
            Vec::new()
        }

        fn judge(&self, batch: &BatchState, _inputs: &[u64]) -> u64 {
            batch.word(w(0), 0)
        }
    }

    #[test]
    fn noiseless_scalar_run_reports_no_faults() {
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &NoNoise);
        let mut s = BitState::zeros(9);
        let mut rng = SmallRng::seed_from_u64(0);
        let report = engine.run_scalar(&mut s, &mut rng);
        assert_eq!(report.fault_count(), 0);
        assert_eq!(s.count_ones(), 0);
    }

    #[test]
    fn always_fail_randomizes_every_op() {
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &UniformNoise::new(1.0));
        let mut s = BitState::zeros(9);
        let mut rng = SmallRng::seed_from_u64(1);
        let report = engine.run_scalar(&mut s, &mut rng);
        assert_eq!(report.fault_count(), c.len());
    }

    #[test]
    fn split_noise_spares_inits() {
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &SplitNoise::new(1.0, 0.0));
        let mut s = BitState::zeros(9);
        let mut rng = SmallRng::seed_from_u64(2);
        let report = engine.run_scalar(&mut s, &mut rng);
        // 6 gates fail, 2 inits never fail.
        assert_eq!(report.fault_count(), 6);
        assert!(report.faults.iter().all(|&i| i >= 2));
        assert_eq!(engine.fault_probability(0), 0.0);
        assert_eq!(engine.fault_probability(2), 1.0);
    }

    #[test]
    fn batch_always_fail_faults_every_lane() {
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &UniformNoise::new(1.0));
        let mut batch = BatchState::zeros(9, 1);
        let mut rng = SmallRng::seed_from_u64(1);
        let report = engine.run_batch(&mut batch, &mut rng);
        assert_eq!(report.fault_events, (c.len() * 64) as u64);
        assert_eq!(report.faulted_lanes, vec![u64::MAX]);
    }

    #[test]
    fn scalar_and_batch_backends_agree_lane_by_lane() {
        // Identical seeds ⇒ bit-identical final states *and* reports —
        // the backends share one fault schedule by construction.
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &UniformNoise::new(0.07));
        for seed in 0..20u64 {
            let mut scalar = BatchState::zeros(9, 2);
            let mut batch = BatchState::zeros(9, 2);
            let mut rng_s = SmallRng::seed_from_u64(seed);
            let mut rng_b = SmallRng::seed_from_u64(seed);
            let rs = ScalarBackend.run(&engine, &mut scalar, &mut rng_s);
            let rb = BatchBackend.run(&engine, &mut batch, &mut rng_b);
            assert_eq!(rs, rb, "seed {seed}: reports differ");
            assert_eq!(scalar, batch, "seed {seed}: states differ");
        }
    }

    #[test]
    fn planned_backend_matches_scalar_plan_run() {
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &NoNoise);
        let plan = FaultPlan::single(3, 0b101);
        let backend = PlannedFaultBackend::new(&plan);
        // Scalar reference.
        let mut state = BitState::zeros(9);
        backend.run_state(&c, &mut state);
        // Batch run on zeroed lanes.
        let mut batch = BatchState::zeros(9, 1);
        let mut rng = SmallRng::seed_from_u64(0);
        let report = backend.run(&engine, &mut batch, &mut rng);
        assert_eq!(report.faulted_lanes, vec![u64::MAX]);
        for lane in [0usize, 17, 63] {
            assert_eq!(batch.lane(lane), state, "lane {lane}");
        }
    }

    #[test]
    #[should_panic(expected = "planned fault targets op")]
    fn planned_out_of_range_panics() {
        let c = Circuit::new(1);
        let mut s = BitState::zeros(1);
        let plan = FaultPlan::single(0, 0);
        PlannedFaultBackend::new(&plan).run_state(&c, &mut s);
    }

    #[test]
    fn estimate_is_deterministic_and_backend_independent() {
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &UniformNoise::new(0.2));
        let trial = Wire0Trial { n_wires: 9 };
        let base = McOptions::new(1000).seed(42);
        let scalar = engine.estimate(&trial, &base.backend(BackendKind::Scalar).threads(3));
        let batch = engine.estimate(&trial, &base.backend(BackendKind::Batch).threads(1));
        let auto = engine.estimate(&trial, &base.backend(BackendKind::Auto).threads(2));
        assert_eq!(scalar.failures, batch.failures);
        assert_eq!(batch.failures, auto.failures);
        assert_eq!(batch.trials, 1000);
        assert_eq!(auto.backend, "batch");
        assert_eq!(scalar.backend, "scalar");
        assert!(batch.failures > 0, "heavy noise must produce failures");
    }

    #[test]
    fn estimate_counts_partial_final_word() {
        struct AllFail;
        impl WordTrial for AllFail {
            fn n_wires(&self) -> usize {
                9
            }
            fn prepare(&self, _batch: &mut BatchState, _rng: &mut dyn RngCore) -> Vec<u64> {
                Vec::new()
            }
            fn judge(&self, _batch: &BatchState, _inputs: &[u64]) -> u64 {
                u64::MAX
            }
        }
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &NoNoise);
        for trials in [1u64, 64, 65, 100, 130] {
            let out = engine.estimate(&AllFail, &McOptions::new(trials).threads(2));
            assert_eq!(out.failures, trials);
            assert_eq!(out.trials, trials);
        }
    }

    #[test]
    fn adaptive_early_stopping_cuts_the_budget() {
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &UniformNoise::new(0.3));
        let trial = Wire0Trial { n_wires: 9 };
        // Rate ≈ 0.5: a loose 20% relative error needs only a few dozen
        // failures, far below the 200k budget.
        let opts = McOptions::new(200_000)
            .seed(9)
            .threads(2)
            .target_rel_error(0.2);
        let out = engine.estimate(&trial, &opts);
        assert!(out.early_stopped, "should stop early: {out:?}");
        assert!(out.trials < out.requested);
        assert!(out.failures >= MIN_FAILURES_FOR_STOP);
        // Even the early-stopped result is a function of the seed alone:
        // rounds are fixed-size, so the thread count cannot move the
        // stopping point.
        let again = engine.estimate(&trial, &opts);
        assert_eq!(out, again);
        let single_threaded = engine.estimate(&trial, &opts.threads(1));
        assert_eq!(out, single_threaded);
    }

    #[test]
    fn adaptive_runs_to_completion_when_target_unreachable() {
        let c = recovery_like_circuit();
        let engine = Engine::compile(&c, &NoNoise);
        let trial = Wire0Trial { n_wires: 9 };
        // No failures ever: the run must exhaust its budget.
        let out = engine.estimate(&trial, &McOptions::new(500).target_rel_error(0.1));
        assert!(!out.early_stopped);
        assert_eq!(out.trials, 500);
        assert_eq!(out.failures, 0);
    }

    #[test]
    fn backend_kind_parses_and_resolves() {
        assert_eq!("auto".parse::<BackendKind>().unwrap(), BackendKind::Auto);
        assert_eq!(
            "scalar".parse::<BackendKind>().unwrap(),
            BackendKind::Scalar
        );
        assert_eq!("batch".parse::<BackendKind>().unwrap(), BackendKind::Batch);
        assert!("simd".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::Auto.resolve(256, 256), BackendKind::Batch);
        assert_eq!(BackendKind::Auto.resolve(255, 256), BackendKind::Scalar);
        assert_eq!(
            BackendKind::Scalar.resolve(1 << 20, 256),
            BackendKind::Scalar
        );
        assert_eq!(BackendKind::Batch.resolve(1, 256), BackendKind::Batch);
    }

    #[test]
    fn simulation_binds_options() {
        let c = recovery_like_circuit();
        let sim =
            Engine::compile(&c, &UniformNoise::new(0.25)).with_options(McOptions::new(640).seed(5));
        let trial = Wire0Trial { n_wires: 9 };
        let a = sim.run(&trial);
        let b = sim.run(&trial);
        assert_eq!(a, b);
        assert_eq!(sim.options().trials, 640);
        let sim = sim.reconfigure(McOptions::new(64).seed(5));
        assert_eq!(sim.run(&trial).trials, 64);
    }

    #[test]
    fn mask_sampler_is_binomial() {
        // Lane-occupancy check: each of the 64 lanes faults with the same
        // marginal probability.
        let sampler = MaskSampler::new(0.2);
        let mut rng = SmallRng::seed_from_u64(9);
        let draws = 20_000usize;
        let mut per_lane = [0u32; 64];
        for _ in 0..draws {
            let mask = sampler.sample(&mut rng);
            for (lane, count) in per_lane.iter_mut().enumerate() {
                *count += ((mask >> lane) & 1) as u32;
            }
        }
        let expected = 0.2 * draws as f64;
        let sd = (draws as f64 * 0.2 * 0.8).sqrt();
        for (lane, &count) in per_lane.iter().enumerate() {
            assert!(
                ((count as f64) - expected).abs() < 6.0 * sd,
                "lane {lane}: {count} vs {expected} ± {sd}"
            );
        }
    }

    #[test]
    fn fault_rate_matches_noise_model() {
        // Mean fault count over many words ≈ ops × lanes × g, within 5σ.
        let c = recovery_like_circuit();
        let g = 0.03;
        let engine = Engine::compile(&c, &UniformNoise::new(g));
        let mut rng = SmallRng::seed_from_u64(42);
        let words = 200usize;
        let mut events = 0u64;
        for _ in 0..words {
            let mut batch = BatchState::zeros(9, 1);
            events += engine.run_batch(&mut batch, &mut rng).fault_events;
        }
        let n = (c.len() * 64 * words) as f64;
        let expected = g * n;
        let sd = (n * g * (1.0 - g)).sqrt();
        assert!(
            ((events as f64) - expected).abs() < 5.0 * sd,
            "events {events} vs expected {expected} ± {sd}"
        );
    }

    #[test]
    fn lane_value_assembles_bits() {
        let planes = [0b1u64 << 5, 0b0, 0b1 << 5];
        assert_eq!(lane_value(&planes, 5), 0b101);
        assert_eq!(lane_value(&planes, 4), 0);
    }

    #[test]
    fn failure_mask_flags_mismatched_lanes() {
        // One logical wire; ideal = identity. Output differs on lane 3.
        let inputs = [0b1000u64];
        let outputs = [0b0000u64];
        assert_eq!(failure_mask(&inputs, &outputs, |x| x), 0b1000);
        assert_eq!(failure_mask(&inputs, &inputs, |x| x), 0);
    }

    #[test]
    #[should_panic(expected = "state width")]
    fn scalar_width_mismatch_panics() {
        let c = Circuit::new(3);
        let engine = Engine::compile(&c, &NoNoise);
        let mut s = BitState::zeros(4);
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = engine.run_scalar(&mut s, &mut rng);
    }

    #[test]
    #[should_panic(expected = "batch width")]
    fn batch_width_mismatch_panics() {
        let c = Circuit::new(3);
        let engine = Engine::compile(&c, &NoNoise);
        let mut batch = BatchState::zeros(4, 1);
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = engine.run_batch(&mut batch, &mut rng);
    }
}
