//! Scalar/batch equivalence through the unified engine: the bit-parallel
//! backend must agree with the scalar reference **lane by lane** — exactly,
//! not just statistically — because both backends consume one shared fault
//! schedule. Ideal runs are checked against the scalar executor, and noisy
//! runs across every backend on identical seeds.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rft_revsim::batch::kernels;
use rft_revsim::prelude::*;

const N_WIRES: usize = 7;

/// Strategy producing an arbitrary valid op (gates and inits) on
/// `N_WIRES` wires.
fn arb_op() -> impl Strategy<Value = Op> {
    let wire = 0..N_WIRES as u32;
    let distinct3 = (wire.clone(), wire.clone(), wire.clone())
        .prop_filter("wires must be distinct", |(a, b, c)| {
            a != b && b != c && a != c
        });
    let distinct2 =
        (wire.clone(), wire.clone()).prop_filter("wires must be distinct", |(a, b)| a != b);
    prop_oneof![
        wire.clone().prop_map(|a| Op::Gate(Gate::Not(w(a)))),
        distinct2.clone().prop_map(|(a, b)| Op::Gate(Gate::Cnot {
            control: w(a),
            target: w(b)
        })),
        distinct3
            .clone()
            .prop_map(|(a, b, c)| Op::Gate(Gate::Toffoli {
                controls: [w(a), w(b)],
                target: w(c)
            })),
        distinct2
            .clone()
            .prop_map(|(a, b)| Op::Gate(Gate::Swap(w(a), w(b)))),
        distinct3
            .clone()
            .prop_map(|(a, b, c)| Op::Gate(Gate::Swap3(w(a), w(b), w(c)))),
        distinct3
            .clone()
            .prop_map(|(a, b, c)| Op::Gate(Gate::Fredkin {
                control: w(a),
                targets: [w(b), w(c)]
            })),
        distinct3
            .clone()
            .prop_map(|(a, b, c)| Op::Gate(Gate::Maj(w(a), w(b), w(c)))),
        distinct3
            .clone()
            .prop_map(|(a, b, c)| Op::Gate(Gate::MajInv(w(a), w(b), w(c)))),
        wire.clone().prop_map(|a| Op::init(&[w(a)])),
        distinct3.prop_map(|(a, b, c)| Op::init(&[w(a), w(b), w(c)])),
    ]
}

fn arb_circuit(max_len: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_op(), 0..max_len).prop_map(|ops| {
        let mut c = Circuit::new(N_WIRES);
        for op in ops {
            c.push(op);
        }
        c
    })
}

/// A trial whose failure criterion is simply "wire 0 ended up set" —
/// enough to compare backend routing end to end.
struct Wire0Trial;

impl WordTrial for Wire0Trial {
    fn n_wires(&self) -> usize {
        N_WIRES
    }

    fn prepare(&self, batch: &mut BatchState, rng: &mut dyn rand::RngCore) -> Vec<u64> {
        let inputs: Vec<u64> = (0..N_WIRES).map(|_| rng.random()).collect();
        for (i, &bits) in inputs.iter().enumerate() {
            batch.set_word(w(i as u32), 0, bits);
        }
        inputs
    }

    fn judge(&self, batch: &BatchState, _inputs: &[u64]) -> u64 {
        batch.word(w(0), 0)
    }
}

proptest! {
    /// `run_ideal` on every lane's `BitState` and one batch execution of
    /// the same circuit agree lane by lane, on arbitrary circuits
    /// (including inits) and arbitrary lane contents.
    #[test]
    fn ideal_batch_matches_scalar_lane_by_lane(c in arb_circuit(40), seed in 0u64..1_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let states: Vec<BitState> = (0..64)
            .map(|_| BitState::from_u64(rng.random_range(0..(1u64 << N_WIRES)), N_WIRES))
            .collect();
        let mut batch = BatchState::from_states(&states);
        run_ideal_batch(&c, &mut batch);
        for (lane, state) in states.iter().enumerate() {
            let mut expect = state.clone();
            run_ideal(&c, &mut expect);
            prop_assert_eq!(batch.lane(lane), expect, "lane {}", lane);
        }
    }

    /// Per-op kernels match the scalar `Op::apply` on arbitrary single ops
    /// across all 64 lanes.
    #[test]
    fn kernel_matches_scalar_op(op in arb_op(), seed in 0u64..1_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let states: Vec<BitState> = (0..64)
            .map(|_| BitState::from_u64(rng.random_range(0..(1u64 << N_WIRES)), N_WIRES))
            .collect();
        let mut batch = BatchState::from_states(&states);
        kernels::apply(&mut batch, &op);
        for (lane, state) in states.iter().enumerate() {
            let mut expect = state.clone();
            op.apply(&mut expect);
            prop_assert_eq!(batch.lane(lane), expect, "lane {}", lane);
        }
    }

    /// THE engine invariant: on identical seeds, the scalar and batch
    /// backends produce bit-identical final states and reports for
    /// arbitrary noisy circuits — the fault schedule is shared, so the
    /// agreement is exact, lane by lane, not merely statistical.
    #[test]
    fn noisy_backends_agree_lane_by_lane(
        c in arb_circuit(25),
        seed in 0u64..1_000_000,
        g in 0.0f64..0.5,
    ) {
        let engine = Engine::compile(&c, &UniformNoise::new(g));
        let mut scalar = BatchState::zeros(N_WIRES, 2);
        let mut batch = BatchState::zeros(N_WIRES, 2);
        let mut rng_s = SmallRng::seed_from_u64(seed);
        let mut rng_b = SmallRng::seed_from_u64(seed);
        let rs = ScalarBackend.run(&engine, &mut scalar, &mut rng_s);
        let rb = BatchBackend.run(&engine, &mut batch, &mut rng_b);
        prop_assert_eq!(rs, rb, "reports differ");
        prop_assert_eq!(scalar, batch, "states differ");
    }

    /// The same invariant one layer up: `Engine::estimate` returns the
    /// same failure count whichever backend `McOptions` forces (and
    /// whatever the auto route picks), for the same seed.
    #[test]
    fn estimate_backends_agree_on_identical_seeds(
        c in arb_circuit(25),
        seed in 0u64..1_000_000,
        trials in 1u64..400,
    ) {
        let engine = Engine::compile(&c, &UniformNoise::new(0.1));
        let base = McOptions::new(trials).seed(seed);
        let scalar = engine.estimate(&Wire0Trial, &base.backend(BackendKind::Scalar));
        let batch = engine.estimate(&Wire0Trial, &base.backend(BackendKind::Batch));
        let auto = engine.estimate(&Wire0Trial, &base.backend(BackendKind::Auto));
        prop_assert_eq!(scalar.failures, batch.failures);
        prop_assert_eq!(batch.failures, auto.failures);
        prop_assert_eq!(scalar.trials, trials);
        prop_assert_eq!(batch.trials, trials);
    }

    /// In a noisy batch run, every lane the report declares fault-free
    /// must finish in exactly the ideal-run state.
    #[test]
    fn noisy_clean_lanes_equal_ideal(c in arb_circuit(25), seed in 0u64..1_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let states: Vec<BitState> = (0..64)
            .map(|_| BitState::from_u64(rng.random_range(0..(1u64 << N_WIRES)), N_WIRES))
            .collect();
        let mut noisy = BatchState::from_states(&states);
        let mut ideal = BatchState::from_states(&states);
        run_ideal_batch(&c, &mut ideal);
        let engine = Engine::compile(&c, &UniformNoise::new(0.08));
        let report = engine.run_batch(&mut noisy, &mut rng);
        let clean = report.clean_lanes(0);
        for lane in 0..64 {
            if (clean >> lane) & 1 == 1 {
                prop_assert_eq!(noisy.lane(lane), ideal.lane(lane), "clean lane {}", lane);
            }
        }
    }
}

/// Batched fault injection follows the `NoiseModel` rates: the observed
/// per-(op, lane) fault frequency must sit inside a 5σ band of `g`, for
/// both uniform and split models.
#[test]
fn batched_fault_rates_match_noise_model() {
    let mut c = Circuit::new(9);
    c.init(&[w(3), w(4), w(5)])
        .init(&[w(6), w(7), w(8)])
        .maj_inv(w(0), w(3), w(6))
        .maj_inv(w(1), w(4), w(7))
        .maj_inv(w(2), w(5), w(8))
        .maj(w(0), w(1), w(2))
        .maj(w(3), w(4), w(5))
        .maj(w(6), w(7), w(8));
    let mut rng = SmallRng::seed_from_u64(2005);

    // Uniform model.
    let g = 1.0 / 108.0;
    let engine = Engine::compile(&c, &UniformNoise::new(g));
    let words = 2_000u64;
    let mut events = 0u64;
    for _ in 0..words {
        let mut batch = BatchState::zeros(9, 1);
        events += engine.run_batch(&mut batch, &mut rng).fault_events;
    }
    let n = (c.len() as u64 * 64 * words) as f64;
    let sd = (n * g * (1.0 - g)).sqrt();
    assert!(
        (events as f64 - n * g).abs() < 5.0 * sd,
        "uniform: {events} events vs {} ± {sd}",
        n * g
    );

    // Split model with perfect inits: only the 6 gates may fault.
    let engine = Engine::compile(&c, &SplitNoise::perfect_init(0.05));
    let mut events = 0u64;
    for _ in 0..words {
        let mut batch = BatchState::zeros(9, 1);
        events += engine.run_batch(&mut batch, &mut rng).fault_events;
    }
    let n = (6 * 64 * words) as f64;
    let sd = (n * 0.05 * 0.95).sqrt();
    assert!(
        (events as f64 - n * 0.05).abs() < 5.0 * sd,
        "split: {events} events vs {} ± {sd}",
        n * 0.05
    );
}

/// Multi-word batches behave identically to single-word batches: the same
/// circuit over 128 lanes split as 2 words matches per-lane scalar runs.
#[test]
fn multi_word_batches_cover_all_lanes() {
    let mut c = Circuit::new(3);
    c.maj_inv(w(0), w(1), w(2)).maj(w(0), w(1), w(2));
    let mut rng = SmallRng::seed_from_u64(77);
    let states: Vec<BitState> = (0..128)
        .map(|_| BitState::from_u64(rng.random_range(0..8u64), 3))
        .collect();
    let mut batch = BatchState::from_states(&states);
    assert_eq!(batch.words_per_wire(), 2);
    run_ideal_batch(&c, &mut batch);
    for (lane, state) in states.iter().enumerate() {
        let mut expect = state.clone();
        run_ideal(&c, &mut expect);
        assert_eq!(batch.lane(lane), expect, "lane {lane}");
    }
}
