//! Fused-vs-unfused equivalence for the compiled micro-op IR.
//!
//! The fusion pass (`rft_revsim::microop`) may only change *how fast* a
//! word executes, never *what* it computes: for every circuit, noise
//! binding, seed and fault schedule, the compiled program must reproduce
//! the raw op-at-a-time loops **bit for bit** — including faults landing
//! in the middle of fused segments, where exactness rests on the
//! gather/scatter propagation pairs (patch segments) and on native
//! replay (constant-specialized segments). These property tests drive
//! arbitrary op soups — linear runs, INIT-interrupted runs, specialized
//! MAJ/MAJ⁻¹ patterns and nonlinear barriers — through both paths.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rft_revsim::engine::WordWidth;
use rft_revsim::prelude::*;

const N_WIRES: usize = 7;

/// Strategy producing an arbitrary valid op (gates and inits) on
/// `N_WIRES` wires.
fn arb_op() -> impl Strategy<Value = Op> {
    let wire = 0..N_WIRES as u32;
    let distinct3 = (wire.clone(), wire.clone(), wire.clone())
        .prop_filter("wires must be distinct", |(a, b, c)| {
            a != b && b != c && a != c
        });
    let distinct2 =
        (wire.clone(), wire.clone()).prop_filter("wires must be distinct", |(a, b)| a != b);
    let distinct4 = (wire.clone(), wire.clone(), wire.clone(), wire.clone())
        .prop_filter("wires must be distinct", |(a, b, c, d)| {
            a != b && a != c && a != d && b != c && b != d && c != d
        });
    prop_oneof![
        wire.clone().prop_map(|a| Op::Gate(Gate::Not(w(a)))),
        distinct2.clone().prop_map(|(a, b)| Op::Gate(Gate::Cnot {
            control: w(a),
            target: w(b)
        })),
        distinct3
            .clone()
            .prop_map(|(a, b, c)| Op::Gate(Gate::Toffoli {
                controls: [w(a), w(b)],
                target: w(c)
            })),
        distinct2
            .clone()
            .prop_map(|(a, b)| Op::Gate(Gate::Swap(w(a), w(b)))),
        distinct3
            .clone()
            .prop_map(|(a, b, c)| Op::Gate(Gate::Swap3(w(a), w(b), w(c)))),
        distinct3
            .clone()
            .prop_map(|(a, b, c)| Op::Gate(Gate::Fredkin {
                control: w(a),
                targets: [w(b), w(c)]
            })),
        distinct3
            .clone()
            .prop_map(|(a, b, c)| Op::Gate(Gate::Maj(w(a), w(b), w(c)))),
        distinct3
            .clone()
            .prop_map(|(a, b, c)| Op::Gate(Gate::MajInv(w(a), w(b), w(c)))),
        distinct3
            .clone()
            .prop_map(|(a, b, c)| Op::Gate(Gate::F2g(w(a), w(b), w(c)))),
        distinct3
            .clone()
            .prop_map(|(a, b, c)| Op::Gate(Gate::Nft(w(a), w(b), w(c)))),
        distinct3
            .clone()
            .prop_map(|(a, b, c)| Op::Gate(Gate::NftInv(w(a), w(b), w(c)))),
        distinct4
            .clone()
            .prop_map(|(a, b, c, d)| Op::Gate(Gate::Ig(w(a), w(b), w(c), w(d)))),
        distinct4.prop_map(|(a, b, c, d)| Op::Gate(Gate::IgInv(w(a), w(b), w(c), w(d)))),
        wire.clone().prop_map(|a| Op::init(&[w(a)])),
        distinct3.prop_map(|(a, b, c)| Op::init(&[w(a), w(b), w(c)])),
    ]
}

/// Fusion-heavy op soup: linear gates, inits and MAJ/MAJ⁻¹ dominate, so
/// most generated circuits contain multi-op segments with mid-segment
/// fault sites of every flavour.
fn arb_circuit(max_len: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_op(), 0..max_len).prop_map(|ops| {
        let mut c = Circuit::new(N_WIRES);
        for op in ops {
            c.push(op);
        }
        c
    })
}

/// Random lane contents for one plane word per wire.
fn fill_random(batch: &mut BatchState, word: usize, rng: &mut SmallRng) {
    for i in 0..N_WIRES {
        let v = rng.random::<u64>();
        batch.set_word(w(i as u32), word, v);
    }
}

proptest! {
    /// Sampled path: the compiled program (fused segments, wide blend)
    /// consumes the identical RNG stream as the raw loop and lands every
    /// sampled fault bit-identically — on arbitrary circuits and noise
    /// rates heavy enough to fault inside segments constantly.
    #[test]
    fn fused_sampled_run_matches_raw_bit_for_bit(
        c in arb_circuit(40),
        seed in 0u64..1_000_000,
        g_mil in 0u32..400,
    ) {
        let noise = UniformNoise::new(f64::from(g_mil) / 1000.0);
        let engine = Engine::compile(&c, &noise);
        let mut raw = BatchState::zeros(N_WIRES, 1);
        let mut fused = BatchState::zeros(N_WIRES, 1);
        let mut fill = SmallRng::seed_from_u64(seed ^ 0xABCD);
        fill_random(&mut raw, 0, &mut fill);
        let mut fill = SmallRng::seed_from_u64(seed ^ 0xABCD);
        fill_random(&mut fused, 0, &mut fill);
        let mut rng_raw = SmallRng::seed_from_u64(seed);
        let mut rngs = [SmallRng::seed_from_u64(seed)];
        let rep_raw = engine.run_batch(&mut raw, &mut rng_raw);
        let rep_fused = engine.run_batch_fused(&mut fused, &mut rngs);
        prop_assert_eq!(rep_raw, rep_fused);
        prop_assert_eq!(raw, fused);
        // Both RNGs must have consumed the identical stream.
        prop_assert_eq!(rng_raw.random::<u64>(), rngs[0].random::<u64>());
    }

    /// Masked path: arbitrary fault schedules (including dense ones and
    /// faults on never-fault ops) through the compiled program equal the
    /// raw masked loop bit for bit.
    #[test]
    fn fused_masked_run_matches_raw_bit_for_bit(
        c in arb_circuit(40),
        seed in 0u64..1_000_000,
        density in 0u32..3,
    ) {
        let engine = Engine::compile(&c, &UniformNoise::new(1e-3));
        let mut seeder = SmallRng::seed_from_u64(seed ^ 0x5555);
        let masks: Vec<u64> = (0..c.len())
            .map(|_| {
                let mut m = seeder.random::<u64>();
                for _ in 0..density {
                    m &= seeder.random::<u64>();
                }
                m
            })
            .collect();
        let mut raw = BatchState::zeros(N_WIRES, 1);
        let mut fused = BatchState::zeros(N_WIRES, 1);
        let mut fill = SmallRng::seed_from_u64(seed ^ 0x77);
        fill_random(&mut raw, 0, &mut fill);
        let mut fill = SmallRng::seed_from_u64(seed ^ 0x77);
        fill_random(&mut fused, 0, &mut fill);
        let mut rng_raw = SmallRng::seed_from_u64(seed);
        let mut rngs = [SmallRng::seed_from_u64(seed)];
        let rep_raw = engine.run_batch_masked_raw(&mut raw, &masks, &mut rng_raw);
        let rep_fused = engine.run_batch_masked(&mut fused, &masks, &mut rngs);
        prop_assert_eq!(rep_raw, rep_fused);
        prop_assert_eq!(raw, fused);
        prop_assert_eq!(rng_raw.random::<u64>(), rngs[0].random::<u64>());
    }

    /// Wide words change nothing: a `W = 4` sampled run equals four
    /// `W = 1` runs of the same per-word seeds, lane for lane.
    #[test]
    fn wide_sampled_run_equals_four_narrow_runs(
        c in arb_circuit(30),
        seed in 0u64..1_000_000,
    ) {
        let engine = Engine::compile(&c, &UniformNoise::new(0.02));
        let mut wide = BatchState::zeros(N_WIRES, 4);
        let mut rngs4: [SmallRng; 4] =
            std::array::from_fn(|k| SmallRng::seed_from_u64(seed ^ (k as u64) << 32));
        for word in 0..4 {
            let mut fill = SmallRng::seed_from_u64(seed ^ 0x99 ^ word as u64);
            fill_random(&mut wide, word, &mut fill);
        }
        let rep_wide = engine.run_batch_fused(&mut wide, &mut rngs4[..]);
        for word in 0..4 {
            let mut narrow = BatchState::zeros(N_WIRES, 1);
            let mut fill = SmallRng::seed_from_u64(seed ^ 0x99 ^ word as u64);
            fill_random(&mut narrow, 0, &mut fill);
            let mut rngs1 = [SmallRng::seed_from_u64(seed ^ (word as u64) << 32)];
            let rep = engine.run_batch_fused(&mut narrow, &mut rngs1);
            prop_assert_eq!(rep.faulted_lanes[0], rep_wide.faulted_lanes[word]);
            for i in 0..N_WIRES {
                prop_assert_eq!(
                    narrow.word(w(i as u32), 0),
                    wide.word(w(i as u32), word),
                    "wire {} word {}", i, word
                );
            }
        }
    }

    /// Estimates are invariant under the wide-word width, for both the
    /// plain and the stratified estimator (width is pure throughput).
    #[test]
    fn estimates_are_width_invariant(seed in 0u64..10_000) {
        // A permutation circuit with fusable structure (inits + MAJ⁻¹
        // fanout) so elision-eligible trials exercise both estimators.
        let mut c = Circuit::new(6);
        c.init(&[w(1), w(2)])
            .maj_inv(w(0), w(1), w(2))
            .swap(w(3), w(4))
            .cnot(w(3), w(5))
            .maj(w(0), w(1), w(2))
            .toffoli(w(0), w(3), w(5));
        let engine = Engine::compile(&c, &UniformNoise::new(0.01));
        let trial = ParityTrial;
        for estimator in [Estimator::Plain, Estimator::DEFAULT_STRATIFIED] {
            let base = McOptions::new(2000)
                .seed(seed)
                .backend(BackendKind::Batch)
                .estimator(estimator);
            let w1 = engine.estimate(&trial, &base.width(WordWidth::W1));
            let w2 = engine.estimate(&trial, &base.width(WordWidth::W2));
            let w4 = engine.estimate(&trial, &base.width(WordWidth::W4));
            let auto = engine.estimate(&trial, &base.width(WordWidth::Auto));
            prop_assert_eq!(&w1, &w2);
            prop_assert_eq!(&w1, &w4);
            prop_assert_eq!(&w1, &auto);
        }
    }
}

/// An elision-eligible trial: random inputs on the data wires, failure =
/// wrong parity of wires {3, 5} against the ideal circuit action.
struct ParityTrial;

impl WordTrial for ParityTrial {
    fn n_wires(&self) -> usize {
        6
    }

    fn prepare(&self, batch: &mut BatchState, rng: &mut dyn rand::RngCore) -> Vec<u64> {
        let inputs: Vec<u64> = (0..6).map(|_| rng.random()).collect();
        for (i, &bits) in inputs.iter().enumerate() {
            batch.set_word(w(i as u32), 0, bits);
        }
        inputs
    }

    fn judge(&self, batch: &BatchState, inputs: &[u64]) -> u64 {
        // Ideal: recompute scalarly via the permutation of a fault-free
        // run; compare the parity of wires 3 and 5.
        let mut ideal = BatchState::zeros(6, 1);
        for (i, &bits) in inputs.iter().enumerate() {
            ideal.set_word(w(i as u32), 0, bits);
        }
        let mut c = Circuit::new(6);
        c.init(&[w(1), w(2)])
            .maj_inv(w(0), w(1), w(2))
            .swap(w(3), w(4))
            .cnot(w(3), w(5))
            .maj(w(0), w(1), w(2))
            .toffoli(w(0), w(3), w(5));
        run_ideal_batch(&c, &mut ideal);
        (ideal.word(w(3), 0) ^ ideal.word(w(5), 0)) ^ (batch.word(w(3), 0) ^ batch.word(w(5), 0))
    }

    fn fault_free_can_fail(&self) -> bool {
        false
    }
}

#[test]
fn compile_stats_report_fusion_on_structured_streams() {
    // A swap-routing style linear stream: one long patch segment.
    let mut c = Circuit::new(8);
    c.swap3(w(0), w(1), w(2))
        .swap3(w(2), w(3), w(4))
        .cnot(w(4), w(5))
        .not(w(5))
        .swap(w(5), w(6))
        .cnot(w(6), w(7));
    let engine = Engine::compile(&c, &UniformNoise::new(0.01));
    let stats = engine.compile_stats();
    assert_eq!(stats.ops, 6);
    assert_eq!(stats.fused_segments, 1);
    assert_eq!(stats.max_segment_len, 6);
    assert_eq!(stats.micro_ops, 1);
    assert_eq!(stats.specialized_ops, 0);

    // A recovery-style stream: inits + MAJ⁻¹ fanout specialize, MAJ
    // decode stays native.
    let mut c = Circuit::new(9);
    c.init(&[w(3), w(4), w(5)])
        .init(&[w(6), w(7), w(8)])
        .maj_inv(w(0), w(3), w(6))
        .maj_inv(w(1), w(4), w(7))
        .maj_inv(w(2), w(5), w(8))
        .maj(w(0), w(1), w(2))
        .maj(w(3), w(4), w(5))
        .maj(w(6), w(7), w(8));
    let engine = Engine::compile(&c, &UniformNoise::new(1e-3));
    let stats = engine.compile_stats();
    assert_eq!(stats.fused_segments, 1);
    assert_eq!(stats.max_segment_len, 5, "inits + specialized MAJ⁻¹s fuse");
    assert_eq!(stats.specialized_ops, 3);
    assert_eq!(stats.segment_len_hist, vec![(5, 1)]);
}

#[test]
fn f2g_fuses_into_affine_segments_and_ig_splits_them() {
    // F2G is GF(2)-linear (two CNOTs sharing a control): a run of F2Gs
    // and other linear gates must compile to ONE patch segment.
    let mut c = Circuit::new(6);
    c.f2g(w(0), w(1), w(2))
        .f2g(w(3), w(4), w(5))
        .cnot(w(0), w(3))
        .f2g(w(2), w(1), w(0))
        .not(w(4));
    let engine = Engine::compile(&c, &UniformNoise::new(0.01));
    let stats = engine.compile_stats();
    assert_eq!(stats.ops, 5);
    assert_eq!(stats.fused_segments, 1, "F2G run must fuse");
    assert_eq!(stats.max_segment_len, 5);
    assert_eq!(stats.micro_ops, 1);
    assert_eq!(stats.specialized_ops, 0, "F2G fuses unconditionally");

    // IG's mixed-affine structure (AND terms in its last two outputs)
    // must split a would-be segment in two, with the IG native between.
    let mut c = Circuit::new(6);
    c.f2g(w(0), w(1), w(2))
        .cnot(w(3), w(4))
        .ig(w(0), w(1), w(2), w(3))
        .f2g(w(3), w(4), w(5))
        .swap(w(0), w(1));
    let engine = Engine::compile(&c, &UniformNoise::new(0.01));
    let stats = engine.compile_stats();
    assert_eq!(stats.ops, 5);
    assert_eq!(stats.fused_segments, 2, "IG splits the affine run");
    assert_eq!(stats.micro_ops, 3, "segment, native IG, segment");
    assert_eq!(stats.segment_len_hist, vec![(2, 2)]);

    // NFT is nonlinear throughout: it likewise stays native.
    let mut c = Circuit::new(4);
    c.cnot(w(0), w(1)).nft(w(0), w(1), w(2)).cnot(w(2), w(3));
    let engine = Engine::compile(&c, &UniformNoise::new(0.01));
    assert_eq!(engine.compile_stats().fused_segments, 0);
    assert_eq!(engine.compile_stats().micro_ops, 3);
}

#[test]
fn init_conflict_splits_patch_segments() {
    // CNOT(0→1); INIT(1); CNOT(1→2): the fault site at the first CNOT
    // would need wire 1's pre-INIT value from the boundary — the INIT
    // destroys it, so the segment must split there (and execution must
    // still be exact, which the proptests above cover).
    let mut c = Circuit::new(3);
    c.cnot(w(0), w(1)).init(&[w(1)]).cnot(w(1), w(2));
    let engine = Engine::compile(&c, &UniformNoise::new(0.3));
    let stats = engine.compile_stats();
    assert_eq!(stats.ops, 3);
    // The run splits at the INIT: [CNOT] alone is not a segment, so the
    // fused part is [INIT, CNOT].
    assert_eq!(stats.fused_segments, 1);
    assert_eq!(stats.max_segment_len, 2);
}

#[test]
fn specialization_is_gated_by_word_fault_probability() {
    let mut c = Circuit::new(9);
    c.init(&[w(3), w(4), w(5)])
        .init(&[w(6), w(7), w(8)])
        .maj_inv(w(0), w(3), w(6))
        .maj_inv(w(1), w(4), w(7))
        .maj_inv(w(2), w(5), w(8));
    // Deep below threshold: words usually clear the segment fault-free,
    // so MAJ⁻¹ specialization pays.
    let deep = Engine::compile(&c, &UniformNoise::new(1e-4));
    assert_eq!(deep.compile_stats().specialized_ops, 3);
    // At heavy noise almost every word would replay: the scan retries
    // without specialization and only the INIT pair fuses.
    let heavy = Engine::compile(&c, &UniformNoise::new(0.05));
    assert_eq!(heavy.compile_stats().specialized_ops, 0);
    assert_eq!(heavy.compile_stats().max_segment_len, 2);
}
