//! Property-based tests for the reversible simulator substrate.

use proptest::prelude::*;
use rft_revsim::permutation::Permutation;
use rft_revsim::prelude::*;

const N_WIRES: usize = 6;

/// Strategy producing an arbitrary valid gate on `N_WIRES` wires.
fn arb_gate() -> impl Strategy<Value = Gate> {
    let wire = 0..N_WIRES as u32;
    let distinct3 = (wire.clone(), wire.clone(), wire.clone())
        .prop_filter("wires must be distinct", |(a, b, c)| {
            a != b && b != c && a != c
        });
    let distinct2 =
        (wire.clone(), wire.clone()).prop_filter("wires must be distinct", |(a, b)| a != b);
    prop_oneof![
        wire.clone().prop_map(|a| Gate::Not(w(a))),
        distinct2.clone().prop_map(|(a, b)| Gate::Cnot {
            control: w(a),
            target: w(b)
        }),
        distinct3.clone().prop_map(|(a, b, c)| Gate::Toffoli {
            controls: [w(a), w(b)],
            target: w(c)
        }),
        distinct2.prop_map(|(a, b)| Gate::Swap(w(a), w(b))),
        distinct3
            .clone()
            .prop_map(|(a, b, c)| Gate::Swap3(w(a), w(b), w(c))),
        distinct3.clone().prop_map(|(a, b, c)| Gate::Fredkin {
            control: w(a),
            targets: [w(b), w(c)]
        }),
        distinct3
            .clone()
            .prop_map(|(a, b, c)| Gate::Maj(w(a), w(b), w(c))),
        distinct3
            .clone()
            .prop_map(|(a, b, c)| Gate::MajInv(w(a), w(b), w(c))),
        distinct3
            .clone()
            .prop_map(|(a, b, c)| Gate::F2g(w(a), w(b), w(c))),
        distinct3
            .clone()
            .prop_map(|(a, b, c)| Gate::Nft(w(a), w(b), w(c))),
        distinct3.prop_map(|(a, b, c)| Gate::NftInv(w(a), w(b), w(c))),
        arb_distinct4().prop_map(|(a, b, c, d)| Gate::Ig(w(a), w(b), w(c), w(d))),
        arb_distinct4().prop_map(|(a, b, c, d)| Gate::IgInv(w(a), w(b), w(c), w(d))),
    ]
}

fn arb_distinct4() -> impl Strategy<Value = (u32, u32, u32, u32)> {
    let wire = 0..N_WIRES as u32;
    (wire.clone(), wire.clone(), wire.clone(), wire)
        .prop_filter("wires must be distinct", |(a, b, c, d)| {
            a != b && a != c && a != d && b != c && b != d && c != d
        })
}

fn arb_circuit(max_len: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(), 0..max_len).prop_map(|gates| {
        let mut c = Circuit::new(N_WIRES);
        for g in gates {
            c.push(Op::Gate(g));
        }
        c
    })
}

proptest! {
    /// Any reversible circuit followed by its inverse is the identity.
    #[test]
    fn circuit_then_inverse_is_identity(c in arb_circuit(40), input in 0u64..(1 << N_WIRES)) {
        let inv = c.inverted().unwrap();
        let mut s = BitState::from_u64(input, N_WIRES);
        c.run(&mut s);
        inv.run(&mut s);
        prop_assert_eq!(s.to_u64(), input);
    }

    /// Every gate-only circuit computes a bijection.
    #[test]
    fn circuits_are_bijections(c in arb_circuit(25)) {
        let p = Permutation::of_circuit(&c).unwrap();
        // from_map re-validates bijectivity.
        let map: Vec<u64> = p.rows().map(|(_, o)| o).collect();
        prop_assert!(Permutation::from_map(N_WIRES, map).is_ok());
    }

    /// A gate commutes with state bits outside its support.
    #[test]
    fn gates_touch_only_their_support(g in arb_gate(), input in 0u64..(1 << N_WIRES)) {
        let mut s = BitState::from_u64(input, N_WIRES);
        g.apply(&mut s);
        let support = g.support();
        for i in 0..N_WIRES as u32 {
            if !support.contains(w(i)) {
                prop_assert_eq!(s.get(w(i)), (input >> i) & 1 == 1, "wire {} changed", i);
            }
        }
    }

    /// A planned fault with the pattern the ideal run would produce anyway
    /// is indistinguishable from no fault at all.
    #[test]
    fn consistent_fault_is_transparent(c in arb_circuit(15), input in 0u64..(1 << N_WIRES), idx in 0usize..15) {
        prop_assume!(idx < c.len());
        // Compute what the ideal run leaves on op idx's support right after it.
        let mut s = BitState::from_u64(input, N_WIRES);
        for op in &c.ops()[..=idx] {
            op.apply(&mut s);
        }
        let support = c.ops()[idx].support();
        let pattern = s.read_pattern(support.as_slice());
        // Planned "fault" writing exactly that pattern must match the ideal run.
        let mut ideal = BitState::from_u64(input, N_WIRES);
        c.run(&mut ideal);
        let mut faulted = BitState::from_u64(input, N_WIRES);
        PlannedFaultBackend::new(&FaultPlan::single(idx, pattern)).run_state(&c, &mut faulted);
        prop_assert_eq!(ideal, faulted);
    }

    /// Depth never exceeds op count and is zero only for empty circuits.
    #[test]
    fn depth_bounds(c in arb_circuit(30)) {
        let d = c.depth();
        prop_assert!(d <= c.len());
        prop_assert_eq!(d == 0, c.is_empty());
    }

    /// Permutation compose/inverse laws.
    #[test]
    fn permutation_group_laws(a in arb_circuit(10), b in arb_circuit(10)) {
        let pa = Permutation::of_circuit(&a).unwrap();
        let pb = Permutation::of_circuit(&b).unwrap();
        let composed = pa.compose(&pb);
        prop_assert_eq!(composed.inverse(), pb.inverse().compose(&pa.inverse()));
    }

    /// A planned run with an empty plan equals the ideal run.
    #[test]
    fn empty_plan_is_ideal(c in arb_circuit(20), input in 0u64..(1 << N_WIRES)) {
        let mut a = BitState::from_u64(input, N_WIRES);
        let mut b = BitState::from_u64(input, N_WIRES);
        c.run(&mut a);
        PlannedFaultBackend::new(&FaultPlan::none()).run_state(&c, &mut b);
        prop_assert_eq!(a, b);
    }

    /// Every gate is a bijection on its full register: applying it to all
    /// 2^n inputs hits all 2^n outputs (old and new gate kinds alike).
    #[test]
    fn every_gate_is_a_bijection(g in arb_gate()) {
        let mut seen = [false; 1 << N_WIRES];
        for input in 0..(1u64 << N_WIRES) {
            let mut s = BitState::from_u64(input, N_WIRES);
            g.apply(&mut s);
            let out = s.to_u64() as usize;
            prop_assert!(!seen[out], "{} maps two inputs to {}", g, out);
            seen[out] = true;
        }
    }

    /// Gates flagged parity-preserving (F2G, FRG/Fredkin, NFT, IG and the
    /// wire permutations) preserve input⊕output parity on ALL 2^n inputs.
    #[test]
    fn parity_preserving_gates_hold_their_invariant(g in arb_gate()) {
        prop_assume!(g.is_parity_preserving());
        for input in 0..(1u64 << N_WIRES) {
            let mut s = BitState::from_u64(input, N_WIRES);
            g.apply(&mut s);
            prop_assert_eq!(
                input.count_ones() % 2,
                s.to_u64().count_ones() % 2,
                "{} breaks parity on {:b}", g, input
            );
        }
    }

    /// Gate inversion is exact for every gate kind: g then g⁻¹ is the
    /// identity on all inputs, and (g⁻¹)⁻¹ = g.
    #[test]
    fn gate_inverses_are_exact(g in arb_gate(), input in 0u64..(1 << N_WIRES)) {
        let mut s = BitState::from_u64(input, N_WIRES);
        g.apply(&mut s);
        g.inverse().apply(&mut s);
        prop_assert_eq!(s.to_u64(), input);
        prop_assert_eq!(g.inverse().inverse(), g);
    }
}
