//! Serialization round-trips: circuits and results are data structures
//! (C-SERDE) and must survive JSON faithfully — e.g. for archiving the
//! exact physical circuits behind an EXPERIMENTS.md run.

use rft_revsim::fault::{FaultPlan, PlannedFault};
use rft_revsim::prelude::*;

fn recovery_like() -> Circuit {
    let mut c = Circuit::new(9);
    c.init(&[w(3), w(4), w(5)])
        .init(&[w(6), w(7), w(8)])
        .maj_inv(w(0), w(3), w(6))
        .maj_inv(w(1), w(4), w(7))
        .maj_inv(w(2), w(5), w(8))
        .maj(w(0), w(1), w(2))
        .maj(w(3), w(4), w(5))
        .maj(w(6), w(7), w(8));
    c
}

#[test]
fn circuit_roundtrips_through_json() {
    let c = recovery_like();
    let json = serde_json::to_string(&c).expect("serialize");
    let back: Circuit = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(c, back);
    // Behaviour, not just structure: same outputs.
    for input in [0u64, 0b111, 0b101] {
        let mut a = BitState::from_u64(input, 9);
        let mut b = BitState::from_u64(input, 9);
        c.run(&mut a);
        back.run(&mut b);
        assert_eq!(a, b);
    }
}

#[test]
fn every_gate_kind_roundtrips() {
    let gates = [
        Gate::Not(w(0)),
        Gate::Cnot {
            control: w(1),
            target: w(0),
        },
        Gate::Toffoli {
            controls: [w(0), w(2)],
            target: w(1),
        },
        Gate::Swap(w(0), w(1)),
        Gate::Swap3(w(2), w(1), w(0)),
        Gate::Fredkin {
            control: w(2),
            targets: [w(0), w(1)],
        },
        Gate::Maj(w(0), w(1), w(2)),
        Gate::MajInv(w(2), w(0), w(1)),
    ];
    for g in gates {
        let json = serde_json::to_string(&g).unwrap();
        let back: Gate = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back, "{json}");
    }
}

#[test]
fn ops_and_plans_roundtrip() {
    let op = Op::init(&[w(1), w(5)]);
    let back: Op = serde_json::from_str(&serde_json::to_string(&op).unwrap()).unwrap();
    assert_eq!(op, back);

    let plan = FaultPlan::new(vec![
        PlannedFault {
            op_index: 3,
            pattern: 0b101,
        },
        PlannedFault {
            op_index: 7,
            pattern: 0b010,
        },
    ]);
    let back: FaultPlan = serde_json::from_str(&serde_json::to_string(&plan).unwrap()).unwrap();
    assert_eq!(plan, back);
}

#[test]
fn noise_models_roundtrip() {
    let u = UniformNoise::new(0.01);
    let back: UniformNoise = serde_json::from_str(&serde_json::to_string(&u).unwrap()).unwrap();
    assert_eq!(u, back);
    let s = SplitNoise::new(0.02, 0.0);
    let back: SplitNoise = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
    assert_eq!(s, back);
}

#[test]
fn deserialized_invalid_wire_is_caught_on_use() {
    // Serde does not validate against a circuit width (the wire is data);
    // pushing the op into a circuit re-validates.
    let gate: Gate = serde_json::from_str(r#"{"Not":99}"#).unwrap();
    let mut c = Circuit::new(3);
    assert!(c.try_push(Op::Gate(gate)).is_err());
}
