//! Replayable estimation jobs: the unit of work the `rft-serve` daemon
//! accepts, streams, and that `repro replay` reproduces offline.
//!
//! A [`JobSpec`] names everything that determines an answer — the circuit
//! (a `(level, gate, cycles)` concatenation spec or a §2.2 transversal
//! cycle), the noise model, the base seed, the estimator/backend policy
//! and the per-round trial budget — and a [`JobRecord`] wraps it with a
//! schema version. The runner executes the job as a sequence of
//! **rounds**: each round runs `trials_per_round` fresh Monte-Carlo
//! trials under a per-round salted seed, pools the tallies with every
//! earlier round, and emits an [`IntervalUpdate`] carrying the pooled
//! 95% confidence interval. A streaming consumer (the daemon's chunked
//! HTTP response) forwards each update to the client and may cancel
//! between rounds — which is how an early client disconnect frees the
//! job's budget.
//!
//! **Determinism contract.** Round `r` derives its RNG streams from
//! `spec.seed ^ round_salt(r)` and the engine's per-word seeding, so a
//! job's updates are bit-identical for a fixed record at any thread
//! count, on any machine, served or replayed: the final streamed update
//! of a completed job is **byte-identical** to
//! `repro replay job.json` of its record (both serialize through
//! [`FinalUpdate`]). Pinned by tests here, in `crates/serve`, and by the
//! `serve_smoke.py` CI script.

use crate::experiment::CompileCache;
use crate::stats::ErrorEstimate;
use rft_core::concat::FtBuilder;
use rft_core::ftcheck::transversal_cycle;
use rft_detect::{AdderKind, CheckedAdder, TrialMode};
use rft_obs::Collector;
use rft_revsim::engine::{BackendKind, Estimator, McOptions, StratumOutcome, WordWidth};
use rft_revsim::gate::Gate;
use rft_revsim::noise::UniformNoise;
use serde::{Deserialize, Serialize};

/// Version of the job-record JSON schema (independent of the report
/// schema: records are long-lived client-side artifacts).
pub const JOB_SCHEMA_VERSION: u32 = 1;

/// Hard ceiling on `trials_per_round` (2³² lanes ≈ 67M words/round).
pub const MAX_TRIALS_PER_ROUND: u64 = 1 << 32;

/// Hard ceiling on `max_rounds`.
pub const MAX_ROUNDS: u32 = 4096;

/// Which circuit a job estimates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CircuitSpec {
    /// The paper's concatenated fault-tolerant program: `cycles`
    /// applications of `gate` (on logical wires) at concatenation
    /// `level`, with the full encode → run → decode trial.
    Concat {
        /// Concatenation level (1..=[`FtBuilder::MAX_LEVEL`]).
        level: u8,
        /// Logical gate (wires 0..=5).
        gate: Gate,
        /// Cycles per trial (1..=256).
        cycles: usize,
    },
    /// The §2.2 non-local transversal recovery cycle of `gate` (which
    /// must act on logical wires 0, 1, 2), one cycle per trial.
    Cycle {
        /// Logical gate on wires 0, 1, 2.
        gate: Gate,
    },
    /// A parity-checked adder from the detection subsystem
    /// (`rft-detect`): the `width`-bit construction `kind`, wrapped with
    /// the ancilla-parity invariant checker, judged per `mode`. A
    /// [`TrialMode::Detected`] job streams live detection-coverage
    /// intervals; [`TrialMode::UndetectedWrong`] streams the residual
    /// error a retry/discard policy cannot see.
    DetectAdder {
        /// Operand width in bits (1..=32).
        width: usize,
        /// Which synthesis; must be parity-preserving (every kind except
        /// [`AdderKind::PlainRipple`], which has no checker to wrap).
        kind: AdderKind,
        /// What counts as a failure for the streamed interval.
        mode: TrialMode,
    },
}

/// Which noise model a job runs under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NoiseSpec {
    /// Uniform per-operation fault probability `g` (the paper's model).
    Uniform {
        /// Per-op fault probability, in `[0, 1]`.
        g: f64,
    },
}

impl NoiseSpec {
    /// Instantiates the noise model.
    fn model(&self) -> UniformNoise {
        match *self {
            NoiseSpec::Uniform { g } => UniformNoise::new(g),
        }
    }
}

/// Everything that determines a served answer. See the module docs for
/// the round/streaming semantics of the budget fields.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The circuit to estimate.
    pub circuit: CircuitSpec,
    /// The noise model.
    pub noise: NoiseSpec,
    /// Base RNG seed (rounds salt it deterministically).
    pub seed: u64,
    /// Estimator policy (`Auto` routes deep-sub-threshold jobs to the
    /// fault-count-stratified rare-event estimator).
    pub estimator: Estimator,
    /// Backend policy.
    pub backend: BackendKind,
    /// Wide-word width (pure throughput; never changes results).
    pub width: WordWidth,
    /// Fresh trials per round (1..=[`MAX_TRIALS_PER_ROUND`]).
    pub trials_per_round: u64,
    /// Round budget (1..=[`MAX_ROUNDS`]); the job stops earlier once the
    /// precision target is met.
    pub max_rounds: u32,
    /// Precision target: stop once the pooled interval's relative
    /// half-width `(high − low) / (2 · rate)` is at or below this.
    /// `None` always runs `max_rounds` rounds.
    pub target_rel_half_width: Option<f64>,
    /// Wall-clock deadline in milliseconds for a *served* job. The
    /// daemon cancels a deadline-exceeded job at the next round boundary
    /// and streams a `cancelled` final line; offline replay ignores the
    /// field entirely (a completed record carries the rounds it actually
    /// ran, so its answer replays byte-identically regardless of how
    /// long the replay takes). `None` leaves only the server-side cap.
    pub deadline_ms: Option<u64>,
}

// An additive schema field: records written before `deadline_ms` existed
// must keep parsing, and a spec without a deadline must serialize
// byte-identically to what it produced before the field existed (served
// final lines embed the record). The derive can do neither — it emits
// every field and requires every key — so both impls are written out.
impl Serialize for JobSpec {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("circuit".to_string(), self.circuit.to_value()),
            ("noise".to_string(), self.noise.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("estimator".to_string(), self.estimator.to_value()),
            ("backend".to_string(), self.backend.to_value()),
            ("width".to_string(), self.width.to_value()),
            (
                "trials_per_round".to_string(),
                self.trials_per_round.to_value(),
            ),
            ("max_rounds".to_string(), self.max_rounds.to_value()),
            (
                "target_rel_half_width".to_string(),
                self.target_rel_half_width.to_value(),
            ),
        ];
        if let Some(d) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), d.to_value()));
        }
        serde::Value::Map(fields)
    }
}

impl Deserialize for JobSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let m = serde::as_map(v, "JobSpec")?;
        let field = |key| serde::map_get(m, key, "JobSpec");
        Ok(JobSpec {
            circuit: Deserialize::from_value(field("circuit")?)?,
            noise: Deserialize::from_value(field("noise")?)?,
            seed: Deserialize::from_value(field("seed")?)?,
            estimator: Deserialize::from_value(field("estimator")?)?,
            backend: Deserialize::from_value(field("backend")?)?,
            width: Deserialize::from_value(field("width")?)?,
            trials_per_round: Deserialize::from_value(field("trials_per_round")?)?,
            max_rounds: Deserialize::from_value(field("max_rounds")?)?,
            target_rel_half_width: Deserialize::from_value(field("target_rel_half_width")?)?,
            deadline_ms: match m.iter().find(|(k, _)| k == "deadline_ms") {
                Some((_, v)) => Deserialize::from_value(v)?,
                None => None,
            },
        })
    }
}

impl JobSpec {
    /// A small deterministic smoke-test job: one round of 4096 trials of
    /// the level-1 Toffoli program at `g = 1/165`.
    pub fn quick() -> Self {
        use rft_revsim::wire::w;
        JobSpec {
            circuit: CircuitSpec::Concat {
                level: 1,
                gate: Gate::Toffoli {
                    controls: [w(0), w(1)],
                    target: w(2),
                },
                cycles: 1,
            },
            noise: NoiseSpec::Uniform { g: 1.0 / 165.0 },
            seed: 2005,
            estimator: Estimator::Plain,
            backend: BackendKind::Auto,
            width: WordWidth::Auto,
            trials_per_round: 4096,
            max_rounds: 1,
            target_rel_half_width: None,
            deadline_ms: None,
        }
    }

    /// Validates every bound the runner (and the daemon, pre-admission)
    /// relies on; the error string is client-facing.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated bound.
    pub fn validate(&self) -> Result<(), String> {
        if self.trials_per_round == 0 || self.trials_per_round > MAX_TRIALS_PER_ROUND {
            return Err(format!(
                "trials_per_round must be in 1..={MAX_TRIALS_PER_ROUND}, got {}",
                self.trials_per_round
            ));
        }
        if self.max_rounds == 0 || self.max_rounds > MAX_ROUNDS {
            return Err(format!(
                "max_rounds must be in 1..={MAX_ROUNDS}, got {}",
                self.max_rounds
            ));
        }
        if let Some(t) = self.target_rel_half_width {
            if !(t > 0.0 && t.is_finite()) {
                return Err(format!(
                    "target_rel_half_width must be positive and finite, got {t}"
                ));
            }
        }
        if self.deadline_ms == Some(0) {
            return Err("deadline_ms must be >= 1 when present".into());
        }
        let NoiseSpec::Uniform { g } = self.noise;
        if !(0.0..=1.0).contains(&g) || !g.is_finite() {
            return Err(format!("noise g must be in [0, 1], got {g}"));
        }
        match &self.circuit {
            CircuitSpec::Concat {
                level,
                gate,
                cycles,
            } => {
                if *level == 0 || *level > FtBuilder::MAX_LEVEL {
                    return Err(format!(
                        "level must be in 1..={}, got {level}",
                        FtBuilder::MAX_LEVEL
                    ));
                }
                if *cycles == 0 || *cycles > 256 {
                    return Err(format!("cycles must be in 1..=256, got {cycles}"));
                }
                let support = gate.support();
                if !support.is_distinct() {
                    return Err("gate wires must be distinct".into());
                }
                if support.max_index() > 5 {
                    return Err(format!(
                        "gate wires must be <= 5, got {}",
                        support.max_index()
                    ));
                }
            }
            CircuitSpec::Cycle { gate } => {
                use rft_revsim::wire::w;
                let support = gate.support();
                if support.len() != 3
                    || !support.is_distinct()
                    || !(0..3).all(|i| support.contains(w(i)))
                {
                    return Err("cycle gate must act on distinct logical wires 0, 1, 2".into());
                }
            }
            CircuitSpec::DetectAdder { width, kind, .. } => {
                if *width == 0 || *width > 32 {
                    return Err(format!("adder width must be in 1..=32, got {width}"));
                }
                if *kind == AdderKind::PlainRipple {
                    return Err(
                        "detect adder kind must be parity-preserving; plain ripple has no checker"
                            .into(),
                    );
                }
                if let AdderKind::CarrySkip { block } = kind {
                    if *block == 0 {
                        return Err("carry-skip block size must be >= 1".into());
                    }
                }
            }
        }
        Ok(())
    }
}

/// A schema-versioned, self-describing [`JobSpec`] — the replayable
/// artifact every served answer carries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job-record schema version ([`JOB_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The job itself.
    pub spec: JobSpec,
}

impl JobRecord {
    /// Wraps a spec at the current schema version.
    pub fn new(spec: JobSpec) -> Self {
        JobRecord {
            schema_version: JOB_SCHEMA_VERSION,
            spec,
        }
    }

    /// Validates the schema version and the spec.
    ///
    /// # Errors
    ///
    /// Returns a client-facing description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != JOB_SCHEMA_VERSION {
            return Err(format!(
                "unsupported job schema_version {} (this build speaks {JOB_SCHEMA_VERSION})",
                self.schema_version
            ));
        }
        self.spec.validate()
    }
}

/// One streamed line: the pooled interval after a completed round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalUpdate {
    /// Line discriminator, always `"interval"`.
    pub kind: String,
    /// 1-based round index this update pools up to.
    pub round: u32,
    /// The job's round budget.
    pub max_rounds: u32,
    /// Pooled estimate over every round so far (95% Wilson-style
    /// interval; exact stratum weights under the stratified estimator).
    pub estimate: ErrorEstimate,
    /// Pooled relative half-width `(high − low) / (2 · rate)`; `None`
    /// while the point estimate is still zero.
    pub rel_half_width: Option<f64>,
    /// 64-lane words executed so far (the cost metric).
    pub executed_words: u64,
    /// Whether the precision target has been met.
    pub converged: bool,
    /// Whether this is the job's last round (converged, budget
    /// exhausted, or the server is draining).
    pub done: bool,
}

/// The terminal line of a job the daemon cancelled instead of completed
/// — today only for a wall-clock deadline hit. The stream stays
/// well-formed (this line, then a clean chunked terminator), so a client
/// always learns *why* it got no final answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CancelledUpdate {
    /// Line discriminator, always `"cancelled"`.
    pub kind: String,
    /// Client-facing cause, e.g. `"deadline exceeded"`.
    pub reason: String,
    /// Rounds that completed (and streamed intervals) before the cancel.
    pub round: u32,
    /// The job's round budget, for context.
    pub max_rounds: u32,
}

impl CancelledUpdate {
    /// Builds a cancellation line.
    pub fn new(reason: impl Into<String>, round: u32, max_rounds: u32) -> Self {
        CancelledUpdate {
            kind: "cancelled".into(),
            reason: reason.into(),
            round,
            max_rounds,
        }
    }

    /// The canonical single-line JSON of this payload.
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("cancelled update serialization is infallible")
    }
}

/// The final payload of a completed job: the replayable record plus the
/// pooled result. `repro replay` prints exactly this serialization, so a
/// streamed final line can be compared byte-for-byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FinalUpdate {
    /// Line discriminator, always `"final"`.
    pub kind: String,
    /// Job-record schema version.
    pub schema_version: u32,
    /// The replayable job record.
    pub record: JobRecord,
    /// The pooled result.
    pub result: JobResult,
}

impl FinalUpdate {
    /// The canonical single-line JSON of this payload — what the daemon
    /// streams as the last chunk and `repro replay` prints.
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("final update serialization is infallible")
    }
}

/// The pooled outcome of every executed round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Rounds actually executed.
    pub rounds: u32,
    /// Pooled estimate (95% interval).
    pub estimate: ErrorEstimate,
    /// Pooled relative half-width (`None` while the rate is zero).
    pub rel_half_width: Option<f64>,
    /// Whether the precision target was met within the round budget.
    pub converged: bool,
    /// Total 64-lane words executed.
    pub executed_words: u64,
    /// Name of the estimator that ran (`"plain"` or `"stratified"`).
    pub estimator: String,
    /// Name of the backend that ran.
    pub backend: String,
}

/// A streaming consumer's verdict between rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobControl {
    /// Keep running rounds.
    Continue,
    /// Cancel the job (client disconnected); no final update is built.
    Cancel,
}

/// `splitmix64` — the per-round seed salt generator. A pure function of
/// the round index, so replay derives the identical salt sequence.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed salt of 1-based round `round` (round 1 included: every round
/// runs on a salted stream, so a job's words never collide with the
/// unsalted streams experiments use at the same seed).
fn round_salt(round: u32) -> u64 {
    // "RFT-SERVE" domain separation constant.
    splitmix64(0x5246_5453_4552_5645 ^ u64::from(round))
}

/// Pools a round's per-stratum tallies into the running totals (strata
/// are keyed by `(k_lo, k_hi)`; their exact weights are identical every
/// round because the engine — and hence the fault-count PMF — is).
fn pool_strata(pooled: &mut Vec<StratumOutcome>, round: &[StratumOutcome]) {
    for s in round {
        match pooled
            .iter_mut()
            .find(|p| p.k_lo == s.k_lo && p.k_hi == s.k_hi)
        {
            Some(p) => {
                p.failures += s.failures;
                p.trials += s.trials;
            }
            None => pooled.push(s.clone()),
        }
    }
}

/// Runs `record` round by round, invoking `on_update` after every round
/// with the pooled interval; compiled artifacts come from (and go into)
/// `cache`, observations into `obs`.
///
/// Returns `Ok(Some(final))` when the job completed, `Ok(None)` when
/// `on_update` cancelled it.
///
/// # Errors
///
/// Returns a client-facing message when the record fails validation.
pub fn run_job_streaming<F>(
    cache: &CompileCache,
    obs: &Collector,
    record: &JobRecord,
    threads: usize,
    mut on_update: F,
) -> Result<Option<FinalUpdate>, String>
where
    F: FnMut(&IntervalUpdate) -> JobControl,
{
    record.validate()?;
    let spec = &record.spec;
    let noise = spec.noise.model();

    // Compile once (or hit the process-wide cache); rounds only execute.
    enum Compiled {
        Concat(std::sync::Arc<crate::montecarlo::ConcatMc>),
        Cycle(rft_core::ftcheck::CycleSpec),
        Detect(Box<CheckedAdder>, TrialMode),
    }
    let compiled = match &spec.circuit {
        CircuitSpec::Concat {
            level,
            gate,
            cycles,
        } => Compiled::Concat(cache.concat_with(obs, *level, *gate, *cycles)),
        CircuitSpec::Cycle { gate } => Compiled::Cycle(transversal_cycle(gate)),
        CircuitSpec::DetectAdder { width, kind, mode } => {
            obs.incr(rft_obs::Metric::DetectSyntheses);
            Compiled::Detect(Box::new(CheckedAdder::new(*kind, *width)), *mode)
        }
    };
    let engine = match &compiled {
        Compiled::Concat(mc) => cache.engine_with(obs, mc.program().circuit(), &noise),
        Compiled::Cycle(cycle) => cache.engine_with(obs, cycle.circuit(), &noise),
        Compiled::Detect(ca, _) => cache.engine_with(obs, &ca.checked.circuit, &noise),
    };

    let mut pooled_failures = 0u64;
    let mut pooled_trials = 0u64;
    let mut pooled_strata: Vec<StratumOutcome> = Vec::new();
    let mut executed_words = 0u64;
    let mut estimator_name = "";
    let mut backend_name = "";

    let mut last: Option<IntervalUpdate> = None;
    let mut rounds_run = 0u32;
    for round in 1..=spec.max_rounds {
        let opts = McOptions::new(spec.trials_per_round)
            .seed(spec.seed)
            .salt(round_salt(round))
            .threads(threads.max(1))
            .backend(spec.backend)
            .estimator(spec.estimator)
            .width(spec.width);
        let outcome = match &compiled {
            Compiled::Concat(mc) => engine.estimate_obs(&mc.trial(), &opts, obs),
            Compiled::Cycle(cycle) => engine.estimate_obs(cycle, &opts, obs),
            Compiled::Detect(ca, mode) => {
                obs.incr(rft_obs::Metric::DetectEstimates);
                engine.estimate_obs(&ca.trial(*mode), &opts, obs)
            }
        };
        rounds_run = round;
        executed_words += outcome.executed_words;
        estimator_name = outcome.estimator;
        backend_name = outcome.backend;
        if outcome.strata.is_empty() {
            pooled_failures += outcome.failures;
            pooled_trials += outcome.trials;
        } else {
            pool_strata(&mut pooled_strata, &outcome.strata);
        }

        let estimate = if pooled_strata.is_empty() {
            ErrorEstimate::from_counts(pooled_failures, pooled_trials.max(1))
        } else {
            ErrorEstimate::from_strata(&pooled_strata)
        };
        let rel_half_width =
            (estimate.rate > 0.0).then(|| (estimate.high - estimate.low) / (2.0 * estimate.rate));
        let converged = matches!(
            (rel_half_width, spec.target_rel_half_width),
            (Some(w), Some(t)) if w <= t
        );
        let update = IntervalUpdate {
            kind: "interval".into(),
            round,
            max_rounds: spec.max_rounds,
            estimate,
            rel_half_width,
            executed_words,
            converged,
            done: converged || round == spec.max_rounds,
        };
        let control = on_update(&update);
        let done = update.done;
        last = Some(update);
        if control == JobControl::Cancel {
            return Ok(None);
        }
        if done {
            break;
        }
    }

    let last = last.expect("max_rounds >= 1 ran at least one round");
    Ok(Some(FinalUpdate {
        kind: "final".into(),
        schema_version: JOB_SCHEMA_VERSION,
        record: record.clone(),
        result: JobResult {
            rounds: rounds_run,
            estimate: last.estimate,
            rel_half_width: last.rel_half_width,
            converged: last.converged,
            executed_words,
            estimator: estimator_name.to_string(),
            backend: backend_name.to_string(),
        },
    }))
}

/// Runs `record` to completion (no streaming consumer) — the offline
/// `repro replay` entry point.
///
/// # Errors
///
/// Returns a client-facing message when the record fails validation.
pub fn run_job(
    cache: &CompileCache,
    obs: &Collector,
    record: &JobRecord,
    threads: usize,
) -> Result<FinalUpdate, String> {
    run_job_streaming(cache, obs, record, threads, |_| JobControl::Continue)
        .map(|done| done.expect("uncancellable job ran to completion"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rft_revsim::wire::w;

    fn record(spec: JobSpec) -> JobRecord {
        JobRecord::new(spec)
    }

    #[test]
    fn job_record_round_trips_through_json() {
        let rec = record(JobSpec::quick());
        let json = serde_json::to_string(&rec).expect("serialize");
        let back: JobRecord = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, rec);
        back.validate().expect("valid record");
    }

    #[test]
    fn deadline_field_is_additive() {
        // A spec without a deadline serializes exactly as it did before
        // the field existed: no `deadline_ms` key at all.
        let rec = record(JobSpec::quick());
        let json = serde_json::to_string(&rec).expect("serialize");
        assert!(
            !json.contains("deadline_ms"),
            "no-deadline records must not mention the field: {json}"
        );

        // Old-shaped JSON (no deadline_ms key) still parses.
        let back: JobRecord = serde_json::from_str(&json).expect("old shape parses");
        assert_eq!(back, rec);

        // A spec with a deadline round-trips.
        let mut spec = JobSpec::quick();
        spec.deadline_ms = Some(2500);
        let rec = record(spec);
        rec.validate().expect("valid");
        let json = serde_json::to_string(&rec).expect("serialize");
        assert!(json.contains("\"deadline_ms\":2500"), "json: {json}");
        let back: JobRecord = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, rec);

        // A completed record with a deadline replays identically to the
        // same job without one: replay ignores wall-clock entirely.
        let mut with = JobSpec::quick();
        with.deadline_ms = Some(60_000);
        let mut without = JobSpec::quick();
        without.deadline_ms = None;
        let a = run_job(
            &CompileCache::new(),
            &Collector::disabled(),
            &record(with),
            1,
        )
        .expect("run");
        let b = run_job(
            &CompileCache::new(),
            &Collector::disabled(),
            &record(without),
            1,
        )
        .expect("run");
        assert_eq!(a.result, b.result, "deadline never changes the answer");
    }

    #[test]
    fn cancelled_update_serializes_with_reason() {
        let line = CancelledUpdate::new("deadline exceeded", 3, 8).to_line();
        assert!(line.contains("\"kind\":\"cancelled\""), "line: {line}");
        assert!(line.contains("\"reason\":\"deadline exceeded\""), "{line}");
        assert!(line.contains("\"round\":3"), "line: {line}");
        let back: CancelledUpdate = serde_json::from_str(&line).expect("round-trip");
        assert_eq!(back.to_line(), line);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut bad = JobSpec::quick();
        bad.trials_per_round = 0;
        assert!(bad.validate().is_err());

        let mut bad = JobSpec::quick();
        bad.max_rounds = MAX_ROUNDS + 1;
        assert!(bad.validate().is_err());

        let mut bad = JobSpec::quick();
        bad.noise = NoiseSpec::Uniform { g: 1.5 };
        assert!(bad.validate().is_err());

        let mut bad = JobSpec::quick();
        bad.circuit = CircuitSpec::Concat {
            level: 0,
            gate: Gate::Not(w(0)),
            cycles: 1,
        };
        assert!(bad.validate().is_err());

        let mut bad = JobSpec::quick();
        bad.circuit = CircuitSpec::Cycle {
            gate: Gate::Not(w(0)),
        };
        assert!(bad.validate().is_err(), "cycle gate must touch 0,1,2");

        let mut bad = JobSpec::quick();
        bad.target_rel_half_width = Some(0.0);
        assert!(bad.validate().is_err());

        let mut bad = JobSpec::quick();
        bad.deadline_ms = Some(0);
        assert!(bad.validate().is_err(), "zero deadline");

        let mut bad = JobSpec::quick();
        bad.circuit = CircuitSpec::DetectAdder {
            width: 0,
            kind: AdderKind::Ripple,
            mode: TrialMode::Detected,
        };
        assert!(bad.validate().is_err(), "zero-width adder");

        let mut bad = JobSpec::quick();
        bad.circuit = CircuitSpec::DetectAdder {
            width: 4,
            kind: AdderKind::PlainRipple,
            mode: TrialMode::Wrong,
        };
        assert!(bad.validate().is_err(), "plain ripple has no checker");

        let mut bad = JobSpec::quick();
        bad.circuit = CircuitSpec::DetectAdder {
            width: 4,
            kind: AdderKind::CarrySkip { block: 0 },
            mode: TrialMode::Detected,
        };
        assert!(bad.validate().is_err(), "zero carry-skip block");

        let mut rec = record(JobSpec::quick());
        rec.schema_version = 99;
        assert!(rec.validate().is_err());
    }

    #[test]
    fn replay_is_bit_identical_at_any_thread_count() {
        let mut spec = JobSpec::quick();
        spec.max_rounds = 3;
        let rec = record(spec);
        let a = run_job(&CompileCache::new(), &Collector::disabled(), &rec, 1).expect("run");
        let b = run_job(&CompileCache::new(), &Collector::disabled(), &rec, 4).expect("run");
        assert_eq!(a, b);
        assert_eq!(a.to_line(), b.to_line(), "canonical lines byte-identical");
    }

    #[test]
    fn streamed_final_round_equals_offline_replay() {
        let mut spec = JobSpec::quick();
        spec.max_rounds = 4;
        spec.target_rel_half_width = Some(0.05);
        let rec = record(spec);
        let cache = CompileCache::new();
        let obs = Collector::disabled();
        let mut updates = Vec::new();
        let streamed = run_job_streaming(&cache, &obs, &rec, 2, |u| {
            updates.push(u.clone());
            JobControl::Continue
        })
        .expect("run")
        .expect("completed");
        assert!(!updates.is_empty());
        assert!(updates.last().expect("nonempty").done);
        // Pooled trials grow monotonically round over round.
        for pair in updates.windows(2) {
            assert!(pair[1].estimate.trials > pair[0].estimate.trials);
            assert!(!pair[0].done);
        }
        let replayed = run_job(&CompileCache::new(), &obs, &rec, 1).expect("replay");
        assert_eq!(streamed.to_line(), replayed.to_line());
    }

    #[test]
    fn cancel_between_rounds_stops_the_job() {
        let mut spec = JobSpec::quick();
        spec.max_rounds = 8;
        let rec = record(spec);
        let mut seen = 0u32;
        let out = run_job_streaming(
            &CompileCache::new(),
            &Collector::disabled(),
            &rec,
            1,
            |_| {
                seen += 1;
                if seen == 2 {
                    JobControl::Cancel
                } else {
                    JobControl::Continue
                }
            },
        )
        .expect("valid record");
        assert!(out.is_none(), "cancelled jobs produce no final update");
        assert_eq!(seen, 2, "no rounds run after a cancel");
    }

    #[test]
    fn stratified_jobs_pool_strata_and_replay_identically() {
        let mut spec = JobSpec::quick();
        spec.noise = NoiseSpec::Uniform { g: 1e-3 };
        spec.estimator = Estimator::DEFAULT_STRATIFIED;
        spec.trials_per_round = 2048;
        spec.max_rounds = 3;
        let rec = record(spec);
        let a = run_job(&CompileCache::new(), &Collector::disabled(), &rec, 1).expect("run");
        assert_eq!(a.result.estimator, "stratified");
        let b = run_job(&CompileCache::new(), &Collector::disabled(), &rec, 3).expect("run");
        assert_eq!(a.to_line(), b.to_line());
    }

    #[test]
    fn detect_jobs_stream_coverage_and_replay_identically() {
        // A Detected-mode job streams the retry/coverage rate; an
        // UndetectedWrong-mode job at the same seed streams the residual.
        // Both replay bit-identically at any thread count, and the
        // residual never exceeds the raw wrong rate.
        let job = |mode| {
            let mut spec = JobSpec::quick();
            spec.circuit = CircuitSpec::DetectAdder {
                width: 4,
                kind: AdderKind::CarrySkip { block: 2 },
                mode,
            };
            spec.noise = NoiseSpec::Uniform { g: 2e-3 };
            spec.trials_per_round = 2048;
            spec.max_rounds = 2;
            record(spec)
        };
        let detected = job(TrialMode::Detected);
        let a = run_job(&CompileCache::new(), &Collector::disabled(), &detected, 1).expect("run");
        let b = run_job(&CompileCache::new(), &Collector::disabled(), &detected, 4).expect("run");
        assert_eq!(a.to_line(), b.to_line(), "replay is thread-invariant");
        assert!(a.result.estimate.failures > 0, "noise must trip the flag");

        let wrong = run_job(
            &CompileCache::new(),
            &Collector::disabled(),
            &job(TrialMode::Wrong),
            1,
        )
        .expect("run");
        let resid = run_job(
            &CompileCache::new(),
            &Collector::disabled(),
            &job(TrialMode::UndetectedWrong),
            1,
        )
        .expect("run");
        assert!(resid.result.estimate.failures <= wrong.result.estimate.failures);
    }

    #[test]
    fn cycle_jobs_run_and_replay() {
        let mut spec = JobSpec::quick();
        spec.circuit = CircuitSpec::Cycle {
            gate: Gate::Toffoli {
                controls: [w(0), w(1)],
                target: w(2),
            },
        };
        spec.trials_per_round = 1024;
        spec.max_rounds = 2;
        let rec = record(spec);
        let a = run_job(&CompileCache::new(), &Collector::disabled(), &rec, 1).expect("run");
        let b = run_job(&CompileCache::new(), &Collector::disabled(), &rec, 2).expect("run");
        assert_eq!(a.to_line(), b.to_line());
        assert!(a.result.estimate.trials >= 2048);
    }
}
