//! Bounded, cost-aware caching: the eviction policy behind the process-wide
//! [`CompileCache`](crate::experiment::CompileCache).
//!
//! A long-lived server process cannot cache compiled artifacts unboundedly
//! — every distinct `(circuit, noise)` point a client ever asked about
//! would stay resident forever. [`CostLru`] bounds the cache by **bytes**
//! and evicts by the *GreedyDual-Size* policy, which weighs the two
//! quantities the obs layer already measures per artifact: its resident
//! size in bytes and the nanoseconds it took to compile. Every entry
//! carries a priority
//!
//! ```text
//! H(e) = L + recompile_nanos(e) / bytes(e)
//! ```
//!
//! where `L` is a monotone "inflation clock" that jumps to the priority of
//! each victim as it is evicted. Touching an entry (hit or insert)
//! recomputes its `H` against the current clock, so recently used entries
//! float above the clock while untouched ones sink toward it — the LRU
//! component. Among comparably stale entries the one that is *cheapest to
//! recompute per byte retained* is evicted first — the cost component: a
//! large artifact that recompiles in microseconds yields its bytes before
//! a small one that took milliseconds to build.
//!
//! The policy is deterministic given the sequence of `(bytes, cost)`
//! inputs: priority ties break toward the least recently touched entry
//! (then the oldest insertion), never on map iteration order.

use std::collections::HashMap;
use std::hash::Hash;

/// One cached entry's bookkeeping.
#[derive(Debug)]
struct Entry<V> {
    value: V,
    bytes: usize,
    cost_nanos: u64,
    /// GreedyDual-Size priority `H` at the last touch.
    priority: f64,
    /// Logical tick of the last touch (tie-break: LRU).
    last_used: u64,
}

/// A byte-bounded map with cost-based (GreedyDual-Size) LRU eviction.
///
/// Values are expected to be cheaply clonable handles (`Arc`s): a `get`
/// hit clones the value out, so an evicted artifact stays alive for
/// whoever still holds it — eviction only drops the cache's reference.
#[derive(Debug)]
pub struct CostLru<K, V> {
    entries: HashMap<K, Entry<V>>,
    byte_budget: Option<usize>,
    total_bytes: usize,
    /// GreedyDual-Size inflation clock `L`.
    clock: f64,
    /// Logical touch counter.
    tick: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> CostLru<K, V> {
    /// An empty cache bounded to `byte_budget` bytes (`None` =
    /// unbounded — the pre-server behaviour).
    pub fn new(byte_budget: Option<usize>) -> Self {
        CostLru {
            entries: HashMap::new(),
            byte_budget,
            total_bytes: 0,
            clock: 0.0,
            tick: 0,
            evictions: 0,
        }
    }

    /// The configured byte budget (`None` = unbounded).
    pub fn byte_budget(&self) -> Option<usize> {
        self.byte_budget
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate bytes currently held.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Entries evicted over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Whether `key` is currently cached (does not touch the entry).
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Iterates over the cached keys (no touch).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.keys()
    }

    /// Looks `key` up, refreshing its priority on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let (clock, tick) = (self.clock, self.tick);
        self.entries.get_mut(key).map(|e| {
            e.priority = clock + value_density(e.cost_nanos, e.bytes);
            e.last_used = tick;
            e.value.clone()
        })
    }

    /// Inserts `value` under `key` with its measured size and recompile
    /// cost, evicting lower-priority entries if the byte budget is now
    /// exceeded, and returns the cached value plus how many entries were
    /// evicted.
    ///
    /// If `key` is already present the **existing** value is returned
    /// untouched (first insert wins — the semantics racing duplicate
    /// compiles rely on). The just-inserted entry is never its own
    /// victim, so a single artifact larger than the whole budget still
    /// caches (and evicts everything else).
    pub fn insert(&mut self, key: K, value: V, bytes: usize, cost_nanos: u64) -> (V, usize) {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(&key) {
            e.priority = self.clock + value_density(e.cost_nanos, e.bytes);
            e.last_used = self.tick;
            return (e.value.clone(), 0);
        }
        self.entries.insert(
            key.clone(),
            Entry {
                value: value.clone(),
                bytes,
                cost_nanos,
                priority: self.clock + value_density(cost_nanos, bytes),
                last_used: self.tick,
            },
        );
        self.total_bytes += bytes;
        let evicted = self.evict_over_budget(&key);
        (value, evicted)
    }

    /// Evicts minimum-priority entries (never `keep`) until the budget
    /// holds; returns how many were evicted.
    fn evict_over_budget(&mut self, keep: &K) -> usize {
        let Some(budget) = self.byte_budget else {
            return 0;
        };
        let mut evicted = 0;
        while self.total_bytes > budget && self.entries.len() > 1 {
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| *k != keep)
                .min_by(|(_, a), (_, b)| {
                    a.priority
                        .total_cmp(&b.priority)
                        .then(a.last_used.cmp(&b.last_used))
                })
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            let entry = self
                .entries
                .remove(&victim)
                .expect("victim chosen from live entries");
            self.total_bytes -= entry.bytes;
            // The clock inflates to the victim's priority: everything
            // cached before this point must be re-touched to outrank
            // future insertions.
            self.clock = self.clock.max(entry.priority);
            self.evictions += 1;
            evicted += 1;
        }
        evicted
    }
}

/// Recompile nanoseconds per byte retained — the GreedyDual-Size value
/// density. Zero-byte or zero-cost measurements are clamped so a bogus
/// input can never produce an un-evictable (infinite-priority) entry.
fn value_density(cost_nanos: u64, bytes: usize) -> f64 {
    (cost_nanos.max(1) as f64) / (bytes.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// KiB-sized synthetic entries: (bytes, cost) chosen so the value
    /// densities are wide apart and the eviction order is unambiguous.
    fn filled() -> CostLru<&'static str, u64> {
        // Budget 10_000 bytes.
        let mut lru = CostLru::new(Some(10_000));
        // density 1000/4000 = 0.25 ns/byte — cheapest to recompute.
        lru.insert("cheap_big", 1, 4_000, 1_000);
        // density 1_000_000/4000 = 250 ns/byte.
        lru.insert("dear_big", 2, 4_000, 1_000_000);
        // density 50_000/1000 = 50 ns/byte.
        lru.insert("mid_small", 3, 1_000, 50_000);
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.total_bytes(), 9_000);
        lru
    }

    #[test]
    fn eviction_prefers_cheap_per_byte_entries() {
        let mut lru = filled();
        // +4000 bytes → 13_000 > 10_000: must evict. "cheap_big" has by
        // far the lowest priority (lowest recompile-nanos per byte).
        lru.insert("newcomer", 4, 4_000, 100_000);
        assert!(!lru.contains(&"cheap_big"), "lowest-density entry evicted");
        assert!(lru.contains(&"dear_big"));
        assert!(lru.contains(&"mid_small"));
        assert!(lru.contains(&"newcomer"));
        assert_eq!(lru.evictions(), 1);
        assert_eq!(lru.total_bytes(), 9_000);
    }

    #[test]
    fn recency_outranks_density_after_a_touch() {
        // Densities 500 < 600 < 700 < 800 ns/byte, all 1000-byte entries,
        // budget 3 entries.
        let mut lru = CostLru::new(Some(3_000));
        lru.insert("sacrifice", 1, 1_000, 500_000);
        lru.insert("low", 2, 1_000, 600_000);
        lru.insert("high", 3, 1_000, 700_000);
        // Overflow: "sacrifice" (H = 500) is evicted and the clock
        // inflates to 500, stranding the untouched survivors at
        // H = 600 ("low") and H = 700 ("high").
        lru.insert("pump", 4, 1_000, 800_000);
        assert_eq!(lru.evictions(), 1);
        assert!(!lru.contains(&"sacrifice"));
        // Touch "low": rebuilt against the inflated clock, H = 500 + 600
        // = 1100 — now *above* the stale, denser "high" (700).
        assert_eq!(lru.get(&"low"), Some(2));
        lru.insert("late", 5, 1_000, 650_000);
        assert!(
            !lru.contains(&"high"),
            "stale entry evicted despite density"
        );
        assert!(lru.contains(&"low"), "recently touched entry kept");
    }

    #[test]
    fn priority_ties_break_least_recently_used() {
        let mut lru = CostLru::new(Some(2_000));
        // Identical density and size: pure LRU.
        lru.insert("a", 1, 1_000, 10_000);
        lru.insert("b", 2, 1_000, 10_000);
        assert_eq!(lru.get(&"a"), Some(1)); // "b" is now the LRU entry
        lru.insert("c", 3, 1_000, 10_000);
        assert!(!lru.contains(&"b"));
        assert!(lru.contains(&"a"));
        assert!(lru.contains(&"c"));
    }

    #[test]
    fn oversized_single_entry_still_caches() {
        let mut lru = CostLru::new(Some(100));
        lru.insert("huge", 1, 1_000_000, 5);
        assert!(lru.contains(&"huge"), "sole entry is never its own victim");
        // The next insert evicts it (it is the only candidate).
        lru.insert("tiny", 2, 10, 5);
        assert!(!lru.contains(&"huge"));
        assert!(lru.contains(&"tiny"));
    }

    #[test]
    fn duplicate_insert_keeps_the_first_value() {
        let mut lru: CostLru<&str, u64> = CostLru::new(None);
        let (v, _) = lru.insert("k", 1, 100, 100);
        assert_eq!(v, 1);
        let (v, evicted) = lru.insert("k", 2, 100, 100);
        assert_eq!(v, 1, "racing duplicate compile: first insert wins");
        assert_eq!(evicted, 0);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.total_bytes(), 100, "duplicate adds no bytes");
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let mut lru = CostLru::new(None);
        for i in 0..1_000u64 {
            lru.insert(i, i, 1_000_000, 1);
        }
        assert_eq!(lru.len(), 1_000);
        assert_eq!(lru.evictions(), 0);
    }
}
