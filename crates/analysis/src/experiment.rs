//! The first-class experiment API: trait, registry, shared compile cache
//! and the cross-point parallel runner.
//!
//! Every reproduction (one per table/figure of the paper) implements
//! [`Experiment`]: a named, tagged unit that consumes an
//! [`ExperimentContext`] and returns a schema-versioned
//! [`Report`] artifact. The [`registry`] replaces ad-hoc dispatch — the
//! `repro` binary, tests and library consumers all discover experiments
//! through it, so adding a workload is: implement the trait, add one line
//! to [`REGISTRY`].
//!
//! The context carries three things:
//!
//! - the [`RunConfig`] budget (trials, seed, threads, backend/estimator
//!   policy) every Monte-Carlo call site derives its options from;
//! - a keyed [`CompileCache`] so compile-once artifacts — concatenated
//!   [`ConcatMc`] programs and [`Engine`]s — are built once per process
//!   even when several experiments (or several sweep points) need the
//!   same one;
//! - the cross-point scheduler ([`ExperimentContext::run_parallel`] /
//!   [`ExperimentContext::sweep`]): independent work items are pulled
//!   from a shared queue by a small worker pool, splitting the global
//!   thread budget between outer (cross-point) and inner (within-point)
//!   parallelism.
//!
//! **Determinism.** Reports are bit-identical for a fixed seed regardless
//! of the thread budget or schedule: every Monte-Carlo word derives its
//! RNG stream from `(seed, global word index)` (see
//! [`rft_revsim::engine`]), the scheduler only reorders *execution*, and
//! results are collected by item index. The
//! `tests/experiment_api.rs` suite pins this.

use crate::cache::CostLru;
use crate::experiments::RunConfig;
use crate::montecarlo::ConcatMc;
use crate::report::{Report, SCHEMA_VERSION};
use crate::stats::ErrorEstimate;
use crate::sweep::SweepPoint;
use rft_core::ftcheck::CycleSpec;
use rft_obs::{Collector, Hist, Metric};
use rft_revsim::circuit::Circuit;
use rft_revsim::engine::{Engine, McOptions};
use rft_revsim::gate::Gate;
use rft_revsim::noise::NoiseModel;
use rft_revsim::op::Op;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One reproduction of a table, figure or analysis of the paper.
///
/// Implementations are stateless unit structs registered in [`REGISTRY`];
/// all run state flows through the [`ExperimentContext`].
pub trait Experiment: Sync {
    /// Stable registry id (the CLI name, e.g. `"threshold"`).
    fn id(&self) -> &'static str;

    /// One-line human-readable title.
    fn title(&self) -> &'static str;

    /// Classification tags (e.g. `"mc"`, `"exact"`, `"sweep"`).
    fn tags(&self) -> &'static [&'static str];

    /// Runs the experiment under `ctx`'s budget, returning the artifact.
    fn run(&self, ctx: &mut ExperimentContext) -> Report;
}

// ---------------------------------------------------------------------------
// Compile cache
// ---------------------------------------------------------------------------

/// Keyed cache of compile-once artifacts, shared across experiments,
/// sweep points and served estimation jobs.
///
/// One bounded store holds both artifact kinds: concatenated programs
/// ([`ConcatMc`], keyed by `(level, gate, cycles)`) and [`Engine`]s
/// (keyed by the circuit contents plus the per-op fault probabilities the
/// noise model assigns to it — the two inputs that fully determine an
/// engine). The store is behind a mutex taken only around lookup/insert;
/// the artifacts themselves are shared via [`Arc`] and used lock-free.
///
/// **Bounding.** By default the cache is unbounded (the short-lived
/// `repro` behaviour). A long-lived server constructs it with
/// [`CompileCache::bounded`]: entries then carry their approximate
/// resident bytes ([`Engine::approx_bytes`], [`ConcatMc::approx_bytes`])
/// and measured compile nanoseconds (the same quantity the obs layer's
/// `cache.compile` span records), and the [`CostLru`] GreedyDual-Size
/// policy evicts the entries cheapest to recompile per byte retained once
/// the byte budget is exceeded. Eviction only drops the cache's
/// reference — in-flight users of an evicted `Arc` are unaffected — and
/// the monotonic hit/miss/eviction counters survive it.
///
/// Hit/miss accounting goes through the shared metrics registry
/// ([`rft_obs`]): lookups bump `cache.hits` / `cache.misses` on the
/// caller's [`Collector`] (defaulting to the cache's own), so
/// per-experiment child collectors attribute cache traffic to the
/// experiment that caused it while the cache-level [`CompileCache::hits`]
/// / [`CompileCache::misses`] read the aggregate.
#[derive(Debug)]
pub struct CompileCache {
    store: Mutex<CostLru<CacheKey, CacheValue>>,
    obs: Collector,
}

impl Default for CompileCache {
    fn default() -> Self {
        CompileCache {
            store: Mutex::new(CostLru::new(None)),
            obs: Collector::default(),
        }
    }
}

/// Unified key over both cached artifact kinds.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CacheKey {
    Program(u8, Gate, usize),
    Engine(EngineKey),
}

/// Unified value: cheap-to-clone shared handles.
#[derive(Debug, Clone)]
enum CacheValue {
    Program(Arc<ConcatMc>),
    Engine(Arc<Engine>),
}

/// Cache key of an engine: the circuit contents and the per-op fault
/// probabilities `noise` assigns to it — the two inputs that fully
/// determine the compiled artifact, held verbatim so a lookup can never
/// alias two different engines (a fingerprint-only key could collide
/// undetectably). A few kilobytes per cached engine, of which there are
/// dozens per process.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct EngineKey {
    n_wires: usize,
    ops: Vec<Op>,
    prob_bits: Vec<u64>,
}

impl EngineKey {
    fn new<N: NoiseModel + ?Sized>(circuit: &Circuit, noise: &N) -> Self {
        EngineKey {
            n_wires: circuit.n_wires(),
            ops: circuit.ops().to_vec(),
            prob_bits: circuit
                .ops()
                .iter()
                .map(|op| noise.fault_probability(op).to_bits())
                .collect(),
        }
    }
}

impl CompileCache {
    /// Creates an empty unbounded cache with its own live metrics
    /// collector.
    pub fn new() -> Self {
        CompileCache::default()
    }

    /// Creates an empty cache bounded to approximately `byte_budget`
    /// bytes of compiled artifacts (cost-based LRU eviction past it),
    /// with its own live metrics collector.
    pub fn bounded(byte_budget: usize) -> Self {
        CompileCache {
            store: Mutex::new(CostLru::new(Some(byte_budget))),
            obs: Collector::default(),
        }
    }

    /// Creates an empty unbounded cache recording into `obs` (how the
    /// runner wires every cache into the run-wide collector).
    pub fn with_collector(obs: Collector) -> Self {
        CompileCache::with_collector_and_budget(obs, None)
    }

    /// Creates an empty cache recording into `obs`, bounded to
    /// `byte_budget` bytes when given (how the serve daemon constructs
    /// its process-wide cache).
    pub fn with_collector_and_budget(obs: Collector, byte_budget: Option<usize>) -> Self {
        CompileCache {
            store: Mutex::new(CostLru::new(byte_budget)),
            obs,
        }
    }

    /// The collector cache-level lookups record into.
    pub fn collector(&self) -> &Collector {
        &self.obs
    }

    /// The configured byte budget (`None` = unbounded).
    pub fn byte_budget(&self) -> Option<usize> {
        self.store.lock().expect("cache poisoned").byte_budget()
    }

    /// The compiled `cycles`-cycle program of `gate` at concatenation
    /// `level`, building it on first use.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid inputs as [`ConcatMc::new`].
    pub fn concat(&self, level: u8, gate: Gate, cycles: usize) -> Arc<ConcatMc> {
        self.concat_with(&self.obs, level, gate, cycles)
    }

    /// [`CompileCache::concat`] recording the lookup into `obs` (pass a
    /// per-experiment child collector for attribution; bumps propagate
    /// to the cache-wide aggregate through the parent chain).
    pub fn concat_with(
        &self,
        obs: &Collector,
        level: u8,
        gate: Gate,
        cycles: usize,
    ) -> Arc<ConcatMc> {
        let key = CacheKey::Program(level, gate, cycles);
        if let Some(CacheValue::Program(mc)) = self.store.lock().expect("cache poisoned").get(&key)
        {
            obs.incr(Metric::CacheHits);
            return mc;
        }
        // Compile outside the lock (level-2 programs are thousands of ops);
        // a racing duplicate compile is tolerated — the first insert wins
        // and the loser's artifact is dropped.
        obs.incr(Metric::CacheMisses);
        let start = Instant::now();
        let mc = {
            let _span = obs.span_metric("cache.compile", Metric::CompileNanos);
            Arc::new(ConcatMc::new(level, gate, cycles))
        };
        let cost_nanos = start.elapsed().as_nanos() as u64;
        let bytes = mc.approx_bytes();
        let (value, evicted) = self.store.lock().expect("cache poisoned").insert(
            key,
            CacheValue::Program(mc),
            bytes,
            cost_nanos,
        );
        self.publish_store_stats(obs, evicted);
        match value {
            CacheValue::Program(mc) => mc,
            CacheValue::Engine(_) => unreachable!("program key always maps to a program"),
        }
    }

    /// The [`Engine`] of `circuit` bound to `noise`, compiling on first
    /// use. Cached engines also share their lazily built fault-count
    /// distribution (the stratified estimator's Poisson-binomial tables),
    /// so repeated rare-event estimates on one circuit pay for it once.
    ///
    /// # Panics
    ///
    /// Panics if the model reports a probability outside `[0, 1]`.
    pub fn engine<N: NoiseModel + ?Sized>(&self, circuit: &Circuit, noise: &N) -> Arc<Engine> {
        self.engine_with(&self.obs, circuit, noise)
    }

    /// [`CompileCache::engine`] recording the lookup into `obs`.
    pub fn engine_with<N: NoiseModel + ?Sized>(
        &self,
        obs: &Collector,
        circuit: &Circuit,
        noise: &N,
    ) -> Arc<Engine> {
        let key = CacheKey::Engine(EngineKey::new(circuit, noise));
        if let Some(CacheValue::Engine(e)) = self.store.lock().expect("cache poisoned").get(&key) {
            obs.incr(Metric::CacheHits);
            return e;
        }
        obs.incr(Metric::CacheMisses);
        obs.incr(Metric::EngineCompiles);
        let start = Instant::now();
        let engine = {
            let _span = obs.span_metric("cache.compile", Metric::CompileNanos);
            Arc::new(Engine::compile(circuit, noise))
        };
        let cost_nanos = start.elapsed().as_nanos() as u64;
        let bytes = engine.approx_bytes();
        let (value, evicted) = self.store.lock().expect("cache poisoned").insert(
            key,
            CacheValue::Engine(engine),
            bytes,
            cost_nanos,
        );
        self.publish_store_stats(obs, evicted);
        match value {
            CacheValue::Engine(e) => e,
            CacheValue::Program(_) => unreachable!("engine key always maps to an engine"),
        }
    }

    /// Publishes the store-level gauges (and eviction count) after an
    /// insert changed them.
    fn publish_store_stats(&self, obs: &Collector, evicted: usize) {
        if evicted > 0 {
            obs.add(Metric::CacheEvictions, evicted as u64);
        }
        let store = self.store.lock().expect("cache poisoned");
        let mut programs = 0usize;
        let mut engines = 0usize;
        for key in store.keys() {
            match key {
                CacheKey::Program(..) => programs += 1,
                CacheKey::Engine(_) => engines += 1,
            }
        }
        obs.set_gauge(rft_obs::Gauge::CachedPrograms, programs as f64);
        obs.set_gauge(rft_obs::Gauge::CachedEngines, engines as f64);
        obs.set_gauge(rft_obs::Gauge::CacheBytes, store.total_bytes() as f64);
    }

    /// Cache hits so far (read from the metrics registry: `cache.hits`).
    pub fn hits(&self) -> u64 {
        self.obs.get(Metric::CacheHits)
    }

    /// Cache misses (i.e. compiles) so far (`cache.misses`).
    pub fn misses(&self) -> u64 {
        self.obs.get(Metric::CacheMisses)
    }

    /// Entries evicted by the byte-budget policy so far.
    pub fn evictions(&self) -> u64 {
        self.store.lock().expect("cache poisoned").evictions()
    }

    /// Approximate bytes of compiled artifacts currently cached.
    pub fn cached_bytes(&self) -> usize {
        self.store.lock().expect("cache poisoned").total_bytes()
    }

    /// Number of distinct compiled programs currently cached.
    pub fn programs_cached(&self) -> usize {
        self.store
            .lock()
            .expect("cache poisoned")
            .keys()
            .filter(|k| matches!(k, CacheKey::Program(..)))
            .count()
    }

    /// Number of distinct compiled engines currently cached.
    pub fn engines_cached(&self) -> usize {
        self.store
            .lock()
            .expect("cache poisoned")
            .keys()
            .filter(|k| matches!(k, CacheKey::Engine(_)))
            .count()
    }
}

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

/// Everything an [`Experiment`] needs at run time: the budget, the shared
/// compile cache, the instrumentation collector, and the cross-point
/// scheduler.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    cfg: RunConfig,
    cache: Arc<CompileCache>,
    obs: Collector,
}

impl ExperimentContext {
    /// A context over `cfg` with its own fresh compile cache and
    /// collector.
    pub fn new(cfg: RunConfig) -> Self {
        let obs = Collector::default();
        ExperimentContext {
            cfg,
            cache: Arc::new(CompileCache::with_collector(obs.clone())),
            obs,
        }
    }

    /// A context over `cfg` sharing an existing `cache` (how the runner
    /// lets concurrent experiments reuse each other's artifacts). The
    /// context records into the cache's collector.
    pub fn with_cache(cfg: RunConfig, cache: Arc<CompileCache>) -> Self {
        let obs = cache.collector().clone();
        ExperimentContext { cfg, cache, obs }
    }

    /// [`ExperimentContext::with_cache`] recording into an explicit
    /// collector — typically a [`Collector::child`] of the cache's, so
    /// the experiment gets its own attribution while aggregates still
    /// flow up.
    pub fn with_cache_and_collector(
        cfg: RunConfig,
        cache: Arc<CompileCache>,
        obs: Collector,
    ) -> Self {
        ExperimentContext { cfg, cache, obs }
    }

    /// The Monte-Carlo budget.
    pub fn cfg(&self) -> &RunConfig {
        &self.cfg
    }

    /// Engine options lowered from the budget (see [`RunConfig::options`]).
    pub fn options(&self) -> McOptions {
        self.cfg.options()
    }

    /// The shared compile cache.
    pub fn cache(&self) -> &CompileCache {
        &self.cache
    }

    /// This context's instrumentation collector.
    pub fn obs(&self) -> &Collector {
        &self.obs
    }

    /// Cached [`CompileCache::concat`].
    pub fn concat(&self, level: u8, gate: Gate, cycles: usize) -> Arc<ConcatMc> {
        self.cache.concat_with(&self.obs, level, gate, cycles)
    }

    /// [`ConcatMc::estimate`] through the cached engine.
    pub fn estimate_concat<N: NoiseModel + ?Sized>(
        &self,
        mc: &ConcatMc,
        noise: &N,
        opts: &McOptions,
    ) -> ErrorEstimate {
        self.cache
            .engine_with(&self.obs, mc.program().circuit(), noise)
            .estimate_obs(&mc.trial(), opts, &self.obs)
            .into()
    }

    /// [`crate::montecarlo::estimate_cycle_error`] through the cached
    /// engine.
    pub fn estimate_cycle<N: NoiseModel + ?Sized>(
        &self,
        spec: &CycleSpec,
        noise: &N,
        opts: &McOptions,
    ) -> ErrorEstimate {
        self.cache
            .engine_with(&self.obs, spec.circuit(), noise)
            .estimate_obs(spec, opts, &self.obs)
            .into()
    }

    /// Runs `n` independent work items through the cross-point scheduler,
    /// returning `f`'s results **in item order**.
    ///
    /// Workers pull the next unstarted index from a shared queue (a
    /// finishing worker immediately steals the next item, so uneven
    /// per-item cost — the norm under adaptive/stratified Monte Carlo —
    /// cannot idle the pool). The global thread budget `cfg.threads` is
    /// split: `min(threads, n)` outer workers, each handing `f` a
    /// [`RunConfig`] whose `threads` is the per-item share — recomputed
    /// from the *live* worker count as each item starts, so when the
    /// queue drains and workers retire, the threads they free flow back
    /// to the items still running instead of idling through the tail.
    /// `f` must derive any randomness from its index (per-point seed
    /// salting), so results are schedule-independent; the scheduler only
    /// reorders execution.
    pub fn run_parallel<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &RunConfig) -> T + Sync,
    {
        let threads = self.cfg.threads.max(1);
        let outer = threads.min(n.max(1));
        let obs = &self.obs;
        if outer <= 1 || n <= 1 {
            let inner = self.cfg;
            let out = (0..n)
                .map(|i| {
                    obs.incr(Metric::SchedItems);
                    obs.observe(Hist::QueueDepth, (n - i - 1) as u64);
                    let _sp = obs.labeled_span_metric("sched.point", Metric::PointNanos, || {
                        format!("item {i}")
                    });
                    f(i, &inner)
                })
                .collect();
            if n > 0 {
                obs.observe(Hist::ItemsPerWorker, n as u64);
            }
            return out;
        }
        let next = AtomicUsize::new(0);
        let live = AtomicUsize::new(outer);
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..outer {
                scope.spawn(|| {
                    let mut pulled = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        obs.incr(Metric::SchedItems);
                        if pulled > 0 {
                            // Every pull past a worker's first is a steal:
                            // the worker finished its item and grabbed the
                            // next unstarted one instead of idling.
                            obs.incr(Metric::SchedSteals);
                        }
                        pulled += 1;
                        obs.observe(Hist::QueueDepth, n.saturating_sub(i + 1) as u64);
                        let share = RunConfig {
                            threads: (threads / live.load(Ordering::Relaxed).max(1)).max(1),
                            ..self.cfg
                        };
                        let _sp =
                            obs.labeled_span_metric("sched.point", Metric::PointNanos, || {
                                format!("item {i}")
                            });
                        let out = f(i, &share);
                        *results[i].lock().expect("result slot poisoned") = Some(out);
                    }
                    live.fetch_sub(1, Ordering::Relaxed);
                    obs.observe(Hist::ItemsPerWorker, pulled);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker filled every slot")
            })
            .collect()
    }

    /// Cross-point parallel sweep: like [`crate::sweep::sweep`] but the
    /// grid points run concurrently under the scheduler. `f` receives the
    /// rate and the per-point [`RunConfig`] share; results come back in
    /// grid order and are bit-identical to a serial sweep at the same
    /// seed.
    pub fn sweep<F>(&self, grid: &[f64], f: F) -> Vec<SweepPoint>
    where
        F: Fn(f64, &RunConfig) -> ErrorEstimate + Sync,
    {
        self.run_parallel(grid.len(), |i, cfg| SweepPoint {
            g: grid[i],
            estimate: f(grid[i], cfg),
        })
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Every registered experiment, in the order `repro` runs them by
/// default: structural/exact reproductions first, Monte-Carlo sweeps last.
pub static REGISTRY: [&dyn Experiment; 16] = [
    &crate::experiments::table1::Table1Experiment,
    &crate::experiments::fig2::Fig2Experiment,
    &crate::experiments::blowup::BlowupExperiment,
    &crate::experiments::levelreq::LevelReqExperiment,
    &crate::experiments::table2::Table2Experiment,
    &crate::experiments::nand::NandExperiment,
    &crate::experiments::advantage::AdvantageExperiment,
    &crate::experiments::detect::DetectCovExperiment,
    &crate::experiments::detect::DetectOverheadExperiment,
    &crate::experiments::ablation::AblationExperiment,
    &crate::experiments::local::LocalExperiment,
    &crate::experiments::entropy::EntropyExperiment,
    &crate::experiments::threshold::ThresholdExperiment,
    &crate::experiments::suppression::SuppressionExperiment,
    &crate::experiments::detect::DetectWidthExperiment,
    &crate::experiments::detect::DetectHybridExperiment,
];

/// The experiment registry.
pub fn registry() -> &'static [&'static dyn Experiment] {
    &REGISTRY
}

/// Looks an experiment up by id.
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    REGISTRY.iter().copied().find(|e| e.id() == id)
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// One experiment's outcome under [`run_experiments`]: the deterministic
/// [`Report`] plus per-run facts (wall time, executed words) that stay
/// out of the artifact.
#[derive(Debug)]
pub struct ExperimentRun {
    /// The experiment's registry id.
    pub id: &'static str,
    /// The experiment's title.
    pub title: &'static str,
    /// The deterministic report artifact.
    pub report: Report,
    /// Wall-clock time this experiment took.
    pub wall: Duration,
    /// Monte-Carlo words this experiment executed (0 when the runner has
    /// no live collector).
    pub executed_words: u64,
}

/// How [`run_experiments_with`] observes and narrates a run.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// The run-wide collector. Every experiment gets a
    /// [`Collector::child`] of this for attribution; the shared compile
    /// cache records into it directly. Defaults to disabled (record
    /// nothing).
    pub obs: Collector,
    /// Print per-experiment start/finish lines to stderr.
    pub progress: bool,
    /// Attach a [`crate::report::ResourceUsage`] section to every
    /// report, built from the experiment's child collector. Off by
    /// default: resources are non-deterministic (wall times), so golden
    /// artifacts are produced without them.
    pub attach_resources: bool,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            obs: Collector::disabled(),
            progress: false,
            attach_resources: false,
        }
    }
}

/// Runs `experiments` under one shared compile cache, concurrently up to
/// the thread budget, returning outcomes **in input order**.
///
/// The scheduler is the same work-stealing queue as
/// [`ExperimentContext::run_parallel`]: `min(threads, n)` workers each
/// pull the next unstarted experiment and run it with a proportional
/// share of the thread budget (so a machine-wide budget of `t` threads is
/// never oversubscribed by more than the rounding of `t / workers`).
/// Reports are bit-identical to a serial run at the same seed.
pub fn run_experiments(
    experiments: &[&'static dyn Experiment],
    cfg: &RunConfig,
) -> Vec<ExperimentRun> {
    run_experiments_with(experiments, cfg, &RunnerOptions::default())
}

/// [`run_experiments`] with explicit [`RunnerOptions`]: a run-wide
/// collector (spans land on one shared timeline, counters aggregate at
/// the root with per-experiment children), optional stderr progress
/// lines, and optional per-report resource sections.
pub fn run_experiments_with(
    experiments: &[&'static dyn Experiment],
    cfg: &RunConfig,
    opts: &RunnerOptions,
) -> Vec<ExperimentRun> {
    let cache = Arc::new(CompileCache::with_collector(opts.obs.clone()));
    let outer_ctx =
        ExperimentContext::with_cache_and_collector(*cfg, Arc::clone(&cache), opts.obs.clone());
    outer_ctx.run_parallel(experiments.len(), |i, share| {
        let exp = experiments[i];
        if opts.progress {
            eprintln!("[repro] {} ...", exp.id());
        }
        let child = opts.obs.child();
        let mut ctx =
            ExperimentContext::with_cache_and_collector(*share, Arc::clone(&cache), child.clone());
        let start = Instant::now();
        let mut report = {
            let _span = child.labeled_span("experiment", || exp.id().to_string());
            exp.run(&mut ctx)
        };
        let wall = start.elapsed();
        let snapshot = child.snapshot();
        let executed_words = snapshot.counter(Metric::ExecutedWords);
        if opts.progress {
            eprintln!(
                "[repro] {} done in {:.2}s ({executed_words} words)",
                exp.id(),
                wall.as_secs_f64(),
            );
        }
        if opts.attach_resources {
            report.resources = Some(crate::report::ResourceUsage::from_observations(
                &snapshot, wall,
            ));
        }
        ExperimentRun {
            id: exp.id(),
            title: exp.title(),
            report,
            wall,
            executed_words,
        }
    })
}

// ---------------------------------------------------------------------------
// Run manifest
// ---------------------------------------------------------------------------

/// Per-experiment entry of a [`RunManifest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Experiment id.
    pub id: String,
    /// Experiment title.
    pub title: String,
    /// File name of the report artifact (relative to the manifest).
    pub file: String,
    /// Whether every self-check passed.
    pub passed: bool,
    /// Number of self-checks in the report.
    pub checks: usize,
    /// Wall-clock milliseconds this experiment took.
    pub wall_ms: f64,
}

/// The `manifest.json` written next to the per-experiment reports by
/// `repro --json`: the run configuration, provenance and timing that are
/// deliberately **not** part of the deterministic [`Report`] artifacts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// JSON schema version (shared with [`Report`]).
    pub schema_version: u32,
    /// The Monte-Carlo budget the run used.
    pub config: RunConfig,
    /// `git describe --always --dirty` of the source tree, if available.
    pub git: Option<String>,
    /// Total wall-clock milliseconds across the whole run.
    pub wall_ms: f64,
    /// One entry per experiment, in run order.
    pub experiments: Vec<ManifestEntry>,
}

impl RunManifest {
    /// Builds a manifest over the runner's outcomes.
    pub fn new(config: RunConfig, git: Option<String>, wall: Duration) -> Self {
        RunManifest {
            schema_version: SCHEMA_VERSION,
            config,
            git,
            wall_ms: wall.as_secs_f64() * 1e3,
            experiments: Vec::new(),
        }
    }

    /// Appends one experiment outcome.
    pub fn push(&mut self, run: &ExperimentRun, file: impl Into<String>) {
        self.experiments.push(ManifestEntry {
            id: run.id.to_string(),
            title: run.title.to_string(),
            file: file.into(),
            passed: run.report.passed(),
            checks: run.report.checks.len(),
            wall_ms: run.wall.as_secs_f64() * 1e3,
        });
    }

    /// Serializes the manifest to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serialization is infallible")
    }

    /// Parses a manifest back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error on malformed JSON or a shape
    /// mismatch.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rft_revsim::noise::UniformNoise;
    use rft_revsim::wire::w;

    fn toffoli() -> Gate {
        Gate::Toffoli {
            controls: [w(0), w(1)],
            target: w(2),
        }
    }

    #[test]
    fn compile_cache_dedupes_programs_and_engines() {
        let cache = CompileCache::new();
        let a = cache.concat(1, toffoli(), 3);
        let b = cache.concat(1, toffoli(), 3);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one program");
        let c = cache.concat(1, toffoli(), 4);
        assert!(!Arc::ptr_eq(&a, &c), "different cycles, different program");

        let noise = UniformNoise::new(0.01);
        let e1 = cache.engine(a.program().circuit(), &noise);
        let e2 = cache.engine(b.program().circuit(), &noise);
        assert!(Arc::ptr_eq(&e1, &e2), "same circuit+noise shares an engine");
        let e3 = cache.engine(a.program().circuit(), &UniformNoise::new(0.02));
        assert!(!Arc::ptr_eq(&e1, &e3), "different rate, different engine");

        assert_eq!(cache.programs_cached(), 2);
        assert_eq!(cache.engines_cached(), 2);
        assert!(cache.hits() >= 2);
        assert!(cache.misses() >= 4);
    }

    #[test]
    fn bounded_cache_evicts_and_recompiles() {
        // A budget far below one compiled artifact: every insert evicts
        // its predecessor, so distinct keys never coexist.
        let cache = CompileCache::bounded(1);
        let a = cache.concat(1, toffoli(), 1);
        let b = cache.concat(1, toffoli(), 2);
        assert!(cache.evictions() >= 1, "second insert evicted the first");
        assert_eq!(
            cache.programs_cached(),
            1,
            "byte budget holds one artifact at a time"
        );
        // Re-asking for the evicted key recompiles: a fresh allocation.
        let a2 = cache.concat(1, toffoli(), 1);
        assert!(!Arc::ptr_eq(&a, &a2), "evicted artifact was recompiled");
        // Evicted handles stay alive for their holders.
        assert_eq!(a.program().circuit().len(), b.program().circuit().len() / 2);
    }

    #[test]
    fn cache_counters_survive_eviction() {
        let cache = CompileCache::bounded(1);
        assert_eq!(cache.byte_budget(), Some(1));
        cache.concat(1, toffoli(), 1); // miss
        cache.concat(1, toffoli(), 1); // hit (still resident)
        cache.concat(1, toffoli(), 2); // miss, evicts cycles=1
        cache.concat(1, toffoli(), 1); // miss again (was evicted), evicts cycles=2
        assert_eq!(cache.misses(), 3, "evicted keys recompile as misses");
        assert_eq!(cache.hits(), 1, "hit count unaffected by later eviction");
        assert_eq!(cache.evictions(), 2);
        let evictions_metric = cache.collector().get(Metric::CacheEvictions);
        assert_eq!(
            evictions_metric, 2,
            "cache.evictions metric tracks the store"
        );
        // Gauges reflect the post-eviction store.
        assert_eq!(cache.programs_cached(), 1);
        assert!(cache.cached_bytes() > 0);
    }

    #[test]
    fn unbounded_cache_never_evicts_artifacts() {
        let cache = CompileCache::new();
        assert_eq!(cache.byte_budget(), None);
        for cycles in 1..=4 {
            cache.concat(1, toffoli(), cycles);
        }
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.programs_cached(), 4);
    }

    #[test]
    fn run_parallel_preserves_order_and_results() {
        let ctx = ExperimentContext::new(RunConfig {
            threads: 4,
            ..RunConfig::quick()
        });
        let out = ctx.run_parallel(17, |i, share| {
            assert!(share.threads >= 1);
            i * i
        });
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_parallel_matches_serial() {
        let grid: Vec<f64> = (1..20).map(|i| i as f64 * 1e-3).collect();
        let serial = ExperimentContext::new(RunConfig {
            threads: 1,
            ..RunConfig::quick()
        });
        let parallel = ExperimentContext::new(RunConfig {
            threads: 8,
            ..RunConfig::quick()
        });
        let f = |g: f64, _cfg: &RunConfig| ErrorEstimate::from_counts((g * 1e4) as u64, 10_000);
        let a = serial.sweep(&grid, f);
        let b = parallel.sweep(&grid, f);
        assert_eq!(a, b);
    }

    #[test]
    fn manifest_round_trips() {
        let mut m = RunManifest::new(RunConfig::quick(), Some("abc123".into()), Duration::ZERO);
        m.push(
            &ExperimentRun {
                id: "demo",
                title: "Demo",
                report: Report::new("demo", "Demo", &[]),
                wall: Duration::from_millis(5),
                executed_words: 0,
            },
            "demo.json",
        );
        let back = RunManifest::from_json(&m.to_json()).expect("round trip");
        assert_eq!(back, m);
        assert_eq!(back.schema_version, SCHEMA_VERSION);
    }
}
