//! # rft-analysis — Monte Carlo, statistics and experiment reproductions
//!
//! The measurement layer of the *“Reversible Fault-Tolerant Logic”*
//! reproduction:
//!
//! - [`stats`] — binomial estimates with Wilson intervals, their
//!   stratified (weighted) generalization, and slope fits;
//! - [`montecarlo`] — logical-error-rate estimation for compiled
//!   concatenated programs and local cycles, expressed on the unified
//!   [`Engine`](rft_revsim::engine::Engine) facade: compile once, run
//!   many through auto-routed scalar/batch backends with typed
//!   [`McOptions`](rft_revsim::engine::McOptions) (trials, seed, threads,
//!   optional adaptive early stopping, and an
//!   [`Estimator`](rft_revsim::engine::Estimator) policy that routes
//!   deep-sub-threshold points to fault-count-stratified rare-event
//!   sampling);
//! - [`sweep`] — log-grid sweeps and pseudo-threshold crossing detection;
//! - [`entropy_meas`] — empirical reset-entropy measurement (§4);
//! - [`report`] — the schema-versioned [`Report`](report::Report)
//!   artifact (tables + numeric series + self-[`Check`](report::Check)s)
//!   and its pure renderers to aligned text, CSV and JSON;
//! - [`experiment`] — the first-class [`Experiment`](experiment::Experiment)
//!   trait, the [`registry`](experiment::registry) of all reproductions,
//!   the shared [`CompileCache`](experiment::CompileCache), and the
//!   cross-point parallel runner
//!   ([`run_experiments`](experiment::run_experiments));
//! - [`cache`] — the byte-bounded, cost-based (GreedyDual-Size) LRU the
//!   compile cache evicts through when given a byte budget;
//! - [`job`] — replayable estimation-job records and the round-streaming
//!   runner behind the `rft-serve` daemon and `repro replay`;
//! - [`experiments`] — one module per table/figure of the paper, each a
//!   registered [`Experiment`](experiment::Experiment) with a typed
//!   result convertible to a [`Report`](report::Report). The `repro`
//!   binary in `rft-bench` drives them through the registry.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod entropy_meas;
pub mod experiment;
pub mod experiments;
pub mod job;
pub mod montecarlo;
pub mod report;
pub mod stats;
pub mod sweep;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::entropy_meas::{measure_reset_entropy, EntropyMeasurement};
    pub use crate::experiment::{
        find, registry, run_experiments, run_experiments_with, CompileCache, Experiment,
        ExperimentContext, ExperimentRun, ManifestEntry, RunManifest, RunnerOptions,
    };
    pub use crate::experiments::RunConfig;
    pub use crate::job::{
        run_job, run_job_streaming, CircuitSpec, IntervalUpdate, JobControl, JobRecord, JobResult,
        JobSpec, NoiseSpec, JOB_SCHEMA_VERSION,
    };
    pub use crate::montecarlo::{
        estimate_cycle_error, estimate_cycle_error_outcome, unprotected_error, ConcatMc,
        ConcatTrial, BATCH_TRIAL_THRESHOLD,
    };
    pub use crate::report::{Check, Report, ResourceUsage, Series, Table, SCHEMA_VERSION};
    pub use crate::stats::{linear_slope, stratified_estimate, wilson_interval, ErrorEstimate};
    pub use crate::sweep::{find_crossing, log_grid, sweep, SweepPoint};
    pub use rft_revsim::engine::{BackendKind, Engine, Estimator, McOptions, McOutcome};
}
