//! Monte-Carlo estimation of logical error rates, on the unified
//! [`Engine`](rft_revsim::engine) facade.
//!
//! Two kinds of experiment:
//!
//! - [`ConcatMc`] runs the *compiled* fault-tolerant programs of
//!   [`rft_core::concat`] — the non-local scheme of §2 at any concatenation
//!   level — for one or more consecutive cycles;
//! - [`estimate_cycle_error`] runs a single extended rectangle described by
//!   a [`CycleSpec`] (used for the 2D/1D local cycles of §3).
//!
//! Both are thin layers over [`Engine::estimate`]: the circuit and noise
//! model are compiled once into an [`Engine`] (flattened op stream,
//! per-op fault probabilities, exact binomial fault-mask samplers, and —
//! lazily — the Poisson-binomial fault-count distribution), and a
//! [`WordTrial`] supplies the encode/judge logic per 64-trial word. Runs
//! are configured by typed [`McOptions`] — trials, seed, threads, an
//! explicit or auto-routed backend, an
//! [`Estimator`](rft_revsim::engine::Estimator) policy (whose default
//! `Auto` routes deep-sub-threshold points to the fault-count-stratified
//! rare-event estimator; both trials here opt into zero-fault elision
//! since a fault-free encode → run → decode lane cannot fail), and
//! optional adaptive early stopping at a target relative error. Results
//! are deterministic per seed and identical across the scalar and batch
//! backends (they share one RNG schedule); the statistical equivalence
//! tests live in `tests/batch_stats.rs`.

use crate::stats::ErrorEstimate;
use rand::{Rng, RngCore};
use rft_core::concat::{FtBuilder, FtProgram};
use rft_core::ftcheck::CycleSpec;
use rft_revsim::batch::BatchState;
use rft_revsim::circuit::Circuit;
use rft_revsim::engine::{failure_mask_in, Engine, McOptions, McOutcome, WordTrial};
use rft_revsim::gate::Gate;
use rft_revsim::noise::NoiseModel;
use rft_revsim::op::Op;
use rft_revsim::permutation::Permutation;
use rft_revsim::state::BitState;

pub use rft_revsim::engine::DEFAULT_BATCH_THRESHOLD as BATCH_TRIAL_THRESHOLD;

/// The [`WordTrial`] of a compiled concatenated program: each lane draws
/// an independent uniform logical input, encodes it through the program's
/// data-position trees, and fails when the recursive-majority decode of
/// the final state disagrees with the ideal permutation.
#[derive(Debug, Clone, Copy)]
pub struct ConcatTrial<'a> {
    program: &'a FtProgram,
    ideal: &'a Permutation,
}

impl<'a> ConcatTrial<'a> {
    /// A trial for `program` judged against `ideal`.
    pub fn new(program: &'a FtProgram, ideal: &'a Permutation) -> Self {
        ConcatTrial { program, ideal }
    }
}

impl WordTrial for ConcatTrial<'_> {
    fn n_wires(&self) -> usize {
        self.program.n_physical()
    }

    fn prepare(&self, batch: &mut BatchState, rng: &mut dyn RngCore) -> Vec<u64> {
        let mut logical = Vec::new();
        self.prepare_into(batch, rng, &mut logical);
        logical
    }

    fn prepare_into(&self, batch: &mut BatchState, rng: &mut dyn RngCore, inputs: &mut Vec<u64>) {
        inputs.clear();
        inputs.extend((0..self.program.n_logical()).map(|_| rng.random::<u64>()));
        self.program.encode_word(batch, 0, inputs);
    }

    fn judge(&self, batch: &BatchState, inputs: &[u64]) -> u64 {
        self.judge_masked(batch, inputs, u64::MAX)
    }

    fn judge_masked(&self, batch: &BatchState, inputs: &[u64], candidates: u64) -> u64 {
        if candidates == 0 {
            return 0;
        }
        let decoded = self.program.decode_word(batch, 0);
        failure_mask_in(candidates, inputs, &decoded, |input| {
            self.ideal.apply(input)
        })
    }

    /// Encode → run → decode against the ideal permutation: a fault-free
    /// lane decodes exactly, so zero-fault elision is sound.
    fn fault_free_can_fail(&self) -> bool {
        false
    }

    /// The concatenation-distance elision: a level-`L` program compiled
    /// by [`FtBuilder`] fails only under at least `2^L` physical faults
    /// (each level-1 block corrects any single fault — proven
    /// exhaustively by `rft_core::ftcheck` — and each outer level
    /// corrects any single corrupted block), so [`Estimator::Auto`] may
    /// elide the lighter strata.
    ///
    /// [`Estimator::Auto`]: rft_revsim::engine::Estimator::Auto
    fn min_failing_faults(&self) -> u32 {
        1u32 << self.program.level().min(31)
    }
}

/// Monte-Carlo harness for concatenated (non-local) fault-tolerant gates.
#[must_use = "a ConcatMc is a compiled program awaiting estimation runs"]
#[derive(Debug)]
pub struct ConcatMc {
    program: FtProgram,
    ideal: Permutation,
    cycles: usize,
}

impl ConcatMc {
    /// Compiles `cycles` consecutive applications of `gate` (a gate on
    /// logical wires) at concatenation `level`.
    ///
    /// # Panics
    ///
    /// Panics if the gate's wires are invalid for three logical wires or
    /// the level exceeds [`FtBuilder::MAX_LEVEL`].
    pub fn new(level: u8, gate: Gate, cycles: usize) -> Self {
        assert!(cycles > 0, "need at least one cycle");
        let n_logical = gate.support().max_index() + 1;
        let mut logical = Circuit::new(n_logical);
        for _ in 0..cycles {
            logical.push(Op::Gate(gate));
        }
        let ideal = Permutation::of_circuit(&logical).expect("small logical circuit");
        let program = FtBuilder::compile(level, &logical).expect("gate-only logical circuit");
        ConcatMc {
            program,
            ideal,
            cycles,
        }
    }

    /// The compiled program.
    pub fn program(&self) -> &FtProgram {
        &self.program
    }

    /// Number of cycles per trial.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Approximate resident size in bytes (the op stream plus the ideal
    /// permutation table) — the size input of the compile cache's
    /// cost-based eviction policy; only relative magnitudes matter.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<ConcatMc>()
            + self.program.circuit().len() * size_of::<Op>()
            + (1usize << self.ideal.n_bits()) * size_of::<u64>()
    }

    /// Compiles this program against `noise` into a reusable [`Engine`]
    /// (the compile-once artifact behind [`ConcatMc::estimate`]).
    pub fn engine<N: NoiseModel + ?Sized>(&self, noise: &N) -> Engine {
        Engine::compile(self.program.circuit(), noise)
    }

    /// The [`WordTrial`] driving [`ConcatMc::estimate`], for use with a
    /// hand-built [`Engine`] or
    /// [`Simulation`](rft_revsim::engine::Simulation).
    pub fn trial(&self) -> ConcatTrial<'_> {
        ConcatTrial::new(&self.program, &self.ideal)
    }

    /// Estimates the probability that a full trial (all cycles) ends with
    /// any logical bit decoded incorrectly, over random logical inputs.
    ///
    /// Routes through the [`Engine`] facade: the backend is chosen by
    /// `opts` ([`BackendKind::Auto`](rft_revsim::engine::BackendKind)
    /// batches at ≥ [`BATCH_TRIAL_THRESHOLD`] trials), and setting
    /// [`McOptions::target_rel_error`] enables adaptive early stopping.
    pub fn estimate<N>(&self, noise: &N, opts: &McOptions) -> ErrorEstimate
    where
        N: NoiseModel + ?Sized,
    {
        self.estimate_outcome(noise, opts).into()
    }

    /// [`ConcatMc::estimate`] returning the raw [`McOutcome`] (executed
    /// trials, early-stop flag and backend name included).
    pub fn estimate_outcome<N>(&self, noise: &N, opts: &McOptions) -> McOutcome
    where
        N: NoiseModel + ?Sized,
    {
        self.engine(noise).estimate(&self.trial(), opts)
    }

    /// Per-cycle logical error rate derived from [`ConcatMc::estimate`].
    pub fn estimate_per_cycle<N>(&self, noise: &N, opts: &McOptions) -> (ErrorEstimate, f64)
    where
        N: NoiseModel + ?Sized,
    {
        let est = self.estimate(noise, opts);
        let per_cycle = est.per_cycle(self.cycles);
        (est, per_cycle)
    }
}

/// Estimates the logical error probability of one extended rectangle (a
/// [`CycleSpec`]): encode a random input, run the cycle under `noise`,
/// majority-decode the outputs and compare with the ideal function.
///
/// Routes through the [`Engine`] facade with `opts` selecting the
/// backend, threads and stopping rule.
pub fn estimate_cycle_error<N>(spec: &CycleSpec, noise: &N, opts: &McOptions) -> ErrorEstimate
where
    N: NoiseModel + ?Sized,
{
    estimate_cycle_error_outcome(spec, noise, opts).into()
}

/// [`estimate_cycle_error`] returning the raw [`McOutcome`].
pub fn estimate_cycle_error_outcome<N>(spec: &CycleSpec, noise: &N, opts: &McOptions) -> McOutcome
where
    N: NoiseModel + ?Sized,
{
    Engine::compile(spec.circuit(), noise).estimate(spec, opts)
}

/// Estimates the *unprotected* error rate of `cycles` physical gates — the
/// `1 − (1−g)^T ≈ gT` baseline the paper compares against.
#[must_use]
pub fn unprotected_error(g: f64, gates: usize) -> f64 {
    1.0 - (1.0 - g).powi(gates as i32)
}

/// Scalar reference trial used by tests and docs: encodes one logical
/// input, runs the engine's scalar path once, decodes.
///
/// Exists mainly to document the per-trial semantics the word-based
/// estimators vectorize; not used on any hot path.
pub fn scalar_reference_trial<R: Rng + ?Sized>(
    mc: &ConcatMc,
    engine: &Engine,
    rng: &mut R,
) -> bool {
    let n_logical = mc.program().n_logical();
    // `1u64 << 64` would overflow; a full-width register takes any u64.
    let input = if n_logical >= 64 {
        rng.random()
    } else {
        rng.random_range(0..(1u64 << n_logical))
    };
    let logical_in = BitState::from_u64(input, n_logical);
    let mut state = mc.program().encode(&logical_in);
    engine.run_scalar(&mut state, rng);
    let decoded = mc.program().decode(&state).to_u64();
    decoded != mc.ideal.apply(input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rft_revsim::engine::BackendKind;
    use rft_revsim::noise::{NoNoise, UniformNoise};
    use rft_revsim::wire::w;

    fn toffoli() -> Gate {
        Gate::Toffoli {
            controls: [w(0), w(1)],
            target: w(2),
        }
    }

    #[test]
    fn noiseless_concat_never_fails() {
        let mc = ConcatMc::new(1, toffoli(), 3);
        let est = mc.estimate(&NoNoise, &McOptions::new(200).seed(7).threads(2));
        assert_eq!(est.failures, 0);
    }

    #[test]
    fn heavy_noise_fails_often() {
        let mc = ConcatMc::new(1, toffoli(), 1);
        let est = mc.estimate(
            &UniformNoise::new(0.25),
            &McOptions::new(400).seed(7).threads(2),
        );
        assert!(est.rate > 0.2, "rate {} too low for heavy noise", est.rate);
    }

    #[test]
    fn below_threshold_level_one_beats_unprotected() {
        // g = ρ/4: the FT cycle should fail far less often than the 27
        // unprotected gates it replaces.
        let g = 1.0 / 432.0;
        let mc = ConcatMc::new(1, toffoli(), 1);
        let est = mc.estimate(
            &UniformNoise::new(g),
            &McOptions::new(20_000).seed(11).threads(4),
        );
        let baseline = unprotected_error(g, 27);
        assert!(
            est.rate < baseline,
            "protected {} not below unprotected {}",
            est.rate,
            baseline
        );
    }

    #[test]
    fn cycle_spec_mc_runs() {
        use rft_core::recovery::{recovery_circuit, DATA_IN, DATA_OUT};
        let spec = CycleSpec::new(
            recovery_circuit(),
            vec![DATA_IN],
            vec![DATA_OUT],
            Permutation::identity(1),
        );
        let est = estimate_cycle_error(&spec, &NoNoise, &McOptions::new(100).seed(3).threads(2));
        assert_eq!(est.failures, 0);
        let noisy = estimate_cycle_error(
            &spec,
            &UniformNoise::new(0.3),
            &McOptions::new(400).seed(3).threads(2),
        );
        assert!(noisy.failures > 0);
    }

    #[test]
    fn estimates_are_deterministic_and_backend_independent() {
        let mc = ConcatMc::new(1, toffoli(), 1);
        let noise = UniformNoise::new(0.02);
        let base = McOptions::new(4_000).seed(9);
        let a = mc.estimate_outcome(&noise, &base.threads(4));
        let b = mc.estimate_outcome(&noise, &base.threads(1));
        assert_eq!(a.failures, b.failures, "thread-count independent");
        let scalar = mc.estimate_outcome(&noise, &base.backend(BackendKind::Scalar));
        assert_eq!(a.failures, scalar.failures, "backend independent");
        assert_eq!(a.backend, "batch");
        assert_eq!(scalar.backend, "scalar");
    }

    #[test]
    fn estimate_dispatches_by_trial_count() {
        let mc = ConcatMc::new(1, toffoli(), 1);
        let noise = UniformNoise::new(0.2);
        let small = mc.estimate_outcome(&noise, &McOptions::new(BATCH_TRIAL_THRESHOLD - 1).seed(3));
        let large = mc.estimate_outcome(&noise, &McOptions::new(BATCH_TRIAL_THRESHOLD * 4).seed(3));
        assert_eq!(small.backend, "scalar");
        assert_eq!(large.backend, "batch");
        assert!(small.failures > 0 && large.failures > 0);
    }

    #[test]
    fn scalar_reference_trial_agrees_statistically() {
        // The documented per-trial semantics vs the word estimator: same
        // model, disjoint streams, overlapping Wilson intervals.
        let mc = ConcatMc::new(1, toffoli(), 1);
        let noise = UniformNoise::new(1.0 / 80.0);
        let engine = mc.engine(&noise);
        let trials = 4_000u64;
        let mut rng = SmallRng::seed_from_u64(5);
        let mut failures = 0u64;
        for _ in 0..trials {
            if scalar_reference_trial(&mc, &engine, &mut rng) {
                failures += 1;
            }
        }
        let reference = ErrorEstimate::from_counts(failures, trials);
        let word = mc.estimate(&noise, &McOptions::new(trials).seed(6).threads(2));
        assert!(
            word.low <= reference.high && reference.low <= word.high,
            "word {word:?} vs reference {reference:?}"
        );
    }

    #[test]
    fn adaptive_early_stopping_spends_less() {
        let mc = ConcatMc::new(1, toffoli(), 1);
        let noise = UniformNoise::new(0.1);
        let full = mc.estimate_outcome(&noise, &McOptions::new(100_000).seed(3).threads(2));
        let adaptive = mc.estimate_outcome(
            &noise,
            &McOptions::new(100_000)
                .seed(3)
                .threads(2)
                .target_rel_error(0.15),
        );
        assert!(adaptive.early_stopped);
        assert!(
            adaptive.trials < full.trials / 10,
            "adaptive {} vs full {}",
            adaptive.trials,
            full.trials
        );
    }

    #[test]
    fn unprotected_error_matches_formula() {
        assert!((unprotected_error(0.01, 100) - (1.0 - 0.99f64.powi(100))).abs() < 1e-15);
        assert_eq!(unprotected_error(0.0, 1000), 0.0);
    }
}
